// Figure 4 reproduction: read cost of three compaction-timing strategies
// when moving 60MB from Level 1 to Level 2 in three compactions, with x
// lookups per MB ingested and every lookup probing every live run.
//
//   (a) equal frequency   (20/20/20) : total 90x  (paper)
//   (b) decreasing freq.  (30/20/10) : total 80x  (paper, optimal)
//   (c) all-at-the-end    (60)x3     : total 150x (paper)
#include <cstdio>
#include <vector>

#include "theory/optimal_dp.h"
#include "theory/schemes.h"

using namespace talus::theory;

namespace {

// Runs arrive at L1 as 10MB batches (one per 10MB ingested). Compactions
// after the given ingestion points move everything in L1 into one new L2
// run. Each MB of ingestion performs x lookups; cost counts one probe per
// live run per lookup round (x = 1 here; scale externally).
uint64_t ReadCost(const std::vector<int>& compaction_points_mb) {
  const int total_mb = 60;
  const int batch_mb = 10;
  uint64_t cost = 0;
  std::vector<int> l1_births, l2_births;  // Birth time in MB.
  size_t next = 0;
  for (int mb = 1; mb <= total_mb; mb++) {
    if (mb % batch_mb == 0) l1_births.push_back(mb);
    if (next < compaction_points_mb.size() &&
        mb == compaction_points_mb[next]) {
      for (int birth : l1_births) cost += mb - birth;
      l1_births.clear();
      l2_births.push_back(mb);
      next++;
    }
  }
  for (int birth : l1_births) cost += total_mb - birth;
  for (int birth : l2_births) cost += total_mb - birth;
  return cost;
}

}  // namespace

int main() {
  std::printf("Figure 4: compaction timing vs total read cost "
              "(60MB ingested, 10MB runs, x lookups per MB)\n\n");
  struct Case {
    const char* name;
    std::vector<int> points;
    int paper;
  };
  const Case cases[] = {
      {"(a) equal frequency 20/40/60", {20, 40, 60}, 90},
      {"(b) decreasing freq 30/50/60", {30, 50, 60}, 80},
      {"(c) everything at 60", {60, 60, 60}, 150},
  };
  for (const auto& c : cases) {
    std::printf("%-32s total read cost = %3llux   (paper: %dx)\n", c.name,
                static_cast<unsigned long long>(ReadCost(c.points)), c.paper);
  }

  std::printf("\nOptimal schedules from the Lemma 9.2 dynamic program "
              "(n flushes, l levels, r=1):\n");
  std::printf("%6s %4s %12s %12s\n", "n", "l", "dp-optimal", "closed-form");
  OptimalReadCostDp dp;
  for (int l : {2, 3, 4}) {
    for (uint64_t n : {6, 10, 20, 56, 120}) {
      std::printf("%6llu %4d %12llu %12llu\n",
                  static_cast<unsigned long long>(n), l,
                  static_cast<unsigned long long>(dp.Cost(n, l)),
                  static_cast<unsigned long long>(
                      TieringReadCostClosedForm(n, l)));
    }
  }
  return 0;
}
