// Ablation for §5.3 / Eq. 6: skew adaptation on the horizontal-leveling
// scheme. Under the hot/cold workload (hot set U_h hit with high
// probability), relaxing the first-level trigger to C1 > C2 + δ(α) with
// δ(δ+1)/2 ≤ α/(1−α) defers compactions that duplicate-heavy flushes make
// unprofitable.
#include <cstdio>

#include "bench/harness.h"
#include "theory/schemes.h"

using namespace talus;
using namespace talus::bench;

int main() {
  const uint64_t kKeys = 20000;
  const uint64_t kBufferEntries = 64;  // 64KB buffer / 1KB entries.

  std::printf("Eq. 6 ablation: HR-Level skew adaptation under hot/cold "
              "workloads (write-heavy)\n\n");
  std::printf("%8s %6s %12s %12s %12s %12s\n", "alpha", "delta", "WA(off)",
              "WA(on)", "tput(off)", "tput(on)");

  for (double alpha : {0.0, 0.3, 0.5, 0.7, 0.9}) {
    const uint64_t delta = theory::SkewDelta(alpha);
    double wa[2] = {0, 0}, tput[2] = {0, 0};
    for (int on = 0; on < 2; on++) {
      ExperimentConfig config;
      config.label = on ? "on" : "off";
      config.policy = GrowthPolicyConfig::HRLevel(3);
      config.policy.skew_adaptation = (on == 1);
      config.policy.skew_alpha = alpha;
      config.keys.num_keys = kKeys;
      config.keys.key_size = 128;
      config.keys.value_size = 896;
      config.keys.distribution = workload::Distribution::kHotCold;
      // α = |U_h| / B with B in entries (§5.3): the hot set is sized so a
      // buffer flush contains about α·B hot-key duplicates.
      config.keys.hot_keys =
          std::max<uint64_t>(1, static_cast<uint64_t>(alpha * kBufferEntries));
      config.keys.hot_probability = alpha > 0 ? 0.98 : 0.0;
      config.mix = workload::WriteHeavyMix();
      config.preload_entries = kKeys;
      config.num_ops = 25000;
      auto r = RunExperiment(config);
      wa[on] = r.ok ? r.write_amp : -1;
      tput[on] = r.ok ? r.avg_throughput : -1;
    }
    std::printf("%8.2f %6llu %12.2f %12.2f %12.5f %12.5f\n", alpha,
                static_cast<unsigned long long>(delta), wa[0], wa[1], tput[0],
                tput[1]);
  }
  std::printf("\n(delta = 0 rows are identical by construction; gains should "
              "appear as alpha grows.)\n");
  return 0;
}
