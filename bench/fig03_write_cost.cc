// Figure 3 reproduction: total write cost of moving 60MB from Level 1 to
// Level 2 under the vertical scheme's fixed compaction frequency (3 x 20MB:
// 20 + 40 + 60 = 120MB) versus the horizontal scheme's decreasing frequency
// (10/20/30MB: 10 + 30 + 60 = 100MB), plus the general-n comparison from
// the leveling write-cost machinery.
#include <cstdio>
#include <vector>

#include "theory/schemes.h"

using namespace talus::theory;

namespace {

// Leveling write cost of moving `slices` batches into one target level:
// each compaction rewrites everything accumulated so far.
uint64_t ScheduleCost(const std::vector<uint64_t>& batches) {
  uint64_t level2 = 0, cost = 0;
  for (uint64_t b : batches) {
    cost += b + level2;  // Merge batch with existing level-2 data.
    level2 += b;
  }
  return cost;
}

}  // namespace

int main() {
  std::printf("Figure 3: compaction timing changes total write cost\n\n");

  const uint64_t paper_vertical = ScheduleCost({20, 20, 20});
  const uint64_t paper_horizontal = ScheduleCost({10, 20, 30});
  std::printf("(a) vertical  scheme, equal batches 20/20/20 MB : total %llu MB"
              " (paper: 120)\n",
              static_cast<unsigned long long>(paper_vertical));
  std::printf("(b) horizontal scheme, growing batches 10/20/30 MB: total %llu"
              " MB (paper: 100)\n\n",
              static_cast<unsigned long long>(paper_horizontal));

  std::printf("General n (buffers), 2 levels: vertical fixed-frequency vs "
              "horizontal (Algorithm 1 w/ footnote-6 accounting) vs the "
              "Lemma 5.2 optimum\n");
  std::printf("%8s %14s %14s %14s %9s\n", "n", "vertical(T=2)", "horizontal",
              "lemma5.2", "saving");
  for (uint64_t n : {8, 16, 32, 64, 128, 256, 512}) {
    // Vertical with T=2 over 2 levels: compact every 2 flushes.
    uint64_t level2 = 0, vertical = 0;
    for (uint64_t t = 1; t <= n; t++) {
      vertical += 1;  // Buffer flush write into level 1.
      if (t % 2 == 0) {
        vertical += 2 + level2;
        level2 += 2;
      }
    }
    const auto horizontal = SimulateHorizontalLeveling(n, 2);
    const uint64_t bound = LevelingWriteCostClosedForm(n, 2);
    std::printf("%8llu %14llu %14llu %14llu %8.1f%%\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(vertical),
                static_cast<unsigned long long>(horizontal.write_cost),
                static_cast<unsigned long long>(bound),
                100.0 * (1.0 - static_cast<double>(horizontal.write_cost) /
                                   static_cast<double>(vertical)));
  }
  return 0;
}
