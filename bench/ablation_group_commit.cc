// Ablation: group-commit write pipeline — writer threads × commit mode ×
// WAL sync mode (DESIGN.md §2.9).
//
// Wall-clock put throughput under concurrent writers. "serial" caps the
// group byte budget so every batch commits alone (one WAL append + one sync
// per batch — the pre-pipeline engine's behavior); "group" uses the default
// budget so the leader absorbs queued batches; "group+par" additionally
// applies follower sub-batches to the memtable concurrently
// (parallel_memtable_writes). The interesting columns are the throughput
// scaling as writers are added under wal_sync=per_group (where the
// amortized fsync dominates) and the group-size / queue-wait counters.
//
// Runs on the real filesystem by default so fsync costs are real; --mem
// switches to the deterministic in-memory env. --smoke shrinks the sweep to
// a CI-friendly <60 s run; --json PATH additionally emits the rows as JSON
// (the CI bench-smoke job uploads BENCH_write.json per PR to accumulate a
// perf trajectory).
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct BenchConfig {
  bool smoke = false;
  bool use_mem_env = false;
  std::string json_path;
};

struct RunResult {
  double kops_per_sec = 0;
  double wall_seconds = 0;
  metrics::GroupCommitStats gc;
  uint64_t stall_ms = 0;
};

struct Variant {
  const char* name;          // Row label and JSON "mode".
  bool grouped;              // false: byte budget forces 1-batch groups.
  bool parallel_memtable;
  WalSyncMode sync_mode;
  const char* sync_name;
};

uint64_t OpsPerThread(const BenchConfig& cfg) {
  return cfg.smoke ? 4000 : 30000;
}

// Unique per-run directory so repeated sweeps never share files.
std::string RunPath(const BenchConfig& cfg, int run_index) {
  if (cfg.use_mem_env) return "/db";
  return "/tmp/talus_bench_group_commit_" +
         std::to_string(static_cast<unsigned>(::getpid())) + "_" +
         std::to_string(run_index);
}

void CleanupDir(Env* env, const std::string& path) {
  std::vector<std::string> children;
  if (env->GetChildren(path, &children).ok()) {
    for (const auto& name : children) env->RemoveFile(path + "/" + name);
  }
}

RunResult RunOne(const BenchConfig& cfg, const Variant& variant, int writers,
                 int run_index) {
  std::unique_ptr<Env> owned_env;
  Env* env;
  if (cfg.use_mem_env) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    env = Env::Default();
  }

  DbOptions opts;
  opts.env = env;
  opts.path = RunPath(cfg, run_index);
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = 4 << 20;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 2;
  opts.wal_sync_mode = variant.sync_mode;
  opts.parallel_memtable_writes = variant.parallel_memtable;
  if (!variant.grouped) {
    // A 1-byte budget always keeps just the leader: every batch pays its
    // own WAL append and sync, like the pre-group-commit engine.
    opts.max_write_group_bytes = 1;
  }

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  const uint64_t ops = OpsPerThread(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; w++) {
    threads.emplace_back([&db, w, ops] {
      Random rnd(7100 + w);
      const std::string value(100, 'g');
      for (uint64_t i = 0; i < ops; i++) {
        std::string key = workload::FormatKey(rnd.Uniform(50000), 16);
        db->Put(key, value);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  r.kops_per_sec = static_cast<double>(ops) * writers / r.wall_seconds / 1000;
  r.gc = db->GetGroupCommitStats();
  r.stall_ms = db->stats().stall_micros / 1000;
  const std::string path = opts.path;
  db.reset();
  if (!cfg.use_mem_env) CleanupDir(env, path);
  return r;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--mem") == 0) {
      cfg.use_mem_env = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--mem] [--json PATH]\n",
                   argv[0]);
      return 1;
    }
  }

  const std::vector<Variant> variants = {
      {"serial", false, false, WalSyncMode::kNone, "none"},
      {"group", true, false, WalSyncMode::kNone, "none"},
      {"serial", false, false, WalSyncMode::kPerGroup, "per_group"},
      {"group", true, false, WalSyncMode::kPerGroup, "per_group"},
      {"group", true, false, WalSyncMode::kInterval, "interval"},
      {"group+par", true, true, WalSyncMode::kPerGroup, "per_group"},
  };
  const std::vector<int> thread_counts =
      cfg.smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};

  std::printf("# Group-commit ablation: %llu puts/thread, 100B values, "
              "background mode, %s env\n",
              static_cast<unsigned long long>(OpsPerThread(cfg)),
              cfg.use_mem_env ? "mem" : "posix");
  std::printf("%-10s %-10s %7s %9s %8s %10s %10s %9s %11s %9s\n", "mode",
              "wal_sync", "writers", "kops/s", "wall_s", "groups",
              "grp_avg", "grp_max", "wal_syncs", "wait_us");

  std::string json = "{\"bench\":\"ablation_group_commit\",\"smoke\":" +
                     std::string(cfg.smoke ? "true" : "false") +
                     ",\"rows\":[\n";
  bool first_row = true;
  int run_index = 0;
  for (const auto& variant : variants) {
    for (int writers : thread_counts) {
      RunResult r = RunOne(cfg, variant, writers, run_index++);
      std::printf("%-10s %-10s %7d %9.1f %8.2f %10llu %10.2f %9.0f %11llu "
                  "%9llu\n",
                  variant.name, variant.sync_name, writers, r.kops_per_sec,
                  r.wall_seconds,
                  static_cast<unsigned long long>(r.gc.group_commits),
                  r.gc.group_size_avg, r.gc.group_size_max,
                  static_cast<unsigned long long>(r.gc.wal_syncs),
                  static_cast<unsigned long long>(
                      r.gc.write_queue_wait_micros));
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s{\"mode\":\"%s\",\"wal_sync\":\"%s\",\"writers\":%d,"
          "\"kops_per_sec\":%.1f,\"wall_seconds\":%.3f,"
          "\"group_commits\":%llu,\"group_size_avg\":%.3f,"
          "\"group_size_p50\":%.1f,\"group_size_max\":%.0f,"
          "\"wal_syncs\":%llu,\"write_queue_wait_micros\":%llu,"
          "\"stall_ms\":%llu}",
          first_row ? "" : ",\n", variant.name, variant.sync_name, writers,
          r.kops_per_sec, r.wall_seconds,
          static_cast<unsigned long long>(r.gc.group_commits),
          r.gc.group_size_avg, r.gc.group_size_p50, r.gc.group_size_max,
          static_cast<unsigned long long>(r.gc.wal_syncs),
          static_cast<unsigned long long>(r.gc.write_queue_wait_micros),
          static_cast<unsigned long long>(r.stall_ms));
      json += row;
      first_row = false;
    }
    std::printf("\n");
  }
  json += "\n]}\n";

  if (!cfg.json_path.empty()) {
    std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}
