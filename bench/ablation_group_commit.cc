// Ablation: group-commit write pipeline — writer threads × commit mode ×
// WAL sync mode (DESIGN.md §2.9).
//
// Wall-clock put throughput under concurrent writers. "serial" caps the
// group byte budget so every batch commits alone (one WAL append + one sync
// per batch — the pre-pipeline engine's behavior); "group" uses the default
// budget so the leader absorbs queued batches; "group+par" additionally
// applies follower sub-batches to the memtable concurrently
// (parallel_memtable_writes). The interesting columns are the throughput
// scaling as writers are added under wal_sync=per_group (where the
// amortized fsync dominates) and the group-size / queue-wait counters.
//
// Runs on the real filesystem by default so fsync costs are real; --mem
// switches to the deterministic in-memory env. --smoke shrinks the sweep to
// a CI-friendly <60 s run; --json PATH additionally emits the rows as JSON
// (the CI bench-smoke job uploads BENCH_write.json per PR to accumulate a
// perf trajectory). Rows carry put-latency percentiles (lat_p50_us /
// lat_p99_us / lat_p999_us from the engine's obs::LatencyRecorder) so the
// same baseline that gates throughput also gates tail latency.
//
// --trace PATH streams the engine's event ring (flushes, compactions,
// stalls) to PATH as JSONL while the sweep runs; --stats-jsonl PREFIX
// additionally runs the obs::StatsSnapshotter during each run, writing the
// amp/latency/drift time series to PREFIX.<run>.jsonl. --overhead replaces
// the sweep with two A/Bs at 8 threads: enable_latency_stats on/off on the
// write path (DESIGN.md §6.5, target <3%) and enable_amp_stats on/off on
// the read path, where the per-lookup probe fold lives (DESIGN.md §6.9).
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct BenchConfig {
  bool smoke = false;
  bool use_mem_env = false;
  bool overhead = false;
  std::string json_path;
  std::string trace_path;
  std::string stats_jsonl_prefix;
};

struct RunResult {
  double kops_per_sec = 0;
  double wall_seconds = 0;
  metrics::GroupCommitStats gc;
  uint64_t stall_ms = 0;
  // Caller-observed Put percentiles (microseconds) from talus.latency.
  double lat_p50_us = 0;
  double lat_p99_us = 0;
  double lat_p999_us = 0;
  // Cumulative amplification (talus.amp) at the end of the run.
  double write_amp = 0;
  double read_amp = 0;
  double space_amp = 0;
};

struct Variant {
  const char* name;          // Row label and JSON "mode".
  bool grouped;              // false: byte budget forces 1-batch groups.
  bool parallel_memtable;
  WalSyncMode sync_mode;
  const char* sync_name;
};

uint64_t OpsPerThread(const BenchConfig& cfg) {
  return cfg.smoke ? 4000 : 30000;
}

// Unique per-run directory so repeated sweeps never share files.
std::string RunPath(const BenchConfig& cfg, int run_index) {
  if (cfg.use_mem_env) return "/db";
  return "/tmp/talus_bench_group_commit_" +
         std::to_string(static_cast<unsigned>(::getpid())) + "_" +
         std::to_string(run_index);
}

void CleanupDir(Env* env, const std::string& path) {
  std::vector<std::string> children;
  if (env->GetChildren(path, &children).ok()) {
    for (const auto& name : children) env->RemoveFile(path + "/" + name);
  }
}

RunResult RunOne(const BenchConfig& cfg, const Variant& variant, int writers,
                 int run_index, bool latency_stats = true) {
  std::unique_ptr<Env> owned_env;
  Env* env;
  if (cfg.use_mem_env) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    env = Env::Default();
  }

  DbOptions opts;
  opts.env = env;
  opts.path = RunPath(cfg, run_index);
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = 4 << 20;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 2;
  opts.wal_sync_mode = variant.sync_mode;
  opts.parallel_memtable_writes = variant.parallel_memtable;
  opts.enable_latency_stats = latency_stats;
  if (!cfg.trace_path.empty()) {
    // One trace per run: OpenTraceFile truncates, so sharing PATH across
    // the sweep would leave only the last run's events.
    opts.trace_file_path =
        cfg.trace_path + "." + std::to_string(run_index) + ".jsonl";
  }
  if (!cfg.stats_jsonl_prefix.empty()) {
    // Same per-run naming as --trace: the snapshotter's file is truncated
    // at Open.
    opts.stats_snapshot_interval_ms = 100;
    opts.stats_snapshot_path =
        cfg.stats_jsonl_prefix + "." + std::to_string(run_index) + ".jsonl";
  }
  if (!variant.grouped) {
    // A 1-byte budget always keeps just the leader: every batch pays its
    // own WAL append and sync, like the pre-group-commit engine.
    opts.max_write_group_bytes = 1;
  }

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  const uint64_t ops = OpsPerThread(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; w++) {
    threads.emplace_back([&db, w, ops] {
      Random rnd(7100 + w);
      const std::string value(100, 'g');
      for (uint64_t i = 0; i < ops; i++) {
        std::string key = workload::FormatKey(rnd.Uniform(50000), 16);
        db->Put(key, value);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  r.kops_per_sec = static_cast<double>(ops) * writers / r.wall_seconds / 1000;
  r.gc = db->GetGroupCommitStats();
  r.stall_ms = db->stats().stall_micros / 1000;
  if (latency_stats) {
    const std::vector<Histogram> lat = db->GetLatencyHistograms();
    const Histogram& put = lat[static_cast<size_t>(obs::OpType::kPut)];
    r.lat_p50_us = put.Median();
    r.lat_p99_us = put.Percentile(99);
    r.lat_p999_us = put.Percentile(99.9);
  }
  const obs::AmpSnapshot amp = db->GetAmpSnapshot();
  r.write_amp = amp.WriteAmp();
  r.read_amp = amp.ReadAmp();
  r.space_amp = amp.SpaceAmp();
  const std::string path = opts.path;
  db.reset();
  if (!cfg.use_mem_env) CleanupDir(env, path);
  return r;
}

// Read-path arm of --overhead: load a fixed key space once, then time
// concurrent point lookups with amp accounting on or off. The write-only
// sweep cannot see the probe fold (it only runs on Get), so this is where
// the enable_amp_stats cost is measured.
double ReadRunOne(const BenchConfig& cfg, int readers, int run_index,
                  bool amp_stats) {
  std::unique_ptr<Env> owned_env;
  Env* env;
  if (cfg.use_mem_env) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    env = Env::Default();
  }

  DbOptions opts;
  opts.env = env;
  opts.path = RunPath(cfg, 100 + run_index);
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = 4 << 20;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.enable_latency_stats = false;  // Isolate the probe-fold cost.
  opts.enable_amp_stats = amp_stats;

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 0;
  }

  const uint64_t key_space = 50000;
  const std::string value(100, 'g');
  for (uint64_t k = 0; k < key_space; k++) {
    db->Put(workload::FormatKey(k, 16), value);
  }
  db->FlushMemTable();

  const uint64_t ops = OpsPerThread(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < readers; w++) {
    threads.emplace_back([&db, w, ops, key_space] {
      Random rnd(9300 + w);
      std::string got;
      for (uint64_t i = 0; i < ops; i++) {
        db->Get(workload::FormatKey(rnd.Uniform(key_space), 16), &got);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();

  const std::string path = opts.path;
  db.reset();
  if (!cfg.use_mem_env) CleanupDir(env, path);
  return static_cast<double>(ops) * readers / wall / 1000;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--mem") == 0) {
      cfg.use_mem_env = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cfg.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-jsonl") == 0 && i + 1 < argc) {
      cfg.stats_jsonl_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--overhead") == 0) {
      cfg.overhead = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--mem] [--json PATH] [--trace PATH] "
                   "[--stats-jsonl PREFIX] [--overhead]\n",
                   argv[0]);
      return 1;
    }
  }

  if (cfg.overhead) {
    // A/B the observer itself: identical 8-writer runs with latency stats
    // on and off, alternated and best-of-N so background noise hits both
    // arms equally. wal_sync=none keeps the workload CPU-bound — fsync
    // time would mask the recorder's cost.
    const Variant variant = {"group", true, false, WalSyncMode::kNone,
                             "none"};
    const int writers = 8;
    const int reps = cfg.smoke ? 2 : 3;
    double best_on = 0, best_off = 0;
    std::printf("# Observer-overhead ablation: %llu puts/thread, 8 writers, "
                "group commit, wal_sync=none, %s env, best of %d\n",
                static_cast<unsigned long long>(OpsPerThread(cfg)),
                cfg.use_mem_env ? "mem" : "posix", reps);
    for (int rep = 0; rep < reps; rep++) {
      RunResult on = RunOne(cfg, variant, writers, 2 * rep, true);
      RunResult off = RunOne(cfg, variant, writers, 2 * rep + 1, false);
      std::printf("rep %d: stats_on %9.1f kops/s (p99 %.0f us)   "
                  "stats_off %9.1f kops/s\n",
                  rep, on.kops_per_sec, on.lat_p99_us, off.kops_per_sec);
      best_on = std::max(best_on, on.kops_per_sec);
      best_off = std::max(best_off, off.kops_per_sec);
    }
    const double overhead_pct =
        best_off > 0 ? (best_off - best_on) / best_off * 100 : 0;
    std::printf("best: stats_on %.1f kops/s, stats_off %.1f kops/s, "
                "observer overhead %.2f%%\n",
                best_on, best_off, overhead_pct);

    // Read-path arm: same alternated best-of-N discipline, amp accounting
    // on vs off, 8 concurrent readers over a loaded key space.
    std::printf("# Probe-accounting ablation: %llu gets/thread, 8 readers, "
                "%s env, best of %d\n",
                static_cast<unsigned long long>(OpsPerThread(cfg)),
                cfg.use_mem_env ? "mem" : "posix", reps);
    double best_amp_on = 0, best_amp_off = 0;
    for (int rep = 0; rep < reps; rep++) {
      const double on = ReadRunOne(cfg, writers, 2 * rep, true);
      const double off = ReadRunOne(cfg, writers, 2 * rep + 1, false);
      std::printf("rep %d: amp_on %9.1f kops/s   amp_off %9.1f kops/s\n",
                  rep, on, off);
      best_amp_on = std::max(best_amp_on, on);
      best_amp_off = std::max(best_amp_off, off);
    }
    const double amp_overhead_pct =
        best_amp_off > 0
            ? (best_amp_off - best_amp_on) / best_amp_off * 100
            : 0;
    std::printf("best: amp_on %.1f kops/s, amp_off %.1f kops/s, "
                "probe-accounting overhead %.2f%%\n",
                best_amp_on, best_amp_off, amp_overhead_pct);

    if (!cfg.json_path.empty()) {
      std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
        return 1;
      }
      std::fprintf(f,
                   "{\"bench\":\"ablation_observer_overhead\","
                   "\"writers\":%d,\"kops_stats_on\":%.1f,"
                   "\"kops_stats_off\":%.1f,\"overhead_pct\":%.2f,"
                   "\"kops_amp_on\":%.1f,\"kops_amp_off\":%.1f,"
                   "\"amp_overhead_pct\":%.2f}\n",
                   writers, best_on, best_off, overhead_pct, best_amp_on,
                   best_amp_off, amp_overhead_pct);
      std::fclose(f);
      std::printf("wrote %s\n", cfg.json_path.c_str());
    }
    return 0;
  }

  const std::vector<Variant> variants = {
      {"serial", false, false, WalSyncMode::kNone, "none"},
      {"group", true, false, WalSyncMode::kNone, "none"},
      {"serial", false, false, WalSyncMode::kPerGroup, "per_group"},
      {"group", true, false, WalSyncMode::kPerGroup, "per_group"},
      {"group", true, false, WalSyncMode::kInterval, "interval"},
      {"group+par", true, true, WalSyncMode::kPerGroup, "per_group"},
  };
  const std::vector<int> thread_counts =
      cfg.smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};

  std::printf("# Group-commit ablation: %llu puts/thread, 100B values, "
              "background mode, %s env\n",
              static_cast<unsigned long long>(OpsPerThread(cfg)),
              cfg.use_mem_env ? "mem" : "posix");
  std::printf("%-10s %-10s %7s %9s %8s %10s %10s %9s %11s %9s %8s %8s\n",
              "mode", "wal_sync", "writers", "kops/s", "wall_s", "groups",
              "grp_avg", "grp_max", "wal_syncs", "wait_us", "p99_us",
              "p999_us");

  std::string json = "{\"bench\":\"ablation_group_commit\",\"smoke\":" +
                     std::string(cfg.smoke ? "true" : "false") +
                     ",\"rows\":[\n";
  bool first_row = true;
  int run_index = 0;
  for (const auto& variant : variants) {
    for (int writers : thread_counts) {
      RunResult r = RunOne(cfg, variant, writers, run_index++);
      std::printf("%-10s %-10s %7d %9.1f %8.2f %10llu %10.2f %9.0f %11llu "
                  "%9llu %8.0f %8.0f\n",
                  variant.name, variant.sync_name, writers, r.kops_per_sec,
                  r.wall_seconds,
                  static_cast<unsigned long long>(r.gc.group_commits),
                  r.gc.group_size_avg, r.gc.group_size_max,
                  static_cast<unsigned long long>(r.gc.wal_syncs),
                  static_cast<unsigned long long>(
                      r.gc.write_queue_wait_micros),
                  r.lat_p99_us, r.lat_p999_us);
      char row[768];
      std::snprintf(
          row, sizeof(row),
          "%s{\"mode\":\"%s\",\"wal_sync\":\"%s\",\"writers\":%d,"
          "\"kops_per_sec\":%.1f,\"wall_seconds\":%.3f,"
          "\"group_commits\":%llu,\"group_size_avg\":%.3f,"
          "\"group_size_p50\":%.1f,\"group_size_max\":%.0f,"
          "\"wal_syncs\":%llu,\"write_queue_wait_micros\":%llu,"
          "\"stall_ms\":%llu,\"lat_p50_us\":%.1f,\"lat_p99_us\":%.1f,"
          "\"lat_p999_us\":%.1f,\"write_amp\":%.3f,\"read_amp\":%.3f,"
          "\"space_amp\":%.3f}",
          first_row ? "" : ",\n", variant.name, variant.sync_name, writers,
          r.kops_per_sec, r.wall_seconds,
          static_cast<unsigned long long>(r.gc.group_commits),
          r.gc.group_size_avg, r.gc.group_size_p50, r.gc.group_size_max,
          static_cast<unsigned long long>(r.gc.wal_syncs),
          static_cast<unsigned long long>(r.gc.write_queue_wait_micros),
          static_cast<unsigned long long>(r.stall_ms), r.lat_p50_us,
          r.lat_p99_us, r.lat_p999_us, r.write_amp, r.read_amp, r.space_amp);
      json += row;
      first_row = false;
    }
    std::printf("\n");
  }
  json += "\n]}\n";

  if (!cfg.json_path.empty()) {
    std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}
