// Ablation: point-read fast path — lookup implementation × filter variant
// × block-cache regime × reader threads (DESIGN.md §7).
//
// Rows (the "mode" column) isolate each layer of the fast path:
//   iter_legacy   two-iterator SstReader::Get, legacy flat bloom (the
//                 pre-fast-path engine; A/B baseline)
//   fast_legacy   Block::PointGet path, legacy bloom — isolates the
//                 allocation-free in-block search
//   fast_blocked  Block::PointGet + cache-line-blocked bloom — the new
//                 default-capable configuration
// The "policy" column is the cache regime: cachehit (block cache larger
// than the tree, warmed) vs cachemiss (cache disabled: every lookup decodes
// a freshly loaded block — on the mem env via the zero-copy view path).
// blocks_per_lookup comes from the amp tracker and must be identical across
// modes with the same filter variant: the fast path changes cycles, not
// I/O shape.
//
// Always runs on the mem env: the subject is CPU cost per lookup, not disk.
// --smoke shrinks the sweep for CI; --json PATH emits rows for the
// compare_bench.py gate and the nightly trajectory (BENCH_point_read.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct BenchConfig {
  bool smoke = false;
  std::string json_path;
};

struct ModeVariant {
  const char* name;
  bool fast_path;
  FilterVariant filter_variant;
};

struct RunResult {
  double kops_per_sec = 0;
  double wall_seconds = 0;
  double lat_p50_us = 0;
  double lat_p99_us = 0;
  double lat_p999_us = 0;
  double blocks_per_lookup = 0;
  double filter_negative_rate = 0;  // Filter negatives / files probed.
  uint64_t bloom_false_positives = 0;
  uint64_t lookups = 0;
};

uint64_t NumKeys(const BenchConfig& cfg) { return cfg.smoke ? 10000 : 40000; }
uint64_t OpsPerThread(const BenchConfig& cfg) {
  return cfg.smoke ? 20000 : 120000;
}

RunResult RunOne(const BenchConfig& cfg, const ModeVariant& mode,
                 bool cache_hit_regime, int readers) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = cache_hit_regime ? (64 << 20) : 0;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.filter_variant = mode.filter_variant;
  opts.point_read_fast_path = mode.fast_path;

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  // Load the EVEN keys and probe the whole range: ~half the lookups are
  // misses that land inside file key ranges, so fence pointers cannot skip
  // them and the Bloom filter is on the hot path of every row.
  const uint64_t num_keys = NumKeys(cfg);
  const std::string value(100, 'p');
  for (uint64_t i = 0; i < num_keys; i++) {
    db->Put(workload::FormatKey(i * 2, 16), value);
  }
  db->FlushMemTable();

  const uint64_t probe_space = num_keys * 2;
  if (cache_hit_regime) {
    // Warm every data block so the measured pass runs ~100% cache hits.
    std::string v;
    for (uint64_t i = 0; i < num_keys; i++) {
      db->Get(workload::FormatKey(i * 2, 16), &v);
    }
  }
  const obs::AmpSnapshot amp_before = db->GetAmpSnapshot();

  const uint64_t ops = OpsPerThread(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; r++) {
    threads.emplace_back([&db, r, ops, probe_space] {
      Random rnd(7100 + r);
      std::string v;
      for (uint64_t i = 0; i < ops; i++) {
        db->Get(workload::FormatKey(rnd.Uniform(probe_space), 16), &v);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  r.kops_per_sec = static_cast<double>(ops) * readers / r.wall_seconds / 1000;
  {
    const std::vector<Histogram> lat = db->GetLatencyHistograms();
    const Histogram& get = lat[static_cast<size_t>(obs::OpType::kGet)];
    r.lat_p50_us = get.Median();
    r.lat_p99_us = get.Percentile(99);
    r.lat_p999_us = get.Percentile(99.9);
  }
  obs::AmpSnapshot amp = db->GetAmpSnapshot();
  amp.Subtract(amp_before);  // Measured pass only (exclude load + warmup).
  r.lookups = amp.lookups;
  r.blocks_per_lookup = amp.BlocksPerLookup();
  uint64_t files_probed = 0, filter_negatives = 0, false_positives = 0;
  for (int i = 0; i < amp.num_levels; i++) {
    files_probed += amp.levels[i].files_probed;
    filter_negatives += amp.levels[i].filter_negatives;
    false_positives += amp.levels[i].bloom_false_positives;
  }
  r.filter_negative_rate =
      files_probed > 0
          ? static_cast<double>(filter_negatives) / files_probed
          : 0;
  r.bloom_false_positives = false_positives;
  return r;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 1;
    }
  }

  const std::vector<ModeVariant> modes = {
      {"iter_legacy", false, FilterVariant::kLegacy},
      {"fast_legacy", true, FilterVariant::kLegacy},
      {"fast_blocked", true, FilterVariant::kBlocked},
  };
  const std::vector<bool> cache_regimes = {true, false};
  const std::vector<int> reader_counts =
      cfg.smoke ? std::vector<int>{8} : std::vector<int>{1, 4, 8};

  std::printf("# Point-read ablation: %llu keys, %llu gets/thread, 100B "
              "values, ~50%% in-range misses, mem env, inline mode, "
              "%u cores\n",
              static_cast<unsigned long long>(NumKeys(cfg)),
              static_cast<unsigned long long>(OpsPerThread(cfg)),
              std::thread::hardware_concurrency());
  std::printf("%-13s %-10s %8s %9s %8s %8s %8s %9s %9s %8s\n", "mode",
              "cache", "readers", "kops/s", "p50_us", "p99_us", "p999_us",
              "blk/get", "filt_neg", "bloomfp");

  std::string json = "{\"bench\":\"ablation_point_read\",\"smoke\":" +
                     std::string(cfg.smoke ? "true" : "false") +
                     ",\"rows\":[\n";
  bool first_row = true;
  for (const auto& mode : modes) {
    for (const bool cache_hit : cache_regimes) {
      for (int readers : reader_counts) {
        RunResult r = RunOne(cfg, mode, cache_hit, readers);
        const char* regime = cache_hit ? "cachehit" : "cachemiss";
        std::printf(
            "%-13s %-10s %8d %9.1f %8.1f %8.1f %8.1f %9.3f %9.3f %8llu\n",
            mode.name, regime, readers, r.kops_per_sec, r.lat_p50_us,
            r.lat_p99_us, r.lat_p999_us, r.blocks_per_lookup,
            r.filter_negative_rate,
            static_cast<unsigned long long>(r.bloom_false_positives));
        char row[512];
        std::snprintf(
            row, sizeof(row),
            "%s{\"mode\":\"%s\",\"policy\":\"%s\",\"writers\":%d,"
            "\"kops_per_sec\":%.1f,\"wall_seconds\":%.3f,"
            "\"lat_p50_us\":%.1f,\"lat_p99_us\":%.1f,\"lat_p999_us\":%.1f,"
            "\"blocks_per_lookup\":%.4f,\"filter_negative_rate\":%.4f,"
            "\"bloom_false_positives\":%llu,\"lookups\":%llu}",
            first_row ? "" : ",\n", mode.name, regime, readers,
            r.kops_per_sec, r.wall_seconds, r.lat_p50_us, r.lat_p99_us,
            r.lat_p999_us, r.blocks_per_lookup, r.filter_negative_rate,
            static_cast<unsigned long long>(r.bloom_false_positives),
            static_cast<unsigned long long>(r.lookups));
        json += row;
        first_row = false;
      }
    }
    std::printf("\n");
  }
  json += "\n]}\n";

  if (!cfg.json_path.empty()) {
    std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}
