// Experiment harness: builds an engine per method configuration, preloads a
// key space, replays a YCSB-style operation stream, and reports the paper's
// metrics (average / worst-case throughput on the virtual clock, space &
// write & read amplification, latency split). One binary per paper
// table/figure sits on top of this.
#ifndef TALUS_BENCH_HARNESS_H_
#define TALUS_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "workload/generator.h"

namespace talus {
namespace bench {

struct ExperimentConfig {
  std::string label;
  GrowthPolicyConfig policy;

  workload::KeySpaceSpec keys;
  workload::OpMix mix;
  uint64_t preload_entries = 20000;
  uint64_t num_ops = 40000;
  size_t scan_length = 32;

  uint64_t write_buffer_size = 64 << 10;
  uint64_t target_file_size = 64 << 10;
  size_t block_cache_bytes = 256 << 10;
  double bloom_bits_per_key = 5.0;
  FilterLayout filter_layout = FilterLayout::kStatic;

  size_t worst_case_window = 250;
  uint64_t seed = 20250610;
};

struct ExperimentResult {
  std::string label;
  double avg_throughput = 0;       // ops per virtual-clock unit.
  double worst_throughput = 0;     // min windowed ops/clock.
  double space_amp = 0;            // (peak bytes − data bytes) / data bytes.
  double write_amp = 0;            // physical / logical write bytes.
  double read_amp = 0;             // runs probed per point lookup.
  double update_cost = 0;          // mean clock units per update.
  double lookup_cost = 0;          // mean clock units per point lookup.
  double range_cost = 0;           // mean clock units per range lookup.
  // Wall-clock latency percentiles from the engine's per-op histograms
  // (obs::LatencyRecorder): real microseconds, unlike the virtual-clock
  // costs above, so they expose tail behaviour the means hide.
  double put_p50_us = 0, put_p99_us = 0, put_p999_us = 0;
  double get_p50_us = 0, get_p99_us = 0, get_p999_us = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  double max_stall = 0;            // longest inline stall, clock units.
  bool ok = false;
  std::string error;
};

/// Runs one experiment on a fresh MemEnv. Deterministic for a fixed config.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Renders results as an aligned table. When `normalize` is set, throughput
/// columns are scaled to the best performer = 1.00 (the paper's y-axis).
void PrintResultTable(const std::string& title,
                      const std::vector<ExperimentResult>& results,
                      bool normalize = true);

/// Prints "method rank" lines (1 = best) for a metric extracted by `get`.
void PrintRanking(const std::string& title,
                  const std::vector<ExperimentResult>& results,
                  double (*get)(const ExperimentResult&),
                  bool higher_is_better);

/// The paper's Figure 7 method roster, parameterized by size ratio T and
/// the data-size estimate handed to HR-Tier.
std::vector<std::pair<std::string, GrowthPolicyConfig>> PaperMethodRoster(
    double T, uint64_t total_data_bytes, const workload::OpMix& mix);

}  // namespace bench
}  // namespace talus

#endif  // TALUS_BENCH_HARNESS_H_
