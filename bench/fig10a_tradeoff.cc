// Figure 10(a) reproduction: the read–write trade-off curves. Each design
// is one point (per-lookup cost, per-update cost) in virtual-clock units on
// a balanced workload:
//   vertical: {partial, full} × {leveling, tiering} × T ∈ {4, 6, 8, 10}
//   horizontal: {leveling, tiering (ours)} × ℓ ∈ {3, 4, 6}
// The paper's claim: horizontal-tiering extends the horizontal curve so it
// envelops both vertical families (the Pareto frontier).
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

int main() {
  const uint64_t kKeys = 20000;
  const uint64_t kDataBytes = kKeys * 1024;

  std::printf("Figure 10(a): read-write trade-off points "
              "(balanced uniform workload)\n");
  std::printf("%-24s %12s %12s\n", "design", "lookup-cost", "update-cost");

  struct Point {
    std::string name;
    GrowthPolicyConfig policy;
  };
  std::vector<Point> points;
  for (double T : {4.0, 6.0, 8.0, 10.0}) {
    const int t = static_cast<int>(T);
    points.push_back({"VT-Level-Part T=" + std::to_string(t),
                      GrowthPolicyConfig::VTLevelPart(T)});
    points.push_back({"VT-Level-Full T=" + std::to_string(t),
                      GrowthPolicyConfig::VTLevelFull(T)});
    points.push_back({"VT-Tier-Part T=" + std::to_string(t),
                      GrowthPolicyConfig::VTTierPart(T)});
    points.push_back({"VT-Tier-Full T=" + std::to_string(t),
                      GrowthPolicyConfig::VTTierFull(T)});
  }
  for (int l : {3, 4, 6}) {
    points.push_back(
        {"HR-Level l=" + std::to_string(l), GrowthPolicyConfig::HRLevel(l)});
    points.push_back({"HR-Tier l=" + std::to_string(l),
                      GrowthPolicyConfig::HRTier(l, kDataBytes)});
  }

  for (const auto& p : points) {
    ExperimentConfig config;
    config.label = p.name;
    config.policy = p.policy;
    config.keys.num_keys = kKeys;
    config.keys.key_size = 128;
    config.keys.value_size = 896;
    config.mix = workload::BalancedMix();
    config.preload_entries = kKeys;
    config.num_ops = 20000;
    auto r = RunExperiment(config);
    if (!r.ok) {
      std::printf("%-24s FAILED: %s\n", p.name.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-24s %12.3f %12.3f\n", p.name.c_str(), r.lookup_cost,
                r.update_cost);
  }
  std::printf("\nInterpretation: connect the points per family; the "
              "horizontal curve (leveling + tiering ends) should lie "
              "closest to the origin, dominating both vertical families.\n");
  return 0;
}
