#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_*.json against a committed
baseline and fail on throughput regressions beyond a tolerance band.

Rows are matched by their identity fields (mode, wal_sync, policy, shards,
writers — whichever the bench emits) and compared on --metric (default
kops_per_sec). --direction lower-better flips the gate for latency metrics
like lat_p99_us: best-of-N keeps the minimum and a regression is the fresh
value rising above the band.

Raw throughput is machine-dependent, so CI passes --normalize: each side's
metric is divided by that side's geometric mean over all matched configs
before comparing. Normalized values measure the SHAPE of the performance
profile — how much grouping, parallel applies, or sharding buy relative to
the other configs — which is stable across runner generations, while a
plain delta would fail every time GitHub swaps CPU models. The trade-off: a
change that slows every config by the same factor is invisible to the
normalized gate (it shows up in the nightly absolute trajectory instead).

Short smoke runs are noisy (interference only ever slows a run down), so
the fresh side accepts several files: each config keeps its best (max)
metric across them. CI runs the smoke bench twice and gates on the merge.

Exit codes: 0 = within tolerance, 1 = regression (or missing rows), 2 =
usage/format error.

To refresh the committed baseline after an intentional change, run the
bench with --smoke --json (ideally twice, merged best-of) and replace
bench/baseline/BENCH_write.json — or land the PR with [bench-skip] in the
commit message and refresh in a follow-up.
"""

import argparse
import json
import math
import sys

# Every config column any bench emits. A row's identity is the subset of
# these it carries, so a bench adding a new column (e.g. ablation_adaptive's
# `tuner`/`phase`) keeps distinct series distinct — before `tuner` was
# listed here, the best-of-N merge silently collapsed the static and
# adaptive rows into one config and dropped the rest (see --self-test).
IDENTITY_KEYS = ("mode", "wal_sync", "policy", "shards", "writers", "tuner",
                 "phase")


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        print(f"error: {path} has no rows", file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), rows


def identity(row):
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def fmt_identity(ident):
    return " ".join(f"{k}={v}" for k, v in ident)


def geomean(values):
    positive = [v for v in values if v > 0]
    if not positive:
        return 1.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def self_test():
    """Invariants of the identity/merge logic, run in CI before any gate.

    The one that bit us: rows that differ only in a column NOT listed in
    IDENTITY_KEYS share an identity, so best-of-N keeps a single row and
    the others vanish — which reads as 'missing baseline config' at best
    and a silently wrong comparison at worst. Any new config column a
    bench emits must therefore appear in IDENTITY_KEYS.
    """
    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)

    # Rows differing only in `tuner` or `phase` must stay distinct series.
    rows = [
        {"tuner": "static-leveled", "phase": 0, "policy": "VT-Level-Full",
         "shards": 2, "writers": 1, "kops_per_sec": 100.0},
        {"tuner": "adaptive", "phase": 0, "policy": "VT-Level-Full",
         "shards": 2, "writers": 1, "kops_per_sec": 90.0},
        {"tuner": "adaptive", "phase": 1, "policy": "VT-Level-Full",
         "shards": 2, "writers": 1, "kops_per_sec": 80.0},
    ]
    check("distinct identities for tuner/phase columns",
          len({identity(r) for r in rows}) == 3)

    # Best-of-N across two files must keep every series and the max metric.
    merged = {}
    for row in rows + [dict(rows[1], kops_per_sec=95.0)]:
        ident = identity(row)
        if ident not in merged or row["kops_per_sec"] > \
                merged[ident]["kops_per_sec"]:
            merged[ident] = row
    check("best-of-N keeps all series", len(merged) == 3)
    check("best-of-N keeps max metric",
          merged[identity(rows[1])]["kops_per_sec"] == 95.0)

    # Rows without the new columns (older benches) are unaffected.
    old = {"policy": "vertical", "shards": 1, "writers": 4}
    check("legacy rows ignore absent keys",
          identity(old) == (("policy", "vertical"), ("shards", 1),
                            ("writers", 4)))

    if failures:
        for name in failures:
            print(f"self-test FAILED: {name}", file=sys.stderr)
        sys.exit(1)
    print("self-test OK")
    sys.exit(0)


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench JSON against a committed baseline.")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="*",
                        help="One or more runs of the same bench; each "
                             "config keeps its best metric across files.")
    parser.add_argument("--self-test", action="store_true",
                        help="Run the identity/merge invariant checks and "
                             "exit (no files needed).")
    parser.add_argument("--metric", default="kops_per_sec")
    parser.add_argument("--direction", default="higher-better",
                        choices=("higher-better", "lower-better"),
                        help="Whether a larger metric is an improvement "
                             "(throughput) or a regression (latency).")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="Allowed relative regression (0.25 = -25%%).")
    parser.add_argument("--normalize", action="store_true",
                        help="Compare each side's metric relative to its "
                             "geometric mean over matched configs "
                             "(machine-independent).")
    args = parser.parse_args()
    if args.self_test:
        self_test()
    if args.baseline is None or not args.fresh:
        parser.error("baseline and at least one fresh file are required")

    base_name, base_rows = load_rows(args.baseline)
    fresh_rows = []
    for path in args.fresh:
        fresh_name, rows = load_rows(path)
        if base_name != fresh_name:
            print(f"error: comparing different benches "
                  f"({base_name} vs {fresh_name})", file=sys.stderr)
            sys.exit(2)
        fresh_rows.extend(rows)
    # Best-of-N: keep each config's best observation — the fastest
    # (higher-better) or the quietest tail (lower-better). Interference
    # only ever makes a run worse, so "best" is the least-noisy sample
    # either way.
    lower_better = args.direction == "lower-better"
    merged = {}
    for row in fresh_rows:
        ident = identity(row)
        if ident not in merged:
            merged[ident] = row
            continue
        new, old = row.get(args.metric, 0), merged[ident].get(args.metric, 0)
        if (new < old) if lower_better else (new > old):
            merged[ident] = row

    # Match configs, then normalize both sides by their own geometric mean
    # over the MATCHED set (so a missing config cannot skew the reference).
    matched = []
    missing = []
    for base_row in base_rows:
        ident = identity(base_row)
        fresh_row = merged.get(ident)
        if fresh_row is None:
            missing.append(ident)
            continue
        matched.append((ident, base_row.get(args.metric, 0),
                        fresh_row.get(args.metric, 0)))
    base_norm = fresh_norm = 1.0
    if args.normalize and matched:
        base_norm = geomean([b for _, b, _ in matched])
        fresh_norm = geomean([f for _, _, f in matched])

    regressions = []
    improved = []
    print(f"# {base_name}: {args.metric} ({args.direction})"
          f"{' (normalized by geomean)' if args.normalize else ''}, "
          f"tolerance {args.tolerance:.0%}")
    for ident, base_raw, fresh_raw in matched:
        if base_raw <= 0:
            continue
        base_value = base_raw / base_norm
        fresh_value = fresh_raw / fresh_norm
        delta = (fresh_value - base_value) / base_value
        # Signed so that negative = regressed, positive = improved,
        # regardless of direction.
        signed = -delta if lower_better else delta
        marker = " "
        if signed < -args.tolerance:
            regressions.append((ident, delta))
            marker = "!"
        elif signed > args.tolerance:
            improved.append((ident, delta))
            marker = "+"
        print(f"{marker} {fmt_identity(ident):55s} "
              f"base={base_value:10.3f} fresh={fresh_value:10.3f} "
              f"delta={delta:+7.1%}")

    # Informational amplification report: write/read/space amp per config
    # when both sides carry the keys. Amp is a property of the workload and
    # the growth policy, not the machine, so drifts here are meaningful —
    # but they are never gated (older baselines predate the keys, and an
    # intentional policy change legitimately moves them).
    amp_keys = ("write_amp", "read_amp", "space_amp")
    amp_lines = []
    for base_row in base_rows:
        fresh_row = merged.get(identity(base_row))
        if fresh_row is None:
            continue
        pairs = [(k, base_row[k], fresh_row[k]) for k in amp_keys
                 if k in base_row and k in fresh_row]
        if not pairs:
            continue
        cells = "  ".join(f"{k}={b:.3f}->{f:.3f}" for k, b, f in pairs)
        amp_lines.append(f"  {fmt_identity(identity(base_row)):55s} {cells}")
    if amp_lines:
        print("\n# amplification (informational, not gated)")
        for line in amp_lines:
            print(line)

    if missing:
        print(f"\nFAIL: {len(missing)} baseline config(s) missing from the "
              f"fresh run:")
        for ident in missing:
            print(f"  {fmt_identity(ident)}")
        sys.exit(1)
    if regressions:
        print(f"\nFAIL: {len(regressions)} config(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for ident, delta in regressions:
            print(f"  {fmt_identity(ident)}: {delta:+.1%}")
        print("(intentional? refresh bench/baseline/ or commit with "
              "[bench-skip])")
        sys.exit(1)
    if improved:
        print(f"\nnote: {len(improved)} config(s) improved beyond the band; "
              f"consider refreshing the committed baseline.")
    print("OK: no regression beyond tolerance.")
    sys.exit(0)


if __name__ == "__main__":
    main()
