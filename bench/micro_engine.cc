// Engine micro-benchmarks (google-benchmark): substrate hot paths.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/lru_cache.h"
#include "env/env.h"
#include "filter/bloom.h"
#include "format/block.h"
#include "format/block_builder.h"
#include "lsm/db.h"
#include "mem/memtable.h"
#include "theory/binomial.h"
#include "theory/optimal_dp.h"
#include "theory/schemes.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

void BM_MemTableAdd(benchmark::State& state) {
  MemTable mem;
  Random rnd(1);
  SequenceNumber seq = 0;
  std::string value(100, 'v');
  for (auto _ : state) {
    mem.Add(++seq, kTypeValue, workload::FormatKey(rnd.Uniform(100000), 16),
            value);
    if (mem.ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem.~MemTable();
      new (&mem) MemTable();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGet(benchmark::State& state) {
  MemTable mem;
  std::string value(100, 'v');
  for (uint64_t i = 0; i < 100000; i++) {
    mem.Add(i + 1, kTypeValue, workload::FormatKey(i, 16), value);
  }
  Random rnd(2);
  std::string out;
  Status s;
  for (auto _ : state) {
    LookupKey lkey(workload::FormatKey(rnd.Uniform(100000), 16),
                   kMaxSequenceNumber);
    benchmark::DoNotOptimize(mem.Get(lkey, &out, &s));
  }
}
BENCHMARK(BM_MemTableGet);

void BM_BloomBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BloomFilterBuilder builder(10.0);
    for (int i = 0; i < n; i++) {
      builder.AddKey(workload::FormatKey(i, 16));
    }
    std::string data = builder.Finish();
    benchmark::DoNotOptimize(data);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BloomBuild)->Arg(1024)->Arg(16384);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilterBuilder builder(10.0);
  for (int i = 0; i < 100000; i++) builder.AddKey(workload::FormatKey(i, 16));
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  Random rnd(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reader.KeyMayMatch(workload::FormatKey(rnd.Uniform(200000), 16)));
  }
}
BENCHMARK(BM_BloomProbe);

void BM_BlockSeek(benchmark::State& state) {
  BlockBuilder builder(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) {
    keys.push_back(workload::FormatKey(i * 7, 16));
  }
  for (const auto& k : keys) builder.Add(k, "value");
  Block block(builder.Finish().ToString());
  Random rnd(4);
  auto iter = block.NewIterator();
  for (auto _ : state) {
    iter->Seek(keys[rnd.Uniform(keys.size())]);
    benchmark::DoNotOptimize(iter->Valid());
  }
}
BENCHMARK(BM_BlockSeek);

void BM_LruCache(benchmark::State& state) {
  LruCache cache(1 << 20);
  Random rnd(5);
  for (auto _ : state) {
    std::string key = workload::FormatKey(rnd.Uniform(2000), 16);
    auto hit = cache.Lookup(key);
    if (hit == nullptr) {
      cache.Insert(key, std::make_shared<std::string>(1024, 'x'), 1024);
    }
  }
}
BENCHMARK(BM_LruCache);

void BM_DbPut(benchmark::State& state) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/bm";
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.policy = GrowthPolicyConfig::Vertiorizon(6.0);
  std::unique_ptr<DB> db;
  if (!DB::Open(opts, &db).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  Random rnd(6);
  std::string value(896, 'v');
  for (auto _ : state) {
    Status s = db->Put(workload::FormatKey(rnd.Uniform(50000), 128), value);
    if (!s.ok()) state.SkipWithError("put failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbPut);

void BM_DbGet(benchmark::State& state) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/bm";
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.policy = GrowthPolicyConfig::VTLevelPart(6.0);
  std::unique_ptr<DB> db;
  if (!DB::Open(opts, &db).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  std::string value(896, 'v');
  for (uint64_t i = 0; i < 10000; i++) {
    db->Put(workload::FormatKey(i, 128), value);
  }
  Random rnd(7);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get(workload::FormatKey(rnd.Uniform(10000), 128), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGet);

void BM_TieringSimulator(benchmark::State& state) {
  const uint64_t n = state.range(0);
  for (auto _ : state) {
    auto r = theory::SimulateHorizontalTiering(
        n, 4, theory::FindK(n, 4));
    benchmark::DoNotOptimize(r.read_cost);
  }
}
BENCHMARK(BM_TieringSimulator)->Arg(1000)->Arg(10000);

void BM_ClosedFormReadCost(benchmark::State& state) {
  Random rnd(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        theory::TieringReadCostClosedForm(rnd.Uniform(1 << 20) + 2, 4));
  }
}
BENCHMARK(BM_ClosedFormReadCost);

}  // namespace
}  // namespace talus

BENCHMARK_MAIN();
