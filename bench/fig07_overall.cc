// Figure 7 reproduction: average + worst-case throughput for the full
// method roster across the four YCSB workload mixes, under uniform and
// Zipfian key distributions (a, b); space amplification on the balanced
// uniform workload (c); and the cross-metric ranking table (d).
//
// Scale is the simulator scale documented in DESIGN.md §2: 1KB entries,
// 20k-key space (~20MB), 64KB write buffer, T = 6, 5 bits-per-key Bloom
// filters, small block cache (the paper's 32MB-equivalent).
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

namespace {

struct WorkloadCase {
  const char* name;
  workload::OpMix mix;
};

double AvgTput(const ExperimentResult& r) { return r.avg_throughput; }
double WorstTput(const ExperimentResult& r) { return r.worst_throughput; }
double SpaceAmp(const ExperimentResult& r) { return r.space_amp; }

}  // namespace

int main() {
  const double T = 6.0;
  const uint64_t kKeys = 20000;
  const uint64_t kEntryBytes = 1024;  // 128B key + 896B value (paper).
  const uint64_t kDataBytes = kKeys * kEntryBytes;

  const std::vector<WorkloadCase> cases = {
      {"Read-heavy", workload::ReadHeavyMix()},
      {"Balanced", workload::BalancedMix()},
      {"Write-heavy", workload::WriteHeavyMix()},
      {"Range-scan", workload::RangeScanMix()},
  };
  const std::vector<std::pair<const char*, workload::Distribution>> dists = {
      {"Uniform", workload::Distribution::kUniform},
      {"Zipfian", workload::Distribution::kZipfian},
  };

  std::printf("Figure 7: overall comparison (11 methods x 4 mixes x 2 "
              "distributions)\n");
  std::printf("Scale: %llu keys x %llu B, buffer 64KB, T=%.0f, 5 BPK, "
              "small cache\n",
              static_cast<unsigned long long>(kKeys),
              static_cast<unsigned long long>(kEntryBytes), T);

  std::vector<ExperimentResult> balanced_uniform;

  for (const auto& [dist_name, dist] : dists) {
    for (const auto& wc : cases) {
      std::vector<ExperimentResult> results;
      for (const auto& [label, policy] : PaperMethodRoster(T, kDataBytes, wc.mix)) {
        ExperimentConfig config;
        config.label = label;
        config.policy = policy;
        config.keys.num_keys = kKeys;
        config.keys.key_size = 128;
        config.keys.value_size = 896;
        config.keys.distribution = dist;
        config.mix = wc.mix;
        config.preload_entries = kKeys;
        config.num_ops = 30000;
        results.push_back(RunExperiment(config));
      }
      PrintResultTable(std::string("Fig 7 ") + dist_name + " / " + wc.name,
                       results);
      if (dist == workload::Distribution::kUniform) {
        // Figure 7(d) ranking rows.
        PrintRanking(std::string("rank avg ") + wc.name, results, AvgTput,
                     true);
        PrintRanking(std::string("rank worst ") + wc.name, results,
                     WorstTput, true);
        if (std::string(wc.name) == "Balanced") {
          balanced_uniform = results;
        }
      }
    }
  }

  // Figure 7(c): space amplification, balanced uniform workload.
  std::printf("\n== Fig 7(c): space amplification (balanced, uniform) ==\n");
  std::printf("%-18s %10s\n", "method", "space-amp");
  for (const auto& r : balanced_uniform) {
    if (r.ok) std::printf("%-18s %10.3f\n", r.label.c_str(), r.space_amp);
  }
  PrintRanking("rank space-amp", balanced_uniform, SpaceAmp, false);

  return 0;
}
