// Figure 10(b–e) reproduction: embedding Vertiorizon's horizontal-tiering
// part into lazy-leveling (Dostoevsky).
//   (b) small cache, static filters:      lazy (L) vs embedded (E)
//   (c) small cache, adapted filters:     Monkey for L, dynamic layout for E
//   (d) large cache, static filters
//   (e) large cache, adapted filters
// Bars: per-op lookup and update latency; the embedding should cut lookup
// latency without hurting updates.
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

int main() {
  const uint64_t kKeys = 20000;

  std::printf("Figure 10(b-e): lazy-leveling (L) vs lazy-leveling embedded "
              "with Vertiorizon (E)\n");

  struct Case {
    const char* name;
    size_t cache;
    bool adapted_filter;
  };
  const Case cases[] = {
      {"(b) small cache, static filter", 256 << 10, false},
      {"(c) small cache, adapted filter", 256 << 10, true},
      {"(d) large cache, static filter", 128 << 20, false},
      {"(e) large cache, adapted filter", 128 << 20, true},
  };

  for (const auto& c : cases) {
    std::printf("\n== Fig 10%s ==\n", c.name);
    std::printf("%-10s %-8s %12s %12s %12s\n", "T", "design", "lookup-cost",
                "update-cost", "total");
    for (double T : {4.0, 6.0, 8.0, 10.0}) {
      for (bool embed : {false, true}) {
        ExperimentConfig config;
        config.label = embed ? "E" : "L";
        config.policy = GrowthPolicyConfig::LazyLeveling(T, 4, embed);
        config.keys.num_keys = kKeys;
        config.keys.key_size = 128;
        config.keys.value_size = 896;
        config.mix = workload::BalancedMix();
        config.preload_entries = kKeys;
        config.num_ops = 20000;
        config.block_cache_bytes = c.cache;
        if (c.adapted_filter) {
          // The paper pairs lazy-leveling with the Monkey layout and the
          // embedded design with this paper's dynamic layout (§5.4).
          config.filter_layout =
              embed ? FilterLayout::kDynamic : FilterLayout::kMonkey;
        }
        auto r = RunExperiment(config);
        if (!r.ok) {
          std::printf("T=%-8.0f %-8s FAILED: %s\n", T, config.label.c_str(),
                      r.error.c_str());
          continue;
        }
        std::printf("T=%-8.0f %-8s %12.3f %12.3f %12.3f\n", T,
                    embed ? "E(+VRN)" : "L(lazy)", r.lookup_cost,
                    r.update_cost, r.lookup_cost + r.update_cost);
      }
    }
  }
  return 0;
}
