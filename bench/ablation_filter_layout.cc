// §5.4 ablation: Bloom filter layouts under full-compaction oscillation.
// The Monkey layout assumes every level sits at capacity; full compactions
// (the horizontal part of Vertiorizon, lazy-leveling's upper levels)
// repeatedly empty levels, so Monkey misallocates. The paper's dynamic
// layout re-optimizes from expected occupancy at each rebuild.
//
// Read-heavy workload; lower lookup cost = better layout.
#include <cstdio>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

int main() {
  const uint64_t kKeys = 20000;

  std::printf("Filter layout ablation (read-heavy, 5 bits/key budget)\n\n");
  std::printf("%-24s %-9s %12s %12s %12s\n", "engine", "layout",
              "lookup-cost", "read-amp", "avg-tput");

  struct EngineCase {
    const char* name;
    GrowthPolicyConfig policy;
  };
  const EngineCase engines[] = {
      {"Vertiorizon", GrowthPolicyConfig::Vertiorizon(6.0)},
      {"Lazy-Level+VRN", GrowthPolicyConfig::LazyLeveling(6.0, 4, true)},
      {"HR-Tier", GrowthPolicyConfig::HRTier(3, kKeys * 1024)},
  };
  const std::pair<const char*, FilterLayout> layouts[] = {
      {"static", FilterLayout::kStatic},
      {"monkey", FilterLayout::kMonkey},
      {"dynamic", FilterLayout::kDynamic},
  };

  for (const auto& e : engines) {
    for (const auto& [lname, layout] : layouts) {
      ExperimentConfig config;
      config.label = lname;
      config.policy = e.policy;
      config.keys.num_keys = kKeys;
      config.keys.key_size = 128;
      config.keys.value_size = 896;
      config.mix = workload::ReadHeavyMix();
      config.preload_entries = kKeys;
      config.num_ops = 20000;
      config.filter_layout = layout;
      auto r = RunExperiment(config);
      if (!r.ok) {
        std::printf("%-24s %-9s FAILED: %s\n", e.name, lname,
                    r.error.c_str());
        continue;
      }
      std::printf("%-24s %-9s %12.4f %12.3f %12.4f\n", e.name, lname,
                  r.lookup_cost, r.read_amp, r.avg_throughput);
    }
  }
  std::printf("\nExpectation (§5.4): dynamic ≤ monkey ≤ static lookup cost "
              "for designs whose levels oscillate between empty and full.\n");
  return 0;
}
