// Ablation: range-sharded frontend — shard count × writer threads × growth
// policy (DESIGN.md §3).
//
// Wall-clock put throughput under concurrent writers against a ShardedDB.
// One shard is the PR-4 engine (single write queue, single WAL, single
// version mutex); more shards split the key space into independent engines
// behind one thread pool, one unified backpressure view, and one global
// sequence allocator — so the interesting column is throughput scaling as
// shards are added at a fixed writer count. The balance column (min/max
// per-shard puts) confirms the uniform workload actually spreads across
// the explicit split points.
//
// Runs on the real filesystem by default; --mem switches to the in-memory
// env. --smoke shrinks the sweep to a CI-friendly run; --json PATH emits
// the rows for the nightly BENCH trajectory (BENCH_shard.json).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

constexpr uint64_t kKeySpace = 50000;

struct BenchConfig {
  bool smoke = false;
  bool use_mem_env = false;
  std::string json_path;
};

struct PolicyVariant {
  const char* name;
  GrowthPolicyConfig config;
};

struct RunResult {
  double kops_per_sec = 0;
  double wall_seconds = 0;
  uint64_t min_shard_puts = 0;
  uint64_t max_shard_puts = 0;
  uint64_t stall_ms = 0;
  uint64_t bg_flushes = 0;
  uint64_t bg_compactions = 0;
  // Fleet-wide Put percentiles (microseconds): the per-shard latency
  // histograms merged exactly, so the tail covers every shard.
  double lat_p50_us = 0;
  double lat_p99_us = 0;
  double lat_p999_us = 0;
  // Fleet-wide amplification (merged per-shard talus.amp snapshots).
  double write_amp = 0;
  double read_amp = 0;
  double space_amp = 0;
};

uint64_t OpsPerThread(const BenchConfig& cfg) {
  return cfg.smoke ? 4000 : 30000;
}

std::string RunPath(const BenchConfig& cfg, int run_index) {
  if (cfg.use_mem_env) return "/db";
  return "/tmp/talus_bench_sharding_" +
         std::to_string(static_cast<unsigned>(::getpid())) + "_" +
         std::to_string(run_index);
}

void CleanupTree(Env* env, const std::string& path) {
  std::vector<std::string> children;
  if (!env->GetChildren(path, &children).ok()) return;
  for (const auto& name : children) {
    const std::string child = path + "/" + name;
    if (env->RemoveFile(child).ok()) continue;
    CleanupTree(env, child);  // shard-<i> subdirectory.
  }
}

RunResult RunOne(const BenchConfig& cfg, const PolicyVariant& policy,
                 int shards, int writers, int run_index) {
  std::unique_ptr<Env> owned_env;
  Env* env;
  if (cfg.use_mem_env) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    env = Env::Default();
  }

  DbOptions opts;
  opts.env = env;
  opts.path = RunPath(cfg, run_index);
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = 4 << 20;
  opts.policy = policy.config;
  opts.execution_mode = ExecutionMode::kBackground;
  // Fixed background resources across shard counts: the ablation isolates
  // the write-path serialization, not extra flush parallelism.
  opts.num_background_threads = 4;
  opts.shard_count = shards;
  for (int i = 1; i < shards; i++) {
    opts.shard_split_points.push_back(
        workload::FormatKey(kKeySpace * i / shards, 16));
  }

  std::unique_ptr<shard::ShardedDB> db;
  Status s = shard::ShardedDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  const uint64_t ops = OpsPerThread(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; w++) {
    threads.emplace_back([&db, w, ops] {
      Random rnd(9200 + w);
      const std::string value(100, 's');
      for (uint64_t i = 0; i < ops; i++) {
        std::string key = workload::FormatKey(rnd.Uniform(kKeySpace), 16);
        db->Put(key, value);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  r.kops_per_sec = static_cast<double>(ops) * writers / r.wall_seconds / 1000;
  r.min_shard_puts = ~uint64_t{0};
  for (size_t i = 0; i < db->shard_count(); i++) {
    const uint64_t puts = db->shard(i)->stats().puts;
    r.min_shard_puts = std::min(r.min_shard_puts, puts);
    r.max_shard_puts = std::max(r.max_shard_puts, puts);
  }
  const EngineStats agg = db->AggregatedStats();
  r.stall_ms = agg.stall_micros / 1000;
  r.bg_flushes = agg.bg_flushes;
  r.bg_compactions = agg.bg_compactions;
  {
    const std::vector<Histogram> lat = db->GetLatencyHistograms();
    const Histogram& put = lat[static_cast<size_t>(obs::OpType::kPut)];
    r.lat_p50_us = put.Median();
    r.lat_p99_us = put.Percentile(99);
    r.lat_p999_us = put.Percentile(99.9);
  }
  const obs::AmpSnapshot amp = db->AggregatedAmpSnapshot();
  r.write_amp = amp.WriteAmp();
  r.read_amp = amp.ReadAmp();
  r.space_amp = amp.SpaceAmp();
  const std::string path = opts.path;
  db.reset();
  if (!cfg.use_mem_env) CleanupTree(env, path);
  return r;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--mem") == 0) {
      cfg.use_mem_env = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--mem] [--json PATH]\n",
                   argv[0]);
      return 1;
    }
  }

  const std::vector<PolicyVariant> policies =
      cfg.smoke
          ? std::vector<PolicyVariant>{{"vertical",
                                        GrowthPolicyConfig::VTLevelFull(3)}}
          : std::vector<PolicyVariant>{
                {"vertical", GrowthPolicyConfig::VTLevelFull(3)},
                {"lazy", GrowthPolicyConfig::LazyLeveling(3)}};
  const std::vector<int> shard_counts =
      cfg.smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
  const std::vector<int> thread_counts =
      cfg.smoke ? std::vector<int>{8} : std::vector<int>{1, 4, 8};

  std::printf("# Sharding ablation: %llu puts/thread, 100B values, "
              "background mode, 4 bg threads, %s env, %u cores\n",
              static_cast<unsigned long long>(OpsPerThread(cfg)),
              cfg.use_mem_env ? "mem" : "posix",
              std::thread::hardware_concurrency());
  std::printf("%-10s %7s %8s %9s %8s %10s %10s %9s %8s %8s %8s\n", "policy",
              "shards", "writers", "kops/s", "wall_s", "min_puts", "max_puts",
              "stall_ms", "bg_fl", "bg_comp", "p99_us");

  std::string json = "{\"bench\":\"ablation_sharding\",\"smoke\":" +
                     std::string(cfg.smoke ? "true" : "false") +
                     ",\"rows\":[\n";
  bool first_row = true;
  int run_index = 0;
  for (const auto& policy : policies) {
    for (int shards : shard_counts) {
      for (int writers : thread_counts) {
        RunResult r = RunOne(cfg, policy, shards, writers, run_index++);
        std::printf(
            "%-10s %7d %8d %9.1f %8.2f %10llu %10llu %9llu %8llu %8llu "
            "%8.0f\n",
            policy.name, shards, writers, r.kops_per_sec, r.wall_seconds,
            static_cast<unsigned long long>(r.min_shard_puts),
            static_cast<unsigned long long>(r.max_shard_puts),
            static_cast<unsigned long long>(r.stall_ms),
            static_cast<unsigned long long>(r.bg_flushes),
            static_cast<unsigned long long>(r.bg_compactions),
            r.lat_p99_us);
        char row[640];
        std::snprintf(
            row, sizeof(row),
            "%s{\"policy\":\"%s\",\"shards\":%d,\"writers\":%d,"
            "\"kops_per_sec\":%.1f,\"wall_seconds\":%.3f,"
            "\"min_shard_puts\":%llu,\"max_shard_puts\":%llu,"
            "\"stall_ms\":%llu,\"bg_flushes\":%llu,\"bg_compactions\":%llu,"
            "\"lat_p50_us\":%.1f,\"lat_p99_us\":%.1f,\"lat_p999_us\":%.1f,"
            "\"write_amp\":%.3f,\"read_amp\":%.3f,\"space_amp\":%.3f}",
            first_row ? "" : ",\n", policy.name, shards, writers,
            r.kops_per_sec, r.wall_seconds,
            static_cast<unsigned long long>(r.min_shard_puts),
            static_cast<unsigned long long>(r.max_shard_puts),
            static_cast<unsigned long long>(r.stall_ms),
            static_cast<unsigned long long>(r.bg_flushes),
            static_cast<unsigned long long>(r.bg_compactions),
            r.lat_p50_us, r.lat_p99_us, r.lat_p999_us, r.write_amp,
            r.read_amp, r.space_amp);
        json += row;
        first_row = false;
      }
      std::printf("\n");
    }
  }
  json += "\n]}\n";

  if (!cfg.json_path.empty()) {
    std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}
