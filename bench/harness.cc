#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "metrics/throughput.h"
#include "util/random.h"

namespace talus {
namespace bench {

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.label = config.label;

  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/bench";
  opts.write_buffer_size = config.write_buffer_size;
  opts.target_file_size = config.target_file_size;
  opts.block_cache_bytes = config.block_cache_bytes;
  opts.bloom_bits_per_key = config.bloom_bits_per_key;
  opts.filter_layout = config.filter_layout;
  opts.policy = config.policy;
  // Cost-model page size in entries for the self-tuner.
  opts.policy.page_entries = std::max(
      1.0, static_cast<double>(opts.block_size) /
               static_cast<double>(config.keys.key_size +
                                   config.keys.value_size));

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    result.error = s.ToString();
    return result;
  }

  // ---- Load phase: every key once, in shuffled order. ----
  {
    std::vector<uint64_t> order(config.keys.num_keys);
    std::iota(order.begin(), order.end(), 0);
    Random shuffle_rnd(config.seed ^ 0x5eed);
    for (size_t i = order.size(); i > 1; i--) {
      std::swap(order[i - 1], order[shuffle_rnd.Uniform(i)]);
    }
    const uint64_t limit =
        std::min<uint64_t>(config.preload_entries, order.size());
    for (uint64_t i = 0; i < limit; i++) {
      s = db->Put(workload::FormatKey(order[i], config.keys.key_size),
                  workload::MakeValue(order[i], 0, config.keys.value_size));
      if (!s.ok()) {
        result.error = "load: " + s.ToString();
        return result;
      }
    }
  }

  // ---- Measured run phase. ----
  IoStats* io = env->io_stats();
  io->Reset();
  io->ResetPeak();
  const EngineStats before = db->stats();

  metrics::ThroughputMeter meter(config.worst_case_window);
  workload::OpStream stream(config.keys, config.mix, config.seed);
  double update_clock = 0, lookup_clock = 0, range_clock = 0;
  uint64_t updates = 0, lookups = 0, ranges = 0;

  for (uint64_t i = 0; i < config.num_ops; i++) {
    const workload::Op op = stream.Next();
    const std::string key =
        workload::FormatKey(op.key_index, config.keys.key_size);
    const double t0 = io->clock();
    switch (op.type) {
      case workload::OpType::kUpdate: {
        s = db->Put(key, workload::MakeValue(op.key_index, i + 1,
                                             config.keys.value_size));
        update_clock += io->clock() - t0;
        updates++;
        break;
      }
      case workload::OpType::kPointLookup: {
        std::string value;
        Status gs = db->Get(key, &value);
        if (!gs.ok() && !gs.IsNotFound()) s = gs;
        lookup_clock += io->clock() - t0;
        lookups++;
        break;
      }
      case workload::OpType::kRangeLookup: {
        std::vector<std::pair<std::string, std::string>> out;
        s = db->Scan(key, config.scan_length, &out);
        range_clock += io->clock() - t0;
        ranges++;
        break;
      }
    }
    if (!s.ok()) {
      result.error = "run: " + s.ToString();
      return result;
    }
    meter.RecordOp(io->clock());
  }

  // ---- Metrics. ----
  result.avg_throughput =
      static_cast<double>(config.num_ops) / std::max(1e-9, io->clock());
  result.worst_throughput = meter.WorstCaseThroughput();

  const double unique_bytes =
      static_cast<double>(config.keys.num_keys) *
      static_cast<double>(config.keys.key_size + config.keys.value_size);
  result.space_amp =
      (static_cast<double>(io->peak_storage_bytes()) - unique_bytes) /
      unique_bytes;
  if (result.space_amp < 0) result.space_amp = 0;

  const EngineStats& stats = db->stats();
  const uint64_t payload =
      stats.user_payload_written - before.user_payload_written;
  const uint64_t physical = (stats.flush_bytes_written +
                             stats.compaction_bytes_written) -
                            (before.flush_bytes_written +
                             before.compaction_bytes_written);
  result.write_amp =
      payload > 0 ? static_cast<double>(physical) / payload : 0;
  const uint64_t gets = stats.gets - before.gets;
  const uint64_t probed = stats.runs_probed - before.runs_probed;
  result.read_amp = gets > 0 ? static_cast<double>(probed) / gets : 0;
  result.update_cost = updates > 0 ? update_clock / updates : 0;
  result.lookup_cost = lookups > 0 ? lookup_clock / lookups : 0;
  result.range_cost = ranges > 0 ? range_clock / ranges : 0;
  result.flushes = stats.flushes - before.flushes;
  result.compactions = stats.compactions - before.compactions;
  result.max_stall = stats.max_stall_clock;
  // Wall-clock tail latency from the engine recorder. The preload phase is
  // included in the put histogram; with preload ≈ num_ops the mixture still
  // tracks steady-state behaviour, and the p99/p999 tail is dominated by
  // stalls either way.
  {
    const std::vector<Histogram> lat = db->GetLatencyHistograms();
    const auto& put = lat[static_cast<size_t>(obs::OpType::kPut)];
    const auto& get = lat[static_cast<size_t>(obs::OpType::kGet)];
    result.put_p50_us = put.Median();
    result.put_p99_us = put.Percentile(99);
    result.put_p999_us = put.Percentile(99.9);
    result.get_p50_us = get.Median();
    result.get_p99_us = get.Percentile(99);
    result.get_p999_us = get.Percentile(99.9);
  }
  result.ok = true;
  return result;
}

void PrintResultTable(const std::string& title,
                      const std::vector<ExperimentResult>& results,
                      bool normalize) {
  double best_avg = 0, best_worst = 0;
  for (const auto& r : results) {
    best_avg = std::max(best_avg, r.avg_throughput);
    best_worst = std::max(best_worst, r.worst_throughput);
  }
  if (!normalize || best_avg <= 0) best_avg = 1;
  if (!normalize || best_worst <= 0) best_worst = 1;

  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-18s %10s %10s %9s %9s %9s %8s %7s\n", "method",
              normalize ? "avg(norm)" : "avg-tput",
              normalize ? "worst(nm)" : "worst-tput", "space-amp",
              "write-amp", "read-amp", "flushes", "compact");
  for (const auto& r : results) {
    if (!r.ok) {
      std::printf("%-18s FAILED: %s\n", r.label.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-18s %10.3f %10.3f %9.3f %9.2f %9.3f %8llu %7llu\n",
                r.label.c_str(), r.avg_throughput / best_avg,
                r.worst_throughput / best_worst, r.space_amp, r.write_amp,
                r.read_amp, static_cast<unsigned long long>(r.flushes),
                static_cast<unsigned long long>(r.compactions));
  }
}

void PrintRanking(const std::string& title,
                  const std::vector<ExperimentResult>& results,
                  double (*get)(const ExperimentResult&),
                  bool higher_is_better) {
  std::vector<size_t> idx;
  for (size_t i = 0; i < results.size(); i++) {
    if (results[i].ok) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    const double va = get(results[a]);
    const double vb = get(results[b]);
    return higher_is_better ? va > vb : va < vb;
  });
  std::printf("%-28s:", title.c_str());
  for (size_t rank = 0; rank < idx.size(); rank++) {
    std::printf(" %s(%zu)", results[idx[rank]].label.c_str(), rank + 1);
  }
  std::printf("\n");
}

std::vector<std::pair<std::string, GrowthPolicyConfig>> PaperMethodRoster(
    double T, uint64_t total_data_bytes, const workload::OpMix& mix) {
  WorkloadMix wm;
  wm.updates = mix.updates;
  wm.point_lookups = mix.point_lookups;
  wm.range_lookups = mix.range_lookups;
  return {
      {"VT-Level-Part", GrowthPolicyConfig::VTLevelPart(T)},
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(T)},
      {"VT-Tier-Part", GrowthPolicyConfig::VTTierPart(T)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(T)},
      {"Universal", GrowthPolicyConfig::Universal()},
      {"RocksDB-Tuned", GrowthPolicyConfig::RocksDBTuned()},
      {"HR-Level", GrowthPolicyConfig::HRLevel(3)},
      {"HR-Tier", GrowthPolicyConfig::HRTier(3, total_data_bytes)},
      {"VRN-Level", GrowthPolicyConfig::VRNLevel(T)},
      {"VRN-Tier", GrowthPolicyConfig::VRNTier(T)},
      {"Vertiorizon", GrowthPolicyConfig::Vertiorizon(T, wm)},
  };
}

}  // namespace bench
}  // namespace talus
