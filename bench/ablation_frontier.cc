// Model-space frontier behind Figure 10(a): the analytical read–write
// trade-off curves of the vertical scheme (sweeping T) versus the
// horizontal scheme (sweeping ℓ, leveling + the paper's tiering extension).
// The Bentley–Saxe/Theorem-4.2 claim in model space: the horizontal curve
// dominates (sits under) the vertical curve.
#include <cstdio>

#include "filter/bloom.h"
#include "tuning/cost_model.h"
#include "tuning/vertical_cost_model.h"

using namespace talus;
using namespace talus::tuning;

int main() {
  const double f = BloomFalsePositiveRate(5.0);
  const double P = 4.0;
  const uint64_t n = 1024;  // Data volume in buffers.

  std::printf("Analytical read-write frontier (N/B = %llu buffers, f = "
              "%.3f, P = %.0f)\n\n",
              static_cast<unsigned long long>(n), f, P);

  std::printf("-- Vertical scheme (levels from data volume; sweep T) --\n");
  std::printf("%-22s %12s %12s\n", "design", "R (lookup)", "W (update)");
  for (double T : {2.0, 4.0, 6.0, 8.0, 10.0, 16.0}) {
    VerticalCostModel m;
    m.size_ratio = T;
    m.bloom_fpr = f;
    m.page_entries = P;
    m.data_buffers = n;
    std::printf("VT-Level T=%-11.0f %12.4f %12.4f\n", T,
                m.PointLookupCost(HorizontalMerge::kLeveling),
                m.UpdateCost(HorizontalMerge::kLeveling));
    std::printf("VT-Tier  T=%-11.0f %12.4f %12.4f\n", T,
                m.PointLookupCost(HorizontalMerge::kTiering),
                m.UpdateCost(HorizontalMerge::kTiering));
  }

  std::printf("\n-- Horizontal scheme (fixed data; sweep l) --\n");
  std::printf("%-22s %12s %12s\n", "design", "R (lookup)", "W (update)");
  HorizontalCostModel h;
  h.capacity_buffers = n;
  h.bloom_fpr = f;
  h.page_entries = P;
  for (int l : {2, 3, 4, 5, 6, 8, 10}) {
    std::printf("HR-Level l=%-11d %12.4f %12.4f\n", l,
                h.PointLookupCost(HorizontalMerge::kLeveling, l),
                h.UpdateCost(HorizontalMerge::kLeveling, l));
  }
  for (int l : {2, 3, 4, 5, 6, 8, 10}) {
    std::printf("HR-Tier  l=%-11d %12.4f %12.4f\n", l,
                h.PointLookupCost(HorizontalMerge::kTiering, l),
                h.UpdateCost(HorizontalMerge::kTiering, l));
  }

  std::printf("\n-- Dominance check: best W at matched R budget --\n");
  std::printf("%12s %14s %14s %9s\n", "R budget", "vertical W*",
              "horizontal W*", "HR wins");
  for (double budget : {0.2, 0.4, 0.6, 1.0, 1.5, 2.5, 4.0}) {
    double best_v = -1, best_h = -1;
    for (double T : {2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 16.0, 32.0}) {
      VerticalCostModel m;
      m.size_ratio = T;
      m.bloom_fpr = f;
      m.page_entries = P;
      m.data_buffers = n;
      for (auto merge :
           {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
        if (m.PointLookupCost(merge) <= budget) {
          const double w = m.UpdateCost(merge);
          if (best_v < 0 || w < best_v) best_v = w;
        }
      }
    }
    for (int l = 2; l <= 64; l++) {
      for (auto merge :
           {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
        if (h.PointLookupCost(merge, l) <= budget) {
          const double w = h.UpdateCost(merge, l);
          if (best_h < 0 || w < best_h) best_h = w;
        }
      }
    }
    std::printf("%12.2f %14.4f %14.4f %9s\n", budget, best_v, best_h,
                (best_h >= 0 && (best_v < 0 || best_h <= best_v + 1e-9))
                    ? "yes"
                    : "NO");
  }
  return 0;
}
