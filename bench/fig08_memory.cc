// Figure 8 + Table 3 reproduction: sensitivity to Bloom-filter budget and
// block-cache size.
//   (a) 20 bits per key, small cache      — 4 workload mixes
//   (b) large cache (everything cached)   — 4 workload mixes
//   (c) 20 BPK + large cache              — 4 workload mixes
//   (d) BPK sweep 4→20, balanced uniform
//   (e) cache sweep, balanced uniform
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

namespace {

double AvgTput(const ExperimentResult& r) { return r.avg_throughput; }
double WorstTput(const ExperimentResult& r) { return r.worst_throughput; }

std::vector<std::pair<std::string, GrowthPolicyConfig>> Fig8Roster(
    double T, uint64_t data_bytes) {
  return {
      {"VT-Level-Part", GrowthPolicyConfig::VTLevelPart(T)},
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(T)},
      {"VT-Tier-Part", GrowthPolicyConfig::VTTierPart(T)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(T)},
      {"HR-Level", GrowthPolicyConfig::HRLevel(3)},
      {"HR-Tier", GrowthPolicyConfig::HRTier(3, data_bytes)},
      {"Vertiorizon", GrowthPolicyConfig::Vertiorizon(T)},
  };
}

}  // namespace

int main() {
  const double T = 6.0;
  const uint64_t kKeys = 20000;
  const uint64_t kDataBytes = kKeys * 1024;
  const size_t kSmallCache = 256 << 10;
  const size_t kLargeCache = 128 << 20;  // Everything fits: 64GB-equivalent.

  struct MixCase {
    const char* name;
    workload::OpMix mix;
  };
  const std::vector<MixCase> mixes = {
      {"Read-heavy", workload::ReadHeavyMix()},
      {"Balanced", workload::BalancedMix()},
      {"Write-heavy", workload::WriteHeavyMix()},
      {"Range-scan", workload::RangeScanMix()},
  };

  auto run_case = [&](const std::string& title, double bpk, size_t cache,
                      const workload::OpMix& mix) {
    std::vector<ExperimentResult> results;
    for (const auto& [label, policy] : Fig8Roster(T, kDataBytes)) {
      ExperimentConfig config;
      config.label = label;
      config.policy = policy;
      // Feed the actual filter budget to the self-tuner's cost model.
      if (policy.scheme == GrowthScheme::kVertiorizon) {
        config.policy.expected_mix.updates = mix.updates;
        config.policy.expected_mix.point_lookups = mix.point_lookups;
        config.policy.expected_mix.range_lookups = mix.range_lookups;
      }
      config.keys.num_keys = kKeys;
      config.keys.key_size = 128;
      config.keys.value_size = 896;
      config.mix = mix;
      config.preload_entries = kKeys;
      config.num_ops = 20000;
      config.bloom_bits_per_key = bpk;
      config.block_cache_bytes = cache;
      results.push_back(RunExperiment(config));
    }
    PrintResultTable(title, results);
    PrintRanking("  rank avg", results, AvgTput, true);
    PrintRanking("  rank worst", results, WorstTput, true);
  };

  std::printf("Figure 8: Bloom filter and block cache sensitivity\n");

  for (const auto& mc : mixes) {
    run_case(std::string("Fig 8(a) 20 BPK / small cache / ") + mc.name, 20.0,
             kSmallCache, mc.mix);
  }
  for (const auto& mc : mixes) {
    run_case(std::string("Fig 8(b) 5 BPK / large cache / ") + mc.name, 5.0,
             kLargeCache, mc.mix);
  }
  for (const auto& mc : mixes) {
    run_case(std::string("Fig 8(c) 20 BPK / large cache / ") + mc.name, 20.0,
             kLargeCache, mc.mix);
  }

  std::printf("\n-- Fig 8(d): bits-per-key sweep (balanced, uniform, small "
              "cache) --\n");
  for (double bpk : {4.0, 8.0, 12.0, 16.0, 20.0}) {
    run_case("Fig 8(d) BPK=" + std::to_string(static_cast<int>(bpk)), bpk,
             kSmallCache, workload::BalancedMix());
  }

  std::printf("\n-- Fig 8(e): block cache sweep (balanced, uniform, 5 BPK) "
              "--\n");
  for (size_t cache : {size_t{64} << 10, size_t{256} << 10, size_t{1} << 20,
                       size_t{4} << 20, size_t{16} << 20, size_t{128} << 20}) {
    run_case("Fig 8(e) cache=" + std::to_string(cache >> 10) + "KB", 5.0,
             cache, workload::BalancedMix());
  }
  return 0;
}
