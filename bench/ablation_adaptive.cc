// Ablation: adaptive per-shard growth-policy tuning (DESIGN.md §9).
//
// Two shards, two phases. In phase 0 the low half of the key space is
// write-heavy while the high half is read-heavy; in phase 1 the mix FLIPS
// per shard. A static policy is therefore right for one phase and wrong
// for the other on each shard; the adaptive tuner senses the measured mix
// each window and switches the drifting shard's policy at runtime
// (leveling for the read-heavy phase, tiering for the write-heavy one)
// while the other shard holds — so the interesting rows are the per-phase
// kops/p99/amp of {static-leveled, static-tiered, adaptive}, where
// adaptive should track whichever static variant is best for that phase.
//
// The driver paces the tuner deterministically: tune_interval_ms stays 0
// and ShardedDB::TuneNow() runs every `tune_every` operations, so runs are
// reproducible and CI-comparable. Each phase's kops is measured over its
// steady-state window (the first quarter is the adaptation budget — see
// RunPhase). --check additionally enforces the paper's claim (nightly
// gate): steady-state adaptive kops >= (1 - slack) x the best static
// variant in BOTH phases.
//
// --smoke shrinks the sweep to a CI-friendly run; --json PATH emits the
// rows for compare_bench.py (BENCH_adaptive.json). Rows carry `tuner` and
// `phase` columns — compare_bench identity includes them so static and
// adaptive rows never collapse into one series.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

constexpr uint64_t kKeySpace = 40000;  // Split in half across 2 shards.
constexpr int kShards = 2;

struct BenchConfig {
  bool smoke = false;
  bool use_mem_env = false;
  bool check = false;
  // The paper's claim is 10%; smoke runs are too short/noisy for that, so
  // main() widens the band to 25% when --smoke is set.
  double check_slack = 0.10;
  std::string json_path;
  std::string trace_prefix;  // --trace P: per-variant JSONL at P.<i>.jsonl
};

struct Variant {
  const char* tuner;  // "static-leveled" | "static-tiered" | "adaptive"
  bool adaptive;
  GrowthPolicyConfig start;
};

struct PhaseResult {
  double kops_per_sec = 0;
  double wall_seconds = 0;
  double get_p99_us = 0;
  double write_amp = 0;
  double read_amp = 0;
  uint64_t retunes = 0;
  uint64_t switches = 0;
  std::string designs;  // per-shard labels after the phase, "a|b"
};

uint64_t PhaseOps(const BenchConfig& cfg) {
  // Smoke's timed window is (ops - ops/4); much below ~36k timed ops the
  // per-phase wall time drops under ~0.3s and scheduler noise swamps the
  // shape the ±25% normalized gate compares. CI also passes --mem for the
  // same reason.
  return cfg.smoke ? 48000 : 160000;
}

std::string RunPath(const BenchConfig& cfg, int run_index) {
  if (cfg.use_mem_env) return "/db";
  return "/tmp/talus_bench_adaptive_" +
         std::to_string(static_cast<unsigned>(::getpid())) + "_" +
         std::to_string(run_index);
}

void CleanupTree(Env* env, const std::string& path) {
  std::vector<std::string> children;
  if (!env->GetChildren(path, &children).ok()) return;
  for (const auto& name : children) {
    const std::string child = path + "/" + name;
    if (env->RemoveFile(child).ok()) continue;
    CleanupTree(env, child);  // shard-<i> subdirectory.
  }
}

// One phase: interleaved per-shard op streams with per-shard write
// fractions. write_frac[s] is the Put share of shard s's ops; the rest
// are Gets over that shard's half of the key space.
//
// The first quarter of each phase is an adaptation window: the tuner's
// windowed mix estimate still blends the previous phase, and the policy
// switch plus its catch-up compactions land inside it. That window is
// excluded from the timed region — the gated kops measure the steady state
// AFTER adaptation, which is the paper's claim (the adapted design tracks
// the best static one; the transition cost is real but bounded, and the
// JSONL trace + retune counters keep it observable). Static variants skip
// the identical prefix so the comparison stays apples-to-apples. Returns
// the steady-window wall seconds; the caller divides by ops - warmup_ops.
double RunPhase(shard::ShardedDB* db, uint64_t ops, uint64_t warmup_ops,
                const double write_frac[2], uint64_t tune_every,
                bool adaptive, Random* rnd) {
  const std::string value(100, 'a');
  std::string got;
  auto steady_start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; i++) {
    if (i == warmup_ops) steady_start = std::chrono::steady_clock::now();
    const int s = static_cast<int>(i & 1);  // Alternate shards evenly.
    const uint64_t base = s == 0 ? 0 : kKeySpace / 2;
    const std::string key =
        workload::FormatKey(base + rnd->Uniform(kKeySpace / 2), 16);
    if (rnd->Uniform(1000) < static_cast<uint32_t>(write_frac[s] * 1000)) {
      db->Put(key, value);
    } else {
      db->Get(key, &got);
    }
    if (adaptive && tune_every != 0 && (i + 1) % tune_every == 0) {
      db->TuneNow();
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             end - steady_start)
      .count();
}

void CollectPhase(shard::ShardedDB* db, const obs::AmpSnapshot& amp_before,
                  PhaseResult* r) {
  const obs::AmpSnapshot amp = db->AggregatedAmpSnapshot();
  // Per-phase amplification from the cumulative counter deltas.
  uint64_t written = 0, written_before = 0;
  for (int i = 0; i < amp.num_levels; i++) {
    written += amp.levels[i].flush_bytes_written +
               amp.levels[i].compaction_bytes_written;
  }
  for (int i = 0; i < amp_before.num_levels; i++) {
    written_before += amp_before.levels[i].flush_bytes_written +
                      amp_before.levels[i].compaction_bytes_written;
  }
  uint64_t probed = 0, probed_before = 0;
  for (int i = 0; i < amp.num_levels; i++) {
    probed += amp.levels[i].files_probed;
  }
  for (int i = 0; i < amp_before.num_levels; i++) {
    probed_before += amp_before.levels[i].files_probed;
  }
  const uint64_t payload =
      amp.user_payload_bytes - amp_before.user_payload_bytes;
  const uint64_t lookups = amp.lookups - amp_before.lookups;
  r->write_amp = payload == 0 ? 0
                              : static_cast<double>(written - written_before) /
                                    static_cast<double>(payload);
  r->read_amp = lookups == 0 ? 0
                             : static_cast<double>(probed - probed_before) /
                                   static_cast<double>(lookups);
  const std::vector<Histogram> lat = db->GetLatencyHistograms();
  r->get_p99_us = lat[static_cast<size_t>(obs::OpType::kGet)].Percentile(99);
  uint64_t retunes = 0, switches = 0;
  for (size_t i = 0; i < db->shard_count(); i++) {
    DB* sh = db->shard(i);
    if (sh->adaptive_tuner() != nullptr) {
      const tune::TunerStats ts = sh->adaptive_tuner()->GetStats();
      retunes += ts.retunes;
      switches += ts.switches_applied;
    }
    if (!r->designs.empty()) r->designs += "|";
    r->designs += sh->CurrentPolicyConfig().Label();
  }
  r->retunes = retunes;
  r->switches = switches;
}

std::vector<PhaseResult> RunOne(const BenchConfig& cfg, const Variant& v,
                                int run_index) {
  std::unique_ptr<Env> owned_env;
  Env* env;
  if (cfg.use_mem_env) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    env = Env::Default();
  }

  DbOptions opts;
  opts.env = env;
  opts.path = RunPath(cfg, run_index);
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  // Small enough that the read-heavy shard's working set does not fit:
  // lookups pay real block loads, so read amplification (the thing
  // leveling buys down) shows up in wall-clock, not just in counters.
  opts.block_cache_bytes = 1 << 20;
  opts.policy = v.start;
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 4;
  opts.enable_amp_stats = true;  // The tuner's sensing substrate.
  opts.shard_count = kShards;
  opts.shard_split_points.push_back(workload::FormatKey(kKeySpace / 2, 16));
  opts.adaptive_tuning = v.adaptive;
  opts.tune_interval_ms = 0;  // Driver-paced: TuneNow() below.
  opts.tune_min_window_ops = 512;
  if (!cfg.trace_prefix.empty()) {
    opts.trace_file_path =
        cfg.trace_prefix + "." + std::to_string(run_index) + ".jsonl";
  }

  std::unique_ptr<shard::ShardedDB> db;
  Status s = shard::ShardedDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  // Preload: two full passes over the key space, so phase 0 starts on an
  // AGED tree — every key present, update depth, several populated levels.
  // On a freshly-seeded shallow tree read amplification is ~1 and tiering
  // dominates every mix, which would make the phase-0 comparison
  // uninformative; the paper's trade-off only exists once reads cost
  // something.
  {
    for (int pass = 0; pass < 2; pass++) {
      const std::string value(100, static_cast<char>('a' + pass));
      for (uint64_t k = 0; k < kKeySpace; k++) {
        db->Put(workload::FormatKey(k, 16), value);
      }
    }
    db->FlushMemTable();
    // Drain the preload from the tuner's sensing window so phase 0 starts
    // from a clean mix estimate. The first tick navigates on the preload's
    // pure-update mix (and may legitimately retune for the bulk load —
    // that is the tuner doing its job); the second sees an empty window
    // and holds, leaving phase-0 ticks to measure only phase-0 ops.
    // Without this the first phase-0 windows blend ~80k preload puts, the
    // read-heavy shard flaps tiered-then-back, and the double migration
    // churn dominates the phase.
    if (v.adaptive) {
      db->TuneNow();
      db->TuneNow();
    }
  }

  const uint64_t ops = PhaseOps(cfg);
  // Adaptation budget: the first quarter of each phase. The tick cadence
  // must give the tuner several non-thin windows inside that budget (a
  // retune needs a clean window plus the cooldown), so full runs tick
  // every ops/32 while smoke keeps 1500 ops/tick — any finer and the
  // 512-op per-shard window minimum turns every smoke tick into a
  // thin-window hold.
  const uint64_t warmup_ops = ops / 4;
  const uint64_t tune_every = std::max<uint64_t>(ops / 32, 1500);
  Random rnd(4200 + run_index);
  std::vector<PhaseResult> phases;
  for (int phase = 0; phase < 2; phase++) {
    // Phase 0: shard 0 write-heavy (90% puts), shard 1 read-heavy (10%).
    // Phase 1 flips both.
    const double write_frac[2] = {phase == 0 ? 0.9 : 0.1,
                                  phase == 0 ? 0.1 : 0.9};
    const obs::AmpSnapshot amp_before = db->AggregatedAmpSnapshot();
    PhaseResult r;
    r.wall_seconds = RunPhase(db.get(), ops, warmup_ops, write_frac,
                              tune_every, v.adaptive, &rnd);
    r.kops_per_sec =
        static_cast<double>(ops - warmup_ops) / r.wall_seconds / 1000;
    CollectPhase(db.get(), amp_before, &r);
    phases.push_back(std::move(r));
  }

  const std::string path = opts.path;
  db.reset();
  if (!cfg.use_mem_env) CleanupTree(env, path);
  return phases;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--mem") == 0) {
      cfg.use_mem_env = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      cfg.check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cfg.trace_prefix = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--mem] [--check] [--json PATH] "
                   "[--trace PREFIX]\n",
                   argv[0]);
      return 1;
    }
  }
  if (cfg.smoke) cfg.check_slack = 0.25;

  // The start policy is T=6 full vertical; adaptive starts leveled (the
  // WRONG shape for phase 0's write-heavy shard) so the ablation exercises
  // a real runtime switch, not a lucky initial guess.
  const std::vector<Variant> variants = {
      {"static-leveled", false, GrowthPolicyConfig::VTLevelFull(6)},
      {"static-tiered", false, GrowthPolicyConfig::VTTierFull(6)},
      {"adaptive", true, GrowthPolicyConfig::VTLevelFull(6)},
  };

  std::printf("# Adaptive-tuning ablation: %llu ops/phase (first quarter = "
              "untimed adaptation window), 2 shards, 2 flipped phases, "
              "100B values, %s env\n",
              static_cast<unsigned long long>(PhaseOps(cfg)),
              cfg.use_mem_env ? "mem" : "posix");
  std::printf("%-15s %6s %9s %8s %8s %9s %8s %9s  %s\n", "tuner", "phase",
              "kops/s", "get_p99", "w_amp", "r_amp", "retunes", "switches",
              "designs");

  std::string json = "{\"bench\":\"ablation_adaptive\",\"smoke\":" +
                     std::string(cfg.smoke ? "true" : "false") +
                     ",\"rows\":[\n";
  bool first_row = true;
  int run_index = 0;
  // kops[variant][phase] for the --check gate.
  std::vector<std::vector<double>> kops;
  for (const auto& v : variants) {
    const std::vector<PhaseResult> phases = RunOne(cfg, v, run_index++);
    kops.emplace_back();
    for (size_t p = 0; p < phases.size(); p++) {
      const PhaseResult& r = phases[p];
      kops.back().push_back(r.kops_per_sec);
      std::printf("%-15s %6zu %9.1f %8.0f %8.2f %9.2f %8llu %9llu  %s\n",
                  v.tuner, p, r.kops_per_sec, r.get_p99_us, r.write_amp,
                  r.read_amp, static_cast<unsigned long long>(r.retunes),
                  static_cast<unsigned long long>(r.switches),
                  r.designs.c_str());
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s{\"tuner\":\"%s\",\"phase\":%zu,\"policy\":\"%s\","
          "\"shards\":%d,\"writers\":1,\"kops_per_sec\":%.1f,"
          "\"wall_seconds\":%.3f,\"lat_p99_us\":%.1f,"
          "\"write_amp\":%.3f,\"read_amp\":%.3f,"
          "\"retunes\":%llu,\"switches\":%llu,\"final_designs\":\"%s\"}",
          first_row ? "" : ",\n", v.tuner, p, v.start.Label().c_str(),
          kShards, r.kops_per_sec, r.wall_seconds, r.get_p99_us, r.write_amp,
          r.read_amp, static_cast<unsigned long long>(r.retunes),
          static_cast<unsigned long long>(r.switches), r.designs.c_str());
      json += row;
      first_row = false;
    }
    std::printf("\n");
  }
  json += "\n]}\n";

  if (!cfg.json_path.empty()) {
    std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }

  if (cfg.check && kops.size() == 3) {
    // Adaptive must track the best static variant in BOTH phases.
    bool ok = true;
    for (size_t p = 0; p < 2; p++) {
      const double best = std::max(kops[0][p], kops[1][p]);
      const double floor = best * (1.0 - cfg.check_slack);
      if (kops[2][p] < floor) {
        std::fprintf(stderr,
                     "CHECK FAILED phase %zu: adaptive %.1f kops < %.1f "
                     "(best static %.1f, slack %.0f%%)\n",
                     p, kops[2][p], floor, best, cfg.check_slack * 100);
        ok = false;
      }
    }
    if (!ok) return 2;
    std::printf("check passed: adaptive within %.0f%% of best static in "
                "both phases\n",
                cfg.check_slack * 100);
  }
  return 0;
}
