// Ablation: execution mode × writer threads × growth policy.
//
// Unlike the paper-figure benches (virtual clock, deterministic), this one
// measures wall-clock throughput: N writer threads issue a mixed put/get/
// scan stream against one DB, inline vs background execution. The
// interesting columns are the throughput scaling as writers are added and
// the backpressure counters (switches, stalls, queue depth) that only the
// background mode produces.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct RunResult {
  double wall_seconds = 0;
  double kops_per_sec = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t switches = 0;
  uint64_t stall_ms = 0;
  uint64_t slowdowns = 0;
  uint64_t stops = 0;
};

// Reduced by --smoke for the CI bench-smoke job's <60 s sweep.
uint64_t g_ops_per_thread = 30000;
constexpr uint32_t kKeySpace = 20000;

void WorkerLoop(DB* db, int worker, uint64_t ops) {
  Random rnd(9000 + worker);
  for (uint64_t i = 0; i < ops; i++) {
    std::string key = workload::FormatKey(rnd.Uniform(kKeySpace), 16);
    const uint32_t action = rnd.Uniform(10);
    if (action < 8) {
      db->Put(key, "value-" + std::to_string(i));
    } else if (action < 9) {
      std::string value;
      db->Get(key, &value);
    } else {
      std::vector<std::pair<std::string, std::string>> out;
      db->Scan(key, 16, &out);
    }
  }
}

RunResult RunOne(ExecutionMode mode, int writers,
                 const GrowthPolicyConfig& policy) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 64 << 10;
  opts.target_file_size = 64 << 10;
  opts.block_size = 4096;
  opts.block_cache_bytes = 1 << 20;
  opts.policy = policy;
  opts.execution_mode = mode;
  opts.num_background_threads = 2;

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; w++) {
    threads.emplace_back(
        [&db, w] { WorkerLoop(db.get(), w, g_ops_per_thread); });
  }
  for (auto& t : threads) t.join();
  db->FlushMemTable();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  const double total_ops =
      static_cast<double>(g_ops_per_thread) * static_cast<double>(writers);
  r.kops_per_sec = total_ops / r.wall_seconds / 1000.0;
  const EngineStats& stats = db->stats();
  r.flushes = stats.flushes;
  r.compactions = stats.compactions;
  r.switches = stats.memtable_switches;
  r.stall_ms = stats.stall_micros / 1000;
  r.slowdowns = stats.stall_slowdowns;
  r.stops = stats.stall_stops;
  return r;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) g_ops_per_thread = 5000;

  struct NamedPolicy {
    const char* name;
    GrowthPolicyConfig config;
  };
  std::vector<NamedPolicy> policies = {
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(3)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(3)},
      {"Lazy-Level", GrowthPolicyConfig::LazyLeveling(3, 4, false)},
  };
  if (smoke) policies.resize(1);
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  std::printf(
      "# Concurrency ablation: %llu ops/thread, mixed 80/10/10 "
      "put/get/scan\n",
      static_cast<unsigned long long>(g_ops_per_thread));
  std::printf("%-14s %-11s %7s %9s %8s %8s %9s %9s %10s %7s\n", "policy",
              "mode", "writers", "kops/s", "wall_s", "flushes", "compacts",
              "switches", "slowdowns", "stops");

  for (const auto& p : policies) {
    for (int writers : thread_counts) {
      for (ExecutionMode mode :
           {ExecutionMode::kInline, ExecutionMode::kBackground}) {
        RunResult r = RunOne(mode, writers, p.config);
        std::printf("%-14s %-11s %7d %9.1f %8.2f %8llu %9llu %9llu %10llu "
                    "%7llu\n",
                    p.name,
                    mode == ExecutionMode::kInline ? "inline" : "background",
                    writers, r.kops_per_sec, r.wall_seconds,
                    static_cast<unsigned long long>(r.flushes),
                    static_cast<unsigned long long>(r.compactions),
                    static_cast<unsigned long long>(r.switches),
                    static_cast<unsigned long long>(r.slowdowns),
                    static_cast<unsigned long long>(r.stops));
      }
    }
    std::printf("\n");
  }
  return 0;
}
