// Ablation for Eq. 2 (§5.1): Vertiorizon's size-ratio optimization for the
// vertical part. With ratios (T', T²/T') the combined write amplification
// of the two vertical levels is T' + (T²/T' + 1)/2, minimized at
// T' = T/√2, giving √2·T + 1/2 versus the naive T + (T+1)/2.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

int main() {
  const uint64_t kKeys = 20000;

  std::printf("Eq. 2 ablation: vertical-part ratio T' = T/sqrt(2) vs T' = "
              "T\n\n");
  std::printf("Analytical WA of the two vertical levels:\n");
  std::printf("%6s %14s %14s %9s\n", "T", "naive T'=T", "opt T'=T/sqrt2",
              "gain");
  for (double T : {4.0, 6.0, 8.0, 10.0}) {
    const double naive = T + (T + 1.0) / 2.0;
    const double opt = std::sqrt(2.0) * T + 0.5;
    std::printf("%6.0f %14.2f %14.2f %8.1f%%\n", T, naive, opt,
                100.0 * (1.0 - opt / naive));
  }

  std::printf("\nMeasured (write-heavy workload, fixed-tiering Vertiorizon "
              "so only the vertical part varies):\n");
  std::printf("%6s %12s %12s %12s %12s\n", "T", "WA(naive)", "WA(opt)",
              "space(naive)", "space(opt)");
  for (double T : {4.0, 6.0, 8.0, 10.0}) {
    double wa[2] = {0, 0}, space[2] = {0, 0};
    for (int opt = 0; opt < 2; opt++) {
      ExperimentConfig config;
      config.label = opt ? "opt" : "naive";
      config.policy = GrowthPolicyConfig::VRNTier(T);
      config.policy.vrn_optimize_ratio = (opt == 1);
      config.keys.num_keys = kKeys;
      config.keys.key_size = 128;
      config.keys.value_size = 896;
      config.mix = workload::WriteHeavyMix();
      config.preload_entries = kKeys;
      config.num_ops = 20000;
      auto r = RunExperiment(config);
      wa[opt] = r.ok ? r.write_amp : -1;
      space[opt] = r.ok ? r.space_amp : -1;
    }
    std::printf("%6.0f %12.2f %12.2f %12.3f %12.3f\n", T, wa[0], wa[1],
                space[0], space[1]);
  }
  return 0;
}
