// Ablation for §5.2: the self-tuning navigator. For a grid of workload
// mixes, show the (merge policy, ℓ) the navigator picks from the cost
// model, then measure self-tuned Vertiorizon against the fixed designs —
// the self-tuned engine should track the best fixed design everywhere.
#include <cstdio>

#include "bench/harness.h"
#include "filter/bloom.h"
#include "tuning/cost_model.h"

using namespace talus;
using namespace talus::bench;

int main() {
  const uint64_t kKeys = 20000;
  const double T = 6.0;

  std::printf("Navigator decisions (n=16 buffers, f=%.3f, P=4):\n",
              BloomFalsePositiveRate(5.0));
  std::printf("%12s %12s | %-26s\n", "updates", "lookups", "choice");
  tuning::HorizontalCostModel model;
  model.capacity_buffers = 16;
  model.bloom_fpr = BloomFalsePositiveRate(5.0);
  model.page_entries = 4.0;
  for (double w : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    WorkloadMix mix;
    mix.updates = w;
    mix.point_lookups = 1.0 - w;
    mix.range_lookups = 0;
    const auto choice = tuning::Navigate(model, mix);
    std::printf("%12.2f %12.2f | %-26s\n", w, 1.0 - w,
                choice.ToString().c_str());
  }

  std::printf("\nMeasured: self-tuned Vertiorizon vs fixed designs "
              "(normalized avg throughput per mix):\n");
  std::printf("%-14s %12s %12s %12s\n", "mix(w/r)", "VRN-Level", "VRN-Tier",
              "Vertiorizon");
  for (double w : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    workload::OpMix mix;
    mix.updates = w;
    mix.point_lookups = 1.0 - w;
    mix.range_lookups = 0;

    double tputs[3] = {0, 0, 0};
    GrowthPolicyConfig configs[3] = {
        GrowthPolicyConfig::VRNLevel(T),
        GrowthPolicyConfig::VRNTier(T),
        GrowthPolicyConfig::Vertiorizon(T),
    };
    configs[2].expected_mix.updates = w;
    configs[2].expected_mix.point_lookups = 1.0 - w;
    configs[2].expected_mix.range_lookups = 0;
    for (int i = 0; i < 3; i++) {
      ExperimentConfig config;
      config.label = "cfg";
      config.policy = configs[i];
      config.keys.num_keys = kKeys;
      config.keys.key_size = 128;
      config.keys.value_size = 896;
      config.mix = mix;
      config.preload_entries = kKeys;
      config.num_ops = 20000;
      auto r = RunExperiment(config);
      tputs[i] = r.ok ? r.avg_throughput : 0;
    }
    const double best = std::max({tputs[0], tputs[1], tputs[2], 1e-12});
    std::printf("%4.1f/%-8.1f %12.3f %12.3f %12.3f\n", w, 1.0 - w,
                tputs[0] / best, tputs[1] / best, tputs[2] / best);
  }

  std::printf("\nSelf-designing check: Vertiorizon with live mix "
              "measurement (no oracle mix), workload shifts write->read "
              "mid-run:\n");
  {
    ExperimentConfig config;
    config.label = "Vertiorizon-live";
    config.policy = GrowthPolicyConfig::Vertiorizon(T);
    config.policy.vrn_measure_mix = true;
    config.keys.num_keys = kKeys;
    config.keys.key_size = 128;
    config.keys.value_size = 896;
    config.mix = workload::WriteHeavyMix();
    config.preload_entries = kKeys;
    config.num_ops = 20000;
    auto r = RunExperiment(config);
    std::printf("  write-heavy phase: ok=%d avg=%.4f wa=%.2f ra=%.2f\n",
                r.ok, r.avg_throughput, r.write_amp, r.read_amp);
  }
  return 0;
}
