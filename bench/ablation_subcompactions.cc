// Ablation: growth policy × max_subcompactions × writer threads.
//
// Measures what the off-mutex parallel compaction pipeline (DESIGN.md §2.8)
// buys under concurrent write pressure: wall-clock throughput, writer stall
// time, and compaction wall-clock (the scheduler's busy time in compaction
// jobs), next to the conflict-retry and fanout counters that only the
// pipeline produces. Background mode throughout — in inline mode
// subcompactions run serially and only the boundary math is exercised.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct RunResult {
  double wall_seconds = 0;
  double kops_per_sec = 0;
  uint64_t compactions = 0;
  uint64_t conflicts = 0;
  uint64_t stall_ms = 0;
  double compaction_busy_ms = 0;  // Scheduler busy time in compaction jobs.
  double fanout_avg = 0;
};

constexpr uint64_t kOpsPerThread = 30000;
constexpr uint32_t kKeySpace = 20000;

void WorkerLoop(DB* db, int worker, uint64_t ops) {
  Random rnd(7000 + worker);
  for (uint64_t i = 0; i < ops; i++) {
    std::string key = workload::FormatKey(rnd.Uniform(kKeySpace), 16);
    const uint32_t action = rnd.Uniform(10);
    if (action < 8) {
      db->Put(key, "value-" + std::to_string(i));
    } else if (action < 9) {
      std::string value;
      db->Get(key, &value);
    } else {
      std::vector<std::pair<std::string, std::string>> out;
      db->Scan(key, 16, &out);
    }
  }
}

RunResult RunOne(const GrowthPolicyConfig& policy, int max_subcompactions,
                 int writers) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 64 << 10;
  opts.target_file_size = 16 << 10;  // Small files: plenty of split points.
  opts.block_size = 4096;
  opts.block_cache_bytes = 1 << 20;
  opts.policy = policy;
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 4;
  opts.max_subcompactions = max_subcompactions;

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; w++) {
    threads.emplace_back(
        [&db, w] { WorkerLoop(db.get(), w, kOpsPerThread); });
  }
  for (auto& t : threads) t.join();
  db->FlushMemTable();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  const double total_ops =
      static_cast<double>(kOpsPerThread) * static_cast<double>(writers);
  r.kops_per_sec = total_ops / r.wall_seconds / 1000.0;
  const EngineStats& stats = db->stats();
  r.compactions = stats.compactions;
  r.conflicts = stats.compaction_conflicts;
  r.stall_ms = stats.stall_micros / 1000;

  std::string exec_info;
  db->GetProperty("talus.exec", &exec_info);
  // compaction{... busy_us=N ...}
  size_t pos = exec_info.find("compaction{");
  if (pos != std::string::npos) {
    pos = exec_info.find("busy_us=", pos);
    if (pos != std::string::npos) {
      r.compaction_busy_ms =
          std::strtoull(exec_info.c_str() + pos + 8, nullptr, 10) / 1000.0;
    }
  }
  pos = exec_info.find("fanout_avg=");
  if (pos != std::string::npos) {
    r.fanout_avg = std::strtod(exec_info.c_str() + pos + 11, nullptr);
  }
  return r;
}

}  // namespace
}  // namespace talus

int main() {
  using namespace talus;

  struct NamedPolicy {
    const char* name;
    GrowthPolicyConfig config;
  };
  const std::vector<NamedPolicy> policies = {
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(3)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(3)},
      {"Lazy-Level", GrowthPolicyConfig::LazyLeveling(3, 4, false)},
  };
  const std::vector<int> fanouts = {1, 2, 4};
  const std::vector<int> thread_counts = {1, 4};

  std::printf(
      "# Subcompaction ablation: %llu ops/thread, background mode, "
      "4 bg threads\n",
      static_cast<unsigned long long>(kOpsPerThread));
  std::printf("%-14s %5s %7s %9s %8s %9s %9s %11s %10s %7s\n", "policy",
              "msc", "writers", "kops/s", "wall_s", "compacts", "stall_ms",
              "comp_busy_ms", "fanout_avg", "confl");

  for (const auto& p : policies) {
    for (int msc : fanouts) {
      for (int writers : thread_counts) {
        RunResult r = RunOne(p.config, msc, writers);
        std::printf("%-14s %5d %7d %9.1f %8.2f %9llu %9llu %11.1f %10.2f "
                    "%7llu\n",
                    p.name, msc, writers, r.kops_per_sec, r.wall_seconds,
                    static_cast<unsigned long long>(r.compactions),
                    static_cast<unsigned long long>(r.stall_ms),
                    r.compaction_busy_ms, r.fanout_avg,
                    static_cast<unsigned long long>(r.conflicts));
      }
    }
    std::printf("\n");
  }
  return 0;
}
