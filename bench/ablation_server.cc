// Ablation: network service layer — connections × pipeline depth × value
// size (DESIGN.md §8, docs/PROTOCOL.md).
//
// An in-process Server on 127.0.0.1:0 fronts a 4-shard ShardedDB on the
// in-memory env; client threads drive pipelined PUT windows through the
// wire protocol. The interesting columns: throughput scaling as the
// pipeline deepens (N in-flight requests decode into one batch and commit
// as one write group — coalesced_ops/coalesced_batches shows the realized
// group size) and what that depth costs the per-request tail.
//
// --smoke shrinks the sweep to a CI-friendly run; --json PATH emits the
// rows for the nightly BENCH trajectory (BENCH_server.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "shard/sharded_db.h"
#include "workload/generator.h"

namespace talus {
namespace {

constexpr uint64_t kKeySpace = 50000;
constexpr int kShards = 4;

struct BenchConfig {
  bool smoke = false;
  std::string json_path;
};

struct RunResult {
  double kops_per_sec = 0;
  double wall_seconds = 0;
  double lat_p50_us = 0;
  double lat_p99_us = 0;
  double lat_p999_us = 0;
  uint64_t coalesced_batches = 0;
  uint64_t coalesced_ops = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

uint64_t OpsPerConnection(const BenchConfig& cfg) {
  return cfg.smoke ? 2000 : 20000;
}

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

RunResult RunOne(const BenchConfig& cfg, int connections, int depth,
                 int value_bytes) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = 4 << 20;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 4;
  opts.shard_count = kShards;
  for (int i = 1; i < kShards; i++) {
    opts.shard_split_points.push_back(
        workload::FormatKey(kKeySpace * i / kShards, 16));
  }
  std::unique_ptr<shard::ShardedDB> db;
  Status s = shard::ShardedDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }

  server::ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.max_pipeline_depth = static_cast<size_t>(std::max(depth, 1));
  server::Server srv(db.get(), sopts);
  s = srv.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return {};
  }

  const uint64_t ops = OpsPerConnection(cfg);
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(connections));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < connections; t++) {
    threads.emplace_back([&, t] {
      server::Client client;
      if (!client.Connect("127.0.0.1", srv.port()).ok()) return;
      std::vector<double>& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(ops);
      const std::string value(static_cast<size_t>(value_bytes), 'v');
      uint64_t key_index = static_cast<uint64_t>(t) * 7919;
      std::vector<uint64_t> window;
      window.reserve(static_cast<size_t>(depth));
      for (uint64_t i = 0; i < ops;) {
        // Issue one pipelined window, then collect it: `depth` requests
        // ride one socket write and decode into one server batch.
        window.clear();
        const auto sent = std::chrono::steady_clock::now();
        for (int d = 0; d < depth && i < ops; d++, i++) {
          key_index = (key_index + 2654435761u) % kKeySpace;
          window.push_back(client.SendPut(
              workload::FormatKey(key_index, 16), value));
        }
        for (uint64_t id : window) {
          if (!client.Wait(id, nullptr).ok()) return;
          lat.push_back(std::chrono::duration_cast<
                            std::chrono::duration<double, std::micro>>(
                            std::chrono::steady_clock::now() - sent)
                            .count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  r.kops_per_sec =
      static_cast<double>(ops) * connections / r.wall_seconds / 1000;
  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  r.lat_p50_us = Percentile(all, 50);
  r.lat_p99_us = Percentile(all, 99);
  r.lat_p999_us = Percentile(all, 99.9);
  const server::ServerStats stats = srv.stats();
  r.coalesced_batches = stats.coalesced_batches;
  r.coalesced_ops = stats.coalesced_ops;
  r.bytes_in = stats.bytes_in;
  r.bytes_out = stats.bytes_out;
  srv.Stop();
  return r;
}

}  // namespace
}  // namespace talus

int main(int argc, char** argv) {
  using namespace talus;

  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cfg.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 1;
    }
  }

  const std::vector<int> connection_counts =
      cfg.smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8};
  const std::vector<int> depths =
      cfg.smoke ? std::vector<int>{1, 16} : std::vector<int>{1, 8, 64};
  const std::vector<int> value_sizes =
      cfg.smoke ? std::vector<int>{100} : std::vector<int>{100, 1024};

  std::printf("# Server ablation: %llu puts/connection over loopback TCP, "
              "%d-shard ShardedDB, mem env, %u cores\n",
              static_cast<unsigned long long>(OpsPerConnection(cfg)), kShards,
              std::thread::hardware_concurrency());
  std::printf("%6s %6s %7s %9s %8s %8s %8s %9s %11s\n", "conns", "depth",
              "val_B", "kops/s", "p50_us", "p99_us", "p999_us", "batches",
              "coal_ops");

  std::string json = "{\"bench\":\"ablation_server\",\"smoke\":" +
                     std::string(cfg.smoke ? "true" : "false") +
                     ",\"rows\":[\n";
  bool first_row = true;
  for (int value_bytes : value_sizes) {
    for (int conns : connection_counts) {
      for (int depth : depths) {
        RunResult r = RunOne(cfg, conns, depth, value_bytes);
        std::printf("%6d %6d %7d %9.1f %8.0f %8.0f %8.0f %9llu %11llu\n",
                    conns, depth, value_bytes, r.kops_per_sec, r.lat_p50_us,
                    r.lat_p99_us, r.lat_p999_us,
                    static_cast<unsigned long long>(r.coalesced_batches),
                    static_cast<unsigned long long>(r.coalesced_ops));
        char row[512];
        std::snprintf(
            row, sizeof(row),
            "%s{\"connections\":%d,\"depth\":%d,\"value_bytes\":%d,"
            "\"kops_per_sec\":%.1f,\"wall_seconds\":%.3f,"
            "\"lat_p50_us\":%.1f,\"lat_p99_us\":%.1f,\"lat_p999_us\":%.1f,"
            "\"coalesced_batches\":%llu,\"coalesced_ops\":%llu,"
            "\"bytes_in\":%llu,\"bytes_out\":%llu}",
            first_row ? "" : ",\n", conns, depth, value_bytes, r.kops_per_sec,
            r.wall_seconds, r.lat_p50_us, r.lat_p99_us, r.lat_p999_us,
            static_cast<unsigned long long>(r.coalesced_batches),
            static_cast<unsigned long long>(r.coalesced_ops),
            static_cast<unsigned long long>(r.bytes_in),
            static_cast<unsigned long long>(r.bytes_out));
        json += row;
        first_row = false;
      }
    }
    std::printf("\n");
  }
  json += "\n]}\n";

  if (!cfg.json_path.empty()) {
    std::FILE* f = std::fopen(cfg.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}
