// Figure 9 reproduction: behaviour at a larger data scale (the paper's
// 500GB run, scaled to the simulator: 3× the Figure 7 key count with a
// proportionally larger buffer — the data:buffer ratio, which controls how
// long full-compaction stalls grow, rises accordingly).
//   (a) moderate memory: 10 BPK, small cache
//   (b) large memory:    20 BPK, everything cached
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace talus;
using namespace talus::bench;

namespace {

double AvgTput(const ExperimentResult& r) { return r.avg_throughput; }
double WorstTput(const ExperimentResult& r) { return r.worst_throughput; }

}  // namespace

int main() {
  const double T = 6.0;
  const uint64_t kKeys = 100000;  // ~100MB of 1KB entries.
  const uint64_t kDataBytes = kKeys * 1024;

  std::printf("Figure 9: larger data scale, balanced uniform workload\n");

  struct MemCase {
    const char* name;
    double bpk;
    size_t cache;
  };
  const MemCase cases[] = {
      {"(a) moderate memory: 10 BPK, small cache", 10.0, 512 << 10},
      {"(b) large memory: 20 BPK, all cached", 20.0, 256 << 20},
  };

  for (const auto& mc : cases) {
    std::vector<ExperimentResult> results;
    const std::vector<std::pair<std::string, GrowthPolicyConfig>> roster = {
        {"VT-Level-Part", GrowthPolicyConfig::VTLevelPart(T)},
        {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(T)},
        {"VT-Tier-Part", GrowthPolicyConfig::VTTierPart(T)},
        {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(T)},
        {"HR-Level", GrowthPolicyConfig::HRLevel(3)},
        {"HR-Tier", GrowthPolicyConfig::HRTier(3, kDataBytes)},
        {"Vertiorizon", GrowthPolicyConfig::Vertiorizon(T)},
    };
    for (const auto& [label, policy] : roster) {
      ExperimentConfig config;
      config.label = label;
      config.policy = policy;
      config.keys.num_keys = kKeys;
      config.keys.key_size = 128;
      config.keys.value_size = 896;
      config.mix = workload::BalancedMix();
      config.preload_entries = kKeys;
      config.num_ops = 40000;
      config.write_buffer_size = 64 << 10;
      config.target_file_size = 64 << 10;
      config.bloom_bits_per_key = mc.bpk;
      config.block_cache_bytes = mc.cache;
      config.worst_case_window = 300;
      results.push_back(RunExperiment(config));
    }
    PrintResultTable(std::string("Fig 9 ") + mc.name, results);
    PrintRanking("  rank avg", results, AvgTput, true);
    PrintRanking("  rank worst", results, WorstTput, true);
    std::printf("  max inline stall (clock units):");
    for (const auto& r : results) {
      if (r.ok) std::printf(" %s=%.0f", r.label.c_str(), r.max_stall);
    }
    std::printf("\n");
  }
  return 0;
}
