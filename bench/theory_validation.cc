// Regenerates the theory tables: Lemma 4.1 (counter drain identity),
// Theorem 4.2 / Lemma 9.4 (Algorithm 2 vs DP optimum vs closed form),
// Lemma 5.1 (tiering lookup cost), Lemma 5.2 (leveling write cost), plus
// DP timing to show the closed forms are the practical path.
#include <chrono>
#include <cstdio>

#include "theory/binomial.h"
#include "theory/optimal_dp.h"
#include "theory/schemes.h"

using namespace talus::theory;

int main() {
  std::printf("== Lemma 4.1: counters initialized to k drain after "
              "C(k+l-1, l) flushes ==\n");
  std::printf("%4s %4s %16s %16s %7s\n", "k", "l", "C(k+l-1,l)", "drained-at",
              "match");
  for (int l = 1; l <= 6; l++) {
    for (uint64_t k : {1ull, 2ull, 4ull, 8ull}) {
      const uint64_t expected = Binomial(k + l - 1, l);
      if (expected > 200000) continue;
      const auto sim = SimulateHorizontalTiering(expected + 1, l, k);
      std::printf("%4llu %4d %16llu %16llu %7s\n",
                  static_cast<unsigned long long>(k), l,
                  static_cast<unsigned long long>(expected),
                  static_cast<unsigned long long>(sim.drained_at),
                  sim.drained_at == expected ? "yes" : "NO");
    }
  }

  std::printf("\n== Theorem 4.2 / Lemma 9.4: Algorithm 2 read cost vs DP "
              "optimum vs closed form (r=1) ==\n");
  std::printf("%6s %3s %5s %12s %12s %12s\n", "n", "l", "k", "algorithm2",
              "dp-optimum", "closed-form");
  OptimalReadCostDp dp;
  for (int l = 2; l <= 5; l++) {
    for (uint64_t k = 1; k <= 8; k++) {
      const uint64_t n = Binomial(k + l - 1, l);
      if (n < 2 || n > 800) continue;
      const auto sim = SimulateHorizontalTiering(n, l, k);
      std::printf("%6llu %3d %5llu %12llu %12llu %12llu\n",
                  static_cast<unsigned long long>(n), l,
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(sim.read_cost),
                  static_cast<unsigned long long>(dp.Cost(n, l)),
                  static_cast<unsigned long long>(
                      TieringReadCostClosedForm(n, l)));
    }
  }

  std::printf("\n== Lemma 5.1: per-lookup cost of horizontal-tiering "
              "(f=0.1): tau(n,l)*f/n ==\n");
  std::printf("%8s", "n\\l");
  for (int l = 2; l <= 6; l++) std::printf(" %9d", l);
  std::printf("\n");
  for (uint64_t n : {16, 64, 256, 1024, 4096}) {
    std::printf("%8llu", static_cast<unsigned long long>(n));
    for (int l = 2; l <= 6; l++) {
      const double cost =
          static_cast<double>(TieringReadCostClosedForm(n, l)) * 0.1 /
          static_cast<double>(n);
      std::printf(" %9.4f", cost);
    }
    std::printf("\n");
  }

  std::printf("\n== Lemma 5.2: per-update cost of horizontal-leveling "
              "(P=4 entries/page): Omega(n,l)/(n*P) ==\n");
  std::printf("%8s", "n\\l");
  for (int l = 2; l <= 6; l++) std::printf(" %9d", l);
  std::printf("\n");
  for (uint64_t n : {16, 64, 256, 1024, 4096}) {
    std::printf("%8llu", static_cast<unsigned long long>(n));
    for (int l = 2; l <= 6; l++) {
      const double cost =
          static_cast<double>(LevelingWriteCostClosedForm(n, l)) /
          (static_cast<double>(n) * 4.0);
      std::printf(" %9.4f", cost);
    }
    std::printf("\n");
  }

  std::printf("\n== DP cost vs closed-form evaluation time ==\n");
  {
    const uint64_t n = 400;
    const int l = 5;
    auto t0 = std::chrono::steady_clock::now();
    OptimalReadCostDp fresh;
    const uint64_t dp_cost = fresh.Cost(n, l);
    auto t1 = std::chrono::steady_clock::now();
    const uint64_t cf = TieringReadCostClosedForm(n, l);
    auto t2 = std::chrono::steady_clock::now();
    std::printf("n=%llu l=%d: dp=%llu (%lld us), closed=%llu (%lld ns)\n",
                static_cast<unsigned long long>(n), l,
                static_cast<unsigned long long>(dp_cost),
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        t1 - t0)
                        .count()),
                static_cast<unsigned long long>(cf),
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(t2 -
                                                                          t1)
                        .count()));
  }
  return 0;
}
