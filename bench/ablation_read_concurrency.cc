// Ablation: read-path scaling — reader threads × writer threads.
//
// Exercises the lock-free read path (DESIGN.md §2.7): after preloading a
// key space and flushing it to disk, N reader threads issue point lookups
// and short scans (pinning ReadViews, probing through the table cache)
// while M writer threads overwrite keys, driving background flushes and
// compactions that install new versions and delete files under the
// readers. Reported: reader throughput scaling with thread count plus
// table-cache / block-cache hit rates from talus.stats.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

constexpr uint32_t kKeySpace = 50000;
constexpr uint64_t kReadsPerThread = 60000;
constexpr uint64_t kWritesPerThread = 30000;
constexpr size_t kScanLength = 16;

uint64_t StatField(const std::string& stats, const std::string& token) {
  const std::string needle = " " + token + "=";
  size_t pos = stats.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
}

struct RunResult {
  double read_kops = 0;
  double wall_seconds = 0;
  double tc_hit_rate = 0;
  double bc_hit_rate = 0;
  uint64_t compactions = 0;
};

RunResult RunOne(ExecutionMode mode, int readers, int writers) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 256 << 10;
  opts.target_file_size = 256 << 10;
  opts.block_cache_bytes = 4 << 20;
  opts.table_cache_open_files = 256;
  opts.policy = GrowthPolicyConfig::VTTierFull(3);
  opts.execution_mode = mode;
  opts.num_background_threads = 2;

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return {};
  }
  Random preload_rnd(7);
  for (uint32_t i = 0; i < kKeySpace; i++) {
    db->Put(workload::FormatKey(i, 16),
            "value-" + std::to_string(preload_rnd.Next()));
  }
  db->FlushMemTable();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; r++) {
    threads.emplace_back([&db, r] {
      Random rnd(5000 + r);
      for (uint64_t i = 0; i < kReadsPerThread; i++) {
        std::string key = workload::FormatKey(rnd.Uniform(kKeySpace), 16);
        if (rnd.Uniform(10) < 8) {
          std::string value;
          db->Get(key, &value);
        } else {
          std::vector<std::pair<std::string, std::string>> out;
          db->Scan(key, kScanLength, &out);
        }
      }
    });
  }
  std::vector<std::thread> write_threads;
  for (int w = 0; w < writers; w++) {
    write_threads.emplace_back([&db, w] {
      Random rnd(9000 + w);
      for (uint64_t i = 0; i < kWritesPerThread; i++) {
        db->Put(workload::FormatKey(rnd.Uniform(kKeySpace), 16),
                "update-" + std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto read_end = std::chrono::steady_clock::now();
  for (auto& t : write_threads) t.join();
  db->FlushMemTable();

  RunResult result;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(read_end -
                                                                start)
          .count();
  result.read_kops = static_cast<double>(kReadsPerThread) * readers /
                     result.wall_seconds / 1000.0;
  std::string stats;
  db->GetProperty("talus.stats", &stats);
  const uint64_t tc_hits = StatField(stats, "tc_hits");
  const uint64_t tc_misses = StatField(stats, "tc_misses");
  const uint64_t bc_hits = StatField(stats, "bc_hits");
  const uint64_t bc_misses = StatField(stats, "bc_misses");
  if (tc_hits + tc_misses > 0) {
    result.tc_hit_rate =
        static_cast<double>(tc_hits) / static_cast<double>(tc_hits + tc_misses);
  }
  if (bc_hits + bc_misses > 0) {
    result.bc_hit_rate =
        static_cast<double>(bc_hits) / static_cast<double>(bc_hits + bc_misses);
  }
  result.compactions = db->stats().compactions;
  return result;
}

}  // namespace
}  // namespace talus

int main() {
  using namespace talus;

  std::printf(
      "# Read-concurrency ablation: %llu reads/thread (80/20 get/scan%zu) "
      "over %u preloaded keys\n",
      static_cast<unsigned long long>(kReadsPerThread), kScanLength,
      kKeySpace);
  std::printf("%-11s %7s %7s %10s %8s %8s %8s %9s\n", "mode", "readers",
              "writers", "read_kops", "wall_s", "tc_hit%", "bc_hit%",
              "compacts");

  for (ExecutionMode mode :
       {ExecutionMode::kInline, ExecutionMode::kBackground}) {
    for (int writers : {0, 2}) {
      for (int readers : {1, 2, 4, 8}) {
        RunResult r = RunOne(mode, readers, writers);
        std::printf(
            "%-11s %7d %7d %10.1f %8.2f %8.1f %8.1f %9llu\n",
            mode == ExecutionMode::kInline ? "inline" : "background", readers,
            writers, r.read_kops, r.wall_seconds, r.tc_hit_rate * 100.0,
            r.bc_hit_rate * 100.0,
            static_cast<unsigned long long>(r.compactions));
      }
      std::printf("\n");
    }
  }
  return 0;
}
