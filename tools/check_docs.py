#!/usr/bin/env python3
"""Docs-vs-source linter (CI: the docs-check job).

Documentation rots by referencing things that were renamed or removed, so
this script fails CI on dangling references. Four checks, all grep-level —
no build needed:

  1. Every `talus.<name>` property named in the markdown exists as a
     string literal somewhere under src/.
  2. Every `talus_<name>` Prometheus family named in the markdown (modulo
     the _bucket/_sum/_count suffixes histograms synthesize) is emitted
     somewhere under src/.
  3. Every `DESIGN.md §X[.Y]` reference — in markdown OR in source
     comments — resolves to a real `## §X` / `### §X.Y` heading in
     DESIGN.md.
  4. Every repo-relative file path mentioned in the markdown exists
     (generated artifacts like BENCH_*.json are allowlisted).
  5. Every `DbOptions::<field>` reference — in markdown OR in source
     comments — names a field actually declared in src/lsm/options.h.

Run locally from the repo root: python3 tools/check_docs.py
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = sorted(
    glob.glob(os.path.join(REPO, "*.md"))
    + glob.glob(os.path.join(REPO, "docs", "*.md"))
)
# ISSUE.md/PAPERS.md/SNIPPETS.md describe other repos' code; CHANGES.md is
# an append-only history whose old lines may name refactored-away files.
DOC_SKIP = {"ISSUE.md", "PAPERS.md", "SNIPPETS.md", "CHANGES.md", "PAPER.md"}

SRC_GLOBS = ["src/**/*.cc", "src/**/*.h", "bench/*.cc", "bench/*.h",
             "examples/*.cpp", "tests/*.cc", "tools/*.py"]

# Paths that docs legitimately mention but that only exist at runtime or in
# CI (bench output, build trees, sanitizer dirs, artifact names).
PATH_ALLOW = re.compile(
    r"^(build|build-san)(/|$)"
    r"|^BENCH_[A-Za-z0-9_.]*\.json$"
    r"|^bench/baseline/"
    r"|^stats_timeseries"
    r"|^/"  # Absolute paths (DB dirs like /tmp/talus_server).
)

PROPERTY_RE = re.compile(r"talus\.[a-z][a-z0-9-]*")
METRIC_RE = re.compile(r"(?<![A-Za-z0-9_/])talus_[a-z][a-z0-9_]*")
SECTION_RE = re.compile(r"DESIGN\.md §(\d+(?:\.\d+)?)")
# Repo-relative paths with a known top-level dir and a file extension
# (plain `src/server/` directory mentions are cheap to verify too).
PATH_RE = re.compile(
    r"\b((?:src|docs|bench|tests|tools|examples|\.github)"
    r"(?:/[A-Za-z0-9_.\-]+)+/?)")


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def source_corpus():
    blobs = []
    for pattern in SRC_GLOBS:
        for path in glob.glob(os.path.join(REPO, pattern), recursive=True):
            blobs.append(read(path))
    return "\n".join(blobs)


DBOPTIONS_RE = re.compile(r"DbOptions::([A-Za-z_][A-Za-z0-9_]*)")


def dboptions_fields():
    """Field (and method) names declared in struct DbOptions."""
    text = read(os.path.join(REPO, "src", "lsm", "options.h"))
    m = re.search(r"struct DbOptions \{(.*?)\n\};", text, re.DOTALL)
    if not m:
        return set()
    names = set()
    for line in m.group(1).splitlines():
        line = line.split("//")[0]
        # `type name = default;` / `type name;` declarations.
        decl = re.match(r"\s*[A-Za-z_][A-Za-z0-9_:<>*&\s]*?"
                        r"\b([A-Za-z_][A-Za-z0-9_]*)\s*(=|;)", line)
        if decl:
            names.add(decl.group(1))
    return names


def design_sections():
    sections = set()
    for line in read(os.path.join(REPO, "DESIGN.md")).splitlines():
        m = re.match(r"#+ §(\d+(?:\.\d+)?)\b", line)
        if m:
            sections.add(m.group(1))
    return sections


def main():
    src = source_corpus()
    sections = design_sections()
    fields = dboptions_fields()
    errors = []
    if not fields:
        errors.append("src/lsm/options.h: could not parse struct DbOptions")

    docs = [p for p in DOC_FILES if os.path.basename(p) not in DOC_SKIP]
    for path in docs:
        rel = os.path.relpath(path, REPO)
        text = read(path)

        for prop in sorted(set(PROPERTY_RE.findall(text))):
            if f'"{prop}"' not in src:
                errors.append(f"{rel}: property {prop} not found in source")

        metric_mentions = set()
        for m in METRIC_RE.finditer(text):
            if re.match(r"\.[a-z]", text[m.end():m.end() + 2]):
                continue  # Filename like talus_server.cpp, not a metric.
            # `talus_server_*` names a family prefix, not one metric.
            is_prefix = text[m.end():m.end() + 1] == "*"
            metric_mentions.add((m.group(0), is_prefix))
        for metric, is_prefix in sorted(metric_mentions):
            if is_prefix:
                if f'"{metric}' not in src:
                    errors.append(
                        f"{rel}: no metric with prefix {metric}* in source")
                continue
            base = re.sub(r"_(bucket|sum|count)$", "", metric)
            if f'"{base}"' not in src and f'"{metric}"' not in src:
                errors.append(f"{rel}: metric {metric} not found in source")

        for sec in sorted(set(SECTION_RE.findall(text))):
            if sec not in sections:
                errors.append(f"{rel}: DESIGN.md §{sec} has no such heading")

        for field in sorted(set(DBOPTIONS_RE.findall(text))):
            if field not in fields:
                errors.append(
                    f"{rel}: DbOptions::{field} is not a DbOptions field")

        for p in sorted(set(PATH_RE.findall(text))):
            clean = p.rstrip("/")
            if PATH_ALLOW.match(p) or PATH_ALLOW.match(clean):
                continue
            if not os.path.exists(os.path.join(REPO, clean)):
                errors.append(f"{rel}: path {p} does not exist")

    # Source comments reference DESIGN.md sections too; keep those honest.
    for sec in sorted(set(SECTION_RE.findall(src))):
        if sec not in sections:
            errors.append(f"src: DESIGN.md §{sec} has no such heading")
    for field in sorted(set(DBOPTIONS_RE.findall(src))):
        if field not in fields:
            errors.append(f"src: DbOptions::{field} is not a DbOptions field")

    if errors:
        for e in errors:
            print(f"docs-check: {e}", file=sys.stderr)
        print(f"docs-check: {len(errors)} dangling reference(s)",
              file=sys.stderr)
        return 1
    print(f"docs-check: {len(docs)} doc file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
