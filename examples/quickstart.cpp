// Quickstart: open a talus DB with the Vertiorizon growth scheme, write,
// read, scan, delete, inspect the tree, close, reopen, and verify recovery.
//
//   ./examples/quickstart [db_path]
//
// With no argument the example runs on an in-memory environment; with a
// path it uses the real filesystem.
#include <cstdio>
#include <memory>
#include <string>

#include "env/env.h"
#include "lsm/db.h"

using namespace talus;

int main(int argc, char** argv) {
  std::unique_ptr<Env> owned_env;
  Env* env;
  std::string path;
  if (argc > 1) {
    env = Env::Default();
    path = argv[1];
  } else {
    owned_env = NewMemEnv();
    env = owned_env.get();
    path = "/quickstart-db";
  }

  DbOptions options;
  options.env = env;
  options.path = path;
  options.write_buffer_size = 64 << 10;
  options.target_file_size = 64 << 10;
  // The paper's contribution as the default growth scheme: self-tuning
  // Vertiorizon with size ratio 6 for a balanced workload.
  options.policy = GrowthPolicyConfig::Vertiorizon(6.0);

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("opened db at %s with policy '%s'\n", path.c_str(),
              db->policy()->name().c_str());

  // Write enough data to push through several flushes and compactions.
  for (int i = 0; i < 2000; i++) {
    char key[32], value[64];
    std::snprintf(key, sizeof(key), "user%06d", i);
    std::snprintf(value, sizeof(value), "profile-data-for-user-%06d", i);
    s = db->Put(key, std::string(value) + std::string(200, '.'));
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Point lookup.
  std::string value;
  s = db->Get("user00042", &value);
  std::printf("get user000042-style key: %s (value %zu bytes)\n",
              s.ToString().c_str(), value.size());

  // Range scan.
  std::vector<std::pair<std::string, std::string>> rows;
  db->Scan("user000100", 5, &rows);
  std::printf("scan from user000100, 5 rows:\n");
  for (const auto& [k, v] : rows) {
    std::printf("  %s -> %zu bytes\n", k.c_str(), v.size());
  }

  // Delete and verify.
  db->Delete("user000100");
  s = db->Get("user000100", &value);
  std::printf("after delete, get user000100: %s\n", s.ToString().c_str());

  // Engine introspection.
  const EngineStats& stats = db->stats();
  std::printf("\nengine stats: %llu puts, %llu flushes, %llu compactions, "
              "write-amp %.2f, read-amp %.2f\n",
              static_cast<unsigned long long>(stats.puts),
              static_cast<unsigned long long>(stats.flushes),
              static_cast<unsigned long long>(stats.compactions),
              stats.WriteAmplification(), stats.ReadAmplification());
  std::printf("tree shape:\n%s", db->DebugString().c_str());

  // Reopen: everything must come back (WAL + manifest recovery).
  db.reset();
  s = DB::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  s = db->Get("user001999", &value);
  std::printf("\nafter reopen, get user001999: %s\n", s.ToString().c_str());
  std::printf("quickstart done.\n");
  return 0;
}
