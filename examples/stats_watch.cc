// stats_watch: tail an obs::StatsSnapshotter JSONL time series and print a
// live amplification / latency table, one row per sample.
//
//   stats_watch [--once] [--interval-ms N] FILE.jsonl
//
// --once prints every sample currently in the file and exits (CI smoke
// mode; exits nonzero when the file holds no parsable samples). Without it
// the tool keeps the file open and follows appended samples like `tail -f`,
// which is how a terminal next to a running bench watches write-amp climb
// and drift events fire.
//
// The parser is deliberately tiny: it extracts the handful of keys the
// table shows with string scans instead of a JSON library, and skips any
// line it cannot parse (a torn final line while the writer is mid-append is
// normal).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

namespace {

// Returns the number after `"key": ` in `line`, or `fallback`.
double NumField(const std::string& line, const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return fallback;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

bool PrintSample(const std::string& line, uint64_t index, uint64_t first_t) {
  const double t_us = NumField(line, "t_us", -1);
  if (t_us < 0) return false;  // Torn or foreign line.
  const double rel_s = first_t == 0 ? 0 : (t_us - first_t) / 1e6;
  std::printf(
      "%6llu %8.1fs  w_amp %6.3f  r_amp %6.3f  s_amp %6.3f  blk/get %6.3f  "
      "lookups %9.0f  put_p99 %7.1fus  get_p99 %7.1fus  drift %6.3f%s\n",
      static_cast<unsigned long long>(index), rel_s,
      NumField(line, "write_amp", 0), NumField(line, "read_amp", 0),
      NumField(line, "space_amp", 0), NumField(line, "blocks_per_lookup", 0),
      NumField(line, "lookups", 0), NumField(line, "put_p99_us", 0),
      NumField(line, "get_p99_us", 0), NumField(line, "drift_score", 0),
      NumField(line, "drifted", 0) > 0 ? "  [DRIFT]" : "");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  long interval_ms = 500;
  const char* path = nullptr;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--once] [--interval-ms N] FILE.jsonl\n",
                   argv[0]);
      return 1;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s [--once] [--interval-ms N] FILE.jsonl\n",
                 argv[0]);
    return 1;
  }

  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }

  uint64_t printed = 0;
  uint64_t first_t = 0;
  std::string line;
  char buf[4096];
  for (;;) {
    // fgets returns partial lines too; accumulate until '\n' so a sample
    // the writer is mid-append never parses as garbage.
    while (std::fgets(buf, sizeof(buf), f) != nullptr) {
      line += buf;
      if (line.empty() || line.back() != '\n') continue;
      if (first_t == 0) {
        const double t = NumField(line, "t_us", 0);
        if (t > 0) first_t = static_cast<uint64_t>(t);
      }
      if (PrintSample(line, printed, first_t)) printed++;
      line.clear();
    }
    if (once) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::clearerr(f);  // EOF is transient while the writer appends.
  }
  std::fclose(f);

  if (once && printed == 0) {
    std::fprintf(stderr, "%s: no parsable samples\n", path);
    return 1;
  }
  return 0;
}
