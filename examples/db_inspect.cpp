// db_inspect: offline inspection of a talus database directory — what a
// production operator reaches for first. Dumps the CURRENT/manifest chain,
// the tree structure with per-level occupancy, per-file key ranges, and
// (optionally) every live key-value pair.
//
//   ./examples/db_inspect <db_path> [--files] [--dump[=N]]
//
// Works on any directory produced with Env::Default(); for a demo run with
// no arguments it creates a small throwaway DB first.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/filename.h"
#include "lsm/manifest.h"
#include "workload/generator.h"

using namespace talus;

namespace {

void InspectManifest(Env* env, const std::string& path, bool show_files) {
  ManifestData manifest;
  uint64_t number = 0;
  Status s = ReadCurrentManifest(env, path, &manifest, &number);
  if (!s.ok()) {
    std::printf("cannot read manifest: %s\n", s.ToString().c_str());
    return;
  }
  std::printf("MANIFEST-%06llu\n", static_cast<unsigned long long>(number));
  std::printf("  policy           : %s\n", manifest.policy_name.c_str());
  std::printf("  policy state     : %zu bytes\n",
              manifest.policy_state.size());
  std::printf("  last sequence    : %llu\n",
              static_cast<unsigned long long>(manifest.last_sequence));
  std::printf("  flush count      : %llu\n",
              static_cast<unsigned long long>(manifest.flush_count));
  std::printf("  next file number : %llu\n",
              static_cast<unsigned long long>(manifest.next_file_number));
  std::printf("  live WAL         : %06llu\n",
              static_cast<unsigned long long>(manifest.wal_number));

  const Version& v = manifest.version;
  std::printf("\ntree (%zu levels, %zu runs, %llu bytes):\n",
              v.levels.size(), v.TotalRuns(),
              static_cast<unsigned long long>(v.TotalBytes()));
  for (size_t i = 0; i < v.levels.size(); i++) {
    const LevelState& level = v.levels[i];
    if (level.empty()) continue;
    std::printf("  L%-2zu %8llu KB in %zu run(s)\n", i,
                static_cast<unsigned long long>(level.TotalBytes() >> 10),
                level.NumRuns());
    for (const auto& run : level.runs) {
      std::printf("      run %-5llu %3zu file(s) %8llu KB  [%.24s .. %.24s]\n",
                  static_cast<unsigned long long>(run.run_id),
                  run.files.size(),
                  static_cast<unsigned long long>(run.TotalBytes() >> 10),
                  run.files.empty()
                      ? "-"
                      : run.files.front()->smallest.user_key().ToString()
                            .c_str(),
                  run.files.empty()
                      ? "-"
                      : run.files.back()->largest.user_key().ToString()
                            .c_str());
      if (show_files) {
        for (const auto& f : run.files) {
          std::printf("        %06llu.sst %7llu B %6llu entries "
                      "[%.20s .. %.20s] oldest_seq=%llu\n",
                      static_cast<unsigned long long>(f->number),
                      static_cast<unsigned long long>(f->file_size),
                      static_cast<unsigned long long>(f->num_entries),
                      f->smallest.user_key().ToString().c_str(),
                      f->largest.user_key().ToString().c_str(),
                      static_cast<unsigned long long>(f->oldest_seq));
        }
      }
    }
  }
}

void DumpEntries(Env* env, const std::string& path,
                 const std::string& policy_name, size_t limit) {
  // Open read-only-ish: we must know the policy; read it from the manifest.
  DbOptions options;
  options.env = env;
  options.path = path;
  // Policy is matched by name on open; reconstruct the config by label.
  GrowthPolicyConfig config;
  if (policy_name.rfind("vertical-", 0) == 0) {
    config = GrowthPolicyConfig::VTLevelPart(6);
    config.merge = policy_name.find("tiering") != std::string::npos
                       ? MergePolicy::kTiering
                       : MergePolicy::kLeveling;
    config.granularity = policy_name.find("full") != std::string::npos
                             ? Granularity::kFull
                             : Granularity::kPartial;
    if (policy_name.find("dynbytes") != std::string::npos) {
      config.dynamic_level_bytes = true;
    }
  } else if (policy_name == "horizontal-leveling") {
    config = GrowthPolicyConfig::HRLevel(3);
  } else if (policy_name == "horizontal-tiering") {
    config = GrowthPolicyConfig::HRTier(3);
  } else if (policy_name == "universal") {
    config = GrowthPolicyConfig::Universal();
  } else if (policy_name.rfind("lazy-leveling", 0) == 0) {
    config = GrowthPolicyConfig::LazyLeveling(
        6, 4, policy_name.find("vertiorizon") != std::string::npos);
  } else {
    config = GrowthPolicyConfig::Vertiorizon(6);
    if (policy_name == "vertiorizon-fixed-tiering") {
      config = GrowthPolicyConfig::VRNTier(6);
    } else if (policy_name == "vertiorizon-fixed-leveling") {
      config = GrowthPolicyConfig::VRNLevel(6);
    }
  }
  options.policy = config;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, &db);
  if (!s.ok()) {
    std::printf("cannot open for dump: %s\n", s.ToString().c_str());
    return;
  }
  std::printf("\nlive entries (limit %zu):\n", limit);
  auto iter = db->NewIterator();
  size_t n = 0;
  for (iter->SeekToFirst(); iter->Valid() && n < limit; iter->Next(), n++) {
    std::printf("  %.40s = %.32s%s\n", iter->key().ToString().c_str(),
                iter->value().ToString().c_str(),
                iter->value().size() > 32 ? "..." : "");
  }
  std::printf("  (%zu shown)\n", n);
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Env> owned;
  Env* env;
  std::string path;
  bool show_files = false;
  size_t dump = 0;

  for (int i = 2; i < argc; i++) {
    if (std::strcmp(argv[i], "--files") == 0) show_files = true;
    if (std::strncmp(argv[i], "--dump", 6) == 0) {
      dump = argv[i][6] == '=' ? std::strtoull(argv[i] + 7, nullptr, 10) : 20;
    }
  }

  if (argc > 1) {
    env = Env::Default();
    path = argv[1];
  } else {
    // Demo mode: build a small DB in memory, then inspect it.
    owned = NewMemEnv();
    env = owned.get();
    path = "/demo";
    DbOptions options;
    options.env = env;
    options.path = path;
    options.write_buffer_size = 8 << 10;
    options.policy = GrowthPolicyConfig::Vertiorizon(4);
    std::unique_ptr<DB> db;
    if (!DB::Open(options, &db).ok()) return 1;
    for (int i = 0; i < 1200; i++) {
      db->Put(workload::FormatKey(i % 500, 16),
              workload::MakeValue(i, i, 120));
    }
    db.reset();
    show_files = true;
    dump = 5;
    std::printf("(demo mode: inspecting a freshly generated in-memory db)\n\n");
  }

  InspectManifest(env, path, show_files);
  if (dump > 0) {
    ManifestData manifest;
    uint64_t number;
    if (ReadCurrentManifest(env, path, &manifest, &number).ok()) {
      DumpEntries(env, path, manifest.policy_name, dump);
    }
  }
  return 0;
}
