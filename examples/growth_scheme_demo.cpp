// Growth-scheme demo: replays the paper's running examples.
//
//  * Figure 2 — vertical (T=2) vs horizontal (ℓ=2, Algorithm 1) counter
//    evolution for the first flushes.
//  * Figure 5 — horizontal-tiering (Algorithm 2) with ℓ=2, k=3.
//
// All output is computed by the same counter machinery the engine policies
// use (theory/schemes.h), so what is printed is what the engine does.
#include <cstdio>
#include <vector>

#include "theory/binomial.h"
#include "theory/schemes.h"

using namespace talus::theory;

namespace {

void VerticalExample() {
  std::printf("== Figure 2(a): vertical scheme, T = 2 ==\n");
  std::printf("Level capacities: L1 holds 2 buffers, L2 holds 4, L3 holds "
              "8, ...\n");
  // Simulate: sizes in buffers; compact level i when it exceeds capacity.
  std::vector<uint64_t> sizes;
  for (int n = 1; n <= 8; n++) {
    // Flush into L1.
    if (sizes.empty()) sizes.push_back(0);
    sizes[0] += 1;
    std::printf("n=%d:", n);
    for (size_t i = 0; i < sizes.size(); i++) {
      const uint64_t cap = 2ull << i;
      if (sizes[i] > cap) {
        // Should have been compacted before exceeding; handled below.
      }
    }
    // Cascade compactions.
    for (size_t i = 0; i < sizes.size(); i++) {
      const uint64_t cap = 2ull << i;
      if (sizes[i] >= cap) {
        if (i + 1 == sizes.size()) sizes.push_back(0);
        std::printf(" [merge L%zu->L%zu]", i + 1, i + 2);
        sizes[i + 1] += sizes[i];
        sizes[i] = 0;
      }
    }
    for (size_t i = 0; i < sizes.size(); i++) {
      std::printf(" L%zu=%llu", i + 1,
                  static_cast<unsigned long long>(sizes[i]));
    }
    std::printf("\n");
  }
}

void HorizontalExample() {
  std::printf("\n== Figure 2(b): horizontal scheme, l = 2 (Algorithm 1) ==\n");
  std::vector<uint64_t> c(2, 0);
  std::vector<uint64_t> sizes(2, 0);
  for (int n = 1; n <= 6; n++) {
    c[0]++;
    sizes[0]++;
    std::printf("n=%d: C1=%llu C2=%llu", n,
                static_cast<unsigned long long>(c[0]),
                static_cast<unsigned long long>(c[1]));
    if (c[0] > c[1]) {
      std::printf("  -> C1>C2: merge L1 to L2");
      sizes[1] += sizes[0];
      sizes[0] = 0;
      c[1]++;
      c[0] = 0;
      std::printf("  (now C1=%llu C2=%llu)",
                  static_cast<unsigned long long>(c[0]),
                  static_cast<unsigned long long>(c[1]));
    }
    std::printf("  sizes: L1=%llu L2=%llu\n",
                static_cast<unsigned long long>(sizes[0]),
                static_cast<unsigned long long>(sizes[1]));
  }
}

void HorizontalTieringExample() {
  std::printf("\n== Figure 5: horizontal-tiering, l = 2, k = 3 "
              "(Algorithm 2) ==\n");
  std::printf("Counters start at k=3 and count DOWN; level 1 compacts into "
              "a NEW run at level 2 when C1 = 0.\n");
  const auto sim = SimulateHorizontalTiering(6, 2, 3);
  size_t next_event = 0;
  std::vector<uint64_t> c = {3, 3};
  for (uint64_t n = 1; n <= 6; n++) {
    if (c[0] > 0) c[0]--;
    bool compacted = false;
    if (c[0] == 0) {
      compacted = true;
      c[1]--;
      c[0] = c[1];
    }
    std::printf("n=%llu: C1=%llu C2=%llu%s\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(c[0]),
                static_cast<unsigned long long>(c[1]),
                compacted ? "  -> merge L1 into a new run at L2" : "");
    if (next_event < sim.events.size() &&
        sim.events[next_event].flush_index == n) {
      next_event++;
    }
  }
  std::printf("counters drained at flush %llu; Lemma 4.1 predicts "
              "C(k+l-1, l) = C(4,2) = %llu\n",
              static_cast<unsigned long long>(sim.drained_at),
              static_cast<unsigned long long>(Binomial(4, 2)));
  std::printf("total read cost (r=1 lookups per flush): %llu; Lemma 9.4 "
              "closed form: %llu\n",
              static_cast<unsigned long long>(sim.read_cost),
              static_cast<unsigned long long>(TieringReadCostClosedForm(6, 2)));
}

}  // namespace

int main() {
  VerticalExample();
  HorizontalExample();
  HorizontalTieringExample();
  return 0;
}
