// Standalone talus server: open (or create) a ShardedDB and serve it over
// the wire protocol (docs/PROTOCOL.md) plus HTTP `GET /metrics` on the
// same port. Runs until SIGINT/SIGTERM, then drains gracefully.
//
//   ./example_talus_server [options]
//     --path=DIR          database directory (default /tmp/talus_server)
//     --mem               in-memory env (data lost on exit)
//     --addr=A --port=N   listen address (default 127.0.0.1:4980)
//     --shards=N          shard count for a fresh database (default 4)
//     --workers=N         request worker threads (default 4)
//     --depth=N           max pipeline depth per connection (default 64)
//     --policy=<name>     growth policy (default vertiorizon)
//
// Quickstart (README.md):
//   ./example_talus_server --mem --port=4980 &
//   curl -s http://127.0.0.1:4980/metrics | head
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "env/env.h"
#include "server/server.h"
#include "shard/sharded_db.h"
#include "workload/generator.h"

using namespace talus;

namespace {

std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

std::string FlagValue(int argc, char** argv, const char* name,
                      const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

bool FlagPresent(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; i++) {
    if (flag == argv[i]) return true;
  }
  return false;
}

GrowthPolicyConfig PolicyByName(const std::string& name) {
  if (name == "vt-level-part") return GrowthPolicyConfig::VTLevelPart(6);
  if (name == "vt-level-full") return GrowthPolicyConfig::VTLevelFull(6);
  if (name == "lazy") return GrowthPolicyConfig::LazyLeveling(6);
  if (name == "rocksdb-tuned") return GrowthPolicyConfig::RocksDBTuned();
  return GrowthPolicyConfig::Vertiorizon(6);
}

}  // namespace

int main(int argc, char** argv) {
  const bool use_mem = FlagPresent(argc, argv, "mem");
  const std::string path =
      FlagValue(argc, argv, "path", "/tmp/talus_server");
  const int shards =
      std::atoi(FlagValue(argc, argv, "shards", "4").c_str());
  const std::string policy_name =
      FlagValue(argc, argv, "policy", "vertiorizon");

  std::unique_ptr<Env> owned_env;
  DbOptions opts;
  if (use_mem) {
    owned_env = NewMemEnv();
    opts.env = owned_env.get();
    opts.path = "/db";
  } else {
    opts.env = Env::Default();
    opts.path = path;
    opts.env->CreateDirIfMissing(path);
  }
  opts.policy = PolicyByName(policy_name);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.shard_count = shards > 0 ? shards : 1;

  std::unique_ptr<shard::ShardedDB> db;
  Status s = shard::ShardedDB::Open(opts, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", opts.path.c_str(),
                 s.ToString().c_str());
    return 1;
  }

  server::ServerOptions sopts;
  sopts.listen_addr = FlagValue(argc, argv, "addr", "127.0.0.1");
  sopts.port = static_cast<uint16_t>(
      std::atoi(FlagValue(argc, argv, "port", "4980").c_str()));
  sopts.worker_threads =
      std::atoi(FlagValue(argc, argv, "workers", "4").c_str());
  sopts.max_pipeline_depth = static_cast<size_t>(
      std::atoi(FlagValue(argc, argv, "depth", "64").c_str()));
  server::Server srv(db.get(), sopts);
  s = srv.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("talus_server: %s shards=%zu policy=%s on %s:%u "
              "(metrics: http://%s:%u/metrics)\n",
              use_mem ? "mem env" : opts.path.c_str(), db->shard_count(),
              policy_name.c_str(), sopts.listen_addr.c_str(), srv.port(),
              sopts.listen_addr.c_str(), srv.port());

  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }

  std::printf("talus_server: draining...\n");
  srv.Stop();
  const server::ServerStats stats = srv.stats();
  std::printf("talus_server: served %llu requests on %llu connections\n",
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}
