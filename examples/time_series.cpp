// Time-series scenario (the paper's intro motivates LSM backends for
// time-series stores like InfluxDB): high-rate appends of timestamped
// samples, windowed range queries over recent data, and retention deletes
// of expired windows. Append-mostly + range-scan workloads are where growth
// schemes differ most, so the example runs the same load under three
// schemes and reports the engine-side amplification metrics.
//
//   ./examples/time_series [samples_per_series]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "util/random.h"

using namespace talus;

namespace {

// series id (4 hex) + timestamp (16 digits, zero padded): keys sort by
// series then time, so a windowed query is one short range scan.
std::string SampleKey(int series, uint64_t timestamp) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "s%04x.%016llu", series,
                static_cast<unsigned long long>(timestamp));
  return buf;
}

std::string SampleValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"v\":%.6f}", v);
  return std::string(buf) + std::string(100, ' ');  // Pad like real JSON.
}

struct RunResult {
  std::string scheme;
  double write_amp;
  double read_amp;
  uint64_t window_rows;
  double clock;
};

RunResult RunScenario(const std::string& name,
                      const GrowthPolicyConfig& policy, int num_series,
                      uint64_t samples) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.path = "/tsdb";
  options.write_buffer_size = 64 << 10;
  options.target_file_size = 64 << 10;
  options.policy = policy;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  Random rnd(2026);
  uint64_t now = 1700000000000;  // Milliseconds.
  uint64_t window_rows = 0;

  for (uint64_t t = 0; t < samples; t++) {
    now += 1000;
    // One sample per series per tick, batched like a collector would.
    WriteBatch batch;
    for (int series = 0; series < num_series; series++) {
      batch.Put(SampleKey(series, now),
                SampleValue(20.0 + 5.0 * rnd.NextDouble()));
    }
    s = db->Write(batch);
    if (!s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }

    // Every 32 ticks: dashboard queries the last 60s of a random series.
    if (t % 32 == 31) {
      const int series = static_cast<int>(rnd.Uniform(num_series));
      std::vector<std::pair<std::string, std::string>> rows;
      db->Scan(SampleKey(series, now - 60000), 60, &rows);
      window_rows += rows.size();
    }

    // Every 256 ticks: retention - drop samples older than 10 minutes for
    // one series (ranged delete via iterator).
    if (t % 256 == 255) {
      const int series = static_cast<int>(rnd.Uniform(num_series));
      auto iter = db->NewIterator();
      std::vector<std::string> expired;
      for (iter->Seek(SampleKey(series, 0));
           iter->Valid() && iter->key().ToString() <
                                SampleKey(series, now - 600000);
           iter->Next()) {
        expired.push_back(iter->key().ToString());
        if (expired.size() >= 512) break;
      }
      WriteBatch reaper;
      for (const auto& k : expired) reaper.Delete(k);
      db->Write(reaper);
    }
  }

  RunResult result;
  result.scheme = name;
  result.write_amp = db->stats().WriteAmplification();
  result.read_amp = db->stats().ReadAmplification();
  result.window_rows = window_rows;
  result.clock = env->io_stats()->clock();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t samples = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 4000;
  const int num_series = 16;

  std::printf("time-series scenario: %d series x %llu ticks, windowed "
              "queries + retention deletes\n\n",
              num_series, static_cast<unsigned long long>(samples));
  std::printf("%-16s %10s %10s %12s %14s\n", "scheme", "write-amp",
              "read-amp", "window-rows", "virtual-clock");

  const std::vector<std::pair<std::string, GrowthPolicyConfig>> schemes = {
      {"VT-Level-Part", GrowthPolicyConfig::VTLevelPart(6)},
      {"HR-Tier", GrowthPolicyConfig::HRTier(3, samples * num_series * 140)},
      {"Vertiorizon", GrowthPolicyConfig::Vertiorizon(
                          6.0, WorkloadMix{0.9, 0.02, 0.08})},
  };
  for (const auto& [name, policy] : schemes) {
    const RunResult r = RunScenario(name, policy, num_series, samples);
    std::printf("%-16s %10.2f %10.2f %12llu %14.0f\n", r.scheme.c_str(),
                r.write_amp, r.read_amp,
                static_cast<unsigned long long>(r.window_rows), r.clock);
  }
  std::printf("\nLower clock = less total device time for the same "
              "workload; append-mostly favors tiering-style growth, which "
              "is exactly what self-tuning Vertiorizon picks.\n");
  return 0;
}
