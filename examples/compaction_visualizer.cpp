// Compaction visualizer: ingest the same data under different growth
// schemes and print the evolving tree shape — a terminal rendition of the
// paper's Figure 1/6 intuition. Runs per level are drawn as [###] bars
// scaled by size.
//
//   ./examples/compaction_visualizer [scheme]
//   scheme ∈ {vt-level, vt-tier, hr-level, hr-tier, vrn, lazy, all}
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "workload/generator.h"

using namespace talus;

namespace {

void DrawTree(const Version& v, uint64_t buffer_bytes) {
  for (size_t i = 0; i < v.levels.size(); i++) {
    const LevelState& level = v.levels[i];
    if (level.empty() && i > 4) continue;
    std::printf("  L%zu |", i);
    for (const auto& run : level.runs) {
      const uint64_t bytes = run.TotalBytes();
      int width = static_cast<int>(bytes / (buffer_bytes / 4));
      if (width < 1) width = 1;
      if (width > 48) width = 48;
      std::printf(" [%.*s]", width, "################################################");
    }
    if (level.empty()) std::printf(" (empty)");
    std::printf("\n");
  }
}

void Visualize(const std::string& name, const GrowthPolicyConfig& policy) {
  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.path = "/viz";
  options.write_buffer_size = 16 << 10;
  options.target_file_size = 16 << 10;
  options.policy = policy;

  std::unique_ptr<DB> db;
  if (!DB::Open(options, &db).ok()) {
    std::printf("open failed for %s\n", name.c_str());
    return;
  }

  std::printf("\n==== %s (policy '%s') ====\n", name.c_str(),
              db->policy()->name().c_str());
  workload::KeySpaceSpec keys;
  keys.num_keys = 4000;
  keys.key_size = 24;
  keys.value_size = 232;

  uint64_t written = 0;
  const uint64_t step = 1000;
  for (uint64_t i = 0; i < 6000; i++) {
    const uint64_t k = (i * 2654435761u) % keys.num_keys;  // Scatter.
    db->Put(workload::FormatKey(k, keys.key_size),
            workload::MakeValue(k, i, keys.value_size));
    written++;
    if (written % step == 0) {
      std::printf(" after %llu inserts (%llu flushes, %llu compactions):\n",
                  static_cast<unsigned long long>(written),
                  static_cast<unsigned long long>(db->stats().flushes),
                  static_cast<unsigned long long>(db->stats().compactions));
      DrawTree(db->current_version(), options.write_buffer_size);
    }
  }
  std::printf(" final write-amp %.2f, read-amp %.2f, runs total %zu\n",
              db->stats().WriteAmplification(),
              db->stats().ReadAmplification(),
              db->current_version().TotalRuns());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  const std::vector<std::pair<std::string, GrowthPolicyConfig>> schemes = {
      {"vt-level", GrowthPolicyConfig::VTLevelPart(4)},
      {"vt-tier", GrowthPolicyConfig::VTTierFull(4)},
      {"hr-level", GrowthPolicyConfig::HRLevel(3)},
      {"hr-tier", GrowthPolicyConfig::HRTier(3, 6000ull * 256)},
      {"vrn", GrowthPolicyConfig::Vertiorizon(4)},
      {"lazy", GrowthPolicyConfig::LazyLeveling(4, 4, false)},
  };
  bool matched = false;
  for (const auto& [name, policy] : schemes) {
    if (which == "all" || which == name) {
      Visualize(name, policy);
      matched = true;
    }
  }
  if (!matched) {
    std::printf("unknown scheme '%s'; use one of:", which.c_str());
    for (const auto& [name, policy] : schemes) std::printf(" %s", name.c_str());
    std::printf(" all\n");
    return 1;
  }
  return 0;
}
