// YCSB-style workload runner: load a key space, run an operation mix
// against a chosen growth scheme, and report the paper's metrics. This is
// the CLI equivalent of one cell in Figure 7.
//
//   ./examples/ycsb_runner [options]
//     --policy=<vt-level-part|vt-level-full|vt-tier-part|vt-tier-full|
//               rocksdb-tuned|universal|hr-level|hr-tier|vrn-level|
//               vrn-tier|vertiorizon|lazy|lazy-vrn>
//     --workload=<read-heavy|balanced|write-heavy|range-scan>
//     --dist=<uniform|zipfian|hotcold>
//     --keys=N --ops=N --ratio=T --bpk=B --cache=BYTES
//
// Networked mode: --connect=HOST:PORT runs the same load + mix against a
// running talus server (examples/talus_server.cpp) over the wire protocol
// instead of an embedded DB; --depth=N pipelines that many requests per
// connection (docs/PROTOCOL.md). Policy/cache flags are ignored — those
// belong to the server — and engine metrics come back via the talus.stats
// property.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "env/env.h"
#include "lsm/db.h"
#include "metrics/throughput.h"
#include "server/client.h"
#include "util/random.h"
#include "workload/generator.h"

using namespace talus;

namespace {

std::string FlagValue(int argc, char** argv, const char* name,
                      const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

GrowthPolicyConfig PolicyByName(const std::string& name, double T,
                                uint64_t data_bytes) {
  if (name == "vt-level-part") return GrowthPolicyConfig::VTLevelPart(T);
  if (name == "vt-level-full") return GrowthPolicyConfig::VTLevelFull(T);
  if (name == "vt-tier-part") return GrowthPolicyConfig::VTTierPart(T);
  if (name == "vt-tier-full") return GrowthPolicyConfig::VTTierFull(T);
  if (name == "rocksdb-tuned") return GrowthPolicyConfig::RocksDBTuned();
  if (name == "universal") return GrowthPolicyConfig::Universal();
  if (name == "hr-level") return GrowthPolicyConfig::HRLevel(3);
  if (name == "hr-tier") return GrowthPolicyConfig::HRTier(3, data_bytes);
  if (name == "vrn-level") return GrowthPolicyConfig::VRNLevel(T);
  if (name == "vrn-tier") return GrowthPolicyConfig::VRNTier(T);
  if (name == "lazy") return GrowthPolicyConfig::LazyLeveling(T, 4, false);
  if (name == "lazy-vrn") return GrowthPolicyConfig::LazyLeveling(T, 4, true);
  return GrowthPolicyConfig::Vertiorizon(T);
}

// Runs load + op mix against a remote talus server. The pipelined window
// (depth) is the client half of the server's group-commit coalescing:
// updates issued back-to-back commit as one WriteBatch server-side.
int RunNetworked(const std::string& endpoint, const workload::KeySpaceSpec& keys,
                 const workload::OpMix& mix, uint64_t num_keys,
                 uint64_t num_ops, int depth) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got %s\n",
                 endpoint.c_str());
    return 1;
  }
  const std::string host = endpoint.substr(0, colon);
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(endpoint.c_str() + colon + 1, nullptr, 10));

  server::Client client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Load, pipelined `depth` at a time.
  std::vector<uint64_t> window;
  auto drain = [&]() -> Status {
    Status first;
    for (uint64_t id : window) {
      Status w = client.Wait(id, nullptr);
      if (first.ok() && !w.ok()) first = w;
    }
    window.clear();
    return first;
  };
  for (uint64_t i = 0; i < num_keys; i++) {
    const uint64_t k = (i * 2654435761u) % num_keys;
    window.push_back(
        client.SendPut(workload::FormatKey(k, keys.key_size),
                       workload::MakeValue(k, 0, keys.value_size)));
    if (window.size() >= static_cast<size_t>(depth)) {
      s = drain();
      if (!s.ok()) {
        std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  s = drain();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu entries over the wire\n",
              static_cast<unsigned long long>(num_keys));

  // Run. Reads are sync (their result gates nothing but models a real
  // client waiting on a value); updates pipeline up to `depth`.
  workload::OpStream stream(keys, mix, 7);
  uint64_t updates = 0, lookups = 0, scans = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_ops; i++) {
    const auto op = stream.Next();
    const std::string key = workload::FormatKey(op.key_index, keys.key_size);
    switch (op.type) {
      case workload::OpType::kUpdate:
        window.push_back(client.SendPut(
            key, workload::MakeValue(op.key_index, i, keys.value_size)));
        if (window.size() >= static_cast<size_t>(depth)) drain();
        updates++;
        break;
      case workload::OpType::kPointLookup: {
        drain();
        std::string value;
        client.Get(key, &value);
        lookups++;
        break;
      }
      case workload::OpType::kRangeLookup: {
        drain();
        std::vector<std::pair<std::string, std::string>> out;
        client.Scan(key, 32, &out);
        scans++;
        break;
      }
    }
  }
  drain();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::printf("\nresults (networked):\n");
  std::printf("  throughput         : %.1f kops/s over %.2fs\n",
              num_ops / wall / 1000, wall);
  std::printf("  op counts          : %llu updates, %llu lookups, %llu scans\n",
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(lookups),
              static_cast<unsigned long long>(scans));
  std::string stats;
  if (client.GetProperty("talus.stats", &stats).ok()) {
    std::printf("  server talus.stats :\n%s", stats.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string policy_name =
      FlagValue(argc, argv, "policy", "vertiorizon");
  const std::string workload_name =
      FlagValue(argc, argv, "workload", "balanced");
  const std::string dist_name = FlagValue(argc, argv, "dist", "uniform");
  const uint64_t num_keys =
      std::strtoull(FlagValue(argc, argv, "keys", "20000").c_str(), nullptr, 10);
  const uint64_t num_ops =
      std::strtoull(FlagValue(argc, argv, "ops", "30000").c_str(), nullptr, 10);
  const double T = std::strtod(FlagValue(argc, argv, "ratio", "6").c_str(),
                               nullptr);
  const double bpk =
      std::strtod(FlagValue(argc, argv, "bpk", "5").c_str(), nullptr);
  const uint64_t cache = std::strtoull(
      FlagValue(argc, argv, "cache", "262144").c_str(), nullptr, 10);

  workload::KeySpaceSpec keys;
  keys.num_keys = num_keys;
  keys.key_size = 128;
  keys.value_size = 896;
  if (dist_name == "zipfian") {
    keys.distribution = workload::Distribution::kZipfian;
  } else if (dist_name == "hotcold") {
    keys.distribution = workload::Distribution::kHotCold;
  }

  workload::OpMix mix = workload::BalancedMix();
  if (workload_name == "read-heavy") mix = workload::ReadHeavyMix();
  if (workload_name == "write-heavy") mix = workload::WriteHeavyMix();
  if (workload_name == "range-scan") mix = workload::RangeScanMix();

  const std::string connect = FlagValue(argc, argv, "connect", "");
  if (!connect.empty()) {
    const int depth =
        std::atoi(FlagValue(argc, argv, "depth", "32").c_str());
    return RunNetworked(connect, keys, mix, num_keys, num_ops,
                        depth > 0 ? depth : 1);
  }

  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.path = "/ycsb";
  options.write_buffer_size = 64 << 10;
  options.target_file_size = 64 << 10;
  options.block_cache_bytes = cache;
  options.bloom_bits_per_key = bpk;
  options.policy = PolicyByName(policy_name, T, num_keys * 1024);

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("policy=%s workload=%s dist=%s keys=%llu ops=%llu T=%.0f "
              "bpk=%.0f cache=%llu\n",
              db->policy()->name().c_str(), workload_name.c_str(),
              dist_name.c_str(), static_cast<unsigned long long>(num_keys),
              static_cast<unsigned long long>(num_ops), T, bpk,
              static_cast<unsigned long long>(cache));

  // Load.
  for (uint64_t i = 0; i < num_keys; i++) {
    const uint64_t k = (i * 2654435761u) % num_keys;
    s = db->Put(workload::FormatKey(k, keys.key_size),
                workload::MakeValue(k, 0, keys.value_size));
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("loaded %llu entries; tree:\n%s",
              static_cast<unsigned long long>(num_keys),
              db->DebugString().c_str());

  // Run.
  IoStats* io = env->io_stats();
  io->Reset();
  io->ResetPeak();
  metrics::ThroughputMeter meter(1000);
  workload::OpStream stream(keys, mix, 7);
  for (uint64_t i = 0; i < num_ops; i++) {
    const auto op = stream.Next();
    const std::string key = workload::FormatKey(op.key_index, keys.key_size);
    switch (op.type) {
      case workload::OpType::kUpdate:
        db->Put(key, workload::MakeValue(op.key_index, i, keys.value_size));
        break;
      case workload::OpType::kPointLookup: {
        std::string value;
        db->Get(key, &value);
        break;
      }
      case workload::OpType::kRangeLookup: {
        std::vector<std::pair<std::string, std::string>> out;
        db->Scan(key, 32, &out);
        break;
      }
    }
    meter.RecordOp(io->clock());
  }

  const EngineStats& stats = db->stats();
  std::printf("\nresults:\n");
  std::printf("  avg throughput     : %.4f ops/clock-unit\n",
              meter.AverageThroughput());
  std::printf("  worst-case tput    : %.4f (window 1000 ops)\n",
              meter.WorstCaseThroughput());
  std::printf("  write-amp          : %.2f\n", stats.WriteAmplification());
  std::printf("  read-amp           : %.3f runs probed per lookup\n",
              stats.ReadAmplification());
  std::printf("  bloom negatives    : %llu\n",
              static_cast<unsigned long long>(stats.filter_negatives));
  std::printf("  cache hits         : %llu\n",
              static_cast<unsigned long long>(stats.block_cache_hits));
  std::printf("  peak storage       : %.1f MB\n",
              io->peak_storage_bytes() / 1048576.0);
  std::printf("  flushes/compactions: %llu / %llu\n",
              static_cast<unsigned long long>(stats.flushes),
              static_cast<unsigned long long>(stats.compactions));
  return 0;
}
