// YCSB-style workload runner: load a key space, run an operation mix
// against a chosen growth scheme, and report the paper's metrics. This is
// the CLI equivalent of one cell in Figure 7.
//
//   ./examples/ycsb_runner [options]
//     --policy=<vt-level-part|vt-level-full|vt-tier-part|vt-tier-full|
//               rocksdb-tuned|universal|hr-level|hr-tier|vrn-level|
//               vrn-tier|vertiorizon|lazy|lazy-vrn>
//     --workload=<read-heavy|balanced|write-heavy|range-scan>
//     --dist=<uniform|zipfian|hotcold>
//     --keys=N --ops=N --ratio=T --bpk=B --cache=BYTES
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "env/env.h"
#include "lsm/db.h"
#include "metrics/throughput.h"
#include "util/random.h"
#include "workload/generator.h"

using namespace talus;

namespace {

std::string FlagValue(int argc, char** argv, const char* name,
                      const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

GrowthPolicyConfig PolicyByName(const std::string& name, double T,
                                uint64_t data_bytes) {
  if (name == "vt-level-part") return GrowthPolicyConfig::VTLevelPart(T);
  if (name == "vt-level-full") return GrowthPolicyConfig::VTLevelFull(T);
  if (name == "vt-tier-part") return GrowthPolicyConfig::VTTierPart(T);
  if (name == "vt-tier-full") return GrowthPolicyConfig::VTTierFull(T);
  if (name == "rocksdb-tuned") return GrowthPolicyConfig::RocksDBTuned();
  if (name == "universal") return GrowthPolicyConfig::Universal();
  if (name == "hr-level") return GrowthPolicyConfig::HRLevel(3);
  if (name == "hr-tier") return GrowthPolicyConfig::HRTier(3, data_bytes);
  if (name == "vrn-level") return GrowthPolicyConfig::VRNLevel(T);
  if (name == "vrn-tier") return GrowthPolicyConfig::VRNTier(T);
  if (name == "lazy") return GrowthPolicyConfig::LazyLeveling(T, 4, false);
  if (name == "lazy-vrn") return GrowthPolicyConfig::LazyLeveling(T, 4, true);
  return GrowthPolicyConfig::Vertiorizon(T);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string policy_name =
      FlagValue(argc, argv, "policy", "vertiorizon");
  const std::string workload_name =
      FlagValue(argc, argv, "workload", "balanced");
  const std::string dist_name = FlagValue(argc, argv, "dist", "uniform");
  const uint64_t num_keys =
      std::strtoull(FlagValue(argc, argv, "keys", "20000").c_str(), nullptr, 10);
  const uint64_t num_ops =
      std::strtoull(FlagValue(argc, argv, "ops", "30000").c_str(), nullptr, 10);
  const double T = std::strtod(FlagValue(argc, argv, "ratio", "6").c_str(),
                               nullptr);
  const double bpk =
      std::strtod(FlagValue(argc, argv, "bpk", "5").c_str(), nullptr);
  const uint64_t cache = std::strtoull(
      FlagValue(argc, argv, "cache", "262144").c_str(), nullptr, 10);

  workload::KeySpaceSpec keys;
  keys.num_keys = num_keys;
  keys.key_size = 128;
  keys.value_size = 896;
  if (dist_name == "zipfian") {
    keys.distribution = workload::Distribution::kZipfian;
  } else if (dist_name == "hotcold") {
    keys.distribution = workload::Distribution::kHotCold;
  }

  workload::OpMix mix = workload::BalancedMix();
  if (workload_name == "read-heavy") mix = workload::ReadHeavyMix();
  if (workload_name == "write-heavy") mix = workload::WriteHeavyMix();
  if (workload_name == "range-scan") mix = workload::RangeScanMix();

  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.path = "/ycsb";
  options.write_buffer_size = 64 << 10;
  options.target_file_size = 64 << 10;
  options.block_cache_bytes = cache;
  options.bloom_bits_per_key = bpk;
  options.policy = PolicyByName(policy_name, T, num_keys * 1024);

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("policy=%s workload=%s dist=%s keys=%llu ops=%llu T=%.0f "
              "bpk=%.0f cache=%llu\n",
              db->policy()->name().c_str(), workload_name.c_str(),
              dist_name.c_str(), static_cast<unsigned long long>(num_keys),
              static_cast<unsigned long long>(num_ops), T, bpk,
              static_cast<unsigned long long>(cache));

  // Load.
  for (uint64_t i = 0; i < num_keys; i++) {
    const uint64_t k = (i * 2654435761u) % num_keys;
    s = db->Put(workload::FormatKey(k, keys.key_size),
                workload::MakeValue(k, 0, keys.value_size));
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("loaded %llu entries; tree:\n%s",
              static_cast<unsigned long long>(num_keys),
              db->DebugString().c_str());

  // Run.
  IoStats* io = env->io_stats();
  io->Reset();
  io->ResetPeak();
  metrics::ThroughputMeter meter(1000);
  workload::OpStream stream(keys, mix, 7);
  for (uint64_t i = 0; i < num_ops; i++) {
    const auto op = stream.Next();
    const std::string key = workload::FormatKey(op.key_index, keys.key_size);
    switch (op.type) {
      case workload::OpType::kUpdate:
        db->Put(key, workload::MakeValue(op.key_index, i, keys.value_size));
        break;
      case workload::OpType::kPointLookup: {
        std::string value;
        db->Get(key, &value);
        break;
      }
      case workload::OpType::kRangeLookup: {
        std::vector<std::pair<std::string, std::string>> out;
        db->Scan(key, 32, &out);
        break;
      }
    }
    meter.RecordOp(io->clock());
  }

  const EngineStats& stats = db->stats();
  std::printf("\nresults:\n");
  std::printf("  avg throughput     : %.4f ops/clock-unit\n",
              meter.AverageThroughput());
  std::printf("  worst-case tput    : %.4f (window 1000 ops)\n",
              meter.WorstCaseThroughput());
  std::printf("  write-amp          : %.2f\n", stats.WriteAmplification());
  std::printf("  read-amp           : %.3f runs probed per lookup\n",
              stats.ReadAmplification());
  std::printf("  bloom negatives    : %llu\n",
              static_cast<unsigned long long>(stats.filter_negatives));
  std::printf("  cache hits         : %llu\n",
              static_cast<unsigned long long>(stats.block_cache_hits));
  std::printf("  peak storage       : %.1f MB\n",
              io->peak_storage_bytes() / 1048576.0);
  std::printf("  flushes/compactions: %llu / %llu\n",
              static_cast<unsigned long long>(stats.flushes),
              static_cast<unsigned long long>(stats.compactions));
  return 0;
}
