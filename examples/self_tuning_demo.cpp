// Self-tuning demo (§5.2): watch Vertiorizon redesign its horizontal part
// as the workload changes. The engine measures the live operation mix; at
// every horizontal-part clearing the navigator re-picks (merge policy, ℓ)
// from the cost model.
#include <cstdio>
#include <memory>

#include "env/env.h"
#include "filter/bloom.h"
#include "lsm/db.h"
#include "policy/vertiorizon_policy.h"
#include "tuning/cost_model.h"
#include "workload/generator.h"

using namespace talus;

namespace {

void ShowCostModel() {
  std::printf("Cost model landscape (n = 32 buffers, 5 bits/key, P = 4):\n");
  tuning::HorizontalCostModel model;
  model.capacity_buffers = 32;
  model.bloom_fpr = BloomFalsePositiveRate(5.0);
  model.page_entries = 4.0;
  std::printf("%10s | %-24s\n", "update %", "navigator choice");
  for (int w = 0; w <= 100; w += 10) {
    WorkloadMix mix;
    mix.updates = w / 100.0;
    mix.point_lookups = 1.0 - mix.updates;
    const auto r = tuning::Navigate(model, mix);
    std::printf("%9d%% | %-24s\n", w, r.ToString().c_str());
  }
}

void RunPhase(DB* db, const char* name, const workload::OpMix& mix,
              int ops) {
  workload::KeySpaceSpec keys;
  keys.num_keys = 20000;
  keys.key_size = 32;
  keys.value_size = 480;
  workload::OpStream stream(keys, mix, 42);
  for (int i = 0; i < ops; i++) {
    const auto op = stream.Next();
    const std::string key = workload::FormatKey(op.key_index, keys.key_size);
    if (op.type == workload::OpType::kUpdate) {
      db->Put(key, workload::MakeValue(op.key_index, i, keys.value_size));
    } else {
      std::string value;
      db->Get(key, &value);
    }
  }
  auto* vrn = dynamic_cast<VertiorizonPolicy*>(db->policy());
  std::printf("%-14s -> horizontal part: %s with l=%d, capacity %llu "
              "buffers\n",
              name,
              vrn->horizontal_merge() == MergePolicy::kTiering ? "tiering"
                                                               : "leveling",
              vrn->horizontal_levels(),
              static_cast<unsigned long long>(vrn->capacity_buffers()));
}

}  // namespace

int main() {
  ShowCostModel();

  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.path = "/selftune";
  options.write_buffer_size = 32 << 10;
  options.target_file_size = 32 << 10;
  options.policy = GrowthPolicyConfig::Vertiorizon(6.0);
  options.policy.vrn_measure_mix = true;  // Self-designing: no oracle mix.

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\nLive redesign across workload phases (policy re-tunes at "
              "each horizontal clear):\n");
  RunPhase(db.get(), "write-heavy", workload::WriteHeavyMix(), 30000);
  RunPhase(db.get(), "balanced", workload::BalancedMix(), 30000);
  RunPhase(db.get(), "read-heavy", workload::ReadHeavyMix(), 30000);
  RunPhase(db.get(), "write-heavy", workload::WriteHeavyMix(), 30000);

  std::printf("\nfinal tree:\n%s", db->DebugString().c_str());
  return 0;
}
