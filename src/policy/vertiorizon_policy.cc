#include "policy/vertiorizon_policy.h"

#include <algorithm>
#include <cmath>

#include "filter/bloom.h"
#include "theory/binomial.h"
#include "theory/schemes.h"
#include "util/coding.h"

namespace talus {

VertiorizonPolicy::VertiorizonPolicy(const GrowthPolicyConfig& config,
                                     const PolicyContext& ctx)
    : config_(config),
      buffer_bytes_(ctx.buffer_bytes),
      mix_tracker_(ctx.mix_tracker),
      h_levels_(std::clamp(config.vrn_fixed_levels, 1,
                           kMaxHorizontalLevels)),
      h_merge_(config.vrn_fixed_merge),
      n_cap_(std::max(2, config.vrn_initial_capacity_buffers)),
      counters_(h_levels_, h_merge_ == MergePolicy::kTiering, 0, 0) {
  if (config_.vrn_self_tuning) {
    Retune();
  } else {
    RearmCounters();
  }
}

std::string VertiorizonPolicy::name() const {
  if (config_.vrn_self_tuning) return "vertiorizon";
  return config_.vrn_fixed_merge == MergePolicy::kTiering
             ? "vertiorizon-fixed-tiering"
             : "vertiorizon-fixed-leveling";
}

MergeMode VertiorizonPolicy::FlushMode(const Version& v) const {
  return h_merge_ == MergePolicy::kTiering ? MergeMode::kNewRun
                                           : MergeMode::kMergeIntoRun;
}

uint64_t VertiorizonPolicy::HorizontalBytes(const Version& v) const {
  uint64_t total = 0;
  const int limit =
      std::min(kMaxHorizontalLevels, static_cast<int>(v.levels.size()));
  for (int i = 0; i < limit; i++) total += v.levels[i].TotalBytes();
  return total;
}

uint64_t VertiorizonPolicy::HorizontalCapacityBytes() const {
  return n_cap_ * buffer_bytes_;
}

double VertiorizonPolicy::TPrime() const {
  const double T = config_.size_ratio;
  return config_.vrn_optimize_ratio ? T / std::sqrt(2.0) : T;
}

uint64_t VertiorizonPolicy::V1CapacityBytes() const {
  return static_cast<uint64_t>(
      static_cast<double>(HorizontalCapacityBytes()) * TPrime());
}

uint64_t VertiorizonPolicy::V2CapacityBytes() const {
  const double T = config_.size_ratio;
  return static_cast<uint64_t>(
      static_cast<double>(HorizontalCapacityBytes()) * T * T);
}

uint64_t VertiorizonPolicy::CurrentDelta() const {
  if (!config_.skew_adaptation || h_merge_ != MergePolicy::kLeveling) {
    return 0;
  }
  return theory::SkewDelta(config_.skew_alpha);
}

void VertiorizonPolicy::Retune() {
  WorkloadMix mix = config_.expected_mix;
  if (config_.vrn_measure_mix && mix_tracker_ != nullptr &&
      mix_tracker_->total() >= 100) {
    mix = mix_tracker_->Estimate();
  }
  mix.Normalize();

  tuning::HorizontalCostModel model;
  model.capacity_buffers = n_cap_;
  model.bloom_fpr = BloomFalsePositiveRate(config_.bloom_bits_per_key);
  model.page_entries = std::max(1.0, config_.page_entries);

  const tuning::NavigatorResult best =
      tuning::Navigate(model, mix, kMaxHorizontalLevels);
  h_levels_ = std::clamp(best.levels, 1, kMaxHorizontalLevels);
  h_merge_ = best.merge == tuning::HorizontalMerge::kTiering
                 ? MergePolicy::kTiering
                 : MergePolicy::kLeveling;
  RearmCounters();
}

void VertiorizonPolicy::RearmCounters() {
  if (h_merge_ == MergePolicy::kTiering) {
    k_ = theory::FindK(std::max<uint64_t>(2, n_cap_),
                       static_cast<uint64_t>(h_levels_));
    counters_ = HorizontalCounters(h_levels_, /*tiering=*/true, k_, 0);
  } else {
    k_ = 0;
    counters_ =
        HorizontalCounters(h_levels_, /*tiering=*/false, 0, CurrentDelta());
  }
}

void VertiorizonPolicy::OnFlushCompleted(const Version& v) {
  pending_cascade_ = counters_.OnFlush();
  if (HorizontalBytes(v) >= HorizontalCapacityBytes()) {
    pending_clear_ = true;
    pending_cascade_ = -1;  // Superseded by the clear.
  }
}

std::optional<CompactionRequest> VertiorizonPolicy::PickCompaction(
    const Version& v) {
  // 1. Horizontal part full → full compaction into V1.
  if (pending_clear_) {
    pending_clear_ = false;
    auto req = MakeCascadeRequest(v, 0, kMaxHorizontalLevels - 1,
                                  /*merge_into_existing=*/true,
                                  "vertiorizon-clear");
    // MakeCascadeRequest targets base+cascade_end+1 = kMaxHorizontalLevels,
    // which is exactly V1, merging into its run when present.
    if (req.has_value()) return req;
  }

  // 2. Internal horizontal cascade.
  if (pending_cascade_ >= 0) {
    const int e = pending_cascade_;
    pending_cascade_ = -1;
    if (e + 1 < h_levels_) {
      return MakeCascadeRequest(v, 0, e,
                                h_merge_ == MergePolicy::kLeveling,
                                "vertiorizon-horizontal");
    }
    // A cascade that would spill past the active horizontal levels is
    // deferred to the capacity clear (the part is nearly full anyway).
    pending_clear_ = true;
    return PickCompaction(v);
  }

  // 3. V1 over capacity → single-file partial compactions into V2.
  const int v1 = v1_level();
  const int v2 = v2_level();
  if (v1 < static_cast<int>(v.levels.size()) && !v.levels[v1].empty() &&
      v.levels[v1].TotalBytes() > V1CapacityBytes()) {
    const SortedRun& run = v.levels[v1].runs[0];
    // Round-robin pick.
    const FileMetaPtr* picked = &run.files.front();
    if (!v1_cursor_.empty()) {
      for (const auto& f : run.files) {
        if (f->smallest.user_key().compare(Slice(v1_cursor_)) > 0) {
          picked = &f;
          break;
        }
      }
    }
    v1_cursor_ = (*picked)->largest.user_key().ToString();
    CompactionRequest req;
    req.inputs.push_back({v1, run.run_id, {(*picked)->number}});
    req.output_level = v2;
    if (v2 < static_cast<int>(v.levels.size()) && !v.levels[v2].empty()) {
      req.output_run_id = v.levels[v2].runs[0].run_id;
    }
    req.reason = "vertiorizon-partial-v1v2";
    return req;
  }

  // 4. V2 over capacity → arm a resize for the next clear boundary.
  if (v2 < static_cast<int>(v.levels.size()) &&
      v.levels[v2].TotalBytes() > V2CapacityBytes()) {
    pending_resize_ = true;
  }
  return std::nullopt;
}

void VertiorizonPolicy::OnCompactionCompleted(const CompactionRequest& req,
                                              const Version& v) {
  if (req.reason.rfind("vertiorizon-clear", 0) != 0) return;
  // Clear boundary: the horizontal part is empty — the free moment to
  // resize and redesign (§5.1, §5.2).
  if (pending_resize_) {
    const double T = config_.size_ratio;
    n_cap_ = static_cast<uint64_t>(
        std::ceil(static_cast<double>(n_cap_) * (1.0 + 1.0 / T)));
    pending_resize_ = false;
  }
  if (config_.vrn_self_tuning) {
    Retune();
  } else {
    RearmCounters();
  }
}

std::vector<LevelFilterInfo> VertiorizonPolicy::FilterInfo(
    const Version& v) const {
  std::vector<LevelFilterInfo> info(v.levels.size());
  const uint64_t entries = v.TotalEntries();
  uint64_t payload = 0;
  for (const auto& l : v.levels) payload += l.PayloadBytes();
  const double entry_bytes =
      entries > 0 ? static_cast<double>(payload) / entries : 1024.0;
  const double to_entries = 1.0 / std::max(1.0, entry_bytes);

  for (size_t i = 0; i < v.levels.size(); i++) {
    info[i].current_entries = v.levels[i].TotalEntries();
    if (static_cast<int>(i) < kMaxHorizontalLevels) {
      // Horizontal levels share the part's capacity and oscillate
      // empty ↔ full between clears (§5.4's motivation).
      info[i].capacity_entries = static_cast<uint64_t>(
          static_cast<double>(HorizontalCapacityBytes()) * to_entries);
      info[i].expected_fill = 0.5;
    } else if (static_cast<int>(i) == v1_level()) {
      info[i].capacity_entries = static_cast<uint64_t>(
          static_cast<double>(V1CapacityBytes()) * to_entries);
      info[i].expected_fill = 1.0;  // Partial compaction keeps V1 near full.
    } else {
      info[i].capacity_entries = static_cast<uint64_t>(
          static_cast<double>(V2CapacityBytes()) * to_entries);
      info[i].expected_fill = 1.0;
    }
  }
  return info;
}

std::string VertiorizonPolicy::EncodeState() const {
  std::string out;
  PutVarint64(&out, static_cast<uint64_t>(h_levels_));
  out.push_back(h_merge_ == MergePolicy::kTiering ? 1 : 0);
  PutVarint64(&out, n_cap_);
  PutVarint64(&out, k_);
  counters_.EncodeTo(&out);
  PutVarint64(&out, static_cast<uint64_t>(pending_cascade_ + 1));
  out.push_back(pending_clear_ ? 1 : 0);
  out.push_back(pending_resize_ ? 1 : 0);
  PutLengthPrefixedSlice(&out, Slice(v1_cursor_));
  return out;
}

bool VertiorizonPolicy::DecodeState(const std::string& state) {
  if (state.empty()) return true;
  Slice input(state);
  uint64_t levels, pending;
  if (!GetVarint64(&input, &levels) || input.empty()) return false;
  h_levels_ = static_cast<int>(levels);
  h_merge_ = input[0] != 0 ? MergePolicy::kTiering : MergePolicy::kLeveling;
  input.remove_prefix(1);
  if (!GetVarint64(&input, &n_cap_) || !GetVarint64(&input, &k_) ||
      !counters_.DecodeFrom(&input) || !GetVarint64(&input, &pending) ||
      input.size() < 2) {
    return false;
  }
  pending_cascade_ = static_cast<int>(pending) - 1;
  pending_clear_ = input[0] != 0;
  pending_resize_ = input[1] != 0;
  input.remove_prefix(2);
  Slice cursor;
  if (!GetLengthPrefixedSlice(&input, &cursor)) return false;
  v1_cursor_ = cursor.ToString();
  return true;
}

}  // namespace talus
