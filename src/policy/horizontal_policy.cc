#include "policy/horizontal_policy.h"

#include <algorithm>

#include "theory/binomial.h"
#include "theory/schemes.h"
#include "util/coding.h"

namespace talus {

HorizontalCounters::HorizontalCounters(int levels, bool tiering,
                                       uint64_t init_value, uint64_t delta)
    : counters_(std::max(1, levels), init_value),
      tiering_(tiering),
      delta_(delta) {}

int HorizontalCounters::OnFlush() {
  const int levels = static_cast<int>(counters_.size());
  int cascade_end = -1;
  if (tiering_) {
    if (counters_[0] > 0) counters_[0]--;
    for (int i = 0; i + 1 < levels; i++) {
      if (counters_[i] == 0) {
        cascade_end = i;
        if (counters_[i + 1] > 0) counters_[i + 1]--;
        for (int j = 0; j <= i; j++) counters_[j] = counters_[i + 1];
      } else {
        break;
      }
    }
  } else {
    counters_[0]++;
    for (int i = 0; i + 1 < levels; i++) {
      const uint64_t relax = (i == 0) ? delta_ : 0;
      if (counters_[i] > counters_[i + 1] + relax) {
        cascade_end = i;
        counters_[i + 1]++;
        counters_[i] = 0;
      } else {
        break;
      }
    }
  }
  return cascade_end;
}

bool HorizontalCounters::Drained() const {
  for (uint64_t c : counters_) {
    if (c != 0) return false;
  }
  return true;
}

void HorizontalCounters::Rearm(uint64_t init_value) {
  std::fill(counters_.begin(), counters_.end(), init_value);
}

void HorizontalCounters::EncodeTo(std::string* out) const {
  PutVarint64(out, counters_.size());
  for (uint64_t c : counters_) PutVarint64(out, c);
  PutVarint64(out, delta_);
  out->push_back(tiering_ ? 1 : 0);
}

bool HorizontalCounters::DecodeFrom(Slice* input) {
  uint64_t n;
  if (!GetVarint64(input, &n) || n == 0 || n > 1024) return false;
  counters_.resize(n);
  for (uint64_t i = 0; i < n; i++) {
    if (!GetVarint64(input, &counters_[i])) return false;
  }
  if (!GetVarint64(input, &delta_) || input->empty()) return false;
  tiering_ = (*input)[0] != 0;
  input->remove_prefix(1);
  return true;
}

std::optional<CompactionRequest> MakeCascadeRequest(const Version& v,
                                                    int base_level,
                                                    int cascade_end,
                                                    bool merge_into_existing,
                                                    const std::string& tag) {
  CompactionRequest req;
  bool any_input = false;
  for (int i = 0; i <= cascade_end; i++) {
    const int level = base_level + i;
    if (level >= static_cast<int>(v.levels.size())) break;
    for (const auto& run : v.levels[level].runs) {
      req.inputs.push_back({level, run.run_id, {}});
      any_input = true;
    }
  }
  if (!any_input) return std::nullopt;  // Cascade over empty levels: no-op.
  req.output_level = base_level + cascade_end + 1;
  if (merge_into_existing &&
      req.output_level < static_cast<int>(v.levels.size()) &&
      !v.levels[req.output_level].empty()) {
    req.output_run_id = v.levels[req.output_level].runs[0].run_id;
  }
  req.reason = tag + "-cascade[0.." + std::to_string(cascade_end) + "]";
  return req;
}

// ---------------------------------------------------------------------------
// Horizontal-leveling (Algorithm 1).
// ---------------------------------------------------------------------------

HorizontalLevelingPolicy::HorizontalLevelingPolicy(
    const GrowthPolicyConfig& config, const PolicyContext& ctx)
    : config_(config),
      counters_(config.horizontal_levels, /*tiering=*/false, 0,
                config.skew_adaptation ? theory::SkewDelta(config.skew_alpha)
                                       : 0) {}

void HorizontalLevelingPolicy::OnFlushCompleted(const Version& v) {
  pending_cascade_ = counters_.OnFlush();
}

std::optional<CompactionRequest> HorizontalLevelingPolicy::PickCompaction(
    const Version& v) {
  if (pending_cascade_ < 0) return std::nullopt;
  const int e = pending_cascade_;
  pending_cascade_ = -1;
  return MakeCascadeRequest(v, 0, e, /*merge_into_existing=*/true,
                            "horizontal-leveling");
}

std::vector<LevelFilterInfo> HorizontalLevelingPolicy::FilterInfo(
    const Version& v) const {
  std::vector<LevelFilterInfo> info(v.levels.size());
  for (size_t i = 0; i < v.levels.size(); i++) {
    info[i].current_entries = v.levels[i].TotalEntries();
    info[i].capacity_entries = 0;  // Horizontal levels grow unboundedly.
    // Full compactions repeatedly empty horizontal levels; a level averages
    // about half the occupancy a capacity-based layout would assume (§5.4).
    info[i].expected_fill = 0.5;
  }
  return info;
}

std::string HorizontalLevelingPolicy::EncodeState() const {
  std::string out;
  counters_.EncodeTo(&out);
  PutVarint64(&out, static_cast<uint64_t>(pending_cascade_ + 1));
  return out;
}

bool HorizontalLevelingPolicy::DecodeState(const std::string& state) {
  if (state.empty()) return true;
  Slice input(state);
  uint64_t pending;
  if (!counters_.DecodeFrom(&input) || !GetVarint64(&input, &pending)) {
    return false;
  }
  pending_cascade_ = static_cast<int>(pending) - 1;
  return true;
}

// ---------------------------------------------------------------------------
// Horizontal-tiering (Algorithm 2).
// ---------------------------------------------------------------------------

namespace {

uint64_t InitialK(const GrowthPolicyConfig& config, uint64_t buffer_bytes) {
  // Algorithm 2, line 2: smallest k with C(k+ℓ-1, ℓ) ≥ N/B.
  uint64_t flushes = 0;
  if (config.horizontal_data_size > 0 && buffer_bytes > 0) {
    flushes = (config.horizontal_data_size + buffer_bytes - 1) / buffer_bytes;
  }
  if (flushes < 2) flushes = 2;  // Unknown N: start small, re-arm on drain.
  return theory::FindK(flushes,
                       static_cast<uint64_t>(config.horizontal_levels));
}

}  // namespace

HorizontalTieringPolicy::HorizontalTieringPolicy(
    const GrowthPolicyConfig& config, const PolicyContext& ctx)
    : config_(config),
      buffer_bytes_(ctx.buffer_bytes),
      k_(InitialK(config, ctx.buffer_bytes)),
      counters_(config.horizontal_levels, /*tiering=*/true, k_, 0) {}

void HorizontalTieringPolicy::OnFlushCompleted(const Version& v) {
  pending_cascade_ = counters_.OnFlush();
  if (counters_.Drained()) {
    // Data exceeded the configured estimate: continue the pattern one
    // granularity coarser (larger data ⇒ larger k, §4.2).
    k_ += 1;
    counters_.Rearm(k_);
  }
}

std::optional<CompactionRequest> HorizontalTieringPolicy::PickCompaction(
    const Version& v) {
  if (pending_cascade_ < 0) return std::nullopt;
  const int e = pending_cascade_;
  pending_cascade_ = -1;
  return MakeCascadeRequest(v, 0, e, /*merge_into_existing=*/false,
                            "horizontal-tiering");
}

std::vector<LevelFilterInfo> HorizontalTieringPolicy::FilterInfo(
    const Version& v) const {
  std::vector<LevelFilterInfo> info(v.levels.size());
  for (size_t i = 0; i < v.levels.size(); i++) {
    info[i].current_entries = v.levels[i].TotalEntries();
    info[i].capacity_entries = 0;
    info[i].expected_fill = 0.5;
  }
  return info;
}

std::string HorizontalTieringPolicy::EncodeState() const {
  std::string out;
  PutVarint64(&out, k_);
  counters_.EncodeTo(&out);
  PutVarint64(&out, static_cast<uint64_t>(pending_cascade_ + 1));
  return out;
}

bool HorizontalTieringPolicy::DecodeState(const std::string& state) {
  if (state.empty()) return true;
  Slice input(state);
  uint64_t pending;
  if (!GetVarint64(&input, &k_) || !counters_.DecodeFrom(&input) ||
      !GetVarint64(&input, &pending)) {
    return false;
  }
  pending_cascade_ = static_cast<int>(pending) - 1;
  return true;
}

}  // namespace talus
