// Factory and named presets for the growth policies (the paper's Figure 7
// method roster).
#include "policy/lazy_leveling_policy.h"
#include "policy/policy_config.h"
#include "policy/universal_policy.h"
#include "policy/vertical_policy.h"
#include "policy/vertiorizon_policy.h"

namespace talus {

std::string GrowthPolicyConfig::Label() const {
  switch (scheme) {
    case GrowthScheme::kVertical:
      if (dynamic_level_bytes) return "RocksDB-Tuned";
      if (merge == MergePolicy::kLeveling) {
        return granularity == Granularity::kPartial ? "VT-Level-Part"
                                                    : "VT-Level-Full";
      }
      return granularity == Granularity::kPartial ? "VT-Tier-Part"
                                                  : "VT-Tier-Full";
    case GrowthScheme::kHorizontalLeveling:
      return "HR-Level";
    case GrowthScheme::kHorizontalTiering:
      return "HR-Tier";
    case GrowthScheme::kLazyLeveling:
      return lazy_embed_vertiorizon ? "Lazy-Level+VRN" : "Lazy-Level";
    case GrowthScheme::kUniversal:
      return "Universal";
    case GrowthScheme::kVertiorizon:
      if (vrn_self_tuning) return "Vertiorizon";
      return vrn_fixed_merge == MergePolicy::kTiering ? "VRN-Tier"
                                                      : "VRN-Level";
  }
  return "unknown";
}

GrowthPolicyConfig GrowthPolicyConfig::VTLevelPart(double T) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kVertical;
  c.merge = MergePolicy::kLeveling;
  c.granularity = Granularity::kPartial;
  c.size_ratio = T;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VTLevelFull(double T) {
  GrowthPolicyConfig c = VTLevelPart(T);
  c.granularity = Granularity::kFull;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VTTierPart(double T) {
  GrowthPolicyConfig c = VTLevelPart(T);
  c.merge = MergePolicy::kTiering;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VTTierFull(double T) {
  GrowthPolicyConfig c = VTTierPart(T);
  c.granularity = Granularity::kFull;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::RocksDBTuned() {
  // Mirrors the paper's tuned baseline: dynamic level bytes, T = 10,
  // kOldestSmallestSeqFirst file picking, partial leveling.
  GrowthPolicyConfig c = VTLevelPart(10.0);
  c.dynamic_level_bytes = true;
  c.file_pick = FilePick::kOldestSmallestSeqFirst;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::Universal() {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kUniversal;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::HRLevel(int levels) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kHorizontalLeveling;
  c.horizontal_levels = levels;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::HRTier(int levels,
                                              uint64_t data_size) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kHorizontalTiering;
  c.horizontal_levels = levels;
  c.horizontal_data_size = data_size;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VRNLevel(double T) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kVertiorizon;
  c.size_ratio = T;
  c.vrn_self_tuning = false;
  c.vrn_fixed_merge = MergePolicy::kLeveling;
  c.vrn_fixed_levels = 2;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VRNTier(double T) {
  GrowthPolicyConfig c = VRNLevel(T);
  c.vrn_fixed_merge = MergePolicy::kTiering;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::Vertiorizon(double T,
                                                   WorkloadMix mix) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kVertiorizon;
  c.size_ratio = T;
  c.vrn_self_tuning = true;
  c.expected_mix = mix;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::LazyLeveling(double T, int levels,
                                                    bool embed) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kLazyLeveling;
  c.size_ratio = T;
  c.lazy_levels = levels;
  c.lazy_embed_vertiorizon = embed;
  return c;
}

std::unique_ptr<GrowthPolicy> CreateGrowthPolicy(
    const GrowthPolicyConfig& config, const PolicyContext& ctx) {
  switch (config.scheme) {
    case GrowthScheme::kVertical:
      return std::make_unique<VerticalPolicy>(config, ctx);
    case GrowthScheme::kHorizontalLeveling:
      return std::make_unique<HorizontalLevelingPolicy>(config, ctx);
    case GrowthScheme::kHorizontalTiering:
      return std::make_unique<HorizontalTieringPolicy>(config, ctx);
    case GrowthScheme::kLazyLeveling:
      return std::make_unique<LazyLevelingPolicy>(config, ctx);
    case GrowthScheme::kUniversal:
      return std::make_unique<UniversalPolicy>(config, ctx);
    case GrowthScheme::kVertiorizon:
      return std::make_unique<VertiorizonPolicy>(config, ctx);
  }
  return nullptr;
}

}  // namespace talus
