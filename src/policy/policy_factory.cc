// Factory and named presets for the growth policies (the paper's Figure 7
// method roster).
#include <cstdio>

#include "policy/lazy_leveling_policy.h"
#include "policy/policy_config.h"
#include "policy/universal_policy.h"
#include "policy/vertical_policy.h"
#include "policy/vertiorizon_policy.h"

namespace talus {

std::string GrowthPolicyConfig::Label() const {
  switch (scheme) {
    case GrowthScheme::kVertical:
      if (dynamic_level_bytes) return "RocksDB-Tuned";
      if (merge == MergePolicy::kLeveling) {
        return granularity == Granularity::kPartial ? "VT-Level-Part"
                                                    : "VT-Level-Full";
      }
      return granularity == Granularity::kPartial ? "VT-Tier-Part"
                                                  : "VT-Tier-Full";
    case GrowthScheme::kHorizontalLeveling:
      return "HR-Level";
    case GrowthScheme::kHorizontalTiering:
      return "HR-Tier";
    case GrowthScheme::kLazyLeveling:
      return lazy_embed_vertiorizon ? "Lazy-Level+VRN" : "Lazy-Level";
    case GrowthScheme::kUniversal:
      return "Universal";
    case GrowthScheme::kVertiorizon:
      if (vrn_self_tuning) return "Vertiorizon";
      return vrn_fixed_merge == MergePolicy::kTiering ? "VRN-Tier"
                                                      : "VRN-Level";
  }
  return "unknown";
}

GrowthPolicyConfig GrowthPolicyConfig::VTLevelPart(double T) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kVertical;
  c.merge = MergePolicy::kLeveling;
  c.granularity = Granularity::kPartial;
  c.size_ratio = T;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VTLevelFull(double T) {
  GrowthPolicyConfig c = VTLevelPart(T);
  c.granularity = Granularity::kFull;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VTTierPart(double T) {
  GrowthPolicyConfig c = VTLevelPart(T);
  c.merge = MergePolicy::kTiering;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VTTierFull(double T) {
  GrowthPolicyConfig c = VTTierPart(T);
  c.granularity = Granularity::kFull;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::RocksDBTuned() {
  // Mirrors the paper's tuned baseline: dynamic level bytes, T = 10,
  // kOldestSmallestSeqFirst file picking, partial leveling.
  GrowthPolicyConfig c = VTLevelPart(10.0);
  c.dynamic_level_bytes = true;
  c.file_pick = FilePick::kOldestSmallestSeqFirst;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::Universal() {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kUniversal;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::HRLevel(int levels) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kHorizontalLeveling;
  c.horizontal_levels = levels;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::HRTier(int levels,
                                              uint64_t data_size) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kHorizontalTiering;
  c.horizontal_levels = levels;
  c.horizontal_data_size = data_size;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VRNLevel(double T) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kVertiorizon;
  c.size_ratio = T;
  c.vrn_self_tuning = false;
  c.vrn_fixed_merge = MergePolicy::kLeveling;
  c.vrn_fixed_levels = 2;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::VRNTier(double T) {
  GrowthPolicyConfig c = VRNLevel(T);
  c.vrn_fixed_merge = MergePolicy::kTiering;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::Vertiorizon(double T,
                                                   WorkloadMix mix) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kVertiorizon;
  c.size_ratio = T;
  c.vrn_self_tuning = true;
  c.expected_mix = mix;
  return c;
}

GrowthPolicyConfig GrowthPolicyConfig::LazyLeveling(double T, int levels,
                                                    bool embed) {
  GrowthPolicyConfig c;
  c.scheme = GrowthScheme::kLazyLeveling;
  c.size_ratio = T;
  c.lazy_levels = levels;
  c.lazy_embed_vertiorizon = embed;
  return c;
}

std::string EncodeGrowthPolicyConfig(const GrowthPolicyConfig& c) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "v1 scheme=%d merge=%d granularity=%d size_ratio=%.9g dyn=%d pick=%d "
      "hlevels=%d hdata=%llu skew=%d alpha=%.9g lazy=%d embed=%d "
      "urun=%d usa=%.9g vcap=%d vself=%d vmerge=%d vlevels=%d vopt=%d "
      "mix=%.9g,%.9g,%.9g vmeasure=%d bits=%.9g pentries=%.9g",
      static_cast<int>(c.scheme), static_cast<int>(c.merge),
      static_cast<int>(c.granularity), c.size_ratio,
      c.dynamic_level_bytes ? 1 : 0, static_cast<int>(c.file_pick),
      c.horizontal_levels,
      static_cast<unsigned long long>(c.horizontal_data_size),
      c.skew_adaptation ? 1 : 0, c.skew_alpha, c.lazy_levels,
      c.lazy_embed_vertiorizon ? 1 : 0, c.universal_run_trigger,
      c.universal_max_size_amp, c.vrn_initial_capacity_buffers,
      c.vrn_self_tuning ? 1 : 0, static_cast<int>(c.vrn_fixed_merge),
      c.vrn_fixed_levels, c.vrn_optimize_ratio ? 1 : 0,
      c.expected_mix.updates, c.expected_mix.point_lookups,
      c.expected_mix.range_lookups, c.vrn_measure_mix ? 1 : 0,
      c.bloom_bits_per_key, c.page_entries);
  return buf;
}

bool DecodeGrowthPolicyConfig(const std::string& encoded,
                              GrowthPolicyConfig* config) {
  int scheme, merge, granularity, dyn, pick, hlevels, skew, lazy, embed;
  int urun, vcap, vself, vmerge, vlevels, vopt, vmeasure;
  unsigned long long hdata;
  double size_ratio, alpha, usa, mw, mp, mr, bits, pentries;
  const int matched = std::sscanf(
      encoded.c_str(),
      "v1 scheme=%d merge=%d granularity=%d size_ratio=%lg dyn=%d pick=%d "
      "hlevels=%d hdata=%llu skew=%d alpha=%lg lazy=%d embed=%d "
      "urun=%d usa=%lg vcap=%d vself=%d vmerge=%d vlevels=%d vopt=%d "
      "mix=%lg,%lg,%lg vmeasure=%d bits=%lg pentries=%lg",
      &scheme, &merge, &granularity, &size_ratio, &dyn, &pick, &hlevels,
      &hdata, &skew, &alpha, &lazy, &embed, &urun, &usa, &vcap, &vself,
      &vmerge, &vlevels, &vopt, &mw, &mp, &mr, &vmeasure, &bits, &pentries);
  if (matched != 25) return false;
  if (scheme < 0 || scheme > static_cast<int>(GrowthScheme::kVertiorizon)) {
    return false;
  }
  GrowthPolicyConfig c;
  c.scheme = static_cast<GrowthScheme>(scheme);
  c.merge = merge == 1 ? MergePolicy::kTiering : MergePolicy::kLeveling;
  c.granularity =
      granularity == 1 ? Granularity::kPartial : Granularity::kFull;
  c.size_ratio = size_ratio;
  c.dynamic_level_bytes = dyn != 0;
  c.file_pick = pick == 1 ? FilePick::kOldestSmallestSeqFirst
                          : FilePick::kRoundRobin;
  c.horizontal_levels = hlevels;
  c.horizontal_data_size = hdata;
  c.skew_adaptation = skew != 0;
  c.skew_alpha = alpha;
  c.lazy_levels = lazy;
  c.lazy_embed_vertiorizon = embed != 0;
  c.universal_run_trigger = urun;
  c.universal_max_size_amp = usa;
  c.vrn_initial_capacity_buffers = vcap;
  c.vrn_self_tuning = vself != 0;
  c.vrn_fixed_merge =
      vmerge == 1 ? MergePolicy::kTiering : MergePolicy::kLeveling;
  c.vrn_fixed_levels = vlevels;
  c.vrn_optimize_ratio = vopt != 0;
  c.expected_mix.updates = mw;
  c.expected_mix.point_lookups = mp;
  c.expected_mix.range_lookups = mr;
  c.vrn_measure_mix = vmeasure != 0;
  c.bloom_bits_per_key = bits;
  c.page_entries = pentries;
  *config = c;
  return true;
}

std::unique_ptr<GrowthPolicy> CreateGrowthPolicy(
    const GrowthPolicyConfig& config, const PolicyContext& ctx) {
  switch (config.scheme) {
    case GrowthScheme::kVertical:
      return std::make_unique<VerticalPolicy>(config, ctx);
    case GrowthScheme::kHorizontalLeveling:
      return std::make_unique<HorizontalLevelingPolicy>(config, ctx);
    case GrowthScheme::kHorizontalTiering:
      return std::make_unique<HorizontalTieringPolicy>(config, ctx);
    case GrowthScheme::kLazyLeveling:
      return std::make_unique<LazyLevelingPolicy>(config, ctx);
    case GrowthScheme::kUniversal:
      return std::make_unique<UniversalPolicy>(config, ctx);
    case GrowthScheme::kVertiorizon:
      return std::make_unique<VertiorizonPolicy>(config, ctx);
  }
  return nullptr;
}

}  // namespace talus
