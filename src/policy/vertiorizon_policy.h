// VertiorizonPolicy (§5): the hybrid growth scheme.
//
// Layout: level indices [0, kMaxHorizontalLevels) are reserved for the
// horizontal part (the active design uses the first ℓ of them); the two
// vertical levels are pinned at kMaxHorizontalLevels and +1. Pinning lets
// the self-tuner change ℓ freely while the horizontal part is empty without
// relocating the vertical levels.
//
//  * Horizontal part: capacity n·B; runs Algorithm 1 (leveling) or
//    Algorithm 2 (tiering) internally; on reaching capacity it is cleared
//    by one full compaction into V1.
//  * Vertical part: V1 capacity n·B·T' and V2 capacity n·B·T² with
//    T' = T/√2 (Eq. 2) when ratio optimization is on; V1 drains into V2 by
//    single-file partial compactions — the space-amplification/stall fix.
//  * Dynamic resizing: V2 reaching capacity arms a resize; at the next
//    clear, n grows by the factor (1 + 1/T).
//  * Self-tuning (§5.2): at every clear boundary the navigator re-picks
//    (merge policy, ℓ) from the cost model, fed by the configured workload
//    mix or the live mix measured by the engine.
//  * Skew adaptation (§5.3): under leveling, the first-level trigger is
//    relaxed by δ(α) per Eq. 6.
#ifndef TALUS_POLICY_VERTIORIZON_POLICY_H_
#define TALUS_POLICY_VERTIORIZON_POLICY_H_

#include "policy/horizontal_policy.h"
#include "policy/policy_config.h"
#include "tuning/cost_model.h"

namespace talus {

class VertiorizonPolicy : public GrowthPolicy {
 public:
  static constexpr int kMaxHorizontalLevels = 8;

  VertiorizonPolicy(const GrowthPolicyConfig& config,
                    const PolicyContext& ctx);

  std::string name() const override;
  MergeMode FlushMode(const Version& v) const override;
  int RequiredLevels(const Version& v) const override {
    return kMaxHorizontalLevels + 2;
  }
  void OnFlushCompleted(const Version& v) override;
  std::optional<CompactionRequest> PickCompaction(const Version& v) override;
  void OnCompactionCompleted(const CompactionRequest& req,
                             const Version& v) override;
  std::vector<LevelFilterInfo> FilterInfo(const Version& v) const override;
  std::string EncodeState() const override;
  bool DecodeState(const std::string& state) override;

  // Introspection for tests/benches.
  int horizontal_levels() const { return h_levels_; }
  MergePolicy horizontal_merge() const { return h_merge_; }
  uint64_t capacity_buffers() const { return n_cap_; }
  int v1_level() const { return kMaxHorizontalLevels; }
  int v2_level() const { return kMaxHorizontalLevels + 1; }

 private:
  uint64_t HorizontalBytes(const Version& v) const;
  uint64_t HorizontalCapacityBytes() const;
  double TPrime() const;
  uint64_t V1CapacityBytes() const;
  uint64_t V2CapacityBytes() const;
  void Retune();
  void RearmCounters();
  uint64_t CurrentDelta() const;

  GrowthPolicyConfig config_;
  uint64_t buffer_bytes_;
  const WorkloadMixTracker* mix_tracker_;  // May be null.

  // Active design.
  int h_levels_;
  MergePolicy h_merge_;
  uint64_t n_cap_;  // Horizontal capacity in buffers.
  uint64_t k_ = 0;  // Algorithm 2 initial counter (tiering only).

  HorizontalCounters counters_;
  int pending_cascade_ = -1;
  bool pending_clear_ = false;
  bool pending_resize_ = false;

  // Round-robin cursor for V1 → V2 partial compactions.
  std::string v1_cursor_;
};

}  // namespace talus

#endif  // TALUS_POLICY_VERTIORIZON_POLICY_H_
