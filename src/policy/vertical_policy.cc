#include "policy/vertical_policy.h"

#include <algorithm>
#include <cmath>

#include "util/coding.h"

namespace talus {

VerticalPolicy::VerticalPolicy(const GrowthPolicyConfig& config,
                               const PolicyContext& ctx)
    : config_(config), buffer_bytes_(ctx.buffer_bytes) {}

std::string VerticalPolicy::name() const {
  std::string n = "vertical-";
  n += config_.merge == MergePolicy::kLeveling ? "leveling" : "tiering";
  n += config_.granularity == Granularity::kFull ? "-full" : "-partial";
  if (config_.dynamic_level_bytes) n += "-dynbytes";
  return n;
}

MergeMode VerticalPolicy::FlushMode(const Version& v) const {
  return config_.merge == MergePolicy::kLeveling ? MergeMode::kMergeIntoRun
                                                 : MergeMode::kNewRun;
}

int VerticalPolicy::RequiredLevels(const Version& v) const {
  return std::max(1, v.BottommostNonEmptyLevel() + 2);
}

uint64_t VerticalPolicy::LevelCapacity(const Version& v, int level) const {
  const double T = config_.size_ratio;
  if (!config_.dynamic_level_bytes) {
    return static_cast<uint64_t>(
        static_cast<double>(buffer_bytes_) * std::pow(T, level + 1));
  }
  // RocksDB-style dynamic level bytes: capacities anchor to the actual size
  // of the bottommost level so that it is always (nearly) full; upper levels
  // shrink by T per step, floored at B·T.
  const int last = v.BottommostNonEmptyLevel();
  if (last <= 0 || level >= last) {
    return static_cast<uint64_t>(
        static_cast<double>(buffer_bytes_) * std::pow(T, level + 1));
  }
  const double last_bytes =
      static_cast<double>(v.levels[last].TotalBytes());
  const double anchored = last_bytes / std::pow(T, last - level);
  const double floor_bytes = static_cast<double>(buffer_bytes_) * T;
  return static_cast<uint64_t>(std::max(anchored, floor_bytes));
}

const FileMetaPtr& VerticalPolicy::PickFile(const SortedRun& run, int level) {
  if (config_.file_pick == FilePick::kOldestSmallestSeqFirst) {
    size_t best = 0;
    for (size_t i = 1; i < run.files.size(); i++) {
      if (run.files[i]->oldest_seq < run.files[best]->oldest_seq) best = i;
    }
    return run.files[best];
  }
  // Round-robin on the key space: first file beginning after the cursor.
  const auto it = cursors_.find(level);
  if (it != cursors_.end()) {
    for (const auto& f : run.files) {
      if (f->smallest.user_key().compare(Slice(it->second)) > 0) {
        return f;
      }
    }
  }
  return run.files.front();  // Wrap around.
}

std::optional<CompactionRequest> VerticalPolicy::PickCompaction(
    const Version& v) {
  return config_.merge == MergePolicy::kLeveling ? PickLeveling(v)
                                                 : PickTiering(v);
}

std::optional<CompactionRequest> VerticalPolicy::PickLeveling(
    const Version& v) {
  for (int i = 0; i < static_cast<int>(v.levels.size()); i++) {
    const LevelState& level = v.levels[i];
    if (level.empty()) continue;
    if (level.TotalBytes() <= LevelCapacity(v, i)) continue;

    const SortedRun& run = level.runs[0];
    CompactionRequest req;
    req.output_level = i + 1;
    const bool next_exists =
        i + 1 < static_cast<int>(v.levels.size()) && !v.levels[i + 1].empty();
    if (next_exists) {
      req.output_run_id = v.levels[i + 1].runs[0].run_id;
    }

    if (config_.granularity == Granularity::kFull) {
      req.inputs.push_back({i, run.run_id, {}});
      req.reason = "vertical-leveling-full L" + std::to_string(i);
    } else {
      const FileMetaPtr& file = PickFile(run, i);
      // Advance the round-robin cursor now: the pick is deterministic and
      // the file is consumed by this compaction.
      cursors_[i] = file->largest.user_key().ToString();
      req.inputs.push_back({i, run.run_id, {file->number}});
      req.reason = "vertical-leveling-partial L" + std::to_string(i);
    }
    return req;
  }
  return std::nullopt;
}

std::optional<CompactionRequest> VerticalPolicy::PickTiering(
    const Version& v) {
  const auto trigger = static_cast<size_t>(
      std::max(2.0, std::floor(config_.size_ratio)));
  for (int i = 0; i < static_cast<int>(v.levels.size()); i++) {
    const LevelState& level = v.levels[i];
    if (level.NumRuns() < trigger) continue;

    CompactionRequest req;
    req.output_level = i + 1;
    if (config_.granularity == Granularity::kFull) {
      // Merge every run of this level into one new run below.
      const SortedRun* widest = &level.runs[0];
      for (const auto& run : level.runs) {
        req.inputs.push_back({i, run.run_id, {}});
        if (run.files.size() > widest->files.size()) widest = &run;
      }
      // Planner hint: the widest run's file cuts are the evenest
      // subcompaction split points for this merge.
      for (size_t f = 1; f < widest->files.size(); f++) {
        req.boundary_hints.push_back(
            widest->files[f]->smallest.user_key().ToString());
      }
      req.reason = "vertical-tiering-full L" + std::to_string(i);
      return req;
    }

    // Partial tiering: move one file of the oldest run into the open
    // accumulation run at the next level. Draining only the oldest run is
    // the version-order-safe choice: everything else at this level is
    // strictly newer, so nothing newer can land below something older.
    // The accumulation run absorbs successive drains (merging overlaps)
    // until it reaches the natural run size of its level, B·T^level, then
    // seals; without the size cap runs would never consolidate and the
    // tree degenerates into ever-deeper single-file runs. The incremental
    // re-merging into the accumulation run is what gives VT-Tier-Part its
    // extra write amplification relative to full tiering, and the
    // lingering partially-drained runs its extra read amplification —
    // both effects the paper reports for this baseline.
    const SortedRun& oldest = level.runs.back();
    req.inputs.push_back({i, oldest.run_id, {oldest.files.front()->number}});
    const uint64_t acc_cap = static_cast<uint64_t>(
        static_cast<double>(buffer_bytes_) *
        std::pow(config_.size_ratio, i + 1));
    uint64_t acc = accumulation_run_[i + 1];
    if (acc != 0) {
      const SortedRun* acc_run =
          i + 1 < static_cast<int>(v.levels.size())
              ? v.levels[i + 1].FindRun(acc)
              : nullptr;
      if (acc_run == nullptr || acc_run->TotalBytes() >= acc_cap) {
        acc = 0;  // Seal: the next output starts a fresh run.
        accumulation_run_[i + 1] = 0;
      }
    }
    if (acc != 0) {
      req.output_run_id = acc;
    }
    req.reason = "vertical-tiering-partial L" + std::to_string(i);
    return req;
  }
  return std::nullopt;
}

void VerticalPolicy::OnCompactionCompleted(const CompactionRequest& req,
                                           const Version& v) {
  if (req.inputs.empty()) return;
  if (config_.granularity == Granularity::kPartial &&
      config_.merge == MergePolicy::kTiering &&
      req.inputs[0].file_numbers.size() == 1) {
    // Partial tiering: remember/refresh the accumulation run — the newest
    // run of the output level after this move.
    if (req.output_level < static_cast<int>(v.levels.size()) &&
        !v.levels[req.output_level].empty()) {
      accumulation_run_[req.output_level] =
          v.levels[req.output_level].runs[0].run_id;
    }
  }
}

std::vector<LevelFilterInfo> VerticalPolicy::FilterInfo(
    const Version& v) const {
  std::vector<LevelFilterInfo> info(v.levels.size());
  // Convert byte capacities to entry capacities with the observed mean
  // entry size (capacity semantics are bytes engine-side, entries for the
  // filter optimizer).
  const uint64_t entries = v.TotalEntries();
  const uint64_t payload =
      [&] {
        uint64_t p = 0;
        for (const auto& l : v.levels) p += l.PayloadBytes();
        return p;
      }();
  const double entry_bytes =
      entries > 0 ? static_cast<double>(payload) / entries : 1024.0;
  for (size_t i = 0; i < v.levels.size(); i++) {
    info[i].current_entries = v.levels[i].TotalEntries();
    info[i].capacity_entries = static_cast<uint64_t>(
        static_cast<double>(LevelCapacity(v, static_cast<int>(i))) /
        std::max(1.0, entry_bytes));
    // Vertical levels with partial compaction hover near capacity; with
    // full compaction they oscillate, hence 0.5 expected fill.
    info[i].expected_fill =
        config_.granularity == Granularity::kPartial ? 1.0 : 0.5;
  }
  return info;
}

std::string VerticalPolicy::EncodeState() const {
  std::string out;
  PutVarint64(&out, cursors_.size());
  for (const auto& [level, key] : cursors_) {
    PutVarint64(&out, static_cast<uint64_t>(level));
    PutLengthPrefixedSlice(&out, Slice(key));
  }
  PutVarint64(&out, accumulation_run_.size());
  for (const auto& [level, run] : accumulation_run_) {
    PutVarint64(&out, static_cast<uint64_t>(level));
    PutVarint64(&out, run);
  }
  return out;
}

bool VerticalPolicy::DecodeState(const std::string& state) {
  if (state.empty()) return true;  // Fresh DB.
  Slice input(state);
  uint64_t n;
  if (!GetVarint64(&input, &n)) return false;
  cursors_.clear();
  for (uint64_t i = 0; i < n; i++) {
    uint64_t level;
    Slice key;
    if (!GetVarint64(&input, &level) ||
        !GetLengthPrefixedSlice(&input, &key)) {
      return false;
    }
    cursors_[static_cast<int>(level)] = key.ToString();
  }
  if (!GetVarint64(&input, &n)) return false;
  accumulation_run_.clear();
  for (uint64_t i = 0; i < n; i++) {
    uint64_t level, run;
    if (!GetVarint64(&input, &level) || !GetVarint64(&input, &run)) {
      return false;
    }
    accumulation_run_[static_cast<int>(level)] = run;
  }
  return true;
}

}  // namespace talus
