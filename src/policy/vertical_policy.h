// VerticalPolicy: the vertical growth scheme of §3 — fixed level capacities
// B·T^(i+1) (0-based level i), a new level appended as data grows. Covers
// the paper's four vertical baselines and RocksDB-Tuned:
//
//   * leveling × {full, partial}:  VT-Level-Full / VT-Level-Part
//   * tiering  × {full, partial}:  VT-Tier-Full  / VT-Tier-Part
//   * dynamic_level_bytes + kOldestSmallestSeqFirst: RocksDB-Tuned
//
// Partial granularity moves one file per compaction (round-robin key cursor
// or oldest-sequence-first). Partial tiering drains the oldest run of an
// over-trigger level file-by-file into an "accumulation run" at the next
// level; lingering partially-drained runs are exactly why the paper finds
// VT-Tier-Part read-amplification heavy.
#ifndef TALUS_POLICY_VERTICAL_POLICY_H_
#define TALUS_POLICY_VERTICAL_POLICY_H_

#include <map>

#include "policy/growth_policy.h"
#include "policy/policy_config.h"

namespace talus {

class VerticalPolicy : public GrowthPolicy {
 public:
  VerticalPolicy(const GrowthPolicyConfig& config, const PolicyContext& ctx);

  std::string name() const override;
  MergeMode FlushMode(const Version& v) const override;
  int RequiredLevels(const Version& v) const override;
  std::optional<CompactionRequest> PickCompaction(const Version& v) override;
  void OnCompactionCompleted(const CompactionRequest& req,
                             const Version& v) override;
  std::vector<LevelFilterInfo> FilterInfo(const Version& v) const override;
  std::string EncodeState() const override;
  bool DecodeState(const std::string& state) override;

  /// Capacity of level i in bytes under the current sizing mode.
  uint64_t LevelCapacity(const Version& v, int level) const;

 private:
  std::optional<CompactionRequest> PickLeveling(const Version& v);
  std::optional<CompactionRequest> PickTiering(const Version& v);
  /// Chooses one file from `run` honoring the configured FilePick.
  const FileMetaPtr& PickFile(const SortedRun& run, int level);

  GrowthPolicyConfig config_;
  uint64_t buffer_bytes_;

  // Partial-compaction round-robin cursors: per-level largest user key of
  // the last picked file.
  std::map<int, std::string> cursors_;
  // Partial tiering: per-target-level open accumulation run id (0 = none).
  std::map<int, uint64_t> accumulation_run_;
};

}  // namespace talus

#endif  // TALUS_POLICY_VERTICAL_POLICY_H_
