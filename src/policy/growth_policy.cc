#include "policy/growth_policy.h"

namespace talus {

std::vector<LevelFilterInfo> GrowthPolicy::FilterInfo(const Version& v) const {
  // Default: no capacity knowledge; size filters from current occupancy.
  std::vector<LevelFilterInfo> info(v.levels.size());
  for (size_t i = 0; i < v.levels.size(); i++) {
    info[i].current_entries = v.levels[i].TotalEntries();
    info[i].capacity_entries = 0;
    info[i].expected_fill = 1.0;
  }
  return info;
}

}  // namespace talus
