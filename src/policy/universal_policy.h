// UniversalPolicy: analog of RocksDB's universal compaction — all data lives
// in one logical level as age-ordered sorted runs; compactions merge
// age-adjacent runs. Trigger precedence mirrors RocksDB:
//   1. space amplification: if the young runs' total exceeds
//      `max_size_amp` × the oldest run, compact everything into one run;
//   2. size ratio: merge the maximal young prefix where each next run is no
//      larger than the accumulated size;
//   3. run count: merge just enough of the newest runs to return under the
//      trigger.
// The paper uses this as the "Universal" baseline and attributes its
// underperformance to the simplistic trigger conditions — faithfully kept.
#ifndef TALUS_POLICY_UNIVERSAL_POLICY_H_
#define TALUS_POLICY_UNIVERSAL_POLICY_H_

#include "policy/growth_policy.h"
#include "policy/policy_config.h"

namespace talus {

class UniversalPolicy : public GrowthPolicy {
 public:
  UniversalPolicy(const GrowthPolicyConfig& config, const PolicyContext& ctx)
      : config_(config) {}

  std::string name() const override { return "universal"; }
  MergeMode FlushMode(const Version& v) const override {
    return MergeMode::kNewRun;
  }
  int RequiredLevels(const Version& v) const override { return 1; }
  std::optional<CompactionRequest> PickCompaction(const Version& v) override;

 private:
  GrowthPolicyConfig config_;
};

}  // namespace talus

#endif  // TALUS_POLICY_UNIVERSAL_POLICY_H_
