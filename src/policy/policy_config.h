// GrowthPolicyConfig: declarative description of a growth scheme, mirroring
// the paper's design space (§3–§5). A factory turns a config into a live
// GrowthPolicy. All eleven evaluated methods are expressible here; the named
// presets below match the paper's baseline labels (Figure 7).
#ifndef TALUS_POLICY_POLICY_CONFIG_H_
#define TALUS_POLICY_POLICY_CONFIG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "policy/growth_policy.h"
#include "tuning/workload_mix.h"

namespace talus {

enum class GrowthScheme {
  kVertical,            // §3: fixed capacities B·T^i, growing level count.
  kHorizontalLeveling,  // §3 Algorithm 1 (+ optional §5.3 skew δ).
  kHorizontalTiering,   // §4 Algorithm 2.
  kLazyLeveling,        // Dostoevsky baseline (+ optional §5.4 embedding).
  kUniversal,           // RocksDB universal-compaction analog.
  kVertiorizon,         // §5: hybrid horizontal + vertical.
};

enum class MergePolicy { kLeveling, kTiering };
enum class Granularity { kFull, kPartial };
enum class FilePick { kRoundRobin, kOldestSmallestSeqFirst };

struct GrowthPolicyConfig {
  GrowthScheme scheme = GrowthScheme::kVertical;

  // ---- Vertical scheme ----
  MergePolicy merge = MergePolicy::kLeveling;
  Granularity granularity = Granularity::kPartial;
  double size_ratio = 6.0;  // T.
  // RocksDB-Tuned: anchor capacities to the last level so it is always full.
  bool dynamic_level_bytes = false;
  FilePick file_pick = FilePick::kRoundRobin;

  // ---- Horizontal schemes ----
  int horizontal_levels = 3;  // ℓ.
  // HR-Tier: expected total data size N (bytes) for the counter init
  // (Algorithm 2 line 2). 0 means "unknown": start small and re-arm with a
  // doubled estimate whenever the counters drain.
  uint64_t horizontal_data_size = 0;
  // §5.3: relax the first-level trigger by δ derived from skewness α (Eq. 6).
  bool skew_adaptation = false;
  double skew_alpha = 0.0;  // α = U_h / B; 0 disables even when enabled.

  // ---- Lazy-leveling ----
  int lazy_levels = 4;  // L (total levels; largest is leveled).
  bool lazy_embed_vertiorizon = false;  // §5.4 embedding.

  // ---- Universal ----
  int universal_run_trigger = 4;
  double universal_max_size_amp = 2.0;

  // ---- Vertiorizon ----
  int vrn_initial_capacity_buffers = 16;  // n: horizontal capacity in buffers.
  bool vrn_self_tuning = true;
  // Fixed design when self-tuning is off (VRN-Level / VRN-Tier baselines).
  MergePolicy vrn_fixed_merge = MergePolicy::kTiering;
  int vrn_fixed_levels = 2;
  bool vrn_optimize_ratio = true;  // T' = T/√2 (Eq. 2).
  // Workload mix used by the §5.2 navigator. When measure_mix is true the
  // policy re-estimates the mix from observed operations at every
  // horizontal-part clearing instead.
  WorkloadMix expected_mix;
  bool vrn_measure_mix = false;

  // ---- Shared ----
  // False positive rate of the Bloom filters, fed to the cost model.
  double bloom_bits_per_key = 5.0;
  // Page size in entries (cost model's P). Filled by the DB from its options.
  double page_entries = 4.0;

  std::string Label() const;

  // ---- Named presets matching the paper's Figure 7 methods ----
  static GrowthPolicyConfig VTLevelPart(double T = 6.0);
  static GrowthPolicyConfig VTLevelFull(double T = 6.0);
  static GrowthPolicyConfig VTTierPart(double T = 6.0);
  static GrowthPolicyConfig VTTierFull(double T = 6.0);
  static GrowthPolicyConfig RocksDBTuned();
  static GrowthPolicyConfig Universal();
  static GrowthPolicyConfig HRLevel(int levels = 3);
  static GrowthPolicyConfig HRTier(int levels = 3, uint64_t data_size = 0);
  static GrowthPolicyConfig VRNLevel(double T = 6.0);
  static GrowthPolicyConfig VRNTier(double T = 6.0);
  static GrowthPolicyConfig Vertiorizon(double T = 6.0,
                                        WorkloadMix mix = WorkloadMix());
  static GrowthPolicyConfig LazyLeveling(double T = 6.0, int levels = 4,
                                         bool embed = false);
};

/// Instantiates the policy described by `config`.
std::unique_ptr<GrowthPolicy> CreateGrowthPolicy(
    const GrowthPolicyConfig& config, const PolicyContext& ctx);

/// Round-trips a full GrowthPolicyConfig through a single-line text form
/// (versioned, field-ordered). The manifest persists this next to the
/// policy name so a store whose policy was retuned at runtime
/// (DB::ApplyPolicyConfig, DESIGN.md §9) can re-resolve its *current*
/// design at reopen instead of failing the policy-name check against the
/// statically configured one.
std::string EncodeGrowthPolicyConfig(const GrowthPolicyConfig& config);
bool DecodeGrowthPolicyConfig(const std::string& encoded,
                              GrowthPolicyConfig* config);

}  // namespace talus

#endif  // TALUS_POLICY_POLICY_CONFIG_H_
