// Horizontal growth schemes: fixed level count ℓ, full compactions, level
// capacities growing with the data.
//
// HorizontalLevelingPolicy — Algorithm 1 (§3): counters C_i start at 0; a
// flush increments C_1; level i compacts into i+1 when C_i > C_{i+1}
// (first-level trigger relaxed by δ under §5.3 skew adaptation). Triggered
// levels always form a prefix [1..e], merged into one multi-level op
// (footnote 6).
//
// HorizontalTieringPolicy — Algorithm 2 (§4): counters start at k (smallest
// k with C(k+ℓ-1, ℓ) ≥ N/B); a flush decrements C_1; level i compacts when
// C_i = 0, then C_{i+1} -= 1 and C_j ← C_{i+1} for all j ≤ i. The resulting
// compaction sequence is read-optimal (Theorem 4.2). When the counters
// drain (the configured data size is exceeded), k is re-armed one higher so
// the decreasing-frequency pattern continues at the next scale.
//
// Both policies are reused verbatim as the horizontal part of Vertiorizon
// (vertiorizon_policy.cc) with per-phase re-arming.
#ifndef TALUS_POLICY_HORIZONTAL_POLICY_H_
#define TALUS_POLICY_HORIZONTAL_POLICY_H_

#include "policy/growth_policy.h"
#include "policy/policy_config.h"

namespace talus {

/// Shared counter machinery for the two horizontal schemes, operating over
/// the level range [base_level, base_level + levels) of a version. The
/// Vertiorizon policy embeds one of these with base_level = 0 and the
/// vertical part below.
class HorizontalCounters {
 public:
  HorizontalCounters(int levels, bool tiering, uint64_t init_value,
                     uint64_t delta);

  /// Processes one flush; returns the cascade end level e ≥ 0 (levels
  /// [0..e] should merge into e+1) or -1 when no compaction triggers.
  int OnFlush();

  bool Drained() const;
  void Rearm(uint64_t init_value);

  int levels() const { return static_cast<int>(counters_.size()); }
  const std::vector<uint64_t>& counters() const { return counters_; }
  void set_delta(uint64_t delta) { delta_ = delta; }

  void EncodeTo(std::string* out) const;
  bool DecodeFrom(Slice* input);

 private:
  std::vector<uint64_t> counters_;
  bool tiering_;
  uint64_t delta_;
};

class HorizontalLevelingPolicy : public GrowthPolicy {
 public:
  HorizontalLevelingPolicy(const GrowthPolicyConfig& config,
                           const PolicyContext& ctx);

  std::string name() const override { return "horizontal-leveling"; }
  MergeMode FlushMode(const Version& v) const override {
    return MergeMode::kMergeIntoRun;
  }
  int RequiredLevels(const Version& v) const override {
    return config_.horizontal_levels;
  }
  void OnFlushCompleted(const Version& v) override;
  std::optional<CompactionRequest> PickCompaction(const Version& v) override;
  std::vector<LevelFilterInfo> FilterInfo(const Version& v) const override;
  std::string EncodeState() const override;
  bool DecodeState(const std::string& state) override;

 private:
  GrowthPolicyConfig config_;
  HorizontalCounters counters_;
  int pending_cascade_ = -1;
};

class HorizontalTieringPolicy : public GrowthPolicy {
 public:
  HorizontalTieringPolicy(const GrowthPolicyConfig& config,
                          const PolicyContext& ctx);

  std::string name() const override { return "horizontal-tiering"; }
  MergeMode FlushMode(const Version& v) const override {
    return MergeMode::kNewRun;
  }
  int RequiredLevels(const Version& v) const override {
    return config_.horizontal_levels;
  }
  void OnFlushCompleted(const Version& v) override;
  std::optional<CompactionRequest> PickCompaction(const Version& v) override;
  std::vector<LevelFilterInfo> FilterInfo(const Version& v) const override;
  std::string EncodeState() const override;
  bool DecodeState(const std::string& state) override;

  uint64_t current_k() const { return k_; }

 private:
  GrowthPolicyConfig config_;
  uint64_t buffer_bytes_;
  uint64_t k_;
  HorizontalCounters counters_;
  int pending_cascade_ = -1;
};

/// Builds the multi-level full-compaction request for a cascade [0..e] →
/// e+1 over `v`, offset by `base_level`. `merge_into_existing` selects the
/// leveling (merge with target's run) vs tiering (fresh run) landing.
std::optional<CompactionRequest> MakeCascadeRequest(const Version& v,
                                                    int base_level,
                                                    int cascade_end,
                                                    bool merge_into_existing,
                                                    const std::string& tag);

}  // namespace talus

#endif  // TALUS_POLICY_HORIZONTAL_POLICY_H_
