#include "policy/lazy_leveling_policy.h"

#include <algorithm>
#include <cmath>

#include "theory/binomial.h"
#include "util/coding.h"

namespace talus {

LazyLevelingPolicy::LazyLevelingPolicy(const GrowthPolicyConfig& config,
                                       const PolicyContext& ctx)
    : config_(config),
      buffer_bytes_(ctx.buffer_bytes),
      counters_(std::max(1, config.lazy_levels - 1), /*tiering=*/true, 0, 0) {
  if (config_.lazy_embed_vertiorizon) {
    const uint64_t flushes = std::max<uint64_t>(
        2, UpperCapacityBytes() / std::max<uint64_t>(1, buffer_bytes_));
    k_ = theory::FindK(flushes,
                       static_cast<uint64_t>(config_.lazy_levels - 1));
    counters_.Rearm(k_);
  }
}

uint64_t LazyLevelingPolicy::UpperCapacityBytes() const {
  // Capacity of the replaced tiering structure: B·T^(L-1) (§5.4).
  return static_cast<uint64_t>(
      static_cast<double>(buffer_bytes_) *
      std::pow(config_.size_ratio, config_.lazy_levels - 1));
}

void LazyLevelingPolicy::OnFlushCompleted(const Version& v) {
  if (!config_.lazy_embed_vertiorizon) return;
  pending_cascade_ = counters_.OnFlush();

  // Horizontal part full → clear into the leveled last level.
  uint64_t upper_bytes = 0;
  for (int i = 0; i < last_level() && i < static_cast<int>(v.levels.size());
       i++) {
    upper_bytes += v.levels[i].TotalBytes();
  }
  if (upper_bytes >= UpperCapacityBytes()) {
    pending_clear_ = true;
  }
}

std::optional<CompactionRequest> LazyLevelingPolicy::PickCompaction(
    const Version& v) {
  if (config_.lazy_embed_vertiorizon) {
    if (pending_clear_) {
      pending_clear_ = false;
      pending_cascade_ = -1;  // Superseded by the full clear.
      auto req = MakeCascadeRequest(v, 0, last_level() - 1,
                                    /*merge_into_existing=*/true,
                                    "lazy-embedded-clear");
      if (req.has_value()) return req;
    }
    if (pending_cascade_ >= 0) {
      const int e = pending_cascade_;
      pending_cascade_ = -1;
      // Cascades within the horizontal part; a cascade reaching the last
      // level merges into the leveled run there.
      const bool into_last = (e + 1 == last_level());
      return MakeCascadeRequest(v, 0, e, into_last, "lazy-embedded");
    }
    return std::nullopt;
  }

  // Baseline lazy-leveling: tiering with trigger T at levels 0..L-2; runs
  // arriving at the last level merge into its single leveled run.
  const auto trigger =
      static_cast<size_t>(std::max(2.0, std::floor(config_.size_ratio)));
  for (int i = 0; i < last_level() && i < static_cast<int>(v.levels.size());
       i++) {
    const LevelState& level = v.levels[i];
    if (level.NumRuns() < trigger) continue;
    CompactionRequest req;
    for (const auto& run : level.runs) {
      req.inputs.push_back({i, run.run_id, {}});
    }
    req.output_level = i + 1;
    if (i + 1 == last_level() &&
        i + 1 < static_cast<int>(v.levels.size()) &&
        !v.levels[i + 1].empty()) {
      req.output_run_id = v.levels[i + 1].runs[0].run_id;  // Leveled landing.
    }
    req.reason = "lazy-leveling L" + std::to_string(i);
    return req;
  }
  return std::nullopt;
}

void LazyLevelingPolicy::OnCompactionCompleted(const CompactionRequest& req,
                                               const Version& v) {
  if (!config_.lazy_embed_vertiorizon) return;
  if (req.reason.rfind("lazy-embedded-clear", 0) == 0) {
    counters_.Rearm(k_);  // New phase for the emptied horizontal part.
  }
}

std::vector<LevelFilterInfo> LazyLevelingPolicy::FilterInfo(
    const Version& v) const {
  std::vector<LevelFilterInfo> info(v.levels.size());
  const uint64_t entries = v.TotalEntries();
  uint64_t payload = 0;
  for (const auto& l : v.levels) payload += l.PayloadBytes();
  const double entry_bytes =
      entries > 0 ? static_cast<double>(payload) / entries : 1024.0;
  for (size_t i = 0; i < v.levels.size(); i++) {
    info[i].current_entries = v.levels[i].TotalEntries();
    if (static_cast<int>(i) == last_level()) {
      info[i].capacity_entries = static_cast<uint64_t>(
          static_cast<double>(buffer_bytes_) *
          std::pow(config_.size_ratio, config_.lazy_levels) /
          std::max(1.0, entry_bytes));
      info[i].expected_fill = 1.0;
    } else {
      info[i].capacity_entries = static_cast<uint64_t>(
          static_cast<double>(buffer_bytes_) *
          std::pow(config_.size_ratio, i + 1) / std::max(1.0, entry_bytes));
      info[i].expected_fill = 0.5;  // Emptied by full compactions.
    }
  }
  return info;
}

std::string LazyLevelingPolicy::EncodeState() const {
  std::string out;
  PutVarint64(&out, k_);
  counters_.EncodeTo(&out);
  PutVarint64(&out, static_cast<uint64_t>(pending_cascade_ + 1));
  out.push_back(pending_clear_ ? 1 : 0);
  return out;
}

bool LazyLevelingPolicy::DecodeState(const std::string& state) {
  if (state.empty()) return true;
  Slice input(state);
  uint64_t pending;
  if (!GetVarint64(&input, &k_) || !counters_.DecodeFrom(&input) ||
      !GetVarint64(&input, &pending) || input.empty()) {
    return false;
  }
  pending_cascade_ = static_cast<int>(pending) - 1;
  pending_clear_ = input[0] != 0;
  return true;
}

}  // namespace talus
