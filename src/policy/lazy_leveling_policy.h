// LazyLevelingPolicy: Dostoevsky's lazy-leveling (Dayan & Idreos, SIGMOD'18)
// — tiering at every level except the largest, which is leveled. Two modes:
//
//  * baseline: vertical-style tiered upper levels (merge at T runs);
//  * embedded (§5.4): the upper levels are replaced by a horizontal-tiering
//    part with ℓ = L-1 levels and capacity B·T^(L-1) (the size of the
//    largest tiering level it replaces). When the part fills, a full
//    compaction merges it into the leveled last level and the counters
//    re-arm. Update cost matches the baseline; lookup cost improves by
//    Theorem 4.2 — exactly the claim Figure 10(b–e) validates.
#ifndef TALUS_POLICY_LAZY_LEVELING_POLICY_H_
#define TALUS_POLICY_LAZY_LEVELING_POLICY_H_

#include "policy/horizontal_policy.h"
#include "policy/policy_config.h"

namespace talus {

class LazyLevelingPolicy : public GrowthPolicy {
 public:
  LazyLevelingPolicy(const GrowthPolicyConfig& config,
                     const PolicyContext& ctx);

  std::string name() const override {
    return config_.lazy_embed_vertiorizon ? "lazy-leveling-vertiorizon"
                                          : "lazy-leveling";
  }
  MergeMode FlushMode(const Version& v) const override {
    return MergeMode::kNewRun;
  }
  int RequiredLevels(const Version& v) const override {
    return config_.lazy_levels;
  }
  void OnFlushCompleted(const Version& v) override;
  std::optional<CompactionRequest> PickCompaction(const Version& v) override;
  void OnCompactionCompleted(const CompactionRequest& req,
                             const Version& v) override;
  std::vector<LevelFilterInfo> FilterInfo(const Version& v) const override;
  std::string EncodeState() const override;
  bool DecodeState(const std::string& state) override;

 private:
  int last_level() const { return config_.lazy_levels - 1; }
  uint64_t UpperCapacityBytes() const;

  GrowthPolicyConfig config_;
  uint64_t buffer_bytes_;
  // Embedded mode: Algorithm 2 counters over the upper L-1 levels.
  uint64_t k_ = 0;
  HorizontalCounters counters_;
  int pending_cascade_ = -1;
  bool pending_clear_ = false;
};

}  // namespace talus

#endif  // TALUS_POLICY_LAZY_LEVELING_POLICY_H_
