// GrowthPolicy: the seam where the paper's contribution plugs into the
// engine. A policy observes the tree shape after every flush/compaction and
// answers one question: what compaction, if any, should run next?
//
// The engine loop (lsm/db.cc) is:
//
//   flush memtable as directed by FlushMode();
//   policy->OnFlushCompleted(version);
//   while (auto req = policy->PickCompaction(version)) {
//     ExecuteCompaction(*req);
//     policy->OnCompactionCompleted(*req, version);
//   }
//
// Everything the paper varies — vertical vs horizontal growth, leveling vs
// tiering merges, full vs partial granularity, counters, self-tuning — lives
// behind this interface.
#ifndef TALUS_POLICY_GROWTH_POLICY_H_
#define TALUS_POLICY_GROWTH_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "filter/filter_allocator.h"
#include "lsm/version.h"
#include "tuning/workload_mix.h"

namespace talus {

/// How data arriving at a level combines with what is already there.
enum class MergeMode {
  kMergeIntoRun,  // Leveling: merge-sort with an existing run.
  kNewRun,        // Tiering: append as a new sorted run.
};

/// A single compaction the engine should execute.
struct CompactionRequest {
  struct Input {
    int level = 0;
    uint64_t run_id = 0;
    /// Specific files to consume; empty means the whole run.
    std::vector<uint64_t> file_numbers;
  };

  /// Where a newly created output run lands in the output level's ordering.
  enum class Placement {
    kFront,          // Newest data in the level (cross-level compactions).
    kReplaceInputs,  // Takes the position of the oldest consumed input run
                     // (same-level merges, e.g. universal compaction).
  };

  std::vector<Input> inputs;
  int output_level = 0;
  /// Target run to merge into (leveling-style). The engine implicitly adds
  /// that run's overlapping files to the inputs and replaces them. nullopt
  /// creates a new run placed per `placement` (tiering-style).
  std::optional<uint64_t> output_run_id;
  Placement placement = Placement::kFront;
  /// Optional user keys the compaction planner should prefer as
  /// subcompaction split points (compaction/compaction_planner.h). Policies
  /// that know natural partition boundaries — e.g. the file cuts of the
  /// widest input run — surface them here; the planner merges the hints
  /// with the input-file boundaries it derives itself and ignores keys
  /// outside the inputs' range. Purely advisory: correctness never depends
  /// on hints.
  std::vector<std::string> boundary_hints;
  /// Debugging label, e.g. "horizontal-cascade[0..2]".
  std::string reason;
};

/// Static context a policy needs about the engine configuration.
struct PolicyContext {
  uint64_t buffer_bytes = 0;  // Write buffer capacity B, in bytes.
  /// Live operation-mix estimator owned by the DB (null outside an engine).
  /// Self-designing policies read it at re-tuning boundaries.
  const WorkloadMixTracker* mix_tracker = nullptr;
};

class GrowthPolicy {
 public:
  virtual ~GrowthPolicy() = default;

  virtual std::string name() const = 0;

  /// How a memtable flush lands in level 0: merged into the existing run
  /// (leveling) or as a new run (tiering). Consulted before every flush.
  virtual MergeMode FlushMode(const Version& v) const = 0;

  /// Number of levels the policy currently wants the version to expose.
  virtual int RequiredLevels(const Version& v) const = 0;

  virtual void OnFlushCompleted(const Version& /*v*/) {}
  virtual void OnCompactionCompleted(const CompactionRequest& /*req*/,
                                     const Version& /*v*/) {}

  /// The next compaction to run, or nullopt when the tree shape is stable.
  virtual std::optional<CompactionRequest> PickCompaction(const Version& v) = 0;

  /// Per-level capacity/occupancy forecast consumed by the filter allocator
  /// (Monkey needs capacities; the dynamic layout needs expected fill).
  virtual std::vector<LevelFilterInfo> FilterInfo(const Version& v) const;

  /// Policy state round-trip for manifest persistence (counters, phase).
  virtual std::string EncodeState() const { return {}; }
  virtual bool DecodeState(const std::string& /*state*/) { return true; }
};

}  // namespace talus

#endif  // TALUS_POLICY_GROWTH_POLICY_H_
