#include "policy/universal_policy.h"

#include <algorithm>

namespace talus {

std::optional<CompactionRequest> UniversalPolicy::PickCompaction(
    const Version& v) {
  if (v.levels.empty()) return std::nullopt;
  const LevelState& level = v.levels[0];
  const size_t trigger =
      static_cast<size_t>(std::max(2, config_.universal_run_trigger));
  if (level.NumRuns() < trigger) return std::nullopt;

  const auto& runs = level.runs;  // Index 0 = newest.

  auto make_request = [&](size_t first, size_t last,
                          const std::string& why) {
    CompactionRequest req;
    for (size_t i = first; i <= last; i++) {
      req.inputs.push_back({0, runs[i].run_id, {}});
    }
    req.output_level = 0;
    req.placement = CompactionRequest::Placement::kReplaceInputs;
    req.reason = "universal-" + why;
    return req;
  };

  // Rule 1: space amplification — young data vs the oldest run.
  uint64_t young_bytes = 0;
  for (size_t i = 0; i + 1 < runs.size(); i++) {
    young_bytes += runs[i].TotalBytes();
  }
  const uint64_t oldest_bytes = runs.back().TotalBytes();
  if (oldest_bytes > 0 &&
      static_cast<double>(young_bytes) >
          config_.universal_max_size_amp * static_cast<double>(oldest_bytes)) {
    return make_request(0, runs.size() - 1, "space-amp");
  }

  // Rule 2: size ratio — from each starting position (newest first), grow a
  // window while the next run is no larger than the accumulated size
  // (RocksDB's size_ratio check, ratio ≈ 1). Take the first window of
  // length ≥ 2. Scanning all starts keeps merges between similar-sized
  // runs, which is what bounds universal's write amplification.
  for (size_t start = 0; start + 1 < runs.size(); start++) {
    uint64_t accumulated = runs[start].TotalBytes();
    size_t end = start;
    while (end + 1 < runs.size() &&
           runs[end + 1].TotalBytes() <= accumulated) {
      end++;
      accumulated += runs[end].TotalBytes();
    }
    if (end > start) {
      return make_request(start, end, "size-ratio");
    }
  }

  // Rule 3: run count — merge the age-adjacent pair with the smallest
  // combined size (cheapest way to get back under the trigger without
  // rewriting a large old run).
  size_t best = 0;
  uint64_t best_bytes = ~0ull;
  for (size_t i = 0; i + 1 < runs.size(); i++) {
    const uint64_t combined =
        runs[i].TotalBytes() + runs[i + 1].TotalBytes();
    if (combined < best_bytes) {
      best_bytes = combined;
      best = i;
    }
  }
  return make_request(best, best + 1, "run-count");
}

}  // namespace talus
