// Shard manifest: the small root-directory file ("SHARD") that fixes a
// sharded store's partitioning forever (DESIGN.md §3). It is written once
// when the store is created and only verified afterwards: shard directories
// are physical key ranges, so reopening with a different count or different
// split points would silently misroute keys. Re-sharding is a future
// offline operation (ROADMAP), not a reopen-time option.
#ifndef TALUS_SHARD_SHARD_MANIFEST_H_
#define TALUS_SHARD_SHARD_MANIFEST_H_

#include <string>
#include <vector>

#include "env/env.h"
#include "util/status.h"

namespace talus {
namespace shard {

/// Split points of an existing sharded store (shard count is
/// boundaries.size() + 1).
struct ShardManifest {
  std::vector<std::string> boundaries;
};

/// Writes `dbpath`/SHARD. The store must be new (Open writes it exactly
/// once, before any shard directory is created).
Status WriteShardManifest(Env* env, const std::string& dbpath,
                          const ShardManifest& manifest);

/// Loads `dbpath`/SHARD. NotFound when the file does not exist (fresh
/// store or a pre-sharding single-engine directory).
Status ReadShardManifest(Env* env, const std::string& dbpath,
                         ShardManifest* manifest);

/// Name of a shard's own DB directory under the sharded root.
std::string ShardDirName(const std::string& dbpath, size_t shard);

}  // namespace shard
}  // namespace talus

#endif  // TALUS_SHARD_SHARD_MANIFEST_H_
