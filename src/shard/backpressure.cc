#include "shard/backpressure.h"

#include <chrono>

namespace talus {
namespace shard {

namespace {
exec::StallConfig Scaled(exec::StallConfig config, size_t shard_count) {
  const size_t n = shard_count == 0 ? 1 : shard_count;
  config.max_immutable_memtables *= n;
  config.l0_slowdown_runs *= n;
  config.l0_stop_runs *= n;
  return config;
}
}  // namespace

ShardBackpressure::ShardBackpressure(const exec::StallConfig& per_shard,
                                     size_t shard_count)
    : controller_(Scaled(per_shard, shard_count)),
      imm_(shard_count, 0),
      l0_(shard_count, 0) {}

void ShardBackpressure::Report(size_t shard, size_t imm_count,
                               size_t l0_runs) {
  bool decreased = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    decreased = imm_count < imm_[shard] || l0_runs < l0_[shard];
    total_imm_.fetch_add(imm_count - imm_[shard],
                         std::memory_order_relaxed);  // Wraps safely.
    total_l0_.fetch_add(l0_runs - l0_[shard], std::memory_order_relaxed);
    imm_[shard] = imm_count;
    l0_[shard] = l0_runs;
  }
  if (decreased) cv_.notify_all();
}

exec::StallDecision ShardBackpressure::Decide() const {
  return controller_.Decide(total_imm_.load(std::memory_order_relaxed),
                            total_l0_.load(std::memory_order_relaxed));
}

void ShardBackpressure::WaitWhileStopped() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(kMaxStopWaitMicros), [this] {
    return Decide() != exec::StallDecision::kStop;
  });
}

}  // namespace shard
}  // namespace talus
