#include "shard/shard_manifest.h"

#include <cstdio>

#include "util/coding.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace talus {
namespace shard {

namespace {
std::string ShardManifestFileName(const std::string& dbpath) {
  return dbpath + "/SHARD";
}
}  // namespace

Status WriteShardManifest(Env* env, const std::string& dbpath,
                          const ShardManifest& manifest) {
  std::string record;
  PutVarint64(&record, manifest.boundaries.size());
  for (const std::string& b : manifest.boundaries) {
    PutLengthPrefixedSlice(&record, Slice(b));
  }
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(ShardManifestFileName(dbpath), &file);
  if (!s.ok()) return s;
  wal::LogWriter writer(std::move(file));
  s = writer.AddRecord(Slice(record));
  if (s.ok()) s = writer.Sync();
  if (s.ok()) s = writer.Close();
  return s;
}

Status ReadShardManifest(Env* env, const std::string& dbpath,
                         ShardManifest* manifest) {
  const std::string fname = ShardManifestFileName(dbpath);
  if (!env->FileExists(fname)) {
    return Status::NotFound("no SHARD manifest", dbpath);
  }
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  wal::LogReader reader(std::move(file));
  std::string record;
  if (!reader.ReadRecord(&record)) {
    return Status::Corruption("SHARD manifest unreadable", dbpath);
  }
  Slice input(record);
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("bad SHARD manifest header", dbpath);
  }
  manifest->boundaries.clear();
  for (uint64_t i = 0; i < count; i++) {
    Slice b;
    if (!GetLengthPrefixedSlice(&input, &b)) {
      return Status::Corruption("bad SHARD manifest boundary", dbpath);
    }
    manifest->boundaries.push_back(b.ToString());
  }
  return Status::OK();
}

std::string ShardDirName(const std::string& dbpath, size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard-%03zu", shard);
  return dbpath + buf;
}

}  // namespace shard
}  // namespace talus
