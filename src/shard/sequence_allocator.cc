#include "shard/sequence_allocator.h"

namespace talus {
namespace shard {

SequenceNumber SequenceAllocator::Claim(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  const SequenceNumber base = next_;
  next_ += count;
  return base;
}

void SequenceAllocator::Publish(SequenceNumber base, uint64_t count) {
  if (count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_[base] = base + count;
  // Merge every range that now touches the watermark. Ranges at or below
  // it (a burned range re-published by both a shard and the sharding
  // layer's error path) are tolerated: they advance nothing but must not
  // wedge the merge loop.
  SequenceNumber visible = visible_.load(std::memory_order_relaxed);
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= visible + 1) {
    if (it->second - 1 > visible) visible = it->second - 1;
    it = pending_.erase(it);
  }
  visible_.store(visible, std::memory_order_release);
}

void SequenceAllocator::Reset(SequenceNumber last) {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = last + 1;
  pending_.clear();
  visible_.store(last, std::memory_order_release);
}

}  // namespace shard
}  // namespace talus
