// ShardRouter: fixed range partitioning of the user key space (DESIGN.md
// §3). N shards are separated by N-1 strictly ascending boundary keys;
// shard i owns [boundary[i-1], boundary[i]) with the first and last ranges
// open-ended. Boundaries are fixed at creation time and persisted in the
// shard manifest — routing is a binary search, and a cross-shard scan is a
// concatenation of per-shard scans because the ranges are disjoint and
// ordered.
#ifndef TALUS_SHARD_SHARD_ROUTER_H_
#define TALUS_SHARD_SHARD_ROUTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace talus {
namespace shard {

class ShardRouter {
 public:
  /// `boundaries` must be strictly ascending and non-empty strings; the
  /// router serves boundaries.size() + 1 shards. An empty vector is the
  /// single-shard router.
  static Status Create(std::vector<std::string> boundaries,
                       ShardRouter* router);

  /// Evenly splits the space of 8-byte big-endian key prefixes into
  /// `shard_count` ranges. Balanced for uniformly distributed binary or
  /// hashed keys; workloads whose keys share a long common prefix (e.g.
  /// "user..." keys) should pass explicit split points instead.
  static std::vector<std::string> DefaultBoundaries(int shard_count);

  ShardRouter() = default;

  size_t shard_count() const { return boundaries_.size() + 1; }

  /// Shard owning `key`: the number of boundaries <= key.
  size_t ShardFor(const Slice& key) const;

  const std::vector<std::string>& boundaries() const { return boundaries_; }

  /// Human-readable "[lo, hi)" label for a shard (— for open ends).
  std::string RangeLabel(size_t shard) const;

 private:
  std::vector<std::string> boundaries_;
};

}  // namespace shard
}  // namespace talus

#endif  // TALUS_SHARD_SHARD_ROUTER_H_
