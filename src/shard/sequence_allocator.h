// SequenceAllocator: the global sequence authority shared by every shard of
// a ShardedDB (DESIGN.md §3). Two numbers matter:
//
//   * the *claim* counter — commit groups reserve contiguous ranges from it
//     (one Claim per group, so contention is one fetch per group, not per
//     write);
//   * the *visible* watermark — the largest sequence V such that every
//     sequence <= V has been fully applied (WAL + memtable) in its shard.
//
// Shards publish a claimed range once its inserts are complete; the
// watermark advances only while the published ranges are contiguous, so a
// reader that pins views at `visible()` observes a consistent cross-shard
// snapshot: no half-applied commit can leak in, because its range either
// blocks the watermark or lies entirely above it. Multi-shard batches claim
// ONE contiguous range for all their sub-batches and publish it once every
// shard applied, which makes the whole batch atomic under the watermark.
//
// A failed commit must still publish (burn) its range: the shard latches
// the write error anyway, and an unpublished hole would wedge the watermark
// for every other shard.
//
// With a single shard the claim and publish of one group always complete
// before the next group claims (queue leadership serializes them), so
// visible() == last published sequence — exactly the single-engine
// last_sequence_ semantics, which is what keeps shard_count=1 bit-identical
// to the unsharded engine.
#ifndef TALUS_SHARD_SEQUENCE_ALLOCATOR_H_
#define TALUS_SHARD_SEQUENCE_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "lsm/dbformat.h"

namespace talus {
namespace shard {

class SequenceAllocator {
 public:
  SequenceAllocator() = default;
  SequenceAllocator(const SequenceAllocator&) = delete;
  SequenceAllocator& operator=(const SequenceAllocator&) = delete;

  /// Reserves `count` sequences; returns the first. The range stays
  /// invisible until Publish. count == 0 is allowed and claims nothing.
  SequenceNumber Claim(uint64_t count);

  /// Marks [base, base + count) fully applied. Advances the visible
  /// watermark across every contiguously-published range. Out-of-order
  /// publishes are buffered until the gap below them fills.
  void Publish(SequenceNumber base, uint64_t count);

  /// Largest sequence V with everything <= V applied. Lock-free.
  SequenceNumber visible() const {
    return visible_.load(std::memory_order_acquire);
  }

  /// Recovery: restarts allocation after `last` with the watermark at
  /// `last`. Must not race Claim/Publish (callers quiesce first).
  void Reset(SequenceNumber last);

 private:
  mutable std::mutex mu_;
  SequenceNumber next_ = 1;  // Next sequence Claim hands out.
  // Published ranges above the watermark, keyed by base → end (exclusive),
  // awaiting the gap below them to fill.
  std::map<SequenceNumber, SequenceNumber> pending_;
  std::atomic<SequenceNumber> visible_{0};
};

}  // namespace shard
}  // namespace talus

#endif  // TALUS_SHARD_SEQUENCE_ALLOCATOR_H_
