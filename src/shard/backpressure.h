// ShardBackpressure: the unified stall view across the shards of a
// ShardedDB (DESIGN.md §3). Each shard keeps its own local StallController
// (its thresholds and semantics are unchanged); this object additionally
// aggregates every shard's write debt — queued immutable memtables and
// level-0 runs — and applies the same two-stage slowdown/stop discipline to
// the TOTALS against thresholds scaled by the shard count. That makes one
// hot shard's debt visible to every writer: the shared flush/compaction
// pool is a global resource, so global debt must throttle global intake,
// not just the writers that happen to hit the hot range.
//
// Liveness: an aggregate stop is a *bounded* wait (WaitWhileStopped returns
// after kMaxStopWaitMicros even if the debt has not cleared). The local
// controllers own the unbounded stop-with-safety-valve logic; the aggregate
// layer only needs to pace intake while background work catches up, and a
// bounded wait cannot deadlock writers against a policy whose stable tree
// shape exceeds the scaled threshold.
#ifndef TALUS_SHARD_BACKPRESSURE_H_
#define TALUS_SHARD_BACKPRESSURE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "exec/stall_controller.h"

namespace talus {
namespace shard {

class ShardBackpressure {
 public:
  /// `per_shard` is one shard's stall config; the aggregate thresholds are
  /// the per-shard ones scaled by `shard_count`.
  ShardBackpressure(const exec::StallConfig& per_shard, size_t shard_count);
  ShardBackpressure(const ShardBackpressure&) = delete;
  ShardBackpressure& operator=(const ShardBackpressure&) = delete;

  /// Shard `shard` reports its current debt. Called under the shard's DB
  /// mutex whenever its immutable queue or level-0 run count changes;
  /// decreases wake writers blocked in WaitWhileStopped.
  void Report(size_t shard, size_t imm_count, size_t l0_runs);

  /// Stall decision for the aggregate debt. Lock-free.
  exec::StallDecision Decide() const;

  /// Blocks while Decide() == kStop, up to kMaxStopWaitMicros. Called with
  /// no DB mutex held.
  void WaitWhileStopped();

  uint64_t slowdown_delay_micros() const {
    return controller_.config().slowdown_delay_micros;
  }

  static constexpr uint64_t kMaxStopWaitMicros = 10000;

 private:
  exec::StallController controller_;  // Scaled thresholds.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<size_t> imm_;  // Per-shard last reported debt.
  std::vector<size_t> l0_;
  std::atomic<size_t> total_imm_{0};
  std::atomic<size_t> total_l0_{0};
};

}  // namespace shard
}  // namespace talus

#endif  // TALUS_SHARD_BACKPRESSURE_H_
