#include "shard/shard_router.h"

#include <cstdio>

#include <algorithm>

namespace talus {
namespace shard {

Status ShardRouter::Create(std::vector<std::string> boundaries,
                           ShardRouter* router) {
  for (size_t i = 0; i < boundaries.size(); i++) {
    if (boundaries[i].empty()) {
      return Status::InvalidArgument("shard boundary must not be empty");
    }
    if (i > 0 && boundaries[i] <= boundaries[i - 1]) {
      return Status::InvalidArgument(
          "shard boundaries must be strictly ascending", boundaries[i]);
    }
  }
  router->boundaries_ = std::move(boundaries);
  return Status::OK();
}

std::vector<std::string> ShardRouter::DefaultBoundaries(int shard_count) {
  std::vector<std::string> boundaries;
  if (shard_count <= 1) return boundaries;
  const uint64_t n = static_cast<uint64_t>(shard_count);
  for (uint64_t i = 1; i < n; i++) {
    // i/n of the 2^64 prefix space, big-endian so byte order == key order.
    const uint64_t split = (~uint64_t{0} / n) * i;
    std::string b(8, '\0');
    for (int byte = 0; byte < 8; byte++) {
      b[byte] = static_cast<char>((split >> (56 - 8 * byte)) & 0xff);
    }
    boundaries.push_back(std::move(b));
  }
  return boundaries;
}

size_t ShardRouter::ShardFor(const Slice& key) const {
  // upper_bound: the first boundary > key; every boundary <= key pushes the
  // key one shard to the right.
  size_t left = 0, right = boundaries_.size();
  while (left < right) {
    const size_t mid = (left + right) / 2;
    if (key.compare(Slice(boundaries_[mid])) < 0) {
      right = mid;
    } else {
      left = mid + 1;
    }
  }
  return left;
}

namespace {
// Boundaries may be binary (the default prefix split): escape for text.
std::string Printable(const std::string& key) {
  std::string out;
  for (unsigned char c : key) {
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  return out;
}
}  // namespace

std::string ShardRouter::RangeLabel(size_t shard) const {
  const std::string lo =
      shard == 0 ? std::string("-inf") : Printable(boundaries_[shard - 1]);
  const std::string hi = shard >= boundaries_.size()
                             ? std::string("+inf")
                             : Printable(boundaries_[shard]);
  return "[" + lo + ", " + hi + ")";
}

}  // namespace shard
}  // namespace talus
