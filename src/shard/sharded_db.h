// ShardedDB: the range-sharded engine frontend (DESIGN.md §3). Exposes the
// DB API over N range-partitioned shards, each a complete engine — own
// memtable, WAL, versions, table cache — while three things stay global:
//
//   * one exec::ThreadPool runs every shard's flushes and compactions (and
//     opens the shards in parallel at recovery),
//   * one shard::ShardBackpressure aggregates write debt so a single hot
//     shard throttles intake everywhere instead of only its own range,
//   * one shard::SequenceAllocator issues sequence numbers, whose visible
//     watermark makes snapshots, scans, and iterators consistent ACROSS
//     shards: every read pins all shards at one global sequence.
//
// Put/Delete/Get route by key. A Write whose batch spans shards claims one
// contiguous sequence range, commits per-shard sub-batches at pre-assigned
// offsets inside it (DB::WriteAt, dispatched concurrently), and publishes
// the range once — so a successful multi-shard batch is atomic to every
// snapshot. Failure is weaker (see Write's contract): a crash or a
// per-shard error can leave the batch partially applied, exactly like a
// multi-store transaction without 2PC.
//
// shard_count == 1 behaves bit-identically to a standalone DB (same scan
// results, same talus.stats text) — the allocator degenerates to the
// single-engine last_sequence_ and GetProperty passes straight through.
//
// To serve a ShardedDB over the network, hand it to server::Server
// (src/server/server.h, DESIGN.md §8): the wire protocol fronts exactly
// this API — GET/PUT/DELETE/WRITE/SCAN/PROPERTY — and pipelined client
// writes coalesce into the same Write() batch path.
#ifndef TALUS_SHARD_SHARDED_DB_H_
#define TALUS_SHARD_SHARDED_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "lsm/db.h"
#include "shard/backpressure.h"
#include "shard/sequence_allocator.h"
#include "shard/shard_router.h"

namespace talus {
namespace shard {

class ShardedDB {
 public:
  /// Opens (creating if missing) a sharded store at options.path with
  /// options.shard_count shards in shard-<i>/ subdirectories. Split points
  /// come from options.shard_split_points (else a uniform prefix split)
  /// and are fixed at creation: reopening with different ones fails.
  /// Shards are opened in parallel on the shared pool.
  static Status Open(const DbOptions& options,
                     std::unique_ptr<ShardedDB>* dbptr);
  ~ShardedDB();
  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  /// A batch spanning shards commits one contiguous sequence range,
  /// published once after every shard applied — so a SUCCESSFUL
  /// multi-shard Write is atomic to every snapshot. Atomicity does not
  /// survive failure: a crash between sub-commits (per-shard WALs, no
  /// 2PC) or an error from one shard (the others' sub-batches are already
  /// durably committed) can leave the batch partially applied; the error
  /// is returned so the caller knows.
  Status Write(const WriteBatch& batch);
  Status Get(const Slice& key, std::string* value);
  Status Get(const Slice& key, std::string* value, const Snapshot* snapshot);

  /// Pins every shard at one global sequence (the allocator watermark).
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Cross-shard merging iterator pinned at one global sequence; disjoint
  /// ranges make the merge a concatenation in shard order. Forward-only,
  /// must not outlive the ShardedDB.
  std::unique_ptr<Iterator> NewIterator();
  /// Collects up to `count` live entries with key >= start across shards,
  /// observing one consistent global snapshot.
  Status Scan(const Slice& start, size_t count,
              std::vector<std::pair<std::string, std::string>>* out);

  Status FlushMemTable();
  Status CompactAll();

  /// Same names as DB::GetProperty, aggregated across shards, plus
  /// "talus.shards" — a per-shard breakdown (range, writes, reads, data
  /// bytes, runs, stall time). "talus.latency" reports fleet-wide per-op
  /// percentiles (exact merge of the per-shard histograms) and
  /// "talus.events" the shared event ring every shard emits into. With one
  /// shard every property passes through bit-identically.
  bool GetProperty(const std::string& property, std::string* value);

  uint64_t ApproximateDataBytes() const;
  std::string DebugString() const;

  /// Field-wise aggregate of the per-shard engine stats. Like DB::stats(),
  /// precise only when quiesced.
  EngineStats AggregatedStats() const;
  metrics::GroupCommitStats GetGroupCommitStats() const;
  /// Exact fleet-wide per-op latency merge, indexed by obs::OpType.
  std::vector<Histogram> GetLatencyHistograms() const;
  /// Prometheus exposition of the aggregated counters, merged latency
  /// histograms, and fleet-wide talus_amp_* families (same talus_*
  /// families as DB::DumpPrometheus). The network layer serves this text
  /// at HTTP `GET /metrics` with its talus_server_* families appended
  /// (server::Server::MetricsText, DESIGN.md §8; docs/OPERATIONS.md).
  std::string DumpPrometheus() const;
  /// Fleet-wide amplification accounting: field-wise sum of every shard's
  /// cumulative DB::GetAmpSnapshot() (live-space fields included). All
  /// zeros when DbOptions::enable_amp_stats is off.
  obs::AmpSnapshot AggregatedAmpSnapshot() const;
  /// The fleet-level stats snapshotter behind "talus.snapshots" (null
  /// unless stats_snapshot_interval_ms > 0). One snapshotter samples the
  /// whole store; the per-shard ones are disabled at Open.
  obs::StatsSnapshotter* stats_snapshotter() { return snapshotter_.get(); }
  /// One adaptive-tuning pass over every shard (DESIGN.md §9): each shard
  /// senses its own drift window, navigates, and retunes independently —
  /// a read-heavy shard can go leveled while its write-heavy neighbour
  /// goes tiered. The fleet timer calls exactly this; tests and benches
  /// call it directly for a deterministic cadence.
  void TuneNow();
  /// The fleet-level tuner TIMER (null unless adaptive_tuning with
  /// tune_interval_ms > 0). Decision state lives in the per-shard tuners
  /// (shard(i)->adaptive_tuner()); this object only paces TuneNow.
  tune::AdaptiveTuner* adaptive_tuner() { return fleet_tuner_.get(); }
  /// The shared event ring every shard emits into (one globally ordered
  /// stream; cross-shard causality preserved).
  obs::EventRing* event_ring() { return ring_; }

  size_t shard_count() const { return shards_.size(); }
  DB* shard(size_t i) { return shards_[i].get(); }
  const ShardRouter& router() const { return router_; }
  /// Global visibility watermark (largest sequence applied everywhere).
  SequenceNumber VisibleSequence() const { return alloc_.visible(); }

 private:
  ShardedDB() = default;

  DB* Route(const Slice& key) { return shards_[router_.ShardFor(key)].get(); }
  /// Registers a snapshot at `sequence` in every shard; out lives until
  /// ReleaseChildren. Guards cross-shard pins against concurrent
  /// tombstone-GC (see NewIterator's implementation comment).
  void PinAllShards(SequenceNumber sequence,
                    std::vector<const Snapshot*>* children);
  void ReleaseChildren(const std::vector<const Snapshot*>& children);
  std::unique_ptr<Iterator> NewIteratorAt(SequenceNumber sequence);
  /// One fleet-wide JSONL stats sample (the snapshotter's SampleFn):
  /// merged amp snapshot, per-shard drift evaluations (max score; each
  /// shard emits its own kAmpSample/kModelDrift into the shared ring),
  /// merged latency p99s.
  std::string BuildStatsSample();

  DbOptions options_;  // As passed (env, path, shard_count, ...).
  ShardRouter router_;
  SequenceAllocator alloc_;
  std::unique_ptr<ShardBackpressure> backpressure_;
  // Shared event ring, passed to every shard via DbOptions::event_ring.
  // Declared before shards_ so it outlives them: shard destructors still
  // emit (GC events) while draining. ring_ is owned_ring_ unless the caller
  // lent a ring through DbOptions::event_ring.
  std::unique_ptr<obs::EventRing> owned_ring_;
  obs::EventRing* ring_ = nullptr;
  // Declared before shards_ so shards (whose schedulers drain jobs onto the
  // pool) are destroyed first, then the pool.
  std::unique_ptr<exec::ThreadPool> pool_;
  std::vector<std::unique_ptr<DB>> shards_;
  // Fleet-level stats snapshotter; its SampleFn touches every shard and
  // the pool, so ~ShardedDB stops it before anything else is torn down.
  std::unique_ptr<obs::StatsSnapshotter> snapshotter_;
  // Fleet-level tuner timer (ticks TuneNow across all shards; per-shard
  // tuners are opened with interval 0 so only this one thread paces the
  // fleet, mirroring the snapshotter). Stopped first in ~ShardedDB: its
  // tick walks every shard.
  std::unique_ptr<tune::AdaptiveTuner> fleet_tuner_;

  // Live cross-shard snapshots → their per-shard registrations.
  std::mutex snapshot_mu_;
  std::unordered_map<const Snapshot*, std::vector<const Snapshot*>>
      snapshot_children_;
};

}  // namespace shard
}  // namespace talus

#endif  // TALUS_SHARD_SHARDED_DB_H_
