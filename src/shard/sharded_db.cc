#include "shard/sharded_db.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "metrics/shard_stats.h"
#include "shard/shard_iterator.h"
#include "shard/shard_manifest.h"
#include "util/wall_clock.h"

namespace talus {
namespace shard {

namespace {

// Routes a batch's operations into per-shard sub-batches, preserving each
// shard's op order (same-key ops always land in the same shard, so
// overwrite semantics survive the split).
class BatchSplitter : public WriteBatch::Handler {
 public:
  BatchSplitter(const ShardRouter* router, size_t shard_count)
      : router_(router), batches(shard_count) {}
  void Put(const Slice& key, const Slice& value) override {
    batches[router_->ShardFor(key)].Put(key, value);
  }
  void Delete(const Slice& key) override {
    batches[router_->ShardFor(key)].Delete(key);
  }

  size_t UsedShards() const {
    size_t used = 0;
    for (const auto& b : batches) used += b.empty() ? 0 : 1;
    return used;
  }

  const ShardRouter* router_;
  std::vector<WriteBatch> batches;
};

}  // namespace

Status ShardedDB::Open(const DbOptions& options,
                       std::unique_ptr<ShardedDB>* dbptr) {
  if (options.env == nullptr || options.path.empty()) {
    return Status::InvalidArgument("env and path are required");
  }
  if (options.shard_count < 1 || options.shard_count > 1024) {
    return Status::InvalidArgument("shard_count must be in [1, 1024]");
  }
  auto db = std::unique_ptr<ShardedDB>(new ShardedDB());
  db->options_ = options;
  Env* env = options.env;
  Status s = env->CreateDirIfMissing(options.path);
  if (!s.ok()) return s;

  // Fix the split points: the requested ones for a fresh store, the SHARD
  // manifest's for an existing one — and the two must agree, because the
  // shard directories are physical key ranges.
  std::vector<std::string> requested =
      options.shard_split_points.empty()
          ? ShardRouter::DefaultBoundaries(options.shard_count)
          : options.shard_split_points;
  if (requested.size() != static_cast<size_t>(options.shard_count) - 1) {
    return Status::InvalidArgument(
        "shard_split_points must name shard_count - 1 split keys");
  }
  ShardManifest manifest;
  s = ReadShardManifest(env, options.path, &manifest);
  if (s.ok()) {
    if (manifest.boundaries != requested) {
      return Status::InvalidArgument(
          "store was created with different shard split points", options.path);
    }
  } else if (s.IsNotFound()) {
    manifest.boundaries = std::move(requested);
    s = WriteShardManifest(env, options.path, manifest);
    if (!s.ok()) return s;
  } else {
    return s;
  }
  s = ShardRouter::Create(manifest.boundaries, &db->router_);
  if (!s.ok()) return s;

  const size_t n = db->router_.shard_count();
  // One shared event ring for the whole store: every shard emits into it,
  // so cross-shard causality (a hot shard's stall vs. another's flush)
  // lands in one ordered stream — and one JSONL trace file.
  if (options.event_ring != nullptr) {
    db->ring_ = options.event_ring;
  } else {
    db->owned_ring_ =
        std::make_unique<obs::EventRing>(options.event_ring_size);
    db->ring_ = db->owned_ring_.get();
    if (!options.trace_file_path.empty()) {
      db->ring_->OpenTraceFile(options.trace_file_path);
    }
  }
  db->pool_ =
      std::make_unique<exec::ThreadPool>(options.num_background_threads);
  if (options.execution_mode == ExecutionMode::kBackground) {
    exec::StallConfig stall_config;
    stall_config.max_immutable_memtables = options.max_immutable_memtables;
    stall_config.l0_slowdown_runs = options.l0_slowdown_runs;
    stall_config.l0_stop_runs = options.l0_stop_runs;
    stall_config.slowdown_delay_micros = options.slowdown_delay_micros;
    db->backpressure_ = std::make_unique<ShardBackpressure>(stall_config, n);
  }

  // Open the shards in parallel on the shared pool: recovery (WAL replay +
  // the recovered-memtable flush) dominates reopen time and the shards are
  // fully independent until the allocator is seeded below.
  db->shards_.resize(n);
  std::vector<Status> results(n);
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = n;
  for (size_t i = 0; i < n; i++) {
    DbOptions shard_opts = options;
    shard_opts.path = ShardDirName(options.path, i);
    shard_opts.shard_count = 1;
    shard_opts.shard_split_points.clear();
    shard_opts.shard_index = i;
    shard_opts.sequence_allocator = &db->alloc_;
    shard_opts.shard_backpressure = db->backpressure_.get();
    shard_opts.shared_pool = db->pool_.get();
    shard_opts.event_ring = db->ring_;
    // One fleet-level snapshotter (created below) samples the whole store;
    // per-shard snapshotters would multiply timer threads and JSONL files.
    shard_opts.stats_snapshot_interval_ms = 0;
    shard_opts.stats_snapshot_path.clear();
    // Same single-timer rule for adaptive tuning: each shard keeps its own
    // tuner (decision state, counters), but interval 0 means no per-shard
    // timer thread — the fleet tuner below paces every shard's RetuneNow.
    shard_opts.tune_interval_ms = 0;
    auto open_one = [&db, &results, &mu, &cv, &remaining, i, shard_opts] {
      Status os = DB::Open(shard_opts, &db->shards_[i]);
      std::lock_guard<std::mutex> lock(mu);
      results[i] = std::move(os);
      if (--remaining == 0) cv.notify_all();
    };
    if (!db->pool_->Submit(open_one)) open_one();
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&remaining] { return remaining == 0; });
  }
  for (const Status& rs : results) {
    if (!rs.ok()) return rs;
  }

  // Seed the global sequence authority past everything any shard recovered.
  SequenceNumber last = 0;
  for (const auto& sh : db->shards_) {
    last = std::max(last, sh->LastSequence());
  }
  db->alloc_.Reset(last);

  if (options.stats_snapshot_interval_ms > 0) {
    obs::StatsSnapshotter::Options snap_opts;
    snap_opts.interval_ms = options.stats_snapshot_interval_ms;
    snap_opts.ring_capacity = options.stats_snapshot_ring;
    snap_opts.jsonl_path = options.stats_snapshot_path;
    ShardedDB* raw = db.get();
    db->snapshotter_ = std::make_unique<obs::StatsSnapshotter>(
        db->pool_.get(), snap_opts,
        [raw] { return raw->BuildStatsSample(); });
    db->snapshotter_->Start();
  }

  if (options.adaptive_tuning && options.tune_interval_ms > 0) {
    tune::TunerConfig tcfg;
    tcfg.interval_ms = options.tune_interval_ms;
    ShardedDB* raw = db.get();
    db->fleet_tuner_ = std::make_unique<tune::AdaptiveTuner>(
        tcfg, [raw] { raw->TuneNow(); });
    db->fleet_tuner_->Start();
  }

  *dbptr = std::move(db);
  return Status::OK();
}

void ShardedDB::TuneNow() {
  for (auto& sh : shards_) sh->RetuneNow();
}

ShardedDB::~ShardedDB() {
  // The fleet tuner's tick and the snapshotter's SampleFn walk every
  // shard; stop both before any shard (or the pool) goes away.
  if (fleet_tuner_ != nullptr) fleet_tuner_->Stop();
  if (snapshotter_ != nullptr) snapshotter_->Stop();
  // Stray snapshots (the caller should have released them) must drop their
  // per-shard registrations before the shards go away.
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    for (auto& entry : snapshot_children_) {
      for (size_t i = 0; i < entry.second.size(); i++) {
        shards_[i]->ReleaseSnapshot(entry.second[i]);
      }
      delete entry.first;
    }
    snapshot_children_.clear();
  }
  shards_.clear();  // Each shard drains its scheduler onto the pool.
  if (pool_ != nullptr) pool_->Shutdown();
}

Status ShardedDB::Put(const Slice& key, const Slice& value) {
  return Route(key)->Put(key, value);
}

Status ShardedDB::Delete(const Slice& key) { return Route(key)->Delete(key); }

Status ShardedDB::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  if (batch.HasEmptyKey()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  if (shards_.size() == 1) return shards_[0]->Write(batch);

  BatchSplitter splitter(&router_, shards_.size());
  Status s = batch.Iterate(&splitter);
  if (!s.ok()) return s;
  if (splitter.UsedShards() == 1) {
    // Single-shard batch: the shard's own group commit claims and
    // publishes normally.
    for (size_t i = 0; i < shards_.size(); i++) {
      if (!splitter.batches[i].empty()) return shards_[i]->Write(batch);
    }
  }

  // Multi-shard batch: claim ONE contiguous range for every sub-batch and
  // publish it once after all shards applied. The watermark cannot enter
  // the range until the publish, so a cross-shard snapshot sees the whole
  // batch or none of it. The sub-commits are independent until that
  // publish, so they are dispatched concurrently (dedicated threads, not
  // the shared pool — a commit can stall waiting for flushes that need
  // pool threads) and the batch pays the slowest shard's commit latency,
  // not the sum. On error the range is still published (burned): the
  // failing shard latched its error and an unpublished hole would wedge
  // the watermark — but the other shards' sub-batches ARE committed, so a
  // failed multi-shard Write can leave the batch partially applied (see
  // the header contract).
  const uint64_t total = batch.Count();
  const SequenceNumber base = alloc_.Claim(total);
  SequenceNumber next = base;
  std::vector<Status> results(shards_.size());
  std::vector<std::thread> commits;
  for (size_t i = 0; i < shards_.size(); i++) {
    const WriteBatch& sub = splitter.batches[i];
    if (sub.empty()) continue;
    const SequenceNumber sub_base = next;
    next += sub.Count();
    commits.emplace_back([this, i, &sub, sub_base, &results] {
      results[i] = shards_[i]->WriteAt(sub, sub_base);
    });
  }
  for (auto& t : commits) t.join();
  alloc_.Publish(base, total);
  for (const Status& ws : results) {
    if (!ws.ok()) return ws;
  }
  return Status::OK();
}

Status ShardedDB::Get(const Slice& key, std::string* value) {
  return Route(key)->Get(key, value);
}

Status ShardedDB::Get(const Slice& key, std::string* value,
                      const Snapshot* snapshot) {
  return Route(key)->Get(key, value, snapshot);
}

void ShardedDB::PinAllShards(SequenceNumber sequence,
                             std::vector<const Snapshot*>* children) {
  children->reserve(shards_.size());
  for (auto& sh : shards_) {
    children->push_back(sh->GetSnapshotAt(sequence));
  }
}

void ShardedDB::ReleaseChildren(
    const std::vector<const Snapshot*>& children) {
  for (size_t i = 0; i < children.size(); i++) {
    shards_[i]->ReleaseSnapshot(children[i]);
  }
}

const Snapshot* ShardedDB::GetSnapshot() {
  // Two-phase pin (see NewIteratorAt for why the placeholder is needed).
  std::vector<const Snapshot*> placeholder;
  PinAllShards(0, &placeholder);
  const SequenceNumber seq = alloc_.visible();
  std::vector<const Snapshot*> children;
  PinAllShards(seq, &children);
  ReleaseChildren(placeholder);
  auto* snap = new Snapshot(seq);
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_children_[snap] = std::move(children);
  return snap;
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  std::vector<const Snapshot*> children;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    auto it = snapshot_children_.find(snapshot);
    if (it == snapshot_children_.end()) return;
    children = std::move(it->second);
    snapshot_children_.erase(it);
  }
  ReleaseChildren(children);
  delete snapshot;
}

std::unique_ptr<Iterator> ShardedDB::NewIteratorAt(SequenceNumber sequence) {
  // Guard the pin window: between choosing `sequence` and pinning a
  // shard's ReadView, a concurrent compaction in that shard could plan
  // with a GC horizon above `sequence` and drop shadowed versions the
  // chain is entitled to see. A placeholder snapshot at sequence 0 —
  // registered in every shard BEFORE `sequence` was chosen by the caller
  // (GetSnapshot) or here — forces every plan in the window to keep
  // everything; plans from before the placeholder use a horizon no larger
  // than the watermark at that earlier time, which monotonicity keeps at
  // or below `sequence`. Once every view is pinned the placeholder is
  // dropped: pinned views read immutable state.
  std::vector<const Snapshot*> pins;
  PinAllShards(sequence, &pins);
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(shards_.size());
  for (auto& sh : shards_) {
    children.push_back(sh->NewIteratorAt(sequence));
  }
  ReleaseChildren(pins);
  return std::make_unique<ShardChainIterator>(&router_, std::move(children));
}

std::unique_ptr<Iterator> ShardedDB::NewIterator() {
  if (shards_.size() == 1) return shards_[0]->NewIterator();
  std::vector<const Snapshot*> placeholder;
  PinAllShards(0, &placeholder);
  const SequenceNumber seq = alloc_.visible();
  auto iter = NewIteratorAt(seq);
  ReleaseChildren(placeholder);
  return iter;
}

Status ShardedDB::Scan(const Slice& start, size_t count,
                       std::vector<std::pair<std::string, std::string>>* out) {
  if (shards_.size() == 1) return shards_[0]->Scan(start, count, out);
  auto iter = NewIterator();
  out->clear();
  iter->Seek(start);
  while (iter->Valid() && out->size() < count) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  return iter->status();
}

Status ShardedDB::FlushMemTable() {
  // Sequential on the caller's thread: a shard's FlushMemTable blocks on
  // background jobs that need pool threads, so fanning the waits out over
  // the same pool could deadlock.
  Status result;
  for (auto& sh : shards_) {
    Status s = sh->FlushMemTable();
    if (!s.ok() && result.ok()) result = s;
  }
  return result;
}

Status ShardedDB::CompactAll() {
  Status result;
  for (auto& sh : shards_) {
    Status s = sh->CompactAll();
    if (!s.ok() && result.ok()) result = s;
  }
  return result;
}

EngineStats ShardedDB::AggregatedStats() const {
  std::vector<const EngineStats*> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& sh : shards_) per_shard.push_back(&sh->stats());
  return metrics::AggregateEngineStats(per_shard);
}

metrics::GroupCommitStats ShardedDB::GetGroupCommitStats() const {
  std::vector<metrics::GroupCommitStats> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& sh : shards_) per_shard.push_back(sh->GetGroupCommitStats());
  return metrics::AggregateGroupCommitStats(per_shard);
}

bool ShardedDB::GetProperty(const std::string& property, std::string* value) {
  value->clear();
  if (property == "talus.shards") {
    for (size_t i = 0; i < shards_.size(); i++) {
      const EngineStats& st = shards_[i]->stats();
      std::string runs;
      shards_[i]->GetProperty("talus.num-runs", &runs);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "shard=%zu range=%s puts=%llu deletes=%llu gets=%llu scans=%llu "
          "flushes=%llu compactions=%llu data_bytes=%llu runs=%s "
          "switches=%llu stall_us=%llu\n",
          i, router_.RangeLabel(i).c_str(),
          static_cast<unsigned long long>(st.puts),
          static_cast<unsigned long long>(st.deletes),
          static_cast<unsigned long long>(st.gets.load()),
          static_cast<unsigned long long>(st.scans.load()),
          static_cast<unsigned long long>(st.flushes),
          static_cast<unsigned long long>(st.compactions),
          static_cast<unsigned long long>(shards_[i]->ApproximateDataBytes()),
          runs.c_str(), static_cast<unsigned long long>(st.memtable_switches),
          static_cast<unsigned long long>(st.stall_micros));
      *value += buf;
    }
    return true;
  }
  if (property == "talus.snapshots") {
    // The fleet snapshotter's ring, not a shard's: per-shard snapshotters
    // are disabled at Open, so even with one shard this is the only ring
    // with samples in it.
    if (snapshotter_ != nullptr) {
      for (const std::string& line : snapshotter_->RingContents()) {
        *value += line;
        *value += '\n';
      }
    }
    return true;
  }
  // One shard: the engine's own output, bit-identical to a standalone DB.
  // (talus.latency and talus.events included: the shard's ring IS the
  // shared ring, and its recorder holds every observation.)
  if (shards_.size() == 1) return shards_[0]->GetProperty(property, value);

  if (property == "talus.latency") {
    // Exact fleet-wide percentiles: the shards share one bucket layout, so
    // merging their histograms is a sum of bucket counts (DESIGN.md §6.3).
    *value = obs::LatencyRecorder::Format(GetLatencyHistograms());
    return true;
  }
  if (property == "talus.events") {
    *value = ring_->ToString();
    return true;
  }

  if (property == "talus.num-runs" || property == "talus.data-bytes") {
    uint64_t total = 0;
    for (auto& sh : shards_) {
      std::string one;
      if (!sh->GetProperty(property, &one)) return false;
      total += std::strtoull(one.c_str(), nullptr, 10);
    }
    *value = std::to_string(total);
    return true;
  }
  if (property == "talus.amp") {
    // Fleet-wide merge first (what a dashboard scrapes), then the
    // per-shard cumulative/window breakdown.
    const obs::AmpSnapshot fleet = AggregatedAmpSnapshot();
    *value = "-- fleet cumulative --\n" + fleet.ToString();
    for (size_t i = 0; i < shards_.size(); i++) {
      std::string one;
      if (!shards_[i]->GetProperty(property, &one)) return false;
      char head[64];
      std::snprintf(head, sizeof(head), "-- shard %zu --\n", i);
      *value += head;
      *value += one;
      if (!one.empty() && one.back() != '\n') *value += '\n';
    }
    return true;
  }
  if (property == "talus.levels" || property == "talus.cstats" ||
      property == "talus.exec" || property == "talus.model" ||
      property == "talus.tune") {
    for (size_t i = 0; i < shards_.size(); i++) {
      std::string one;
      if (!shards_[i]->GetProperty(property, &one)) return false;
      char head[64];
      std::snprintf(head, sizeof(head), "-- shard %zu --\n", i);
      *value += head;
      *value += one;
      if (!one.empty() && one.back() != '\n') *value += '\n';
    }
    return true;
  }
  if (property == "talus.stats") {
    const EngineStats agg = AggregatedStats();
    uint64_t bc_hits = 0, bc_misses = 0, tc_hits = 0, tc_misses = 0;
    for (auto& sh : shards_) {
      bc_hits += sh->block_cache()->hits();
      bc_misses += sh->block_cache()->misses();
      const read::TableCache::Stats tc = sh->table_cache()->GetStats();
      tc_hits += tc.hits;
      tc_misses += tc.misses;
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "shards=%zu puts=%llu deletes=%llu gets=%llu scans=%llu "
        "flushes=%llu compactions=%llu write_amp=%.3f read_amp=%.3f "
        "flush_read=%llu comp_read=%llu conflicts=%llu "
        "switches=%llu bg_flushes=%llu bg_compactions=%llu "
        "stall_us=%llu slowdowns=%llu stops=%llu "
        "stall_slowdown_us=%llu stall_stop_us=%llu "
        "slowdowns_memtable=%llu slowdowns_l0=%llu "
        "stops_memtable=%llu stops_l0=%llu "
        "bc_hits=%llu bc_misses=%llu tc_hits=%llu tc_misses=%llu",
        shards_.size(), static_cast<unsigned long long>(agg.puts),
        static_cast<unsigned long long>(agg.deletes),
        static_cast<unsigned long long>(agg.gets.load()),
        static_cast<unsigned long long>(agg.scans.load()),
        static_cast<unsigned long long>(agg.flushes),
        static_cast<unsigned long long>(agg.compactions),
        agg.WriteAmplification(), agg.ReadAmplification(),
        static_cast<unsigned long long>(agg.flush_bytes_read),
        static_cast<unsigned long long>(agg.compaction_bytes_read),
        static_cast<unsigned long long>(agg.compaction_conflicts),
        static_cast<unsigned long long>(agg.memtable_switches),
        static_cast<unsigned long long>(agg.bg_flushes),
        static_cast<unsigned long long>(agg.bg_compactions),
        static_cast<unsigned long long>(agg.stall_micros),
        static_cast<unsigned long long>(agg.stall_slowdowns),
        static_cast<unsigned long long>(agg.stall_stops),
        static_cast<unsigned long long>(agg.stall_slowdown_micros),
        static_cast<unsigned long long>(agg.stall_stop_micros),
        static_cast<unsigned long long>(agg.stall_slowdowns_memtable),
        static_cast<unsigned long long>(agg.stall_slowdowns_l0),
        static_cast<unsigned long long>(agg.stall_stops_memtable),
        static_cast<unsigned long long>(agg.stall_stops_l0),
        static_cast<unsigned long long>(bc_hits),
        static_cast<unsigned long long>(bc_misses),
        static_cast<unsigned long long>(tc_hits),
        static_cast<unsigned long long>(tc_misses));
    *value = std::string(buf) + " | " +
             GetGroupCommitStats().ToString();
    return true;
  }
  return false;
}

uint64_t ShardedDB::ApproximateDataBytes() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->ApproximateDataBytes();
  return total;
}

std::vector<Histogram> ShardedDB::GetLatencyHistograms() const {
  std::vector<std::vector<Histogram>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& sh : shards_) {
    per_shard.push_back(sh->GetLatencyHistograms());
  }
  return metrics::MergeLatencyHistograms(per_shard);
}

std::string ShardedDB::DumpPrometheus() const {
  const EngineStats agg = AggregatedStats();
  const obs::AmpSnapshot amp = AggregatedAmpSnapshot();
  std::vector<tune::TunerStats> per_shard_tune;
  for (const auto& sh : shards_) {
    if (sh->adaptive_tuner() != nullptr) {
      per_shard_tune.push_back(sh->adaptive_tuner()->GetStats());
    }
  }
  const tune::TunerStats tune_agg =
      metrics::AggregateTunerStats(per_shard_tune);
  return metrics::DumpPrometheusText(
      agg, ring_->TotalEmitted(), ApproximateDataBytes(),
      GetLatencyHistograms(), options_.enable_amp_stats ? &amp : nullptr,
      per_shard_tune.empty() ? nullptr : &tune_agg);
}

obs::AmpSnapshot ShardedDB::AggregatedAmpSnapshot() const {
  obs::AmpSnapshot out;
  for (const auto& sh : shards_) out.Add(sh->GetAmpSnapshot());
  return out;
}

std::string ShardedDB::BuildStatsSample() {
  const obs::AmpSnapshot amp = AggregatedAmpSnapshot();
  // Each shard's drift evaluation consumes its window and emits its own
  // kAmpSample/kModelDrift into the shared ring; the fleet sample keeps
  // the worst score.
  double max_drift = 0;
  int drifted = 0;
  for (auto& sh : shards_) {
    const obs::DriftSample d = sh->EvaluateModelDrift();
    max_drift = std::max(max_drift, d.drift_score);
    if (d.drifted) drifted = 1;
  }

  const std::vector<Histogram> lat = GetLatencyHistograms();
  double put_p99 = 0;
  double get_p99 = 0;
  const size_t put_op = static_cast<size_t>(obs::OpType::kPut);
  const size_t get_op = static_cast<size_t>(obs::OpType::kGet);
  if (put_op < lat.size()) put_p99 = lat[put_op].Percentile(99.0);
  if (get_op < lat.size()) get_p99 = lat[get_op].Percentile(99.0);

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"t_us\": %llu, \"shards\": %zu, \"write_amp\": %.4f, "
      "\"read_amp\": %.4f, \"space_amp\": %.4f, \"blocks_per_lookup\": %.4f, "
      "\"lookups\": %llu, \"user_payload\": %llu, \"data_bytes\": %llu, "
      "\"put_p99_us\": %.1f, \"get_p99_us\": %.1f, "
      "\"drift_score\": %.3f, \"drifted\": %d}",
      static_cast<unsigned long long>(NowMicros()),
      shards_.size(), amp.WriteAmp(), amp.ReadAmp(), amp.SpaceAmp(),
      amp.BlocksPerLookup(), static_cast<unsigned long long>(amp.lookups),
      static_cast<unsigned long long>(amp.user_payload_bytes),
      static_cast<unsigned long long>(ApproximateDataBytes()), put_p99,
      get_p99, max_drift, drifted);
  return buf;
}

std::string ShardedDB::DebugString() const {
  std::string out;
  for (size_t i = 0; i < shards_.size(); i++) {
    char head[64];
    std::snprintf(head, sizeof(head), "-- shard %zu --\n", i);
    out += head;
    out += shards_[i]->DebugString();
  }
  return out;
}

}  // namespace shard
}  // namespace talus
