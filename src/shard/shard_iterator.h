// ShardChainIterator: the cross-shard merging iterator (DESIGN.md §3).
// Because shards are disjoint, ordered key ranges, the merge of N per-shard
// iterators degenerates to concatenation in shard order — no heap is
// needed. Children are user-level iterators pinned at ONE global sequence
// (DB::NewIteratorAt), handed over eagerly by ShardedDB::NewIterator, which
// registers a snapshot at that sequence in every shard while pinning so no
// concurrent compaction can garbage-collect versions the chain is entitled
// to see. Once every child's ReadView is pinned the chain is immune to
// concurrent maintenance for its whole lifetime. Forward-only, like
// DbIterator.
#ifndef TALUS_SHARD_SHARD_ITERATOR_H_
#define TALUS_SHARD_SHARD_ITERATOR_H_

#include <memory>
#include <vector>

#include "shard/shard_router.h"
#include "table/iterator.h"

namespace talus {
namespace shard {

class ShardChainIterator final : public Iterator {
 public:
  /// `router` must outlive the iterator (the ShardedDB owns both);
  /// `children` holds one pinned iterator per shard, in shard order.
  ShardChainIterator(const ShardRouter* router,
                     std::vector<std::unique_ptr<Iterator>> children);

  bool Valid() const override { return valid_; }
  void SeekToFirst() override;
  void Seek(const Slice& target) override;
  void Next() override;
  void SeekToLast() override { valid_ = false; }  // Forward-only.
  void Prev() override;

  Slice key() const override;
  Slice value() const override;
  Status status() const override;

 private:
  /// Advances `current_` across shards (seeking each fresh child to its
  /// first entry) until a valid child or the end of the chain.
  void SkipToValid();

  const ShardRouter* router_;
  std::vector<std::unique_ptr<Iterator>> children_;
  size_t current_ = 0;
  bool valid_ = false;
};

}  // namespace shard
}  // namespace talus

#endif  // TALUS_SHARD_SHARD_ITERATOR_H_
