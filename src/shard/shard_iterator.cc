#include "shard/shard_iterator.h"

#include <cassert>

namespace talus {
namespace shard {

ShardChainIterator::ShardChainIterator(
    const ShardRouter* router, std::vector<std::unique_ptr<Iterator>> children)
    : router_(router), children_(std::move(children)) {
  assert(children_.size() == router_->shard_count());
}

void ShardChainIterator::SeekToFirst() {
  current_ = 0;
  if (!children_.empty()) children_[0]->SeekToFirst();
  SkipToValid();
}

void ShardChainIterator::Seek(const Slice& target) {
  current_ = router_->ShardFor(target);
  children_[current_]->Seek(target);
  SkipToValid();
}

void ShardChainIterator::Next() {
  assert(valid_);
  children_[current_]->Next();
  SkipToValid();
}

void ShardChainIterator::Prev() { assert(false); }  // Forward-only.

void ShardChainIterator::SkipToValid() {
  while (current_ < children_.size()) {
    if (children_[current_]->Valid()) {
      valid_ = true;
      return;
    }
    if (!children_[current_]->status().ok()) break;  // Surface, don't skip.
    current_++;
    if (current_ < children_.size()) children_[current_]->SeekToFirst();
  }
  valid_ = false;
}

Slice ShardChainIterator::key() const {
  assert(valid_);
  return children_[current_]->key();
}

Slice ShardChainIterator::value() const {
  assert(valid_);
  return children_[current_]->value();
}

Status ShardChainIterator::status() const {
  for (const auto& child : children_) {
    Status s = child->status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace shard
}  // namespace talus
