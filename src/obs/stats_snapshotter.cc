#include "obs/stats_snapshotter.h"

#include <chrono>
#include <utility>

namespace talus {
namespace obs {

StatsSnapshotter::StatsSnapshotter(exec::ThreadPool* pool, Options options,
                                   SampleFn fn)
    : pool_(pool), options_(std::move(options)), fn_(std::move(fn)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (!options_.jsonl_path.empty()) {
    file_ = std::fopen(options_.jsonl_path.c_str(), "w");
  }
}

StatsSnapshotter::~StatsSnapshotter() {
  Stop();
  if (file_ != nullptr) std::fclose(file_);
}

void StatsSnapshotter::Start() {
  std::lock_guard<std::mutex> lock(timer_mu_);
  if (started_ || stopping_) return;
  started_ = true;
  timer_ = std::thread([this] { TimerLoop(); });
}

void StatsSnapshotter::Stop() {
  bool take_final = false;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    take_final = started_ && !final_sample_taken_;
    final_sample_taken_ = true;
    stopping_ = true;
    timer_cv_.notify_all();
  }
  if (timer_.joinable()) timer_.join();
  // A pool-submitted sample may still be running; it must finish before
  // the owner destroys the state it reads.
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return !sample_in_flight_; });
  }
  // Closing sample: a run shorter than the interval still leaves one, and
  // the series always ends with the final state. Runs inline on the
  // caller's thread — the owner calls Stop while its state is intact.
  if (take_final) SampleNow();
}

void StatsSnapshotter::TimerLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.interval_ms == 0
                                    ? 1000
                                    : options_.interval_ms);
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!stopping_) {
    if (timer_cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      break;
    }
    // Skip the tick if the previous sample is still running: a stalled
    // sampler must not pile jobs onto the shared pool.
    {
      std::lock_guard<std::mutex> inflight_lock(inflight_mu_);
      if (sample_in_flight_) continue;
      sample_in_flight_ = true;
    }
    lock.unlock();
    bool submitted =
        pool_ != nullptr && pool_->Submit([this] { DoSample(); });
    if (!submitted) DoSample();
    lock.lock();
  }
}

void StatsSnapshotter::DoSample() {
  std::string line = fn_();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < options_.ring_capacity) {
      ring_.push_back(std::move(line));
    } else {
      ring_[ring_next_ % options_.ring_capacity] = line;
    }
    ring_next_++;
    total_samples_++;
    if (file_ != nullptr) {
      const std::string& stored =
          ring_.size() < options_.ring_capacity
              ? ring_.back()
              : ring_[(ring_next_ - 1) % options_.ring_capacity];
      std::fwrite(stored.data(), 1, stored.size(), file_);
      std::fputc('\n', file_);
      std::fflush(file_);
    }
  }
  std::lock_guard<std::mutex> inflight_lock(inflight_mu_);
  sample_in_flight_ = false;
  inflight_cv_.notify_all();
}

void StatsSnapshotter::SampleNow() {
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return !sample_in_flight_; });
    sample_in_flight_ = true;
  }
  DoSample();
}

std::vector<std::string> StatsSnapshotter::RingContents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.ring_capacity) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); i++) {
      out.push_back(ring_[(ring_next_ + i) % options_.ring_capacity]);
    }
  }
  return out;
}

uint64_t StatsSnapshotter::TotalSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

}  // namespace obs
}  // namespace talus
