#ifndef TALUS_OBS_MODEL_DRIFT_H_
#define TALUS_OBS_MODEL_DRIFT_H_

// Cost-model drift telemetry: feeds the measured workload mix and the
// measured per-op I/O (from AmpTracker) into the analytical cost model
// the active growth policy was designed from, and reports how far
// reality has drifted from the model's predictions.
//
// Unit conventions (documented in DESIGN.md §6.7):
//   - point lookup: data blocks fetched per lookup. The model predicts
//     L·f (leveling) or L·T·f (tiering) blocks for a zero-result lookup;
//     a found lookup adds its one true block read, so the prediction is
//     found_fraction + model R.
//   - update: page I/Os per update. Measured = write_amp / P (bytes
//     amplification divided by entries per page cancels to the model's
//     unit); predicted = the model's W.
//   - range lookup: predicted only (the engine has no per-scan block
//     attribution yet); surfaced for context, excluded from drift.
//
// Drift has two triggers: the prediction error (max over ops of
// max(ratio, 1/ratio) where ratio = measured/predicted) exceeding
// `drift_threshold`, or the windowed mix moving more than
// `mix_shift_threshold` (L1/2 distance) from the previous window — the
// signal the ROADMAP's online tuner will eventually act on.

#include <cstdint>
#include <mutex>
#include <string>

#include "tuning/vertical_cost_model.h"
#include "tuning/workload_mix.h"

namespace talus {
namespace obs {

struct DriftSample {
  // Inputs echoed back for the talus.model property.
  WorkloadMix mix;                 // windowed measured mix
  tuning::HorizontalMerge merge = tuning::HorizontalMerge::kLeveling;
  int levels = 0;                  // L implied by current data volume
  double size_ratio = 0;           // T
  double bloom_fpr = 0;            // f
  double page_entries = 0;         // P
  uint64_t window_lookups = 0;
  uint64_t window_updates = 0;

  // Predicted vs measured per-op cost (see unit conventions above).
  double predicted_point = 0;
  double measured_point = 0;
  double point_ratio = 0;          // measured / predicted; 0 = no sample
  double predicted_update = 0;
  double measured_update = 0;
  double update_ratio = 0;
  double predicted_range = 0;      // no measured analog yet
  double zeta_predicted = 0;       // mix-weighted model cost (Eq. 5)

  // Drift verdict.
  double drift_score = 0;          // max over ops of max(r, 1/r)
  double mix_shift = 0;            // L1/2 vs previous window's mix
  bool drifted = false;

  std::string ToString() const;    // the talus.model text format
};

class ModelDriftMonitor {
 public:
  struct Params {
    tuning::HorizontalMerge merge = tuning::HorizontalMerge::kLeveling;
    double size_ratio = 6.0;
    double bloom_fpr = 0.1;
    double drift_threshold = 4.0;      // prediction-error trigger
    double mix_shift_threshold = 0.35; // workload-flip trigger
  };

  struct Measured {
    WorkloadMix mix;                // windowed mix from WorkloadMixTracker
    uint64_t window_lookups = 0;
    uint64_t window_updates = 0;
    double found_fraction = 0;      // windowed hits / lookups
    double blocks_per_lookup = 0;   // windowed measured R
    double write_amp = 0;           // windowed measured bytes amplification
    double page_entries = 4.0;      // P implied by block size / entry size
    uint64_t data_buffers = 1;      // N/B: data volume in write buffers
  };

  explicit ModelDriftMonitor(const Params& params) : params_(params) {}

  /// Evaluate one window. Stateful only for the mix-shift baseline (the
  /// previous window's mix); safe for concurrent callers.
  DriftSample Evaluate(const Measured& m);

  /// Re-anchors the monitor to a new design after a runtime policy switch
  /// (DB::ApplyPolicyConfig): subsequent windows are measured against the
  /// new merge/T. The mix-shift baseline is kept — the workload did not
  /// change. Safe against concurrent Evaluate calls.
  void Reconfigure(tuning::HorizontalMerge merge, double size_ratio);

 private:
  Params params_;
  std::mutex mu_;
  bool have_prev_mix_ = false;
  WorkloadMix prev_mix_;
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_MODEL_DRIFT_H_
