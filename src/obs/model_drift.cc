#include "obs/model_drift.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace talus {
namespace obs {

namespace {

double RatioScore(double ratio) {
  if (ratio <= 0) return 0;
  return std::max(ratio, 1.0 / ratio);
}

double MixL1Half(const WorkloadMix& a, const WorkloadMix& b) {
  return (std::fabs(a.updates - b.updates) +
          std::fabs(a.point_lookups - b.point_lookups) +
          std::fabs(a.range_lookups - b.range_lookups)) /
         2.0;
}

}  // namespace

std::string DriftSample::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "mix: w=%.3f r=%.3f q=%.3f window_updates=%" PRIu64
                " window_lookups=%" PRIu64 "\n",
                mix.updates, mix.point_lookups, mix.range_lookups,
                window_updates, window_lookups);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "design: merge=%s T=%.1f levels=%d f=%.4f P=%.1f\n",
                merge == tuning::HorizontalMerge::kLeveling ? "leveling"
                                                            : "tiering",
                size_ratio, levels, bloom_fpr, page_entries);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "point: predicted=%.4f measured=%.4f ratio=%.3f\n",
                predicted_point, measured_point, point_ratio);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "update: predicted=%.4f measured=%.4f ratio=%.3f\n",
                predicted_update, measured_update, update_ratio);
  out += buf;
  std::snprintf(buf, sizeof(buf), "range: predicted=%.4f\n", predicted_range);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "zeta=%.4f drift_score=%.3f mix_shift=%.3f drifted=%d\n",
                zeta_predicted, drift_score, mix_shift, drifted ? 1 : 0);
  out += buf;
  return out;
}

void ModelDriftMonitor::Reconfigure(tuning::HorizontalMerge merge,
                                    double size_ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  params_.merge = merge;
  params_.size_ratio = size_ratio;
  // The mix-shift baseline survives: the workload did not change, only the
  // design it is measured against.
}

DriftSample ModelDriftMonitor::Evaluate(const Measured& m) {
  // Held for the whole evaluation: a concurrent Reconfigure (runtime
  // policy switch) must not be observed half-applied.
  std::lock_guard<std::mutex> lock(mu_);
  DriftSample s;
  s.mix = m.mix;
  s.merge = params_.merge;
  s.size_ratio = params_.size_ratio;
  s.bloom_fpr = params_.bloom_fpr;
  s.page_entries = m.page_entries;
  s.window_lookups = m.window_lookups;
  s.window_updates = m.window_updates;

  tuning::VerticalCostModel model;
  model.size_ratio = std::max(2.0, params_.size_ratio);
  model.bloom_fpr = params_.bloom_fpr;
  model.page_entries = std::max(1.0, m.page_entries);
  model.data_buffers = std::max<uint64_t>(1, m.data_buffers);
  s.levels = model.Levels();

  // A found lookup pays one true data-block read on top of the model's
  // false-positive term (the model prices zero-result lookups).
  s.predicted_point =
      m.found_fraction + model.PointLookupCost(params_.merge);
  s.predicted_update = model.UpdateCost(params_.merge);
  s.predicted_range = model.RangeLookupCost(params_.merge);
  s.zeta_predicted = model.Zeta(params_.merge, m.mix);

  s.measured_point = m.blocks_per_lookup;
  s.measured_update = m.write_amp / model.page_entries;

  if (m.window_lookups > 0 && s.predicted_point > 0) {
    s.point_ratio = s.measured_point / s.predicted_point;
  }
  if (m.window_updates > 0 && s.predicted_update > 0) {
    s.update_ratio = s.measured_update / s.predicted_update;
  }
  s.drift_score = std::max(RatioScore(s.point_ratio),
                           RatioScore(s.update_ratio));

  if (have_prev_mix_) s.mix_shift = MixL1Half(m.mix, prev_mix_);
  // Only windows with traffic move the baseline: an idle window must not
  // make the next busy window look like a flip back.
  if (m.window_lookups + m.window_updates > 0) {
    prev_mix_ = m.mix;
    have_prev_mix_ = true;
  }

  s.drifted = s.drift_score > params_.drift_threshold ||
              s.mix_shift > params_.mix_shift_threshold;
  return s;
}

}  // namespace obs
}  // namespace talus
