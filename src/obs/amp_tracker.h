#ifndef TALUS_OBS_AMP_TRACKER_H_
#define TALUS_OBS_AMP_TRACKER_H_

// Per-level amplification accounting: the measured counterpart of the
// cost models in src/tuning/.  The write side counts bytes written per
// level split flush-vs-compaction; the read side attributes every lookup
// probe (files touched, bloom negatives and false positives, data blocks
// fetched, the level that decided the key) to its level without taking a
// lock on the read path.  Snapshots are linearizable enough for
// monitoring: each counter is read atomically, cross-counter skew is
// bounded by in-flight operations.
//
// Write-side events (flush/compaction install, committed batches) are
// rare, so they use plain relaxed atomics.  Read-side folding happens
// once per Get, so it uses the same cache-line-striped cell layout as
// LatencyRecorder to keep concurrent readers off each other's lines.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace talus {
namespace obs {

// Levels at or beyond the last slot fold into it; 16 levels hold any
// realistic tree (size ratio >= 2 over 2^64 bytes).
constexpr int kAmpMaxLevels = 16;

inline int AmpSlot(int level) {
  if (level < 0) return 0;
  if (level >= kAmpMaxLevels) return kAmpMaxLevels - 1;
  return level;
}

/// A point-in-time copy of every amp counter, plus live space per level
/// (filled by the owner from the current Version — the tracker itself
/// has no view of file metadata).  Value type: snapshots subtract to
/// form windows and add to form fleet-wide aggregates.
struct AmpSnapshot {
  struct Level {
    // Write side.
    uint64_t flush_bytes_written = 0;
    uint64_t compaction_bytes_written = 0;
    uint64_t compaction_bytes_read = 0;
    // Read side.
    uint64_t files_probed = 0;
    uint64_t filter_negatives = 0;
    uint64_t bloom_false_positives = 0;
    uint64_t block_reads = 0;
    uint64_t hits = 0;
    // Space (live Version at snapshot time; not windowed/merged-cumulative
    // semantics — Subtract leaves them at the "now" value).
    uint64_t live_sst_bytes = 0;
    uint64_t live_payload_bytes = 0;
  };

  Level levels[kAmpMaxLevels];
  int num_levels = 0;  // 1 + deepest slot ever touched
  uint64_t lookups = 0;
  uint64_t memtable_hits = 0;  // active + immutable memtables
  uint64_t misses = 0;
  uint64_t user_payload_bytes = 0;  // committed key+value bytes

  uint64_t TotalBytesFlushed() const;
  uint64_t TotalBytesCompacted() const;
  // (flush + compaction bytes written) / user payload; 0 when no payload.
  double WriteAmp() const;
  // Files probed per point lookup; 0 when no lookups.
  double ReadAmp() const;
  // Data blocks fetched per point lookup (the model's R unit).
  double BlocksPerLookup() const;
  // Live SST bytes / live logical payload bytes across levels; 1 when the
  // tree is empty.  Memtable contents are excluded (documented in
  // DESIGN.md §6.6).
  double SpaceAmp() const;

  // Element-wise accumulate (fleet-wide aggregation across shards).
  void Add(const AmpSnapshot& other);
  // Saturating element-wise subtract (windowed deltas).  Space fields are
  // left at this snapshot's values: "live bytes now" is already a window
  // quantity.
  void Subtract(const AmpSnapshot& base);

  // The talus.amp text format: a summary line, then one line per level.
  // All byte counts are exact integers so tests can assert ground truth.
  std::string ToString() const;
};

/// Per-lookup probe attribution, filled on the caller's stack by the
/// read path and folded into the tracker once per Get.
struct LookupProbe {
  static constexpr int kHitMemtable = -1;
  static constexpr int kMiss = -2;

  uint16_t files_probed[kAmpMaxLevels] = {};
  uint16_t filter_negatives[kAmpMaxLevels] = {};
  uint16_t bloom_false_positives[kAmpMaxLevels] = {};
  uint16_t block_reads[kAmpMaxLevels] = {};
  int deepest_slot = -1;             // deepest slot with any activity
  int hit_level = kMiss;             // kHitMemtable, kMiss, or level index
};

class AmpTracker {
 public:
  AmpTracker();

  AmpTracker(const AmpTracker&) = delete;
  AmpTracker& operator=(const AmpTracker&) = delete;

  // ---- Write side (rare; called with the DB mutex held or from the
  // commit pipeline — plain relaxed atomics). ----
  void RecordFlushWrite(int level, uint64_t bytes);
  void RecordCompactionWrite(int level, uint64_t bytes_read,
                             uint64_t bytes_written);
  void RecordUserPayload(uint64_t bytes);

  // ---- Read side (hot; mutex-free, striped by thread). ----
  void RecordLookup(const LookupProbe& probe);

  // Cumulative counters since construction.  Space fields are zero; the
  // owner fills them from the live Version.
  AmpSnapshot Snapshot() const;
  // Counters since the last AdvanceWindow() (or construction).
  AmpSnapshot WindowSnapshot() const;
  // Start a new window at "now".  Single-consumer (the drift monitor /
  // property reader); safe against concurrent recorders.
  void AdvanceWindow();

 private:
  static constexpr int kStripes = 8;

  struct alignas(64) ReadCell {
    std::atomic<uint64_t> files_probed[kAmpMaxLevels];
    std::atomic<uint64_t> filter_negatives[kAmpMaxLevels];
    std::atomic<uint64_t> bloom_false_positives[kAmpMaxLevels];
    std::atomic<uint64_t> block_reads[kAmpMaxLevels];
    std::atomic<uint64_t> hits[kAmpMaxLevels];
    std::atomic<uint64_t> lookups;
    std::atomic<uint64_t> memtable_hits;
    std::atomic<uint64_t> misses;
  };

  static int StripeForThisThread();

  ReadCell cells_[kStripes];

  std::atomic<uint64_t> flush_bytes_[kAmpMaxLevels];
  std::atomic<uint64_t> compaction_bytes_written_[kAmpMaxLevels];
  std::atomic<uint64_t> compaction_bytes_read_[kAmpMaxLevels];
  std::atomic<uint64_t> user_payload_bytes_{0};
  std::atomic<int> max_slot_{-1};

  void NoteSlot(int slot);

  // Window base: a full snapshot taken at the last AdvanceWindow().
  mutable std::mutex window_mu_;
  AmpSnapshot window_base_;
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_AMP_TRACKER_H_
