#include "obs/prometheus.h"

#include <cstdio>

namespace talus {
namespace obs {

namespace {

std::string SampleName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

PrometheusWriter::Family* PrometheusWriter::FamilyFor(
    const std::string& name, const char* type, const std::string& help) {
  // Linear scan: a metrics dump has a few dozen families at most, and the
  // common case appends to the most recent one.
  for (auto it = families_.rbegin(); it != families_.rend(); ++it) {
    if (it->name == name) {
      if (it->help.empty() && !help.empty()) it->help = help;
      return &*it;
    }
  }
  families_.push_back(Family{name, type, help, std::string()});
  return &families_.back();
}

void PrometheusWriter::AddCounter(const std::string& name,
                                  const std::string& labels, uint64_t value,
                                  const std::string& help) {
  Family* f = FamilyFor(name, "counter", help);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(value));
  f->body += SampleName(name, labels) + buf;
}

void PrometheusWriter::AddGauge(const std::string& name,
                                const std::string& labels, double value,
                                const std::string& help) {
  Family* f = FamilyFor(name, "gauge", help);
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %.6g\n", value);
  f->body += SampleName(name, labels) + buf;
}

void PrometheusWriter::AddHistogram(const std::string& name,
                                    const std::string& labels,
                                    const Histogram& h,
                                    const std::string& help) {
  Family* f = FamilyFor(name, "histogram", help);
  const std::string sep = labels.empty() ? "" : ",";
  char buf[96];
  // Cumulative buckets up to the last occupied one; the tail collapses into
  // +Inf so empty histograms still produce a complete, scrapable family.
  int last = -1;
  for (int b = 0; b < Histogram::kNumBuckets; b++) {
    if (h.BucketCount(b) > 0) last = b;
  }
  uint64_t cum = 0;
  for (int b = 0; b <= last; b++) {
    cum += h.BucketCount(b);
    std::snprintf(buf, sizeof(buf), "le=\"%.6g\"} %llu\n",
                  Histogram::BucketUpperBound(b),
                  static_cast<unsigned long long>(cum));
    f->body += name + "_bucket{" + labels + sep + buf;
  }
  std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %llu\n",
                static_cast<unsigned long long>(h.Count()));
  f->body += name + "_bucket{" + labels + sep + buf;
  std::snprintf(buf, sizeof(buf), " %.6g\n", h.Sum());
  f->body += SampleName(name + "_sum", labels) + buf;
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(h.Count()));
  f->body += SampleName(name + "_count", labels) + buf;
}

std::string PrometheusWriter::Output() const {
  std::string out;
  for (const Family& f : families_) {
    if (!f.help.empty()) {
      out += "# HELP " + f.name + " " + f.help + "\n";
    }
    out += "# TYPE " + f.name + " ";
    out += f.type;
    out += "\n";
    out += f.body;
  }
  return out;
}

}  // namespace obs
}  // namespace talus
