#include "obs/prometheus.h"

#include <cstdio>

namespace talus {
namespace obs {

namespace {

std::string SampleName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

void PrometheusWriter::TypeHeader(const std::string& name, const char* type) {
  // Series of the same family (different labels) share one # TYPE line.
  if (name == last_typed_) return;
  out_ += "# TYPE " + name + " " + type + "\n";
  last_typed_ = name;
}

void PrometheusWriter::AddCounter(const std::string& name,
                                  const std::string& labels, uint64_t value) {
  TypeHeader(name, "counter");
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(value));
  out_ += SampleName(name, labels) + buf;
}

void PrometheusWriter::AddGauge(const std::string& name,
                                const std::string& labels, double value) {
  TypeHeader(name, "gauge");
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %.6g\n", value);
  out_ += SampleName(name, labels) + buf;
}

void PrometheusWriter::AddHistogram(const std::string& name,
                                    const std::string& labels,
                                    const Histogram& h) {
  TypeHeader(name, "histogram");
  const std::string sep = labels.empty() ? "" : ",";
  char buf[96];
  // Cumulative buckets up to the last occupied one; the tail collapses into
  // +Inf so empty histograms still produce a complete, scrapable family.
  int last = -1;
  for (int b = 0; b < Histogram::kNumBuckets; b++) {
    if (h.BucketCount(b) > 0) last = b;
  }
  uint64_t cum = 0;
  for (int b = 0; b <= last; b++) {
    cum += h.BucketCount(b);
    std::snprintf(buf, sizeof(buf), "le=\"%.6g\"} %llu\n",
                  Histogram::BucketUpperBound(b),
                  static_cast<unsigned long long>(cum));
    out_ += name + "_bucket{" + labels + sep + buf;
  }
  std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %llu\n",
                static_cast<unsigned long long>(h.Count()));
  out_ += name + "_bucket{" + labels + sep + buf;
  std::snprintf(buf, sizeof(buf), " %.6g\n", h.Sum());
  out_ += SampleName(name + "_sum", labels) + buf;
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(h.Count()));
  out_ += SampleName(name + "_count", labels) + buf;
}

}  // namespace obs
}  // namespace talus
