// LatencyRecorder: lock-free, per-core-striped latency histograms for every
// hot operation in the engine (DESIGN.md §6). Each (stripe, op) cell is an
// independent set of relaxed atomic counters over the exponential bucket
// layout shared with util/Histogram, so recording from any number of threads
// never takes a lock and almost never shares a cache line; snapshots fold
// the stripes back into plain mergeable Histograms (percentiles come from
// the same interpolation every other histogram in the engine uses).
//
// Cost discipline: when DbOptions::enable_latency_stats is off the DB holds
// no recorder at all — the per-op fast path is a null-pointer test, no clock
// is read, and nothing allocates. When on, a record is two steady-clock
// reads plus a handful of relaxed atomic adds (measured <3% at 8 writers;
// DESIGN.md §6.5).
#ifndef TALUS_OBS_LATENCY_RECORDER_H_
#define TALUS_OBS_LATENCY_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/wall_clock.h"

namespace talus {
namespace obs {

/// Operations with first-class latency histograms. Order is the property /
/// exposition order; kNumOpTypes sizes every per-op array.
enum class OpType : uint8_t {
  kPut = 0,        // Whole write-path call (Put/Delete/Write), queue included.
  kGroupWait,      // Time a writer spent queued before its group formed.
  kWalAppend,      // Leader's WAL append for one commit group.
  kWalSync,        // WAL fsync (only groups that actually synced).
  kGet,            // Whole point-lookup call.
  kScan,           // Whole Scan call.
  kIterSeek,       // Iterator Seek/SeekToFirst.
  kFlush,          // One memtable flush (merge + SST build).
  kCompaction,     // One compaction (plan + merge + install).
};
constexpr int kNumOpTypes = 9;

const char* OpTypeName(OpType op);

class LatencyRecorder {
 public:
  LatencyRecorder();
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Records one observation (relaxed atomics on this thread's stripe).
  void Record(OpType op, uint64_t micros);

  /// Folds every stripe of `op` into one Histogram (microsecond units).
  Histogram SnapshotOp(OpType op) const;
  /// SnapshotOp for all ops, indexed by OpType. The vector form is what
  /// metrics::MergeLatencyHistograms aggregates across shards.
  std::vector<Histogram> SnapshotAll() const;

  /// The "talus.latency" text: one line per op type,
  /// `op=<name> count=N p50_us=... p99_us=... p999_us=... max_us=... avg_us=...`.
  static std::string Format(const std::vector<Histogram>& per_op);
  std::string ToString() const { return Format(SnapshotAll()); }

 private:
  // Few enough stripes to keep the footprint small, enough that 8-16
  // concurrent recorders rarely collide on a cell.
  static constexpr int kStripes = 8;

  // One op's counters within one stripe. Buckets are the shared layout from
  // util/Histogram; min/max maintained by CAS (cold once they stabilize).
  struct alignas(64) Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
  };

  Cell& CellFor(OpType op);

  Cell cells_[kStripes][kNumOpTypes];
};

/// RAII timer: reads the clock only when a recorder is attached, records on
/// destruction. Safe to construct with a null recorder (disabled stats).
class ScopedOpTimer {
 public:
  ScopedOpTimer(LatencyRecorder* recorder, OpType op)
      : recorder_(recorder), op_(op),
        start_(recorder != nullptr ? NowMicros() : 0) {}
  ~ScopedOpTimer() {
    if (recorder_ != nullptr) recorder_->Record(op_, NowMicros() - start_);
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  LatencyRecorder* recorder_;
  OpType op_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_LATENCY_RECORDER_H_
