// EventRing: timestamped structured engine events for postmortem stall
// reconstruction (DESIGN.md §6). Flushes, compactions, stalls, GC and shard
// backpressure are rare (tens per second at most), so the ring is a simple
// mutex-protected circular buffer — contention is irrelevant at this rate and
// a mutex keeps the global event order exact, which is what makes a JSONL
// trace replayable: stall_enter -> flush_begin -> flush_end -> stall_exit.
//
// One ring can be shared by many DBs (ShardedDB passes its ring to every
// shard via DbOptions::event_ring) so cross-shard causality lands in a single
// ordered stream. When a trace file is open, each event is also appended as
// one JSON object per line.
#ifndef TALUS_OBS_EVENT_RING_H_
#define TALUS_OBS_EVENT_RING_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace talus {
namespace obs {

enum class EventType : uint8_t {
  kFlushBegin = 0,      // a: imm memtable bytes
  kFlushEnd,            // a: output run bytes, b: duration micros
  kCompactionPlan,      // a: level, b: input runs
  kCompactionMerge,     // a: level, b: merged bytes
  kCompactionInstall,   // a: level, b: duration micros
  kCompactionConflict,  // a: level
  kStallEnter,          // a: cause (see StallCauseName), b: 1 stop / 0 slowdown
  kStallExit,           // a: cause, b: stalled micros
  kGcDelete,            // a: tables deleted
  kShardBackpressure,   // a: 1 entered / 0 cleared, b: aggregate L0 runs
  kMemtableSwitch,      // a: sealed memtable bytes
  kAmpSample,           // a: window write-amp (milli), b: window blocks/lookup (milli)
  kModelDrift,          // a: drift score (milli), b: mix shift (milli)
  kPolicyChange,        // a: 1 tiering / 0 leveling, b: size ratio (milli)
};
constexpr int kNumEventTypes = 14;

const char* EventTypeName(EventType type);

// Cause codes carried in stall events' `a` payload.
constexpr uint64_t kCauseNone = 0;
constexpr uint64_t kCauseMemtable = 1;
constexpr uint64_t kCauseL0 = 2;
const char* StallCauseName(uint64_t cause);

struct Event {
  uint64_t micros;  // NowMicros() at emit time.
  uint64_t seq;     // Monotonic per-ring sequence (never wraps).
  EventType type;
  uint16_t shard;   // Emitting shard (0 for a standalone DB).
  uint64_t a;       // Per-type payloads; see EventType comments.
  uint64_t b;
};

class EventRing {
 public:
  explicit EventRing(size_t capacity);
  ~EventRing();
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Appends (and writes one JSONL line when a trace file is open).
  void Emit(EventType type, uint16_t shard, uint64_t a, uint64_t b);

  /// Starts appending JSONL to `path` ("" closes). False if fopen failed.
  bool OpenTraceFile(const std::string& path);
  void CloseTraceFile();

  /// Events still in the ring, oldest first.
  std::vector<Event> Snapshot() const;
  /// Total events ever emitted (>= Snapshot().size() once wrapped).
  uint64_t TotalEmitted() const;

  /// The "talus.events" text: one line per ring entry, oldest first:
  /// `t_us=<micros> seq=<n> shard=<s> event=<name> a=<a> b=<b>`.
  std::string ToString() const;

  /// One event as a single-line JSON object (no trailing newline); the
  /// exact format written to the trace file. Stall events carry a
  /// human-readable `cause` key instead of a bare code.
  static std::string ToJson(const Event& e);

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;  // Fixed capacity, indexed by seq % capacity.
  size_t capacity_;
  uint64_t next_seq_ = 0;
  std::FILE* trace_ = nullptr;
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_EVENT_RING_H_
