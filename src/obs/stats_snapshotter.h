#ifndef TALUS_OBS_STATS_SNAPSHOTTER_H_
#define TALUS_OBS_STATS_SNAPSHOTTER_H_

// Background time-series sampler: periodically materializes one JSON
// line of engine stats (the sample function is supplied by the owner —
// a DB or a ShardedDB) into a bounded in-memory ring and, optionally,
// an append-only JSONL file. Nightly runs archive the file, turning
// endpoint bench numbers into amp/latency trajectories.
//
// A dedicated timer thread owns the cadence (the shared exec::ThreadPool
// has no delayed scheduling) but the sampling work itself runs on the
// pool so a slow sample never blocks the clock; ticks that arrive while
// a sample is still in flight are dropped rather than queued. With no
// pool (inline-mode engines) samples run on the timer thread.

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace talus {
namespace obs {

class StatsSnapshotter {
 public:
  struct Options {
    uint64_t interval_ms = 1000;
    size_t ring_capacity = 240;
    std::string jsonl_path;  // empty = in-memory ring only
  };

  /// Returns one JSON object (no trailing newline) per call.
  using SampleFn = std::function<std::string()>;

  StatsSnapshotter(exec::ThreadPool* pool, Options options, SampleFn fn);
  ~StatsSnapshotter();

  StatsSnapshotter(const StatsSnapshotter&) = delete;
  StatsSnapshotter& operator=(const StatsSnapshotter&) = delete;

  void Start();
  /// Stops the timer, waits out any in-flight sample, and takes one
  /// closing sample — so even a run shorter than the interval leaves a
  /// sample behind and the series always ends with the final state.
  /// Idempotent (the closing sample is taken once).
  void Stop();

  /// Takes one sample synchronously (also lands in ring/file). Used by
  /// tests and by owners that want a final sample before shutdown.
  void SampleNow();

  /// Oldest-first copy of the retained samples.
  std::vector<std::string> RingContents() const;
  uint64_t TotalSamples() const;

 private:
  void TimerLoop();
  void DoSample();

  exec::ThreadPool* pool_;  // borrowed; may be null (inline sampling)
  Options options_;
  SampleFn fn_;

  mutable std::mutex mu_;  // ring + file + total
  std::vector<std::string> ring_;
  size_t ring_next_ = 0;
  uint64_t total_samples_ = 0;
  std::FILE* file_ = nullptr;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool stopping_ = false;
  bool started_ = false;
  bool final_sample_taken_ = false;
  std::thread timer_;

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  bool sample_in_flight_ = false;
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_STATS_SNAPSHOTTER_H_
