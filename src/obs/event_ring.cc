#include "obs/event_ring.h"

#include "util/wall_clock.h"

namespace talus {
namespace obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kFlushBegin: return "flush_begin";
    case EventType::kFlushEnd: return "flush_end";
    case EventType::kCompactionPlan: return "compaction_plan";
    case EventType::kCompactionMerge: return "compaction_merge";
    case EventType::kCompactionInstall: return "compaction_install";
    case EventType::kCompactionConflict: return "compaction_conflict";
    case EventType::kStallEnter: return "stall_enter";
    case EventType::kStallExit: return "stall_exit";
    case EventType::kGcDelete: return "gc_delete";
    case EventType::kShardBackpressure: return "shard_backpressure";
    case EventType::kMemtableSwitch: return "memtable_switch";
    case EventType::kAmpSample: return "amp_sample";
    case EventType::kModelDrift: return "model_drift";
    case EventType::kPolicyChange: return "policy_change";
  }
  return "unknown";
}

const char* StallCauseName(uint64_t cause) {
  switch (cause) {
    case kCauseMemtable: return "memtable";
    case kCauseL0: return "l0";
    default: return "none";
  }
}

EventRing::EventRing(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity), capacity_(capacity == 0 ? 1 : capacity) {}

EventRing::~EventRing() { CloseTraceFile(); }

void EventRing::Emit(EventType type, uint16_t shard, uint64_t a, uint64_t b) {
  Event e;
  e.micros = NowMicros();
  e.type = type;
  e.shard = shard;
  e.a = a;
  e.b = b;
  std::lock_guard<std::mutex> l(mu_);
  e.seq = next_seq_++;
  ring_[e.seq % capacity_] = e;
  if (trace_ != nullptr) {
    const std::string line = ToJson(e);
    std::fwrite(line.data(), 1, line.size(), trace_);
    std::fputc('\n', trace_);
    // Traces exist for postmortems of runs that may die mid-stall; flush per
    // event so the tail survives a crash. Event rates are low enough.
    std::fflush(trace_);
  }
}

bool EventRing::OpenTraceFile(const std::string& path) {
  std::lock_guard<std::mutex> l(mu_);
  if (trace_ != nullptr) {
    std::fclose(trace_);
    trace_ = nullptr;
  }
  if (path.empty()) return true;
  trace_ = std::fopen(path.c_str(), "w");
  return trace_ != nullptr;
}

void EventRing::CloseTraceFile() {
  std::lock_guard<std::mutex> l(mu_);
  if (trace_ != nullptr) {
    std::fclose(trace_);
    trace_ = nullptr;
  }
}

std::vector<Event> EventRing::Snapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<Event> out;
  const uint64_t count =
      next_seq_ < capacity_ ? next_seq_ : static_cast<uint64_t>(capacity_);
  out.reserve(count);
  for (uint64_t i = next_seq_ - count; i < next_seq_; i++) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

uint64_t EventRing::TotalEmitted() const {
  std::lock_guard<std::mutex> l(mu_);
  return next_seq_;
}

std::string EventRing::ToString() const {
  std::string out;
  char line[192];
  for (const Event& e : Snapshot()) {
    std::snprintf(line, sizeof(line),
                  "t_us=%llu seq=%llu shard=%u event=%s a=%llu b=%llu\n",
                  static_cast<unsigned long long>(e.micros),
                  static_cast<unsigned long long>(e.seq), e.shard,
                  EventTypeName(e.type), static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
  }
  return out;
}

std::string EventRing::ToJson(const Event& e) {
  char buf[224];
  if (e.type == EventType::kStallEnter || e.type == EventType::kStallExit) {
    std::snprintf(buf, sizeof(buf),
                  "{\"t_us\": %llu, \"seq\": %llu, \"shard\": %u, "
                  "\"event\": \"%s\", \"cause\": \"%s\", \"b\": %llu}",
                  static_cast<unsigned long long>(e.micros),
                  static_cast<unsigned long long>(e.seq), e.shard,
                  EventTypeName(e.type), StallCauseName(e.a),
                  static_cast<unsigned long long>(e.b));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"t_us\": %llu, \"seq\": %llu, \"shard\": %u, "
                  "\"event\": \"%s\", \"a\": %llu, \"b\": %llu}",
                  static_cast<unsigned long long>(e.micros),
                  static_cast<unsigned long long>(e.seq), e.shard,
                  EventTypeName(e.type), static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
  }
  return buf;
}

}  // namespace obs
}  // namespace talus
