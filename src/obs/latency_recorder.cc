#include "obs/latency_recorder.h"

#include <cstdio>
#include <functional>
#include <thread>

namespace talus {
namespace obs {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kPut: return "put";
    case OpType::kGroupWait: return "group_wait";
    case OpType::kWalAppend: return "wal_append";
    case OpType::kWalSync: return "wal_sync";
    case OpType::kGet: return "get";
    case OpType::kScan: return "scan";
    case OpType::kIterSeek: return "iter_seek";
    case OpType::kFlush: return "flush";
    case OpType::kCompaction: return "compaction";
  }
  return "unknown";
}

LatencyRecorder::LatencyRecorder() = default;

LatencyRecorder::Cell& LatencyRecorder::CellFor(OpType op) {
  // Hash the thread id once per call; cheap relative to the clock reads that
  // bracket every Record. Stripe collisions only cost a shared cache line.
  const size_t tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return cells_[tid % kStripes][static_cast<int>(op)];
}

void LatencyRecorder::Record(OpType op, uint64_t micros) {
  Cell& c = CellFor(op);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(micros, std::memory_order_relaxed);
  c.buckets[Histogram::BucketFor(static_cast<double>(micros))].fetch_add(
      1, std::memory_order_relaxed);
  uint64_t seen = c.min.load(std::memory_order_relaxed);
  while (micros < seen &&
         !c.min.compare_exchange_weak(seen, micros,
                                      std::memory_order_relaxed)) {
  }
  seen = c.max.load(std::memory_order_relaxed);
  while (micros > seen &&
         !c.max.compare_exchange_weak(seen, micros,
                                      std::memory_order_relaxed)) {
  }
}

Histogram LatencyRecorder::SnapshotOp(OpType op) const {
  Histogram h;
  uint64_t counts[Histogram::kNumBuckets];
  for (int s = 0; s < kStripes; s++) {
    const Cell& c = cells_[s][static_cast<int>(op)];
    const uint64_t num = c.count.load(std::memory_order_relaxed);
    if (num == 0) continue;
    for (int b = 0; b < Histogram::kNumBuckets; b++) {
      counts[b] = c.buckets[b].load(std::memory_order_relaxed);
    }
    h.MergeRaw(counts, num,
               static_cast<double>(c.sum.load(std::memory_order_relaxed)),
               static_cast<double>(c.min.load(std::memory_order_relaxed)),
               static_cast<double>(c.max.load(std::memory_order_relaxed)));
  }
  return h;
}

std::vector<Histogram> LatencyRecorder::SnapshotAll() const {
  std::vector<Histogram> out;
  out.reserve(kNumOpTypes);
  for (int op = 0; op < kNumOpTypes; op++) {
    out.push_back(SnapshotOp(static_cast<OpType>(op)));
  }
  return out;
}

std::string LatencyRecorder::Format(const std::vector<Histogram>& per_op) {
  std::string out;
  char line[256];
  for (int op = 0; op < kNumOpTypes && op < static_cast<int>(per_op.size());
       op++) {
    const Histogram& h = per_op[op];
    std::snprintf(line, sizeof(line),
                  "op=%s count=%llu p50_us=%.1f p99_us=%.1f p999_us=%.1f "
                  "max_us=%.0f avg_us=%.1f\n",
                  OpTypeName(static_cast<OpType>(op)),
                  static_cast<unsigned long long>(h.Count()), h.Median(),
                  h.Percentile(99), h.Percentile(99.9), h.Max(), h.Average());
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace talus
