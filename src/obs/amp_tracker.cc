#include "obs/amp_tracker.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace talus {
namespace obs {

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }

}  // namespace

uint64_t AmpSnapshot::TotalBytesFlushed() const {
  uint64_t total = 0;
  for (int i = 0; i < num_levels; i++) total += levels[i].flush_bytes_written;
  return total;
}

uint64_t AmpSnapshot::TotalBytesCompacted() const {
  uint64_t total = 0;
  for (int i = 0; i < num_levels; i++) {
    total += levels[i].compaction_bytes_written;
  }
  return total;
}

double AmpSnapshot::WriteAmp() const {
  if (user_payload_bytes == 0) return 0.0;
  return static_cast<double>(TotalBytesFlushed() + TotalBytesCompacted()) /
         static_cast<double>(user_payload_bytes);
}

double AmpSnapshot::ReadAmp() const {
  if (lookups == 0) return 0.0;
  uint64_t probed = 0;
  for (int i = 0; i < num_levels; i++) probed += levels[i].files_probed;
  return static_cast<double>(probed) / static_cast<double>(lookups);
}

double AmpSnapshot::BlocksPerLookup() const {
  if (lookups == 0) return 0.0;
  uint64_t blocks = 0;
  for (int i = 0; i < num_levels; i++) blocks += levels[i].block_reads;
  return static_cast<double>(blocks) / static_cast<double>(lookups);
}

double AmpSnapshot::SpaceAmp() const {
  uint64_t sst = 0;
  uint64_t payload = 0;
  for (int i = 0; i < num_levels; i++) {
    sst += levels[i].live_sst_bytes;
    payload += levels[i].live_payload_bytes;
  }
  if (payload == 0) return 1.0;
  return static_cast<double>(sst) / static_cast<double>(payload);
}

void AmpSnapshot::Add(const AmpSnapshot& other) {
  for (int i = 0; i < kAmpMaxLevels; i++) {
    Level& l = levels[i];
    const Level& o = other.levels[i];
    l.flush_bytes_written += o.flush_bytes_written;
    l.compaction_bytes_written += o.compaction_bytes_written;
    l.compaction_bytes_read += o.compaction_bytes_read;
    l.files_probed += o.files_probed;
    l.filter_negatives += o.filter_negatives;
    l.bloom_false_positives += o.bloom_false_positives;
    l.block_reads += o.block_reads;
    l.hits += o.hits;
    l.live_sst_bytes += o.live_sst_bytes;
    l.live_payload_bytes += o.live_payload_bytes;
  }
  if (other.num_levels > num_levels) num_levels = other.num_levels;
  lookups += other.lookups;
  memtable_hits += other.memtable_hits;
  misses += other.misses;
  user_payload_bytes += other.user_payload_bytes;
}

void AmpSnapshot::Subtract(const AmpSnapshot& base) {
  for (int i = 0; i < kAmpMaxLevels; i++) {
    Level& l = levels[i];
    const Level& b = base.levels[i];
    l.flush_bytes_written = SatSub(l.flush_bytes_written, b.flush_bytes_written);
    l.compaction_bytes_written =
        SatSub(l.compaction_bytes_written, b.compaction_bytes_written);
    l.compaction_bytes_read =
        SatSub(l.compaction_bytes_read, b.compaction_bytes_read);
    l.files_probed = SatSub(l.files_probed, b.files_probed);
    l.filter_negatives = SatSub(l.filter_negatives, b.filter_negatives);
    l.bloom_false_positives =
        SatSub(l.bloom_false_positives, b.bloom_false_positives);
    l.block_reads = SatSub(l.block_reads, b.block_reads);
    l.hits = SatSub(l.hits, b.hits);
    // live_* stay: "live bytes now" is already the window value.
  }
  lookups = SatSub(lookups, base.lookups);
  memtable_hits = SatSub(memtable_hits, base.memtable_hits);
  misses = SatSub(misses, base.misses);
  user_payload_bytes = SatSub(user_payload_bytes, base.user_payload_bytes);
}

std::string AmpSnapshot::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "write_amp=%.3f read_amp=%.3f space_amp=%.3f "
                "blocks_per_lookup=%.3f lookups=%" PRIu64
                " memtable_hits=%" PRIu64 " misses=%" PRIu64
                " user_payload=%" PRIu64 "\n",
                WriteAmp(), ReadAmp(), SpaceAmp(), BlocksPerLookup(), lookups,
                memtable_hits, misses, user_payload_bytes);
  out += buf;
  out +=
      "level flush_w comp_w comp_r probes fneg bloom_fp blocks hits "
      "live_sst live_payload\n";
  for (int i = 0; i < num_levels; i++) {
    const Level& l = levels[i];
    std::snprintf(buf, sizeof(buf),
                  "L%d %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                  " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                  " %" PRIu64 "\n",
                  i, l.flush_bytes_written, l.compaction_bytes_written,
                  l.compaction_bytes_read, l.files_probed, l.filter_negatives,
                  l.bloom_false_positives, l.block_reads, l.hits,
                  l.live_sst_bytes, l.live_payload_bytes);
    out += buf;
  }
  return out;
}

AmpTracker::AmpTracker() {
  for (int s = 0; s < kStripes; s++) {
    ReadCell& c = cells_[s];
    for (int i = 0; i < kAmpMaxLevels; i++) {
      c.files_probed[i].store(0, std::memory_order_relaxed);
      c.filter_negatives[i].store(0, std::memory_order_relaxed);
      c.bloom_false_positives[i].store(0, std::memory_order_relaxed);
      c.block_reads[i].store(0, std::memory_order_relaxed);
      c.hits[i].store(0, std::memory_order_relaxed);
    }
    c.lookups.store(0, std::memory_order_relaxed);
    c.memtable_hits.store(0, std::memory_order_relaxed);
    c.misses.store(0, std::memory_order_relaxed);
  }
  for (int i = 0; i < kAmpMaxLevels; i++) {
    flush_bytes_[i].store(0, std::memory_order_relaxed);
    compaction_bytes_written_[i].store(0, std::memory_order_relaxed);
    compaction_bytes_read_[i].store(0, std::memory_order_relaxed);
  }
}

int AmpTracker::StripeForThisThread() {
  // Same scheme as LatencyRecorder: hash the thread id once per thread.
  static thread_local int stripe =
      static_cast<int>(std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                       kStripes);
  return stripe;
}

void AmpTracker::NoteSlot(int slot) {
  int seen = max_slot_.load(std::memory_order_relaxed);
  while (slot > seen && !max_slot_.compare_exchange_weak(
                            seen, slot, std::memory_order_relaxed)) {
  }
}

void AmpTracker::RecordFlushWrite(int level, uint64_t bytes) {
  int slot = AmpSlot(level);
  flush_bytes_[slot].fetch_add(bytes, std::memory_order_relaxed);
  NoteSlot(slot);
}

void AmpTracker::RecordCompactionWrite(int level, uint64_t bytes_read,
                                       uint64_t bytes_written) {
  int slot = AmpSlot(level);
  compaction_bytes_read_[slot].fetch_add(bytes_read,
                                         std::memory_order_relaxed);
  compaction_bytes_written_[slot].fetch_add(bytes_written,
                                            std::memory_order_relaxed);
  NoteSlot(slot);
}

void AmpTracker::RecordUserPayload(uint64_t bytes) {
  user_payload_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void AmpTracker::RecordLookup(const LookupProbe& probe) {
  ReadCell& c = cells_[StripeForThisThread()];
  for (int i = 0; i <= probe.deepest_slot && i < kAmpMaxLevels; i++) {
    if (probe.files_probed[i] != 0) {
      c.files_probed[i].fetch_add(probe.files_probed[i],
                                  std::memory_order_relaxed);
    }
    if (probe.filter_negatives[i] != 0) {
      c.filter_negatives[i].fetch_add(probe.filter_negatives[i],
                                      std::memory_order_relaxed);
    }
    if (probe.bloom_false_positives[i] != 0) {
      c.bloom_false_positives[i].fetch_add(probe.bloom_false_positives[i],
                                           std::memory_order_relaxed);
    }
    if (probe.block_reads[i] != 0) {
      c.block_reads[i].fetch_add(probe.block_reads[i],
                                 std::memory_order_relaxed);
    }
  }
  c.lookups.fetch_add(1, std::memory_order_relaxed);
  if (probe.hit_level == LookupProbe::kHitMemtable) {
    c.memtable_hits.fetch_add(1, std::memory_order_relaxed);
  } else if (probe.hit_level == LookupProbe::kMiss) {
    c.misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    c.hits[AmpSlot(probe.hit_level)].fetch_add(1, std::memory_order_relaxed);
  }
  if (probe.deepest_slot >= 0) NoteSlot(probe.deepest_slot);
}

AmpSnapshot AmpTracker::Snapshot() const {
  AmpSnapshot snap;
  int max_slot = max_slot_.load(std::memory_order_relaxed);
  snap.num_levels = max_slot + 1;
  for (int i = 0; i < kAmpMaxLevels; i++) {
    AmpSnapshot::Level& l = snap.levels[i];
    l.flush_bytes_written = flush_bytes_[i].load(std::memory_order_relaxed);
    l.compaction_bytes_written =
        compaction_bytes_written_[i].load(std::memory_order_relaxed);
    l.compaction_bytes_read =
        compaction_bytes_read_[i].load(std::memory_order_relaxed);
  }
  for (int s = 0; s < kStripes; s++) {
    const ReadCell& c = cells_[s];
    for (int i = 0; i < kAmpMaxLevels; i++) {
      AmpSnapshot::Level& l = snap.levels[i];
      l.files_probed += c.files_probed[i].load(std::memory_order_relaxed);
      l.filter_negatives +=
          c.filter_negatives[i].load(std::memory_order_relaxed);
      l.bloom_false_positives +=
          c.bloom_false_positives[i].load(std::memory_order_relaxed);
      l.block_reads += c.block_reads[i].load(std::memory_order_relaxed);
      l.hits += c.hits[i].load(std::memory_order_relaxed);
    }
    snap.lookups += c.lookups.load(std::memory_order_relaxed);
    snap.memtable_hits += c.memtable_hits.load(std::memory_order_relaxed);
    snap.misses += c.misses.load(std::memory_order_relaxed);
  }
  snap.user_payload_bytes =
      user_payload_bytes_.load(std::memory_order_relaxed);
  return snap;
}

AmpSnapshot AmpTracker::WindowSnapshot() const {
  AmpSnapshot snap = Snapshot();
  std::lock_guard<std::mutex> lock(window_mu_);
  snap.Subtract(window_base_);
  return snap;
}

void AmpTracker::AdvanceWindow() {
  AmpSnapshot now = Snapshot();
  std::lock_guard<std::mutex> lock(window_mu_);
  window_base_ = now;
}

}  // namespace obs
}  // namespace talus
