// Prometheus text-exposition builder (DESIGN.md §6.4). A small generic
// writer so the obs layer stays decoupled from lsm/EngineStats: the DB (and
// ShardedDB) walk their own counters/histograms and feed them in here; the
// future src/server/ /metrics endpoint serves the resulting string verbatim.
//
// Histograms follow the Prometheus convention: cumulative `_bucket` series
// with `le` labels over the shared util/Histogram layout (only buckets up to
// the last occupied one, plus +Inf), then `_sum` and `_count`.
#ifndef TALUS_OBS_PROMETHEUS_H_
#define TALUS_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>

#include "util/histogram.h"

namespace talus {
namespace obs {

class PrometheusWriter {
 public:
  /// Emits `# TYPE <name> counter` (once per name) and one sample line.
  /// `labels` is the raw inner label text, e.g. `op="put"`, or "" for none.
  void AddCounter(const std::string& name, const std::string& labels,
                  uint64_t value);
  /// Same, for free-form gauge values.
  void AddGauge(const std::string& name, const std::string& labels,
                double value);
  /// Emits the full histogram family for `name{labels}`. Empty histograms
  /// still emit a zero +Inf bucket so the series exists.
  void AddHistogram(const std::string& name, const std::string& labels,
                    const Histogram& h);

  const std::string& Output() const { return out_; }

 private:
  void TypeHeader(const std::string& name, const char* type);

  std::string out_;
  std::string last_typed_;  // Last name a # TYPE line was written for.
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_PROMETHEUS_H_
