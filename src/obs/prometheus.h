// Prometheus text-exposition builder (DESIGN.md §6.4). A small generic
// writer so the obs layer stays decoupled from lsm/EngineStats: the DB (and
// ShardedDB) walk their own counters/histograms and feed them in here; the
// server's HTTP `GET /metrics` endpoint (src/server/server.h, DESIGN.md §8)
// serves the resulting string verbatim, appending its own talus_server_*
// families through this same writer.
//
// Samples are buffered per family (metric name) and assembled in Output():
// each family appears exactly once, in first-insertion order, with one
// `# HELP` (when provided) and one `# TYPE` line followed by all of its
// samples contiguously — the exposition format requires this even when
// callers interleave families (e.g. two label series emitted from one loop).
//
// Histograms follow the Prometheus convention: cumulative `_bucket` series
// with `le` labels over the shared util/Histogram layout (only buckets up to
// the last occupied one, plus +Inf), then `_sum` and `_count`.
#ifndef TALUS_OBS_PROMETHEUS_H_
#define TALUS_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace talus {
namespace obs {

class PrometheusWriter {
 public:
  /// Adds one counter sample to the `name` family. `labels` is the raw
  /// inner label text, e.g. `op="put"`, or "" for none. `help` (first
  /// non-empty one wins) becomes the family's # HELP line.
  void AddCounter(const std::string& name, const std::string& labels,
                  uint64_t value, const std::string& help = "");
  /// Same, for free-form gauge values.
  void AddGauge(const std::string& name, const std::string& labels,
                double value, const std::string& help = "");
  /// Adds the full histogram series (`_bucket`/`_sum`/`_count`) for
  /// `name{labels}`. Empty histograms still emit a zero +Inf bucket so the
  /// series exists.
  void AddHistogram(const std::string& name, const std::string& labels,
                    const Histogram& h, const std::string& help = "");

  /// Assembles the exposition text: families contiguous, each headed by
  /// its # HELP (if any) and # TYPE line exactly once.
  std::string Output() const;

 private:
  struct Family {
    std::string name;
    const char* type;
    std::string help;
    std::string body;  // Sample lines, in insertion order.
  };

  Family* FamilyFor(const std::string& name, const char* type,
                    const std::string& help);

  std::vector<Family> families_;  // First-insertion order.
};

}  // namespace obs
}  // namespace talus

#endif  // TALUS_OBS_PROMETHEUS_H_
