// Histogram with exponentially-spaced buckets for latency/size distributions.
// The bucket layout (kNumBuckets exponential limits) is the single source of
// truth for every histogram in the engine: obs::LatencyRecorder's lock-free
// per-stripe counters use BucketFor()/BucketUpperBound() and fold back into a
// Histogram via MergeRaw(), so recorder snapshots and plain histograms always
// agree on percentiles.
#ifndef TALUS_UTIL_HISTOGRAM_H_
#define TALUS_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace talus {

class Histogram {
 public:
  static constexpr int kNumBuckets = 162;

  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  /// Folds `other` into this histogram. Merging an empty histogram is a
  /// no-op; min/max survive the merge (an empty side never clobbers them).
  void Merge(const Histogram& other);
  /// Folds raw per-bucket counts (laid out by BucketFor) plus their summary
  /// stats into this histogram. This is how obs::LatencyRecorder snapshots
  /// collapse per-stripe atomic counters into a mergeable Histogram.
  /// Ignored when num == 0. Sum-of-squares is not tracked by raw counters,
  /// so StandardDeviation() is meaningless after a MergeRaw.
  void MergeRaw(const uint64_t counts[kNumBuckets], uint64_t num, double sum,
                double min, double max);

  double Median() const { return Percentile(50.0); }
  /// Interpolated percentile; 0 on an empty histogram.
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  /// 0 on an empty histogram.
  double Min() const { return num_ == 0 ? 0 : min_; }
  double Max() const { return max_; }
  uint64_t Count() const { return num_; }
  double Sum() const { return sum_; }
  /// Count in bucket b (exact while counts fit a double's 53-bit mantissa).
  uint64_t BucketCount(int b) const {
    return static_cast<uint64_t>(buckets_[b]);
  }

  /// Index of the bucket that holds `value`: the first bucket whose upper
  /// limit exceeds it (binary search over the shared layout).
  static int BucketFor(double value);
  /// Exclusive upper limit of bucket b.
  static double BucketUpperBound(int b) { return kBucketLimit[b]; }

  std::string ToString() const;

 private:
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  double buckets_[kNumBuckets];
};

}  // namespace talus

#endif  // TALUS_UTIL_HISTOGRAM_H_
