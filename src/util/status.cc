#include "util/status.h"

namespace talus {

std::string Status::ToString() const {
  if (state_ == nullptr) return "OK";
  const char* type;
  switch (state_->code) {
    case Code::kOk: type = "OK"; break;
    case Code::kNotFound: type = "NotFound: "; break;
    case Code::kCorruption: type = "Corruption: "; break;
    case Code::kNotSupported: type = "Not supported: "; break;
    case Code::kInvalidArgument: type = "Invalid argument: "; break;
    case Code::kIOError: type = "IO error: "; break;
    case Code::kBusy: type = "Busy: "; break;
    default: type = "Unknown: "; break;
  }
  std::string result(type);
  result.append(state_->msg);
  return result;
}

}  // namespace talus
