// Status: result of an operation that may fail, in the RocksDB style.
// Success is cheap (no allocation); failures carry a code and a message.
#ifndef TALUS_UTIL_STATUS_H_
#define TALUS_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "util/slice.h"

namespace talus {

class Status {
 public:
  Status() noexcept : state_(nullptr) {}
  ~Status() = default;

  Status(const Status& rhs) {
    state_ = rhs.state_ == nullptr ? nullptr
                                   : std::make_unique<State>(*rhs.state_);
  }
  Status& operator=(const Status& rhs) {
    if (this != &rhs) {
      state_ = rhs.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*rhs.state_);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsBusy() const { return code() == Code::kBusy; }

  /// Human-readable representation, e.g. "IO error: <msg>".
  std::string ToString() const;

 private:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
  };

  struct State {
    Code code;
    std::string msg;
  };

  Status(Code code, const Slice& msg, const Slice& msg2) {
    std::string m = msg.ToString();
    if (!msg2.empty()) {
      m.append(": ");
      m.append(msg2.data(), msg2.size());
    }
    state_ = std::make_unique<State>(State{code, std::move(m)});
  }

  Code code() const { return state_ == nullptr ? Code::kOk : state_->code; }

  std::unique_ptr<State> state_;
};

}  // namespace talus

#endif  // TALUS_UTIL_STATUS_H_
