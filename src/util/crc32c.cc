#include "util/crc32c.h"

#include <array>

namespace talus {
namespace crc32c {

namespace {

// Table-driven CRC32C with the reflected polynomial 0x82F63B78.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace talus
