// Binary encoding helpers: little-endian fixed-width integers and LEB128
// varints, shared by the block format, SST footer, WAL, and manifest.
#ifndef TALUS_UTIL_CODING_H_
#define TALUS_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace talus {

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}
inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

/// Big-endian fixed64: bytewise comparison of encodings matches numeric
/// comparison. Used by the internal-key trailer (lsm/dbformat.h).
inline void EncodeFixed64BE(char* dst, uint64_t value) {
  for (int i = 7; i >= 0; i--) {
    dst[7 - i] = static_cast<char>((value >> (i * 8)) & 0xFF);
  }
}
inline uint64_t DecodeFixed64BE(const char* ptr) {
  uint64_t result = 0;
  for (int i = 0; i < 8; i++) {
    result = (result << 8) |
             static_cast<unsigned char>(ptr[i]);
  }
  return result;
}
inline void PutFixed64BE(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64BE(buf, value);
  dst->append(buf, 8);
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends a varint32 length prefix followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Decoders return the byte just past the parsed value, or nullptr on error.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Slice-consuming variants: advance `input` past the parsed value.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed64(Slice* input, uint64_t* value);

int VarintLength(uint64_t v);

}  // namespace talus

#endif  // TALUS_UTIL_CODING_H_
