// Arena: bump-pointer allocator backing the memtable skiplist. All memory is
// freed at once when the arena is destroyed. A spinlock serializes the bump
// pointer so parallel memtable inserts (DESIGN.md §2.9) can allocate
// concurrently; uncontended, the lock costs a couple of atomic operations.
#ifndef TALUS_UTIL_ARENA_H_
#define TALUS_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace talus {

class Arena {
 public:
  Arena() : alloc_ptr_(nullptr), alloc_bytes_remaining_(0), memory_usage_(0) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    assert(bytes > 0);
    SpinGuard guard(lock_);
    if (bytes <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_;
      alloc_ptr_ += bytes;
      alloc_bytes_remaining_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  /// Allocation with the alignment guarantees of malloc (8/16 bytes).
  char* AllocateAligned(size_t bytes) {
    const int align = (sizeof(void*) > 8) ? sizeof(void*) : 8;
    SpinGuard guard(lock_);
    size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
    size_t slop = (current_mod == 0 ? 0 : align - current_mod);
    size_t needed = bytes + slop;
    char* result;
    if (needed <= alloc_bytes_remaining_) {
      result = alloc_ptr_ + slop;
      alloc_ptr_ += needed;
      alloc_bytes_remaining_ -= needed;
    } else {
      result = AllocateFallback(bytes);
    }
    assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
    return result;
  }

  /// Total memory allocated by the arena (block granularity).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag& f) : flag(f) {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag.clear(std::memory_order_release); }
    std::atomic_flag& flag;
  };

  // REQUIRES: lock_ held.
  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large objects get their own block to avoid wasting the current one.
      return AllocateNewBlock(bytes);
    }
    alloc_ptr_ = AllocateNewBlock(kBlockSize);
    alloc_bytes_remaining_ = kBlockSize;
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }

  char* AllocateNewBlock(size_t block_bytes) {
    blocks_.push_back(std::make_unique<char[]>(block_bytes));
    memory_usage_.fetch_add(block_bytes + sizeof(char*),
                            std::memory_order_relaxed);
    return blocks_.back().get();
  }

  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

}  // namespace talus

#endif  // TALUS_UTIL_ARENA_H_
