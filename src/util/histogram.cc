#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace talus {

// Bucket limits spanning [1, 1e18): dense low range, then ~x1.2 spacing
// (classic LevelDB histogram layout).
const double Histogram::kBucketLimit[kNumBuckets] = {
    1,       2,       3,       4,       5,       6,       7,       8,
    9,       10,      12,      14,      16,      18,      20,      25,
    30,      35,      40,      45,      50,      60,      70,      80,
    90,      100,     120,     140,     160,     180,     200,     250,
    300,     350,     400,     450,     500,     600,     700,     800,
    900,     1000,    1200,    1400,    1600,    1800,    2000,    2500,
    3000,    3500,    4000,    4500,    5000,    6000,    7000,    8000,
    9000,    10000,   12000,   14000,   16000,   18000,   20000,   25000,
    30000,   35000,   40000,   45000,   50000,   60000,   70000,   80000,
    90000,   100000,  120000,  140000,  160000,  180000,  200000,  250000,
    300000,  350000,  400000,  450000,  500000,  600000,  700000,  800000,
    900000,  1000000, 1200000, 1400000, 1600000, 1800000, 2000000, 2500000,
    3000000, 3500000, 4000000, 4500000, 5000000, 6000000, 7000000, 8000000,
    9000000, 10000000, 12000000, 14000000, 16000000, 18000000, 20000000,
    25000000, 30000000, 35000000, 40000000, 45000000, 50000000, 60000000,
    70000000, 80000000, 90000000, 100000000, 120000000, 140000000, 160000000,
    180000000, 200000000, 250000000, 300000000, 350000000, 400000000,
    450000000, 500000000, 600000000, 700000000, 800000000, 900000000,
    1000000000, 1200000000, 1400000000, 1600000000, 1800000000, 2000000000,
    2500000000.0, 3000000000.0, 3500000000.0, 4000000000.0, 4500000000.0,
    5000000000.0, 6000000000.0, 7000000000.0, 8000000000.0, 9000000000.0,
    1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18};

void Histogram::Clear() {
  min_ = kBucketLimit[kNumBuckets - 1];
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  for (double& b : buckets_) b = 0;
}

int Histogram::BucketFor(double value) {
  // First bucket whose (exclusive) upper limit exceeds the value; the last
  // bucket absorbs everything beyond the table.
  const double* end = kBucketLimit + kNumBuckets - 1;
  return static_cast<int>(std::upper_bound(kBucketLimit, end, value) -
                          kBucketLimit);
}

void Histogram::Add(double value) {
  buckets_[BucketFor(value)] += 1.0;
  if (min_ > value) min_ = value;
  if (max_ < value) max_ = value;
  num_++;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  // An empty side must be a no-op for min/max: its sentinel min_ (huge) and
  // max_ (0) carry no observations and must not survive into the merge.
  if (other.num_ == 0) return;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (int b = 0; b < kNumBuckets; b++) buckets_[b] += other.buckets_[b];
}

void Histogram::MergeRaw(const uint64_t counts[kNumBuckets], uint64_t num,
                         double sum, double min, double max) {
  if (num == 0) return;
  if (min < min_) min_ = min;
  if (max > max_) max_ = max;
  num_ += num;
  sum_ += sum;
  for (int b = 0; b < kNumBuckets; b++) {
    buckets_[b] += static_cast<double>(counts[b]);
  }
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0;  // Well-defined on an empty histogram.
  double threshold = static_cast<double>(num_) * (p / 100.0);
  double sum = 0;
  for (int b = 0; b < kNumBuckets; b++) {
    sum += buckets_[b];
    if (sum >= threshold) {
      // Interpolate within the bucket.
      double left_point = (b == 0) ? 0 : kBucketLimit[b - 1];
      double right_point = kBucketLimit[b];
      double left_sum = sum - buckets_[b];
      double right_sum = sum;
      double pos = 0;
      double right_left_diff = right_sum - left_sum;
      if (right_left_diff != 0) {
        pos = (threshold - left_sum) / right_left_diff;
      }
      double r = left_point + (right_point - left_point) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

double Histogram::Average() const {
  return num_ == 0 ? 0 : sum_ / static_cast<double>(num_);
}

double Histogram::StandardDeviation() const {
  if (num_ == 0) return 0;
  double n = static_cast<double>(num_);
  double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance < 0 ? 0 : std::sqrt(variance);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.2f min=%.2f max=%.2f p50=%.2f p99=%.2f",
                static_cast<unsigned long long>(num_), Average(), Min(),
                max_, Median(), Percentile(99));
  return buf;
}

}  // namespace talus
