// Monotonic wall-clock helpers for the background execution subsystem.
// Distinct from the virtual clock in env/io_stats.h: stall and job-busy
// accounting measure real elapsed time, not modeled I/O cost.
#ifndef TALUS_UTIL_WALL_CLOCK_H_
#define TALUS_UTIL_WALL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace talus {

inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace talus

#endif  // TALUS_UTIL_WALL_CLOCK_H_
