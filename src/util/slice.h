// Slice: a cheap, non-owning view over a byte range, in the style of
// LevelDB/RocksDB. The referenced storage must outlive the Slice.
#ifndef TALUS_UTIL_SLICE_H_
#define TALUS_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace talus {

class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {} // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  void clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drop the first n bytes from this slice.
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const { return {data_, size_}; }

  /// Three-way comparison: <0 iff *this < b, 0 iff equal, >0 iff *this > b.
  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = +1;
    }
    return r;
  }

  bool starts_with(const Slice& x) const {
    return size_ >= x.size_ && memcmp(data_, x.data_, x.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) { return a.compare(b) < 0; }

/// Offset of the first byte where a and b differ, or `n` when the first n
/// bytes are equal. Word-at-a-time: compares 8-byte chunks (memcpy loads —
/// safe on any alignment, compiled to single loads) and pinpoints the
/// mismatching byte inside the chunk with a byte scan, so long shared key
/// prefixes cost one load pair per 8 bytes instead of one per byte.
inline size_t MismatchOffset(const char* a, const char* b, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t wa, wb;
    memcpy(&wa, a + i, 8);
    memcpy(&wb, b + i, 8);
    if (wa != wb) break;
    i += 8;
  }
  while (i < n && a[i] == b[i]) i++;
  return i;
}

/// Three-way compare of a and b whose first `skip` bytes the caller
/// guarantees equal (e.g. a delta-decoded block entry sharing a prefix with
/// the probe key). Also reports the full common-prefix length through
/// *match so the caller can carry it into the next comparison.
inline int CompareSkipPrefix(const Slice& a, const Slice& b, size_t skip,
                             size_t* match) {
  const size_t min_len = a.size() < b.size() ? a.size() : b.size();
  if (skip > min_len) skip = min_len;
  const size_t m = skip + MismatchOffset(a.data() + skip, b.data() + skip,
                                         min_len - skip);
  if (match != nullptr) *match = m;
  if (m < min_len) {
    return static_cast<unsigned char>(a[m]) < static_cast<unsigned char>(b[m])
               ? -1
               : +1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : +1;
}

}  // namespace talus

#endif  // TALUS_UTIL_SLICE_H_
