// Deterministic pseudo-random utilities used by tests, the skiplist, and the
// workload generators. xorshift128+ core: fast, reproducible, and good enough
// statistically for workload synthesis.
#ifndef TALUS_UTIL_RANDOM_H_
#define TALUS_UTIL_RANDOM_H_

#include <cstdint>

namespace talus {

class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 0x9E3779B97F4A7C15ull;
  }

  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Returns true with probability 1/n.
  bool OneIn(uint32_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Skewed: pick base uniformly from [0, max_log], then return a uniform
  /// number of that many bits. Favors small numbers (LevelDB idiom).
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(static_cast<uint64_t>(max_log + 1)));
  }

  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t s_[2];
};

/// FNV-1a 64-bit hash, used for key scrambling in workload generators.
inline uint64_t FnvHash64(uint64_t v) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (int i = 0; i < 8; i++) {
    hash ^= (v >> (i * 8)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// 32-bit Murmur-style string hash used by the Bloom filter and block cache.
inline uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  const uint32_t m = 0xC6A4A793u;
  const uint32_t r = 24;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  const unsigned char* limit = p + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);
  while (p + 4 <= limit) {
    uint32_t w;
    __builtin_memcpy(&w, p, 4);
    p += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }
  switch (limit - p) {
    case 3: h += static_cast<uint32_t>(p[2]) << 16; [[fallthrough]];
    case 2: h += static_cast<uint32_t>(p[1]) << 8; [[fallthrough]];
    case 1:
      h += p[0];
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

}  // namespace talus

#endif  // TALUS_UTIL_RANDOM_H_
