#include "exec/job_scheduler.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/wall_clock.h"

namespace talus {
namespace exec {

namespace {
// Finished-job records kept for GetState() before pruning kicks in.
constexpr size_t kMaxFinishedRecords = 1024;
}  // namespace

struct JobScheduler::Core {
  struct QueuedJob {
    JobId id = kInvalidJobId;
    JobType type = JobType::kFlush;
    std::function<Status()> fn;
  };

  mutable std::mutex mu;
  std::condition_variable idle_cv;
  std::deque<QueuedJob> queues[metrics::BackgroundJobStats::kNumJobTypes];
  std::unordered_map<JobId, JobState> states;
  std::deque<JobId> finished_order;  // For pruning states oldest-first.
  metrics::BackgroundJobStats stats;
  Status first_error;
  JobId next_id = 1;
  bool stopping = false;

  JobId Enqueue(JobType type, std::function<Status()> job) {
    std::lock_guard<std::mutex> l(mu);
    if (stopping) return kInvalidJobId;
    const JobId id = next_id++;
    const size_t t = static_cast<size_t>(type);
    queues[t].push_back(QueuedJob{id, type, std::move(job)});
    states[id] = JobState::kQueued;
    stats.scheduled[t]++;
    stats.queue_depth[t]++;
    const size_t depth = stats.total_queue_depth();
    if (depth > stats.max_queue_depth) stats.max_queue_depth = depth;
    return id;
  }

  /// Called when the pool refused the dispatch task. The pool is shutting
  /// down, so no future dispatch will ever arrive — and because dispatch
  /// tasks pop the highest-priority job rather than "their" job, the job
  /// whose Submit failed may already have been run by an earlier task while
  /// a different job sits queued with no task left to claim it. Drop every
  /// queued job so WaitIdle()/Shutdown() cannot hang on a stranded entry.
  /// Returns `id` if that job did run anyway, kInvalidJobId if it was
  /// dropped without running.
  JobId HandleRefusedDispatch(JobId id) {
    std::lock_guard<std::mutex> l(mu);
    stopping = true;
    for (auto& queue : queues) {
      for (const auto& job : queue) {
        stats.queue_depth[static_cast<size_t>(job.type)]--;
        states[job.id] = JobState::kDropped;
      }
      queue.clear();
    }
    idle_cv.notify_all();
    auto it = states.find(id);
    if (it != states.end() && it->second != JobState::kDropped &&
        it->second != JobState::kQueued) {
      return id;  // Another dispatch task picked it up before Submit failed.
    }
    return kInvalidJobId;
  }

  /// Pool-task entry: runs the highest-priority queued job, if any.
  void RunNext() {
    QueuedJob job;
    {
      std::lock_guard<std::mutex> l(mu);
      // Flush queue strictly first: one pool task is submitted per
      // scheduled job, so a task may well run a different
      // (higher-priority) job than the one whose Schedule() submitted it.
      bool found = false;
      for (auto& queue : queues) {
        if (!queue.empty()) {
          job = std::move(queue.front());
          queue.pop_front();
          found = true;
          break;
        }
      }
      if (!found) return;  // Job was dropped; nothing to do.
      stats.queue_depth[static_cast<size_t>(job.type)]--;
      states[job.id] = JobState::kRunning;
      stats.running++;
    }

    const uint64_t start = NowMicros();
    Status s = job.fn();
    const uint64_t elapsed = NowMicros() - start;

    {
      std::lock_guard<std::mutex> l(mu);
      const size_t t = static_cast<size_t>(job.type);
      stats.busy_micros[t] += elapsed;
      if (s.ok()) {
        stats.completed[t]++;
        states[job.id] = JobState::kDone;
      } else {
        stats.failed[t]++;
        states[job.id] = JobState::kFailed;
        if (first_error.ok()) first_error = s;
      }
      finished_order.push_back(job.id);
      while (finished_order.size() > kMaxFinishedRecords) {
        states.erase(finished_order.front());
        finished_order.pop_front();
      }
      stats.running--;
    }
    idle_cv.notify_all();
  }

  void WaitIdle() {
    std::unique_lock<std::mutex> l(mu);
    idle_cv.wait(l, [this] {
      if (stats.running > 0) return false;
      for (const auto& queue : queues) {
        if (!queue.empty()) return false;
      }
      return true;
    });
  }
};

JobScheduler::JobScheduler(ThreadPool* pool)
    : pool_(pool), core_(std::make_shared<Core>()) {}

JobScheduler::~JobScheduler() { Shutdown(); }

JobScheduler::JobId JobScheduler::Schedule(JobType type,
                                           std::function<Status()> job) {
  const JobId id = core_->Enqueue(type, std::move(job));
  if (id == kInvalidJobId) return kInvalidJobId;
  if (!pool_->Submit([core = core_] { core->RunNext(); })) {
    return core_->HandleRefusedDispatch(id);
  }
  return id;
}

JobState JobScheduler::GetState(JobId id) const {
  std::lock_guard<std::mutex> l(core_->mu);
  auto it = core_->states.find(id);
  return it == core_->states.end() ? JobState::kDropped : it->second;
}

void JobScheduler::WaitIdle() { core_->WaitIdle(); }

void JobScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> l(core_->mu);
    core_->stopping = true;
  }
  core_->WaitIdle();
}

Status JobScheduler::first_error() const {
  std::lock_guard<std::mutex> l(core_->mu);
  return core_->first_error;
}

metrics::BackgroundJobStats JobScheduler::GetStats() const {
  std::lock_guard<std::mutex> l(core_->mu);
  return core_->stats;
}

}  // namespace exec
}  // namespace talus
