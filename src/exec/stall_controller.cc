#include "exec/stall_controller.h"

#include <algorithm>

namespace talus {
namespace exec {

StallController::StallController(const StallConfig& config) : config_(config) {
  config_.max_immutable_memtables =
      std::max<size_t>(1, config_.max_immutable_memtables);
  // A stop threshold at or below the slowdown threshold would skip the
  // slowdown regime entirely; keep them ordered.
  config_.l0_stop_runs =
      std::max(config_.l0_stop_runs, config_.l0_slowdown_runs + 1);
}

StallDecision StallController::Decide(size_t imm_count,
                                      size_t l0_runs) const {
  StallCause cause;
  return Decide(imm_count, l0_runs, &cause);
}

StallDecision StallController::Decide(size_t imm_count, size_t l0_runs,
                                      StallCause* cause) const {
  if (imm_count >= config_.max_immutable_memtables ||
      l0_runs >= config_.l0_stop_runs) {
    *cause = imm_count >= config_.max_immutable_memtables
                 ? StallCause::kMemtable
                 : StallCause::kL0;
    return StallDecision::kStop;
  }
  if ((config_.max_immutable_memtables > 1 &&
       imm_count + 1 >= config_.max_immutable_memtables) ||
      l0_runs >= config_.l0_slowdown_runs) {
    *cause = (config_.max_immutable_memtables > 1 &&
              imm_count + 1 >= config_.max_immutable_memtables)
                 ? StallCause::kMemtable
                 : StallCause::kL0;
    return StallDecision::kSlowdown;
  }
  *cause = StallCause::kNone;
  return StallDecision::kNone;
}

}  // namespace exec
}  // namespace talus
