#include "exec/stall_controller.h"

#include <algorithm>

namespace talus {
namespace exec {

StallController::StallController(const StallConfig& config) : config_(config) {
  config_.max_immutable_memtables =
      std::max<size_t>(1, config_.max_immutable_memtables);
  // A stop threshold at or below the slowdown threshold would skip the
  // slowdown regime entirely; keep them ordered.
  config_.l0_stop_runs =
      std::max(config_.l0_stop_runs, config_.l0_slowdown_runs + 1);
}

StallDecision StallController::Decide(size_t imm_count,
                                      size_t l0_runs) const {
  if (imm_count >= config_.max_immutable_memtables ||
      l0_runs >= config_.l0_stop_runs) {
    return StallDecision::kStop;
  }
  if ((config_.max_immutable_memtables > 1 &&
       imm_count + 1 >= config_.max_immutable_memtables) ||
      l0_runs >= config_.l0_slowdown_runs) {
    return StallDecision::kSlowdown;
  }
  return StallDecision::kNone;
}

}  // namespace exec
}  // namespace talus
