// ThreadPool: fixed-size worker pool executing queued tasks FIFO. The
// JobScheduler layers flush/compaction prioritization on top; the pool itself
// is policy-free so other subsystems (prefetchers, checkpoints) can share it.
#ifndef TALUS_EXEC_THREAD_POOL_H_
#define TALUS_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace talus {
namespace exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  /// Implies Shutdown(): drains every queued task, then joins.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false (task dropped) after Shutdown() started.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins workers.
  /// Idempotent; must not be called from a worker thread.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  /// Tasks queued but not yet picked up by a worker.
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace exec
}  // namespace talus

#endif  // TALUS_EXEC_THREAD_POOL_H_
