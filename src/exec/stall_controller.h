// StallController: write backpressure policy for background execution mode.
//
// Mirrors the production two-stage discipline (RocksDB delayed_write_rate /
// stop conditions; Luo & Carey's stability study): as background work falls
// behind, writers are first *slowed down* (a bounded delay per write keeps
// the queue from growing) and finally *stopped* (blocked until a flush or
// compaction retires debt). Triggers:
//   stop:     immutable memtables at the cap, or level-0 runs at the stop
//             threshold;
//   slowdown: one memtable switch away from the cap, or level-0 runs at the
//             slowdown threshold.
// The controller is pure decision logic; the DB enforces the decision
// (sleeping / waiting on its condition variable) and accounts stall time in
// EngineStats, because only it owns the lock and the wait conditions.
#ifndef TALUS_EXEC_STALL_CONTROLLER_H_
#define TALUS_EXEC_STALL_CONTROLLER_H_

#include <cstddef>
#include <cstdint>

namespace talus {
namespace exec {

struct StallConfig {
  /// Immutable memtables allowed before writers stop (>= 1).
  size_t max_immutable_memtables = 2;
  /// Level-0 run count that triggers write slowdown.
  size_t l0_slowdown_runs = 12;
  /// Level-0 run count that stops writes entirely.
  size_t l0_stop_runs = 20;
  /// Delay injected per write while in the slowdown regime.
  uint64_t slowdown_delay_micros = 1000;
};

enum class StallDecision { kNone, kSlowdown, kStop };

/// Which debt triggered the decision. When both debts trip the same regime,
/// memtable debt wins the attribution: it is the nearer-term emergency (one
/// flush retires it) and the distinction is what talus.stats and the event
/// trace report as the stall cause.
enum class StallCause { kNone, kMemtable, kL0 };

class StallController {
 public:
  explicit StallController(const StallConfig& config);

  /// Decision for the current engine state (imm_count = immutable memtables
  /// queued or flushing, l0_runs = sorted runs in level 0).
  StallDecision Decide(size_t imm_count, size_t l0_runs) const;
  /// Same, also reporting which debt triggered the decision (kNone cause for
  /// a kNone decision).
  StallDecision Decide(size_t imm_count, size_t l0_runs,
                       StallCause* cause) const;

  /// Sanitized configuration (thresholds re-ordered, caps clamped).
  const StallConfig& config() const { return config_; }

 private:
  StallConfig config_;
};

}  // namespace exec
}  // namespace talus

#endif  // TALUS_EXEC_STALL_CONTROLLER_H_
