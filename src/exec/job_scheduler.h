// JobScheduler: prioritized background job execution on a shared ThreadPool.
//
// Flush jobs always dispatch before compaction jobs: a full immutable
// memtable blocks writers directly, while a pending compaction only degrades
// read amplification, so the scheduler drains the flush queue first (the
// same discipline as RocksDB's HIGH/LOW pool split). Each scheduled job gets
// an id whose state can be polled, errors are latched for the owner to
// surface, and Shutdown() completes every queued job before returning so DB
// teardown never abandons a half-installed flush.
//
// The scheduler submits one pool task per scheduled job; each task pops and
// runs the highest-priority job available, so a task may execute a different
// job than the one whose Schedule() call created it. Tasks capture the
// scheduler's internal core by shared_ptr, so a task that outlives the
// JobScheduler object (e.g. drained by ThreadPool::Shutdown afterwards)
// finds empty queues instead of freed memory.
#ifndef TALUS_EXEC_JOB_SCHEDULER_H_
#define TALUS_EXEC_JOB_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "exec/thread_pool.h"
#include "metrics/background_stats.h"
#include "util/status.h"

namespace talus {
namespace exec {

enum class JobType : int { kFlush = 0, kCompaction = 1 };

enum class JobState { kQueued, kRunning, kDone, kFailed, kDropped };

class JobScheduler {
 public:
  using JobId = uint64_t;

  /// The pool is borrowed and must outlive the scheduler.
  explicit JobScheduler(ThreadPool* pool);
  ~JobScheduler();
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job and returns its id. Returns kInvalidJobId when the job
  /// was dropped without running: after Shutdown() began, or when the
  /// borrowed pool refused the dispatch (pool shutdown) — the latter also
  /// drops every still-queued job, since no dispatch will ever arrive.
  JobId Schedule(JobType type, std::function<Status()> job);
  static constexpr JobId kInvalidJobId = 0;

  /// State of a job by id; kDropped for ids that are invalid or so old that
  /// their record has been pruned.
  JobState GetState(JobId id) const;

  /// Blocks until no job is queued or running. Callers must not hold locks
  /// that running jobs acquire.
  void WaitIdle();

  /// Stops accepting new jobs and waits for every accepted job to finish.
  /// Idempotent. Does not shut down the borrowed pool.
  void Shutdown();

  /// First job failure since construction, latched (OK if none).
  Status first_error() const;

  metrics::BackgroundJobStats GetStats() const;

 private:
  struct Core;

  ThreadPool* pool_;
  std::shared_ptr<Core> core_;
};

}  // namespace exec
}  // namespace talus

#endif  // TALUS_EXEC_JOB_SCHEDULER_H_
