#include "exec/thread_pool.h"

#include <algorithm>

namespace talus {
namespace exec {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> l(mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> l(mu_);
      work_cv_.wait(l, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and fully drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace exec
}  // namespace talus
