// WriteQueue: the lock-ordered writer queue at the heart of the group-commit
// pipeline (DESIGN.md §2.9, RocksDB's JoinBatchGroup idiom). Writers enqueue
// and block; the front writer becomes the group leader, absorbs queued
// followers up to a byte budget, commits the whole group (WAL + memtable)
// off the DB mutex, and wakes each follower with its individual Status.
//
// Lock ordering: the queue's internal mutex is taken either with no other
// lock held (JoinAndAwaitLeadership, ExitGroup) or inside DB::mutex_
// (BuildGroup), and queue code never calls back into the DB — so the order
// DB::mutex_ → WriteQueue::mu_ is acyclic (DESIGN.md §2.3).
#ifndef TALUS_WRITE_WRITE_QUEUE_H_
#define TALUS_WRITE_WRITE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "write/writer.h"

namespace talus {
namespace write {

class WriteQueue {
 public:
  WriteQueue() = default;
  WriteQueue(const WriteQueue&) = delete;
  WriteQueue& operator=(const WriteQueue&) = delete;

  /// Enqueues *w and blocks until it is the group leader (returns true) or
  /// a leader has committed it (returns false; w->status holds the result).
  /// While blocked, a follower may be asked to apply its own sub-batch to
  /// the memtable (parallel applies) before going back to sleep.
  bool JoinAndAwaitLeadership(Writer* w);

  /// Leader-only: collects the leader plus queued followers into *group, in
  /// queue order, stopping once the accumulated batch bytes would exceed
  /// `max_group_bytes` (the leader's own batch is always included). The
  /// writers stay queued — ExitGroup removes them.
  void BuildGroup(Writer* leader, uint64_t max_group_bytes, WriteGroup* group);

  /// Leader-only: wakes every follower in *group to run group->apply on its
  /// own writer. The caller applies the leader's batch itself, then calls
  /// AwaitParallelApplies.
  void StartParallelApplies(WriteGroup* group);

  /// Leader-only: blocks until every follower finished its parallel apply.
  void AwaitParallelApplies(WriteGroup* group);

  /// Leader-only: pops the group off the queue, wakes each follower with
  /// its final status (set by the leader beforehand), and promotes the next
  /// queued writer — if any — to leader.
  void ExitGroup(WriteGroup* group);

 private:
  std::mutex mu_;
  // One broadcast condvar covers leadership handoff, follower completion,
  // and parallel-apply wakeups; write groups are small enough that the
  // thundering herd is cheaper than per-writer parking.
  std::condition_variable cv_;
  std::deque<Writer*> queue_;
};

}  // namespace write
}  // namespace talus

#endif  // TALUS_WRITE_WRITE_QUEUE_H_
