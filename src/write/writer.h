// Writer / WriteGroup: the per-caller queue node and the per-commit batch
// group of the group-commit write pipeline (DESIGN.md §2.9). A Writer is
// stack-allocated by DB::CommitGroup for the duration of one Put/Delete/
// Write call; a WriteGroup is stack-allocated by the group leader and names
// the contiguous run of queued writers whose batches commit together with
// one WAL record and one (amortized) sync.
#ifndef TALUS_WRITE_WRITER_H_
#define TALUS_WRITE_WRITER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/write_batch.h"
#include "util/status.h"

namespace talus {
namespace write {

/// One queued write call. Lives on the caller's stack; every field except
/// `state` is owned by the group leader from the moment the writer joins the
/// queue until the leader marks it done (the caller only blocks and then
/// reads `status`). `state` is guarded by WriteQueue's internal mutex.
struct Writer {
  enum State : uint8_t {
    kWaiting,        // Queued behind the current group.
    kLeader,         // Front of the queue: this thread commits the group.
    kParallelApply,  // Told by the leader to insert its own sub-batch.
    kDone,           // Committed (or failed); `status` is final.
  };

  explicit Writer(const WriteBatch* b) : batch(b) {}
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  const WriteBatch* batch;
  /// Final per-writer outcome. One malformed batch fails alone — it never
  /// poisons the rest of its group.
  Status status;
  /// First sequence number of this writer's sub-batch (leader-assigned,
  /// unless `preassigned`).
  SequenceNumber base_seq = 0;
  /// Sharding layer (DESIGN.md §3): base_seq was pre-claimed by the caller
  /// from the shared SequenceAllocator. The leader leaves it alone, keeps
  /// the range out of the group's own contiguous claim, and WAL-logs this
  /// sub-batch as its own record.
  bool preassigned = false;
  /// Preassigned writers only: when false the leader does not publish the
  /// range to the allocator — ShardedDB publishes a multi-shard batch's
  /// whole range itself once every shard applied, which is what makes the
  /// batch atomic under the cross-shard watermark.
  bool publish_sequence = true;
  /// When the writer first blocked behind another group (queue-wait
  /// accounting). Stays 0 for a writer that took leadership immediately,
  /// which keeps serial runs' stats bit-deterministic — no clock is read.
  uint64_t join_micros = 0;
  /// Set by the leader for parallel memtable applies.
  struct WriteGroup* group = nullptr;
  State state = kWaiting;
};

/// The batch group one leader commits. `writers[0]` is the leader; the rest
/// follow in queue order, which is also sequence-assignment order.
struct WriteGroup {
  std::vector<Writer*> writers;
  /// Sum over members of (group-build time - join time).
  uint64_t queue_wait_micros = 0;
  /// Follower-side memtable insert, set by the leader before
  /// WriteQueue::StartParallelApplies. Must be safe to run concurrently
  /// from every follower thread.
  std::function<void(Writer*)> apply;
  /// Followers that have not finished their parallel apply yet.
  std::atomic<int> pending_applies{0};
};

}  // namespace write
}  // namespace talus

#endif  // TALUS_WRITE_WRITER_H_
