#include "write/write_queue.h"

#include <cassert>

#include "util/wall_clock.h"

namespace talus {
namespace write {

bool WriteQueue::JoinAndAwaitLeadership(Writer* w) {
  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(w);
  if (queue_.front() == w) {
    w->state = Writer::kLeader;
    return true;
  }
  w->join_micros = NowMicros();
  while (true) {
    cv_.wait(lk, [&] {
      return w->state == Writer::kDone || w->state == Writer::kParallelApply ||
             queue_.front() == w;
    });
    if (w->state == Writer::kDone) return false;
    if (w->state == Writer::kParallelApply) {
      // The leader asked this follower to insert its own sub-batch. Run the
      // apply without the queue lock (it is a memtable insert), signal the
      // leader, and go back to waiting for the commit to finish.
      WriteGroup* group = w->group;
      w->state = Writer::kWaiting;
      lk.unlock();
      group->apply(w);
      lk.lock();
      if (group->pending_applies.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        cv_.notify_all();  // Last follower: the leader can proceed.
      }
      continue;
    }
    // Front of the queue: the previous group committed without absorbing
    // this writer, so it leads the next one.
    w->state = Writer::kLeader;
    return true;
  }
}

void WriteQueue::BuildGroup(Writer* leader, uint64_t max_group_bytes,
                            WriteGroup* group) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(!queue_.empty() && queue_.front() == leader);
  group->writers.clear();
  group->writers.push_back(leader);
  group->queue_wait_micros = 0;
  uint64_t bytes = leader->batch->rep().size();
  for (size_t i = 1; i < queue_.size(); i++) {
    Writer* wr = queue_[i];
    if (bytes + wr->batch->rep().size() > max_group_bytes) break;
    bytes += wr->batch->rep().size();
    group->writers.push_back(wr);
  }
  // Clock read only when someone actually waited: an uncontended serial
  // write path stays clock-free and its stats bit-deterministic.
  uint64_t now = 0;
  for (const Writer* wr : group->writers) {
    if (wr->join_micros == 0) continue;
    if (now == 0) now = NowMicros();
    group->queue_wait_micros += now - wr->join_micros;
  }
}

void WriteQueue::StartParallelApplies(WriteGroup* group) {
  std::lock_guard<std::mutex> lk(mu_);
  const int followers = static_cast<int>(group->writers.size()) - 1;
  group->pending_applies.store(followers, std::memory_order_relaxed);
  for (size_t i = 1; i < group->writers.size(); i++) {
    group->writers[i]->group = group;
    group->writers[i]->state = Writer::kParallelApply;
  }
  cv_.notify_all();
}

void WriteQueue::AwaitParallelApplies(WriteGroup* group) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return group->pending_applies.load(std::memory_order_acquire) == 0;
  });
}

void WriteQueue::ExitGroup(WriteGroup* group) {
  std::lock_guard<std::mutex> lk(mu_);
  for (Writer* wr : group->writers) {
    assert(!queue_.empty() && queue_.front() == wr);
    (void)wr;
    queue_.pop_front();
  }
  // The leader (writers[0]) is the caller; only followers are blocked.
  for (size_t i = 1; i < group->writers.size(); i++) {
    group->writers[i]->state = Writer::kDone;
  }
  // Wakes released followers and the new front writer, which will observe
  // itself at the head of the queue and take leadership.
  cv_.notify_all();
}

}  // namespace write
}  // namespace talus
