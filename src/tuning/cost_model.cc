#include "tuning/cost_model.h"

#include <algorithm>
#include <cstdio>

#include "theory/schemes.h"

namespace talus {
namespace tuning {

double HorizontalCostModel::PointLookupCost(HorizontalMerge merge,
                                            int levels) const {
  if (merge == HorizontalMerge::kLeveling) {
    return static_cast<double>(levels) * bloom_fpr;  // R_l = ℓ·f.
  }
  // R_t (Eq. 3): amortized probes per lookup over the fill of the part.
  const uint64_t n = std::max<uint64_t>(1, capacity_buffers);
  const uint64_t tau = theory::TieringReadCostClosedForm(n, levels);
  return static_cast<double>(tau) * bloom_fpr / static_cast<double>(n);
}

double HorizontalCostModel::RangeLookupCost(HorizontalMerge merge,
                                            int levels) const {
  // Q = R / f: every run is touched regardless of the filters.
  if (bloom_fpr <= 0) return 0;
  return PointLookupCost(merge, levels) / bloom_fpr;
}

double HorizontalCostModel::UpdateCost(HorizontalMerge merge,
                                       int levels) const {
  if (merge == HorizontalMerge::kTiering) {
    return static_cast<double>(levels) / page_entries;  // W_t = ℓ/P.
  }
  // W_l (Eq. 4).
  const uint64_t n = std::max<uint64_t>(1, capacity_buffers);
  const uint64_t omega = theory::LevelingWriteCostClosedForm(n, levels);
  return static_cast<double>(omega) /
         (static_cast<double>(n) * page_entries);
}

double HorizontalCostModel::Zeta(HorizontalMerge merge, int levels,
                                 const WorkloadMix& mix) const {
  return mix.updates * UpdateCost(merge, levels) +
         mix.point_lookups * PointLookupCost(merge, levels) +
         mix.range_lookups * RangeLookupCost(merge, levels);
}

std::string NavigatorResult::ToString() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s l=%d zeta=%.6f",
                merge == HorizontalMerge::kLeveling ? "leveling" : "tiering",
                levels, cost);
  return buf;
}

namespace {

int LevelCap(const HorizontalCostModel& model, int max_levels) {
  // ℓ cannot usefully exceed n (one buffer per level already fits the data).
  const uint64_t n = std::max<uint64_t>(2, model.capacity_buffers);
  return static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(max_levels), n));
}

}  // namespace

NavigatorResult Navigate(const HorizontalCostModel& model,
                         const WorkloadMix& mix, int max_levels) {
  const int cap = LevelCap(model, max_levels);
  NavigatorResult best;
  bool first = true;
  for (HorizontalMerge merge :
       {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
    // The cost curves are convex in ℓ (§5.2): walk up from the minimum
    // feasible ℓ = 2 and stop at the first increase (saddle point). ℓ = 1
    // is included as a degenerate candidate for tiny capacities.
    int lo = std::min(2, cap);
    double prev = model.Zeta(merge, lo, mix);
    int best_l = lo;
    double best_cost = prev;
    for (int l = lo + 1; l <= cap; l++) {
      const double c = model.Zeta(merge, l, mix);
      if (c < best_cost) {
        best_cost = c;
        best_l = l;
      }
      if (c > prev) break;  // Past the saddle point.
      prev = c;
    }
    if (first || best_cost < best.cost) {
      best.merge = merge;
      best.levels = best_l;
      best.cost = best_cost;
      first = false;
    }
  }
  return best;
}

NavigatorResult NavigateExhaustive(const HorizontalCostModel& model,
                                   const WorkloadMix& mix, int max_levels) {
  const int cap = LevelCap(model, max_levels);
  NavigatorResult best;
  bool first = true;
  for (HorizontalMerge merge :
       {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
    for (int l = std::min(2, cap); l <= cap; l++) {
      const double c = model.Zeta(merge, l, mix);
      if (first || c < best.cost) {
        best.merge = merge;
        best.levels = l;
        best.cost = c;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace tuning
}  // namespace talus
