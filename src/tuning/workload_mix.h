// WorkloadMix: the (w, r, q) operation fractions of §5.2 — updates, point
// lookups, range lookups — used to weight the cost model.
#ifndef TALUS_TUNING_WORKLOAD_MIX_H_
#define TALUS_TUNING_WORKLOAD_MIX_H_

#include <atomic>

namespace talus {

struct WorkloadMix {
  double updates = 0.5;        // w
  double point_lookups = 0.5;  // r
  double range_lookups = 0.0;  // q

  void Normalize() {
    double total = updates + point_lookups + range_lookups;
    if (total <= 0) {
      updates = point_lookups = 0.5;
      range_lookups = 0;
      return;
    }
    updates /= total;
    point_lookups /= total;
    range_lookups /= total;
  }
};

/// Online estimator: counts operations and yields the observed mix.
/// Counters are relaxed atomics: point/range lookups are recorded by the
/// mutex-free read path (DESIGN.md §2.7).
class WorkloadMixTracker {
 public:
  void RecordUpdate() { updates_.fetch_add(1, std::memory_order_relaxed); }
  void RecordPointLookup() { points_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRangeLookup() { ranges_.fetch_add(1, std::memory_order_relaxed); }

  unsigned long long total() const {
    return updates_.load(std::memory_order_relaxed) +
           points_.load(std::memory_order_relaxed) +
           ranges_.load(std::memory_order_relaxed);
  }

  WorkloadMix Estimate() const {
    WorkloadMix mix;
    mix.updates =
        static_cast<double>(updates_.load(std::memory_order_relaxed));
    mix.point_lookups =
        static_cast<double>(points_.load(std::memory_order_relaxed));
    mix.range_lookups =
        static_cast<double>(ranges_.load(std::memory_order_relaxed));
    mix.Normalize();
    return mix;
  }

  void Reset() {
    updates_.store(0, std::memory_order_relaxed);
    points_.store(0, std::memory_order_relaxed);
    ranges_.store(0, std::memory_order_relaxed);
    base_updates_.store(0, std::memory_order_relaxed);
    base_points_.store(0, std::memory_order_relaxed);
    base_ranges_.store(0, std::memory_order_relaxed);
  }

  // ---- Windowed view (epoch swap, reset-free) ----
  //
  // The drift monitor needs the *recent* mix, not the lifetime average:
  // after hours of balanced traffic a write-heavy flip would take hours to
  // move the cumulative estimate. AdvanceWindow() snapshots the lifetime
  // counters as the new window base; the windowed estimate is the delta
  // since that base. Recording stays lock-free; AdvanceWindow is meant for
  // a single periodic consumer and only races benignly (a shorter window).

  struct RawCounts {
    unsigned long long updates = 0;
    unsigned long long points = 0;
    unsigned long long ranges = 0;
    unsigned long long total() const { return updates + points + ranges; }
  };

  RawCounts WindowRawCounts() const {
    RawCounts c;
    c.updates = Delta(updates_, base_updates_);
    c.points = Delta(points_, base_points_);
    c.ranges = Delta(ranges_, base_ranges_);
    return c;
  }

  unsigned long long WindowTotal() const { return WindowRawCounts().total(); }

  /// Mix of operations recorded since the last AdvanceWindow(). Falls back
  /// to the lifetime estimate while the window is empty.
  WorkloadMix WindowEstimate() const {
    RawCounts c = WindowRawCounts();
    if (c.total() == 0) return Estimate();
    WorkloadMix mix;
    mix.updates = static_cast<double>(c.updates);
    mix.point_lookups = static_cast<double>(c.points);
    mix.range_lookups = static_cast<double>(c.ranges);
    mix.Normalize();
    return mix;
  }

  /// Start a new window at "now".
  void AdvanceWindow() {
    base_updates_.store(updates_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    base_points_.store(points_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    base_ranges_.store(ranges_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }

 private:
  static unsigned long long Delta(
      const std::atomic<unsigned long long>& cur,
      const std::atomic<unsigned long long>& base) {
    unsigned long long c = cur.load(std::memory_order_relaxed);
    unsigned long long b = base.load(std::memory_order_relaxed);
    return c >= b ? c - b : 0;
  }

  std::atomic<unsigned long long> updates_{0};
  std::atomic<unsigned long long> points_{0};
  std::atomic<unsigned long long> ranges_{0};
  std::atomic<unsigned long long> base_updates_{0};
  std::atomic<unsigned long long> base_points_{0};
  std::atomic<unsigned long long> base_ranges_{0};
};

}  // namespace talus

#endif  // TALUS_TUNING_WORKLOAD_MIX_H_
