// WorkloadMix: the (w, r, q) operation fractions of §5.2 — updates, point
// lookups, range lookups — used to weight the cost model.
#ifndef TALUS_TUNING_WORKLOAD_MIX_H_
#define TALUS_TUNING_WORKLOAD_MIX_H_

namespace talus {

struct WorkloadMix {
  double updates = 0.5;        // w
  double point_lookups = 0.5;  // r
  double range_lookups = 0.0;  // q

  void Normalize() {
    double total = updates + point_lookups + range_lookups;
    if (total <= 0) {
      updates = point_lookups = 0.5;
      range_lookups = 0;
      return;
    }
    updates /= total;
    point_lookups /= total;
    range_lookups /= total;
  }
};

/// Online estimator: counts operations and yields the observed mix.
class WorkloadMixTracker {
 public:
  void RecordUpdate() { updates_++; }
  void RecordPointLookup() { points_++; }
  void RecordRangeLookup() { ranges_++; }

  unsigned long long total() const { return updates_ + points_ + ranges_; }

  WorkloadMix Estimate() const {
    WorkloadMix mix;
    mix.updates = static_cast<double>(updates_);
    mix.point_lookups = static_cast<double>(points_);
    mix.range_lookups = static_cast<double>(ranges_);
    mix.Normalize();
    return mix;
  }

  void Reset() { updates_ = points_ = ranges_ = 0; }

 private:
  unsigned long long updates_ = 0;
  unsigned long long points_ = 0;
  unsigned long long ranges_ = 0;
};

}  // namespace talus

#endif  // TALUS_TUNING_WORKLOAD_MIX_H_
