// WorkloadMix: the (w, r, q) operation fractions of §5.2 — updates, point
// lookups, range lookups — used to weight the cost model.
#ifndef TALUS_TUNING_WORKLOAD_MIX_H_
#define TALUS_TUNING_WORKLOAD_MIX_H_

#include <atomic>

namespace talus {

struct WorkloadMix {
  double updates = 0.5;        // w
  double point_lookups = 0.5;  // r
  double range_lookups = 0.0;  // q

  void Normalize() {
    double total = updates + point_lookups + range_lookups;
    if (total <= 0) {
      updates = point_lookups = 0.5;
      range_lookups = 0;
      return;
    }
    updates /= total;
    point_lookups /= total;
    range_lookups /= total;
  }
};

/// Online estimator: counts operations and yields the observed mix.
/// Counters are relaxed atomics: point/range lookups are recorded by the
/// mutex-free read path (DESIGN.md §2.7).
class WorkloadMixTracker {
 public:
  void RecordUpdate() { updates_.fetch_add(1, std::memory_order_relaxed); }
  void RecordPointLookup() { points_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRangeLookup() { ranges_.fetch_add(1, std::memory_order_relaxed); }

  unsigned long long total() const {
    return updates_.load(std::memory_order_relaxed) +
           points_.load(std::memory_order_relaxed) +
           ranges_.load(std::memory_order_relaxed);
  }

  WorkloadMix Estimate() const {
    WorkloadMix mix;
    mix.updates =
        static_cast<double>(updates_.load(std::memory_order_relaxed));
    mix.point_lookups =
        static_cast<double>(points_.load(std::memory_order_relaxed));
    mix.range_lookups =
        static_cast<double>(ranges_.load(std::memory_order_relaxed));
    mix.Normalize();
    return mix;
  }

  void Reset() {
    updates_.store(0, std::memory_order_relaxed);
    points_.store(0, std::memory_order_relaxed);
    ranges_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<unsigned long long> updates_{0};
  std::atomic<unsigned long long> points_{0};
  std::atomic<unsigned long long> ranges_{0};
};

}  // namespace talus

#endif  // TALUS_TUNING_WORKLOAD_MIX_H_
