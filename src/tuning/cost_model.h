// Cost model for the horizontal part of Vertiorizon (§5.2) and the
// saddle-point navigator that picks the merge policy and level count.
//
// Per-operation I/O costs for a horizontal part holding n buffers across ℓ
// levels, with Bloom false-positive rate f and page size P entries:
//
//   R_l = ℓ·f                                   point lookup, leveling
//   R_t = τ(n,ℓ)·f / n                          point lookup, tiering (Eq. 3)
//   Q   = R / f                                 range lookup
//   W_t = ℓ / P                                 update, tiering
//   W_l = Ω(n,ℓ) / (n·P)                        update, leveling (Eq. 4)
//   ζ   = w·W + r·R + q·Q                       weighted mix (Eq. 5)
//
// where τ is Lemma 9.4's read-cost closed form and Ω is Lemma 5.2's
// write-cost closed form.
#ifndef TALUS_TUNING_COST_MODEL_H_
#define TALUS_TUNING_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "tuning/workload_mix.h"

namespace talus {
namespace tuning {

enum class HorizontalMerge { kLeveling, kTiering };

struct HorizontalCostModel {
  uint64_t capacity_buffers = 16;  // n.
  double bloom_fpr = 0.1;          // f.
  double page_entries = 4.0;       // P.

  double PointLookupCost(HorizontalMerge merge, int levels) const;
  double RangeLookupCost(HorizontalMerge merge, int levels) const;
  double UpdateCost(HorizontalMerge merge, int levels) const;

  /// ζ (Eq. 5) for a candidate design.
  double Zeta(HorizontalMerge merge, int levels,
              const WorkloadMix& mix) const;
};

struct NavigatorResult {
  HorizontalMerge merge = HorizontalMerge::kLeveling;
  int levels = 2;
  double cost = 0;

  std::string ToString() const;
};

/// §5.2 navigator: for each merge policy walk ℓ from 2 upward to the saddle
/// point of the convex cost curve, then take the cheaper policy.
/// `max_levels` bounds the search (ℓ can never exceed n).
NavigatorResult Navigate(const HorizontalCostModel& model,
                         const WorkloadMix& mix, int max_levels = 64);

/// Reference oracle: full scan over both policies and every ℓ in range.
/// The property tests assert Navigate() == NavigateExhaustive().
NavigatorResult NavigateExhaustive(const HorizontalCostModel& model,
                                   const WorkloadMix& mix,
                                   int max_levels = 64);

}  // namespace tuning
}  // namespace talus

#endif  // TALUS_TUNING_COST_MODEL_H_
