// Analytical cost model for the *vertical* growth scheme (the classic
// Monkey/Dostoevsky formulas), complementing the horizontal model in
// cost_model.h. Used by the frontier bench to draw the model-space
// trade-off curves behind Figure 10(a) and by tests certifying the paper's
// qualitative claim: for matched read cost, the horizontal scheme's write
// cost never exceeds the vertical scheme's (Bentley–Saxe optimality).
//
// With L levels, size ratio T, Bloom FPR f, page size P entries:
//   leveling: W = L·(T+1)/(2P)   R = L·f      Q = L
//   tiering:  W = L/P            R = L·T·f    Q = L·T
#ifndef TALUS_TUNING_VERTICAL_COST_MODEL_H_
#define TALUS_TUNING_VERTICAL_COST_MODEL_H_

#include <cstdint>

#include "tuning/cost_model.h"

namespace talus {
namespace tuning {

struct VerticalCostModel {
  double size_ratio = 6.0;    // T.
  double bloom_fpr = 0.1;     // f.
  double page_entries = 4.0;  // P.
  uint64_t data_buffers = 1024;  // N/B: total data in buffers.

  /// Number of levels needed for the data volume: ceil(log_T(N/B)).
  int Levels() const;

  double PointLookupCost(HorizontalMerge merge) const;
  double RangeLookupCost(HorizontalMerge merge) const;
  double UpdateCost(HorizontalMerge merge) const;

  double Zeta(HorizontalMerge merge, const WorkloadMix& mix) const;
};

/// Best vertical design (merge policy × T over `ratios`) for a mix.
struct VerticalChoice {
  HorizontalMerge merge = HorizontalMerge::kLeveling;
  double size_ratio = 6.0;
  double cost = 0;
};
VerticalChoice BestVertical(double bloom_fpr, double page_entries,
                            uint64_t data_buffers, const WorkloadMix& mix);

}  // namespace tuning
}  // namespace talus

#endif  // TALUS_TUNING_VERTICAL_COST_MODEL_H_
