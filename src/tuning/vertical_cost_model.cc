#include "tuning/vertical_cost_model.h"

#include <algorithm>
#include <cmath>

namespace talus {
namespace tuning {

int VerticalCostModel::Levels() const {
  const double n = std::max<double>(2.0, static_cast<double>(data_buffers));
  const double t = std::max(2.0, size_ratio);
  return std::max(1, static_cast<int>(std::ceil(std::log(n) / std::log(t))));
}

double VerticalCostModel::PointLookupCost(HorizontalMerge merge) const {
  const double L = Levels();
  if (merge == HorizontalMerge::kLeveling) {
    return L * bloom_fpr;
  }
  return L * size_ratio * bloom_fpr;  // Up to T runs per level.
}

double VerticalCostModel::RangeLookupCost(HorizontalMerge merge) const {
  if (bloom_fpr <= 0) return 0;
  return PointLookupCost(merge) / bloom_fpr;
}

double VerticalCostModel::UpdateCost(HorizontalMerge merge) const {
  const double L = Levels();
  if (merge == HorizontalMerge::kLeveling) {
    // Each entry is rewritten ~(T+1)/2 times per level before moving on.
    return L * (size_ratio + 1.0) / (2.0 * page_entries);
  }
  return L / page_entries;  // One write per level.
}

double VerticalCostModel::Zeta(HorizontalMerge merge,
                               const WorkloadMix& mix) const {
  return mix.updates * UpdateCost(merge) +
         mix.point_lookups * PointLookupCost(merge) +
         mix.range_lookups * RangeLookupCost(merge);
}

VerticalChoice BestVertical(double bloom_fpr, double page_entries,
                            uint64_t data_buffers, const WorkloadMix& mix) {
  VerticalChoice best;
  bool first = true;
  for (HorizontalMerge merge :
       {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
    for (double t : {2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 16.0, 32.0}) {
      VerticalCostModel model;
      model.size_ratio = t;
      model.bloom_fpr = bloom_fpr;
      model.page_entries = page_entries;
      model.data_buffers = data_buffers;
      const double c = model.Zeta(merge, mix);
      if (first || c < best.cost) {
        best.merge = merge;
        best.size_ratio = t;
        best.cost = c;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace tuning
}  // namespace talus
