// Env: the storage environment abstraction (RocksDB style). The engine only
// talks to files through this interface, so experiments can run against a
// deterministic in-memory environment with exact I/O accounting while tests
// also exercise a real POSIX filesystem.
#ifndef TALUS_ENV_ENV_H_
#define TALUS_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "env/io_stats.h"
#include "util/slice.h"
#include "util/status.h"

namespace talus {

/// Sequentially writable file (SSTs, WAL, MANIFEST are written append-only).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Randomly readable file (SST reads).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at `offset`. Sets *result to the data read (which
  /// may point into scratch or into an internal buffer).
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Sequentially readable file (WAL/MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// I/O statistics for this environment. Never null.
  virtual IoStats* io_stats() = 0;

  /// Total bytes currently stored in files under `dir` (space amplification
  /// tracking). Includes files being written.
  virtual uint64_t TotalFileBytes(const std::string& dir) = 0;

  /// Process-wide POSIX environment (real files under the OS filesystem).
  static Env* Default();
};

/// Creates a fresh deterministic in-memory environment. Each instance has an
/// isolated namespace and its own IoStats, so experiments are independent.
std::unique_ptr<Env> NewMemEnv();

}  // namespace talus

#endif  // TALUS_ENV_ENV_H_
