#include "env/fault_env.h"

namespace talus {

namespace {

// Re-writes `fname` in the base env truncated to `keep` bytes.
Status TruncateFile(Env* base, const std::string& fname, uint64_t keep) {
  std::unique_ptr<SequentialFile> in;
  Status s = base->NewSequentialFile(fname, &in);
  if (!s.ok()) return s;
  std::string contents;
  contents.reserve(keep);
  std::string scratch(64 << 10, '\0');
  while (contents.size() < keep) {
    Slice chunk;
    const size_t want =
        std::min<uint64_t>(scratch.size(), keep - contents.size());
    s = in->Read(want, &chunk, scratch.data());
    if (!s.ok()) return s;
    if (chunk.empty()) break;
    contents.append(chunk.data(), chunk.size());
  }
  std::unique_ptr<WritableFile> out;
  s = base->NewWritableFile(fname, &out);
  if (!s.ok()) return s;
  s = out->Append(contents);
  if (s.ok()) s = out->Close();
  return s;
}

}  // namespace

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(std::string fname, std::unique_ptr<WritableFile> base,
                    FaultInjectionEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    if (env_->ShouldFail()) return Status::IOError("injected write failure");
    Status s = base_->Append(data);
    if (s.ok()) {
      size_ += data.size();
      env_->NoteAppend(fname_, size_);
    }
    return s;
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    if (env_->ShouldFail()) return Status::IOError("injected sync failure");
    Status s = base_->Sync();
    if (s.ok()) env_->NoteSynced(fname_);
    return s;
  }
  Status Close() override { return base_->Close(); }

 private:
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
  uint64_t size_ = 0;
};

bool FaultInjectionEnv::ShouldFail() {
  std::lock_guard<std::mutex> l(mu_);
  if (failing_) return true;
  if (!armed_) return false;
  if (writes_remaining_ == 0) {
    failing_ = true;
    return true;
  }
  writes_remaining_--;
  return false;
}

void FaultInjectionEnv::NoteSynced(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  synced_size_[fname] = current_size_[fname];
}

void FaultInjectionEnv::NoteAppend(const std::string& fname,
                                   uint64_t new_size) {
  std::lock_guard<std::mutex> l(mu_);
  current_size_[fname] = new_size;
}

void FaultInjectionEnv::NoteCreated(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  current_size_[fname] = 0;
  synced_size_[fname] = 0;
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  if (ShouldFail()) return Status::IOError("injected create failure");
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  NoteCreated(fname);
  *result = std::make_unique<FaultWritableFile>(fname, std::move(base_file),
                                                this);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  if (ShouldFail()) return Status::IOError("injected remove failure");
  {
    std::lock_guard<std::mutex> l(mu_);
    synced_size_.erase(fname);
    current_size_.erase(fname);
  }
  return base_->RemoveFile(fname);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  if (ShouldFail()) return Status::IOError("injected rename failure");
  {
    std::lock_guard<std::mutex> l(mu_);
    auto cs = current_size_.find(src);
    if (cs != current_size_.end()) {
      current_size_[target] = cs->second;
      current_size_.erase(cs);
    }
    auto ss = synced_size_.find(src);
    if (ss != synced_size_.end()) {
      synced_size_[target] = ss->second;
      synced_size_.erase(ss);
    }
  }
  return base_->RenameFile(src, target);
}

void FaultInjectionEnv::DropUnsyncedWrites() {
  std::map<std::string, uint64_t> synced, current;
  {
    std::lock_guard<std::mutex> l(mu_);
    synced = synced_size_;
    current = current_size_;
  }
  for (const auto& [fname, size] : current) {
    auto it = synced.find(fname);
    const uint64_t keep = it == synced.end() ? 0 : it->second;
    if (keep == size) continue;
    if (keep == 0) {
      base_->RemoveFile(fname);
    } else {
      TruncateFile(base_, fname, keep);
    }
  }
}

}  // namespace talus
