// POSIX Env: the engine against real files. Used by tests to validate that
// the storage format round-trips through an actual filesystem; benchmark
// experiments use MemEnv for determinism.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "env/env.h"

namespace talus {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context, std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd, IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), stats_(stats) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t done = ::write(fd_, p, left);
      if (done < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += done;
      left -= done;
    }
    stats_->RecordWrite(data.size());
    stats_->RecordStorageGrowth(data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }
  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
  IoStats* stats_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, uint64_t size,
                        IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), size_(size), stats_(stats) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    stats_->RecordRead(static_cast<uint64_t>(r));
    return Status::OK();
  }
  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  int fd_;
  uint64_t size_;
  IoStats* stats_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd, IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), stats_(stats) {}
  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      stats_->RecordRead(static_cast<uint64_t>(r));
      return Status::OK();
    }
  }
  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
  IoStats* stats_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd, &stats_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return PosixError(fname, err);
    }
    *result = std::make_unique<PosixRandomAccessFile>(
        fname, fd, static_cast<uint64_t>(st.st_size), &stats_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd, &stats_);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") result->push_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    struct stat st;
    uint64_t size = (::stat(fname.c_str(), &st) == 0)
                        ? static_cast<uint64_t>(st.st_size)
                        : 0;
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    stats_.RecordStorageShrink(size);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  IoStats* io_stats() override { return &stats_; }

  uint64_t TotalFileBytes(const std::string& dir) override {
    std::vector<std::string> children;
    if (!GetChildren(dir, &children).ok()) return 0;
    uint64_t total = 0;
    for (const auto& c : children) {
      uint64_t sz = 0;
      if (GetFileSize(dir + "/" + c, &sz).ok()) total += sz;
    }
    return total;
  }

 private:
  IoStats stats_;
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace talus
