// IoStats: byte- and page-level I/O accounting plus the virtual clock used by
// the benchmark harness. Charging every method through the identical cost
// model is what makes the reproduced figures hardware-independent while
// preserving the paper's relative orderings (see DESIGN.md).
//
// Cost model (calibrated to NVMe-class asymmetry; one unit ~= 50 us):
//  * Writes are sequential in an LSM-tree (WAL appends, SST builds), so they
//    are charged pure bandwidth: write_page_cost per 4KiB, fractional.
//    At ~2 GB/s a 4KiB sequential write costs ~2 us.
//  * Reads are random block fetches: a fixed request cost (device latency,
//    ~25 us submission+seek) plus bandwidth per whole page (~50 us for 4KiB
//    end-to-end on a loaded device).
//  * The resulting ~30:1 random-read : sequential-write page-cost ratio is
//    what makes read amplification and write amplification trade off at
//    realistic rates; with a symmetric model every write-optimized scheme
//    would win every workload.
//  * CPU epsilons keep memory-only operations from having zero cost.
//
// Thread safety: every method takes an internal mutex, because in background
// execution mode (exec/job_scheduler.h) flush/compaction jobs perform I/O
// concurrently with foreground reads and WAL appends against the same Env.
// The mutex is uncontended in inline mode, so the deterministic single-thread
// experiments are unaffected.
#ifndef TALUS_ENV_IO_STATS_H_
#define TALUS_ENV_IO_STATS_H_

#include <cstdint>
#include <mutex>

namespace talus {

struct IoCostModel {
  double read_page_cost = 1.0;    // Per 4KiB page, random read (bandwidth).
  double write_page_cost = 0.05;  // Per 4KiB page written (sequential).
  double read_request_cost = 0.5;  // Per random read request (latency).
  // Per 4KiB page read sequentially (compaction scans stream at device
  // bandwidth, like writes).
  double seq_read_page_cost = 0.05;
  static constexpr uint64_t kPageSize = 4096;
};

class IoStats {
 public:
  void RecordRead(uint64_t bytes) {
    std::lock_guard<std::mutex> l(mu_);
    read_requests_++;
    bytes_read_ += bytes;
    if (sequential_depth_ > 0) {
      clock_ += model_.seq_read_page_cost * static_cast<double>(bytes) /
                static_cast<double>(IoCostModel::kPageSize);
    } else {
      clock_ += model_.read_request_cost +
                model_.read_page_cost * WholePages(bytes);
    }
  }

  /// RAII marker for streaming access (compaction merges): reads inside the
  /// scope are charged sequential bandwidth instead of random-read latency.
  /// The flag is per-IoStats, not per-thread: in background mode a flush
  /// job's scope may briefly discount a concurrent foreground read, which
  /// only perturbs the virtual clock (wall-clock metrics are unaffected and
  /// inline mode never overlaps scopes).
  class SequentialScope {
   public:
    explicit SequentialScope(IoStats* stats) : stats_(stats) {
      std::lock_guard<std::mutex> l(stats_->mu_);
      stats_->sequential_depth_++;
    }
    ~SequentialScope() {
      std::lock_guard<std::mutex> l(stats_->mu_);
      stats_->sequential_depth_--;
    }
    SequentialScope(const SequentialScope&) = delete;
    SequentialScope& operator=(const SequentialScope&) = delete;

   private:
    IoStats* stats_;
  };
  void RecordWrite(uint64_t bytes) {
    std::lock_guard<std::mutex> l(mu_);
    write_requests_++;
    bytes_written_ += bytes;
    clock_ += model_.write_page_cost * static_cast<double>(bytes) /
              static_cast<double>(IoCostModel::kPageSize);
  }
  /// CPU-side work (memtable ops, filter probes) advances the clock a little
  /// so infinitely cheap operations do not yield infinite throughput.
  void RecordCpu(double units) {
    std::lock_guard<std::mutex> l(mu_);
    clock_ += units;
  }

  /// Storage footprint tracking (space amplification). MemEnv reports every
  /// byte appended/removed; peak_storage_bytes is the paper's "peak disk
  /// space occupied during runtime".
  void RecordStorageGrowth(uint64_t bytes) {
    std::lock_guard<std::mutex> l(mu_);
    storage_bytes_ += bytes;
    if (storage_bytes_ > peak_storage_bytes_) {
      peak_storage_bytes_ = storage_bytes_;
    }
  }
  void RecordStorageShrink(uint64_t bytes) {
    std::lock_guard<std::mutex> l(mu_);
    storage_bytes_ = bytes > storage_bytes_ ? 0 : storage_bytes_ - bytes;
  }

  uint64_t bytes_read() const {
    std::lock_guard<std::mutex> l(mu_);
    return bytes_read_;
  }
  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> l(mu_);
    return bytes_written_;
  }
  uint64_t read_requests() const {
    std::lock_guard<std::mutex> l(mu_);
    return read_requests_;
  }
  uint64_t write_requests() const {
    std::lock_guard<std::mutex> l(mu_);
    return write_requests_;
  }
  uint64_t storage_bytes() const {
    std::lock_guard<std::mutex> l(mu_);
    return storage_bytes_;
  }
  uint64_t peak_storage_bytes() const {
    std::lock_guard<std::mutex> l(mu_);
    return peak_storage_bytes_;
  }

  /// Virtual time elapsed, in cost-model units.
  double clock() const {
    std::lock_guard<std::mutex> l(mu_);
    return clock_;
  }

  void set_cost_model(const IoCostModel& m) {
    std::lock_guard<std::mutex> l(mu_);
    model_ = m;
  }
  IoCostModel cost_model() const {
    std::lock_guard<std::mutex> l(mu_);
    return model_;
  }

  void Reset() {
    std::lock_guard<std::mutex> l(mu_);
    bytes_read_ = bytes_written_ = 0;
    read_requests_ = write_requests_ = 0;
    clock_ = 0;
    // Storage footprint intentionally survives Reset(): files persist across
    // measurement phases; call ResetPeak() to re-arm peak tracking.
  }
  void ResetPeak() {
    std::lock_guard<std::mutex> l(mu_);
    peak_storage_bytes_ = storage_bytes_;
  }

 private:
  static double WholePages(uint64_t bytes) {
    return static_cast<double>((bytes + IoCostModel::kPageSize - 1) /
                               IoCostModel::kPageSize);
  }

  mutable std::mutex mu_;
  IoCostModel model_;
  int sequential_depth_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t read_requests_ = 0;
  uint64_t write_requests_ = 0;
  uint64_t storage_bytes_ = 0;
  uint64_t peak_storage_bytes_ = 0;
  double clock_ = 0;
};

}  // namespace talus

#endif  // TALUS_ENV_IO_STATS_H_
