// IoStats: byte- and page-level I/O accounting plus the virtual clock used by
// the benchmark harness. Charging every method through the identical cost
// model is what makes the reproduced figures hardware-independent while
// preserving the paper's relative orderings (see DESIGN.md).
//
// Cost model (calibrated to NVMe-class asymmetry; one unit ~= 50 us):
//  * Writes are sequential in an LSM-tree (WAL appends, SST builds), so they
//    are charged pure bandwidth: write_page_cost per 4KiB, fractional.
//    At ~2 GB/s a 4KiB sequential write costs ~2 us.
//  * Reads are random block fetches: a fixed request cost (device latency,
//    ~25 us submission+seek) plus bandwidth per whole page (~50 us for 4KiB
//    end-to-end on a loaded device).
//  * The resulting ~30:1 random-read : sequential-write page-cost ratio is
//    what makes read amplification and write amplification trade off at
//    realistic rates; with a symmetric model every write-optimized scheme
//    would win every workload.
//  * CPU epsilons keep memory-only operations from having zero cost.
//
// Thread safety: lock-free. Every counter is an atomic and the virtual
// clock advances through a compare-exchange add, so the hot recording
// paths (one RecordCpu per Get/Scan, one RecordRead per data-block fetch)
// never serialize the otherwise mutex-free read path (DESIGN.md §2.7). In
// inline mode operations are single-threaded, so the accumulation order —
// and therefore every virtual-clock value — is bit-identical to the old
// mutex-guarded implementation.
#ifndef TALUS_ENV_IO_STATS_H_
#define TALUS_ENV_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace talus {

struct IoCostModel {
  double read_page_cost = 1.0;    // Per 4KiB page, random read (bandwidth).
  double write_page_cost = 0.05;  // Per 4KiB page written (sequential).
  double read_request_cost = 0.5;  // Per random read request (latency).
  // Per 4KiB page read sequentially (compaction scans stream at device
  // bandwidth, like writes).
  double seq_read_page_cost = 0.05;
  static constexpr uint64_t kPageSize = 4096;
};

class IoStats {
 public:
  void RecordRead(uint64_t bytes) {
    read_requests_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    if (sequential_depth_.load(std::memory_order_relaxed) > 0) {
      AdvanceClock(model_.seq_read_page_cost * static_cast<double>(bytes) /
                   static_cast<double>(IoCostModel::kPageSize));
    } else {
      AdvanceClock(model_.read_request_cost +
                   model_.read_page_cost * WholePages(bytes));
    }
  }

  /// RAII marker for streaming access (compaction merges): reads inside the
  /// scope are charged sequential bandwidth instead of random-read latency.
  /// The flag is per-IoStats, not per-thread: in background mode a flush
  /// job's scope may briefly discount a concurrent foreground read, which
  /// only perturbs the virtual clock (wall-clock metrics are unaffected and
  /// inline mode never overlaps scopes).
  class SequentialScope {
   public:
    explicit SequentialScope(IoStats* stats) : stats_(stats) {
      stats_->sequential_depth_.fetch_add(1, std::memory_order_relaxed);
    }
    ~SequentialScope() {
      stats_->sequential_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    SequentialScope(const SequentialScope&) = delete;
    SequentialScope& operator=(const SequentialScope&) = delete;

   private:
    IoStats* stats_;
  };
  void RecordWrite(uint64_t bytes) {
    write_requests_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    AdvanceClock(model_.write_page_cost * static_cast<double>(bytes) /
                 static_cast<double>(IoCostModel::kPageSize));
  }
  /// CPU-side work (memtable ops, filter probes) advances the clock a little
  /// so infinitely cheap operations do not yield infinite throughput.
  void RecordCpu(double units) { AdvanceClock(units); }

  /// Storage footprint tracking (space amplification). MemEnv reports every
  /// byte appended/removed; peak_storage_bytes is the paper's "peak disk
  /// space occupied during runtime".
  void RecordStorageGrowth(uint64_t bytes) {
    const uint64_t now =
        storage_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_storage_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_storage_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void RecordStorageShrink(uint64_t bytes) {
    uint64_t current = storage_bytes_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = bytes > current ? 0 : current - bytes;
    } while (!storage_bytes_.compare_exchange_weak(current, next,
                                                   std::memory_order_relaxed));
  }

  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t read_requests() const {
    return read_requests_.load(std::memory_order_relaxed);
  }
  uint64_t write_requests() const {
    return write_requests_.load(std::memory_order_relaxed);
  }
  uint64_t storage_bytes() const {
    return storage_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_storage_bytes() const {
    return peak_storage_bytes_.load(std::memory_order_relaxed);
  }

  /// Virtual time elapsed, in cost-model units.
  double clock() const { return clock_.load(std::memory_order_relaxed); }

  /// REQUIRES: no concurrent recording (benchmark setup only).
  void set_cost_model(const IoCostModel& m) { model_ = m; }
  IoCostModel cost_model() const { return model_; }

  void Reset() {
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    read_requests_.store(0, std::memory_order_relaxed);
    write_requests_.store(0, std::memory_order_relaxed);
    clock_.store(0, std::memory_order_relaxed);
    // Storage footprint intentionally survives Reset(): files persist across
    // measurement phases; call ResetPeak() to re-arm peak tracking.
  }
  void ResetPeak() {
    peak_storage_bytes_.store(storage_bytes_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  }

 private:
  static double WholePages(uint64_t bytes) {
    return static_cast<double>((bytes + IoCostModel::kPageSize - 1) /
                               IoCostModel::kPageSize);
  }

  void AdvanceClock(double units) {
    double current = clock_.load(std::memory_order_relaxed);
    while (!clock_.compare_exchange_weak(current, current + units,
                                         std::memory_order_relaxed)) {
    }
  }

  IoCostModel model_;
  std::atomic<int> sequential_depth_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_requests_{0};
  std::atomic<uint64_t> write_requests_{0};
  std::atomic<uint64_t> storage_bytes_{0};
  std::atomic<uint64_t> peak_storage_bytes_{0};
  std::atomic<double> clock_{0};
};

}  // namespace talus

#endif  // TALUS_ENV_IO_STATS_H_
