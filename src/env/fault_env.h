// FaultInjectionEnv: wraps another Env and injects failures — used by the
// crash-consistency tests to verify that the WAL + manifest protocol never
// loses acknowledged writes.
//
// Two mechanisms:
//  * write failure arming: after `fail_after_writes` more write operations
//    (appends, renames, removals), every mutating call returns IOError;
//  * crash simulation: DropUnsyncedWrites() discards the suffix of every
//    file that was appended since its last Sync() — the on-disk state a
//    real machine could be left with after power loss.
#ifndef TALUS_ENV_FAULT_ENV_H_
#define TALUS_ENV_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "env/env.h"

namespace talus {

class FaultInjectionEnv : public Env {
 public:
  /// Does not own `base`; base must outlive this env.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // ---- Fault controls ----
  /// Arms a failure: the n-th mutating call from now on (0 = the next one)
  /// and everything after it fails with IOError until Disarm().
  void FailAfterWrites(uint64_t n) {
    std::lock_guard<std::mutex> l(mu_);
    armed_ = true;
    writes_remaining_ = n;
  }
  void Disarm() {
    std::lock_guard<std::mutex> l(mu_);
    armed_ = false;
    failing_ = false;
  }
  bool failing() const {
    std::lock_guard<std::mutex> l(mu_);
    return failing_;
  }
  /// Crash simulation: truncates every file back to its last-synced length
  /// and forgets un-synced creations.
  void DropUnsyncedWrites();

  // ---- Env interface (delegates, with fault hooks) ----
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  IoStats* io_stats() override { return base_->io_stats(); }
  uint64_t TotalFileBytes(const std::string& dir) override {
    return base_->TotalFileBytes(dir);
  }

 private:
  friend class FaultWritableFile;

  /// Returns true if this mutating operation must fail.
  bool ShouldFail();
  void NoteSynced(const std::string& fname);
  void NoteAppend(const std::string& fname, uint64_t new_size);
  void NoteCreated(const std::string& fname);

  Env* base_;
  mutable std::mutex mu_;
  bool armed_ = false;
  bool failing_ = false;
  uint64_t writes_remaining_ = 0;
  // Last synced size per file created through this env. Files absent from
  // the map are dropped entirely by DropUnsyncedWrites().
  std::map<std::string, uint64_t> synced_size_;
  std::map<std::string, uint64_t> current_size_;
};

}  // namespace talus

#endif  // TALUS_ENV_FAULT_ENV_H_
