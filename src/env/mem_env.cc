// In-memory Env with deterministic, byte-exact I/O accounting. This is the
// substrate for all benchmark experiments (see DESIGN.md §4).
#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "env/env.h"

namespace talus {

namespace {

// Contents are guarded by a per-file mutex: background flush/compaction jobs
// append SSTs while foreground threads stat or scan the namespace. Readers
// hand out Slices into `contents`, which stays safe because the engine never
// appends to a file after opening it for reading (SSTs are immutable once
// built; the WAL is only replayed after the writer is closed).
struct FileState {
  mutable std::mutex mu;
  std::string contents;

  void Append(const Slice& data) {
    std::lock_guard<std::mutex> l(mu);
    contents.append(data.data(), data.size());
  }
  uint64_t Size() const {
    std::lock_guard<std::mutex> l(mu);
    return contents.size();
  }
};

using FileMap = std::map<std::string, std::shared_ptr<FileState>>;

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<FileState> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Append(const Slice& data) override {
    file_->Append(data);
    stats_->RecordWrite(data.size());
    stats_->RecordStorageGrowth(data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<FileState> file_;
  IoStats* stats_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<FileState> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    std::lock_guard<std::mutex> l(file_->mu);
    const std::string& c = file_->contents;
    if (offset > c.size()) {
      return Status::IOError("read past end of file");
    }
    size_t avail = std::min(n, c.size() - static_cast<size_t>(offset));
    *result = Slice(c.data() + offset, avail);
    stats_->RecordRead(avail);
    return Status::OK();
  }
  uint64_t Size() const override { return file_->Size(); }

 private:
  std::shared_ptr<FileState> file_;
  IoStats* stats_;
};

class MemSequentialFile final : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<FileState> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    std::lock_guard<std::mutex> l(file_->mu);
    const std::string& c = file_->contents;
    if (pos_ >= c.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = std::min(n, c.size() - pos_);
    *result = Slice(c.data() + pos_, avail);
    pos_ += avail;
    stats_->RecordRead(avail);
    return Status::OK();
  }
  Status Skip(uint64_t n) override {
    pos_ = std::min(static_cast<size_t>(file_->Size()),
                    pos_ + static_cast<size_t>(n));
    return Status::OK();
  }

 private:
  std::shared_ptr<FileState> file_;
  IoStats* stats_;
  size_t pos_ = 0;
};

class MemEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::lock_guard<std::mutex> l(mu_);
    auto file = std::make_shared<FileState>();
    files_[fname] = file;
    *result = std::make_unique<MemWritableFile>(std::move(file), &stats_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::IOError(fname, "not found");
    *result = std::make_unique<MemRandomAccessFile>(it->second, &stats_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::IOError(fname, "not found");
    *result = std::make_unique<MemSequentialFile>(it->second, &stats_);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::lock_guard<std::mutex> l(mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    std::lock_guard<std::mutex> l(mu_);
    result->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (const auto& [name, file] : files_) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) result->push_back(rest);
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::IOError(fname, "not found");
    stats_.RecordStorageShrink(it->second->Size());
    files_.erase(it);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    return Status::OK();  // Directories are implicit in the flat namespace.
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::IOError(fname, "not found");
    *size = it->second->Size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(src);
    if (it == files_.end()) return Status::IOError(src, "not found");
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  IoStats* io_stats() override { return &stats_; }

  uint64_t TotalFileBytes(const std::string& dir) override {
    std::lock_guard<std::mutex> l(mu_);
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    uint64_t total = 0;
    for (const auto& [name, file] : files_) {
      if (name.compare(0, prefix.size(), prefix) == 0) {
        total += file->Size();
      }
    }
    return total;
  }

 private:
  std::mutex mu_;
  FileMap files_;
  IoStats stats_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace talus
