#include "filter/bloom.h"

#include <algorithm>
#include <cmath>

#include "table/sst_format.h"
#include "util/random.h"

namespace talus {

namespace {

uint32_t BloomHash(const Slice& key) {
  return Hash32(key.data(), key.size(), 0xbc9f1d34);
}

int OptimalProbes(double bits_per_key) {
  // Optimal probe count ~= bits_per_key * ln(2); clamp to a sane range.
  int n = static_cast<int>(bits_per_key * 0.69);
  if (n < 1) n = 1;
  if (n > 30) n = 30;
  return n;
}

constexpr uint32_t kGoldenRatio32 = 0x9e3779b9u;

// Legacy probe loop, shared by reader and (structurally) the builder.
bool LegacyKeyMayMatch(const char* array, size_t len, const Slice& key) {
  const size_t bits = (len - 1) * 8;
  const int k = static_cast<unsigned char>(array[len - 1]);
  if (k > 30) return true;  // Reserved encoding: treat as maybe-present.

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

// Blocked probe loop. Layout: [num_blocks x 64B][num_probes:1][tag:1].
// Block selection is multiply-shift (fastrange: h * n >> 32, no modulo);
// in-block bit positions come from successive golden-ratio remixes of the
// hash, reading the top 9 bits (0..511) each round. All probes land in one
// 64-byte line.
bool BlockedKeyMayMatch(const char* data, size_t len, const Slice& key) {
  if (len < 2 + kBloomBlockBytes) return true;
  const size_t blocks_len = len - 2;
  if (blocks_len % kBloomBlockBytes != 0) return true;  // Malformed: maybe.
  const int k = static_cast<unsigned char>(data[len - 2]);
  if (k < 1 || k > 30) return true;
  const uint32_t num_blocks =
      static_cast<uint32_t>(blocks_len / kBloomBlockBytes);

  const uint32_t h = BloomHash(key);
  const uint32_t block =
      static_cast<uint32_t>((static_cast<uint64_t>(h) * num_blocks) >> 32);
  const char* line = data + static_cast<size_t>(block) * kBloomBlockBytes;
  uint32_t g = h * kGoldenRatio32;
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = g >> 23;  // Top 9 bits: 0..511 within the line.
    if ((line[bitpos >> 3] & (1 << (bitpos & 7))) == 0) return false;
    g *= kGoldenRatio32;
  }
  return true;
}

}  // namespace

BloomFilterBuilder::BloomFilterBuilder(double bits_per_key)
    : bits_per_key_(std::max(0.0, bits_per_key)),
      num_probes_(OptimalProbes(bits_per_key_)) {}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = static_cast<size_t>(
      static_cast<double>(hashes_.size()) * bits_per_key_);
  // Tiny filters have high FPR regardless; keep a floor to bound waste.
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  result.push_back(static_cast<char>(num_probes_));
  char* array = result.data();
  for (uint32_t h : hashes_) {
    // Double hashing: derive k probe positions from one 32-bit hash.
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < num_probes_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
  hashes_.clear();  // One filter per Finish; the builder is reusable.
  return result;
}

BlockedBloomFilterBuilder::BlockedBloomFilterBuilder(double bits_per_key)
    : bits_per_key_(std::max(0.0, bits_per_key)),
      num_probes_(OptimalProbes(bits_per_key_)) {}

void BlockedBloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BlockedBloomFilterBuilder::Finish() {
  const double bits =
      static_cast<double>(hashes_.size()) * std::max(1.0, bits_per_key_);
  size_t num_blocks =
      static_cast<size_t>(bits + kBloomBlockBytes * 8 - 1) /
      (kBloomBlockBytes * 8);
  if (num_blocks < 1) num_blocks = 1;

  std::string result(num_blocks * kBloomBlockBytes, '\0');
  char* array = result.data();
  for (const uint32_t h : hashes_) {
    const uint32_t block = static_cast<uint32_t>(
        (static_cast<uint64_t>(h) * num_blocks) >> 32);
    char* line = array + static_cast<size_t>(block) * kBloomBlockBytes;
    uint32_t g = h * kGoldenRatio32;
    for (int j = 0; j < num_probes_; j++) {
      const uint32_t bitpos = g >> 23;
      line[bitpos >> 3] |= (1 << (bitpos & 7));
      g *= kGoldenRatio32;
    }
  }
  result.push_back(static_cast<char>(num_probes_));
  result.push_back(static_cast<char>(kBlockedBloomTag));
  hashes_.clear();
  return result;
}

std::unique_ptr<FilterBlockBuilder> NewFilterBuilder(FilterVariant variant,
                                                     double bits_per_key) {
  switch (variant) {
    case FilterVariant::kBlocked:
      return std::make_unique<BlockedBloomFilterBuilder>(bits_per_key);
    case FilterVariant::kLegacy:
      break;
  }
  return std::make_unique<BloomFilterBuilder>(bits_per_key);
}

bool BloomFilterReader::KeyMayMatch(const Slice& key) const {
  const size_t len = data_.size();
  if (len < 2) return true;  // Degenerate filter: claim maybe-present.
  const char* data = data_.data();
  if (static_cast<unsigned char>(data[len - 1]) == kBlockedBloomTag) {
    return BlockedKeyMayMatch(data, len, key);
  }
  return LegacyKeyMayMatch(data, len, key);
}

double BloomFalsePositiveRate(double bits_per_key) {
  if (bits_per_key <= 0) return 1.0;
  static const double kLn2Sq = 0.4804530139182014;  // ln(2)^2
  return std::exp(-bits_per_key * kLn2Sq);
}

}  // namespace talus
