#include "filter/bloom.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace talus {

namespace {
uint32_t BloomHash(const Slice& key) {
  return Hash32(key.data(), key.size(), 0xbc9f1d34);
}
}  // namespace

BloomFilterBuilder::BloomFilterBuilder(double bits_per_key)
    : bits_per_key_(std::max(0.0, bits_per_key)) {
  // Optimal probe count ~= bits_per_key * ln(2); clamp to a sane range.
  num_probes_ = static_cast<int>(bits_per_key_ * 0.69);
  if (num_probes_ < 1) num_probes_ = 1;
  if (num_probes_ > 30) num_probes_ = 30;
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = static_cast<size_t>(
      static_cast<double>(hashes_.size()) * bits_per_key_);
  // Tiny filters have high FPR regardless; keep a floor to bound waste.
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  result.push_back(static_cast<char>(num_probes_));
  char* array = result.data();
  for (uint32_t h : hashes_) {
    // Double hashing: derive k probe positions from one 32-bit hash.
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < num_probes_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
  return result;
}

bool BloomFilterReader::KeyMayMatch(const Slice& key) const {
  const size_t len = data_.size();
  if (len < 2) return true;  // Degenerate filter: claim maybe-present.
  const char* array = data_.data();
  const size_t bits = (len - 1) * 8;
  const int k = static_cast<unsigned char>(array[len - 1]);
  if (k > 30) return true;  // Reserved encoding: treat as maybe-present.

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

double BloomFalsePositiveRate(double bits_per_key) {
  if (bits_per_key <= 0) return 1.0;
  static const double kLn2Sq = 0.4804530139182014;  // ln(2)^2
  return std::exp(-bits_per_key * kLn2Sq);
}

}  // namespace talus
