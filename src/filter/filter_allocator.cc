#include "filter/filter_allocator.h"

#include <algorithm>
#include <cmath>

namespace talus {

namespace {

constexpr double kLn2Sq = 0.4804530139182014;  // ln(2)^2
constexpr double kMaxBitsPerKey = 64.0;

// Lagrangian solution of: minimize Σ p_i  s.t.  Σ n_i·(-ln p_i)/ln²2 = M,
// 0 < p_i ≤ 1. Unconstrained optimum is p_i = λ·n_i; levels whose optimum
// exceeds p=1 (i.e. deserve zero bits) are dropped and the remaining memory
// re-optimized (waterfilling).
std::vector<double> OptimizeBits(const std::vector<double>& n,
                                 double total_bits) {
  const size_t L = n.size();
  std::vector<double> bits(L, 0.0);
  std::vector<bool> active(L, false);
  double total_entries = 0;
  for (size_t i = 0; i < L; i++) {
    if (n[i] > 0) {
      active[i] = true;
      total_entries += n[i];
    }
  }
  if (total_entries <= 0 || total_bits <= 0) return bits;

  // Waterfilling: repeatedly solve for λ over active levels; deactivate
  // levels that would get negative bits.
  for (int iter = 0; iter < static_cast<int>(L) + 1; iter++) {
    double sum_n = 0, sum_n_ln_n = 0;
    for (size_t i = 0; i < L; i++) {
      if (!active[i]) continue;
      sum_n += n[i];
      sum_n_ln_n += n[i] * std::log(n[i]);
    }
    if (sum_n <= 0) break;
    // Memory constraint in nat units: Σ n_i·(-ln p_i) = total_bits·ln²2.
    const double m_nats = total_bits * kLn2Sq;
    const double ln_lambda = -(m_nats + sum_n_ln_n) / sum_n;
    bool changed = false;
    for (size_t i = 0; i < L; i++) {
      if (!active[i]) {
        bits[i] = 0;
        continue;
      }
      const double ln_p = ln_lambda + std::log(n[i]);
      if (ln_p >= 0) {
        // p_i ≥ 1: this level deserves no filter; release its memory.
        active[i] = false;
        changed = true;
      } else {
        bits[i] = std::min(kMaxBitsPerKey, -ln_p / kLn2Sq);
      }
    }
    if (!changed) break;
  }
  return bits;
}

class StaticAllocator final : public FilterAllocator {
 public:
  explicit StaticAllocator(double bpk) : bpk_(bpk) {}
  double BitsForLevel(const std::vector<LevelFilterInfo>&, int) const override {
    return bpk_;
  }
  FilterLayout layout() const override { return FilterLayout::kStatic; }

 private:
  double bpk_;
};

class MonkeyAllocator final : public FilterAllocator {
 public:
  explicit MonkeyAllocator(double bpk) : bpk_(bpk) {}

  double BitsForLevel(const std::vector<LevelFilterInfo>& levels,
                      int level) const override {
    std::vector<double> n;
    double total = 0;
    for (const auto& l : levels) {
      double entries = static_cast<double>(
          l.capacity_entries > 0 ? l.capacity_entries : l.current_entries);
      n.push_back(entries);
      total += entries;
    }
    if (level < 0 || level >= static_cast<int>(n.size()) || total <= 0) {
      return bpk_;
    }
    std::vector<double> bits = OptimizeBits(n, bpk_ * total);
    return bits[level];
  }
  FilterLayout layout() const override { return FilterLayout::kMonkey; }

 private:
  double bpk_;
};

class DynamicAllocator final : public FilterAllocator {
 public:
  explicit DynamicAllocator(double bpk) : bpk_(bpk) {}

  double BitsForLevel(const std::vector<LevelFilterInfo>& levels,
                      int level) const override {
    std::vector<double> n;
    double total = 0;
    for (const auto& l : levels) {
      double base = static_cast<double>(
          l.capacity_entries > 0 ? l.capacity_entries : l.current_entries);
      double fill = l.expected_fill > 0 ? l.expected_fill : 1.0;
      double entries = std::max(static_cast<double>(l.current_entries),
                                base * fill);
      n.push_back(entries);
      // The budget is still capacity-based: that is the memory the operator
      // provisioned; the dynamic layout just spends it against the expected
      // occupancy rather than the worst case.
      total += base;
    }
    if (level < 0 || level >= static_cast<int>(n.size()) || total <= 0) {
      return bpk_;
    }
    std::vector<double> bits = OptimizeBits(n, bpk_ * total);
    return bits[level];
  }
  FilterLayout layout() const override { return FilterLayout::kDynamic; }

 private:
  double bpk_;
};

}  // namespace

std::unique_ptr<FilterAllocator> NewStaticFilterAllocator(double bits_per_key) {
  return std::make_unique<StaticAllocator>(bits_per_key);
}
std::unique_ptr<FilterAllocator> NewMonkeyFilterAllocator(double bits_per_key) {
  return std::make_unique<MonkeyAllocator>(bits_per_key);
}
std::unique_ptr<FilterAllocator> NewDynamicFilterAllocator(
    double bits_per_key) {
  return std::make_unique<DynamicAllocator>(bits_per_key);
}

std::unique_ptr<FilterAllocator> NewFilterAllocator(FilterLayout layout,
                                                    double bits_per_key) {
  switch (layout) {
    case FilterLayout::kStatic: return NewStaticFilterAllocator(bits_per_key);
    case FilterLayout::kMonkey: return NewMonkeyFilterAllocator(bits_per_key);
    case FilterLayout::kDynamic:
      return NewDynamicFilterAllocator(bits_per_key);
  }
  return NewStaticFilterAllocator(bits_per_key);
}

}  // namespace talus
