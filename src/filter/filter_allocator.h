// FilterAllocator: decides bits-per-key for the Bloom filter of a sorted run
// being built at a given level.
//
// Three layouts are implemented:
//  * Static  — uniform bits-per-key everywhere (RocksDB default behaviour).
//  * Monkey  — Dayan et al. (SIGMOD'17): minimize the sum of per-level false
//    positive rates subject to a total memory budget, assuming each level
//    holds its full capacity. Optimal FPR is proportional to level size.
//  * Dynamic — this paper (§5.4): like Monkey, but sized from the *expected
//    average occupancy* of each level over the lifetime of the run being
//    built, because full compactions repeatedly empty levels and the
//    always-full assumption misallocates bits. Reallocation happens only
//    when a run is (re)built, so no extra I/O is ever spent on it.
#ifndef TALUS_FILTER_FILTER_ALLOCATOR_H_
#define TALUS_FILTER_FILTER_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace talus {

enum class FilterLayout {
  kStatic,
  kMonkey,
  kDynamic,
};

/// Per-level inputs to an allocation decision.
struct LevelFilterInfo {
  uint64_t capacity_entries = 0;  // Level capacity, in entries.
  uint64_t current_entries = 0;   // Entries resident right now.
  // Expected occupancy fraction of this level averaged over the lifetime of
  // runs built now. Levels filled by full compaction oscillate between empty
  // and full: 0.5 is the natural prior; the vertical part of Vertiorizon
  // stays ~full: 1.0.
  double expected_fill = 1.0;
};

class FilterAllocator {
 public:
  virtual ~FilterAllocator() = default;

  /// Returns bits-per-key for a run being built at `level`, given the current
  /// shape of the tree. `levels` is indexed from 0 (smallest on-disk level).
  virtual double BitsForLevel(const std::vector<LevelFilterInfo>& levels,
                              int level) const = 0;

  virtual FilterLayout layout() const = 0;
};

/// Uniform allocation: every run gets `bits_per_key`.
std::unique_ptr<FilterAllocator> NewStaticFilterAllocator(double bits_per_key);

/// Monkey allocation against a memory budget of `bits_per_key` × total
/// capacity. Sizes levels by capacity_entries.
std::unique_ptr<FilterAllocator> NewMonkeyFilterAllocator(double bits_per_key);

/// The paper's dynamic layout: Monkey-style optimization over effective entry
/// counts capacity × expected_fill, falling back to current_entries when a
/// level has no declared capacity (horizontal levels grow unboundedly).
std::unique_ptr<FilterAllocator> NewDynamicFilterAllocator(double bits_per_key);

std::unique_ptr<FilterAllocator> NewFilterAllocator(FilterLayout layout,
                                                    double bits_per_key);

}  // namespace talus

#endif  // TALUS_FILTER_FILTER_ALLOCATOR_H_
