// Bloom filters over user keys, one per sorted run. Two wire formats:
//
//  - kLegacy: LevelDB-style double hashing over one flat bit array
//    ([bit array][num_probes:1]). Every probe touches a random cache line
//    and costs an integer modulo.
//  - kBlocked: RocksDB-full-filter-style cache-line-blocked bloom. Each key
//    hashes to ONE 64-byte block (multiply-shift, no modulo) and all probes
//    stay inside that line, so a lookup costs a single cache miss.
//
// Readers dispatch on the encoding byte (see sst_format.h), so SSTs written
// with either variant stay readable. Bits-per-key is chosen by a
// FilterAllocator (static uniform, Monkey, or the paper's dynamic layout —
// see filter_allocator.h).
#ifndef TALUS_FILTER_BLOOM_H_
#define TALUS_FILTER_BLOOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"

namespace talus {

/// Which filter wire format SST builders emit. Readers auto-detect, so this
/// only affects newly written files.
enum class FilterVariant : uint8_t {
  kLegacy = 0,   // Flat bit array, double hashing (seed format).
  kBlocked = 1,  // Cache-line-blocked, one 64B block per key.
};

/// Builder interface shared by both variants. Finish() serializes the
/// filter AND resets the builder, so one builder can produce a sequence of
/// independent filters (one per SST).
class FilterBlockBuilder {
 public:
  virtual ~FilterBlockBuilder() = default;
  virtual void AddKey(const Slice& key) = 0;
  virtual std::string Finish() = 0;
  virtual size_t NumKeys() const = 0;
};

class BloomFilterBuilder : public FilterBlockBuilder {
 public:
  /// bits_per_key may be fractional (Monkey allocations often are).
  explicit BloomFilterBuilder(double bits_per_key);

  void AddKey(const Slice& key) override;

  /// Serializes the filter: bit array | num_probes (1 byte). Clears the
  /// accumulated key set so the builder can be reused for the next filter.
  std::string Finish() override;

  size_t NumKeys() const override { return hashes_.size(); }

 private:
  double bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> hashes_;
};

class BlockedBloomFilterBuilder : public FilterBlockBuilder {
 public:
  explicit BlockedBloomFilterBuilder(double bits_per_key);

  void AddKey(const Slice& key) override;

  /// Serializes the filter: num_blocks x 64B blocks | num_probes (1 byte) |
  /// tag (1 byte, kBlockedBloomTag). Clears the accumulated key set.
  std::string Finish() override;

  size_t NumKeys() const override { return hashes_.size(); }

 private:
  double bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> hashes_;
};

/// Builder for the given variant.
std::unique_ptr<FilterBlockBuilder> NewFilterBuilder(FilterVariant variant,
                                                     double bits_per_key);

class BloomFilterReader {
 public:
  /// `data` must outlive the reader (it typically points into a cached
  /// filter block). The encoding (legacy vs blocked) is detected from the
  /// trailing byte per probe, so a reader handles SSTs of either variant.
  explicit BloomFilterReader(Slice data) : data_(data) {}

  /// True if the key may be present; false means definitely absent.
  bool KeyMayMatch(const Slice& key) const;

 private:
  Slice data_;
};

/// Theoretical false positive rate for a Bloom filter with the given
/// bits-per-key under optimal probe count: exp(-bits * ln(2)^2).
double BloomFalsePositiveRate(double bits_per_key);

}  // namespace talus

#endif  // TALUS_FILTER_BLOOM_H_
