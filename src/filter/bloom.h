// Bloom filter over user keys, one per sorted run (LevelDB-style double
// hashing). Bits-per-key is chosen by a FilterAllocator (static uniform,
// Monkey, or the paper's dynamic layout — see filter_allocator.h).
#ifndef TALUS_FILTER_BLOOM_H_
#define TALUS_FILTER_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace talus {

class BloomFilterBuilder {
 public:
  /// bits_per_key may be fractional (Monkey allocations often are).
  explicit BloomFilterBuilder(double bits_per_key);

  void AddKey(const Slice& key);

  /// Serializes the filter: bit array | num_probes (1 byte).
  std::string Finish();

  size_t NumKeys() const { return hashes_.size(); }

 private:
  double bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> hashes_;
};

class BloomFilterReader {
 public:
  /// `data` must outlive the reader (it typically points into a cached
  /// filter block).
  explicit BloomFilterReader(Slice data) : data_(data) {}

  /// True if the key may be present; false means definitely absent.
  bool KeyMayMatch(const Slice& key) const;

 private:
  Slice data_;
};

/// Theoretical false positive rate for a Bloom filter with the given
/// bits-per-key under optimal probe count: exp(-bits * ln(2)^2).
double BloomFalsePositiveRate(double bits_per_key);

}  // namespace talus

#endif  // TALUS_FILTER_BLOOM_H_
