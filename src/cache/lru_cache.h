// LRU block cache with byte-charge accounting. Entries are shared_ptr-held so
// a block can be evicted while readers still hold it. Fully thread-safe: the
// table is mutex-guarded and the hit/miss/eviction counters are atomics, so
// they can be read at any time without the mutex (lock-free read path,
// DESIGN.md §2.7).
#ifndef TALUS_CACHE_LRU_CACHE_H_
#define TALUS_CACHE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace talus {

class LruCache {
 public:
  /// capacity == 0 disables caching entirely.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}
  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts `value` under `key`, charging `charge` bytes. Replaces any
  /// existing entry. No-op when the cache is disabled.
  void Insert(const std::string& key, std::shared_ptr<void> value,
              size_t charge);

  /// Returns the cached value or nullptr; promotes on hit.
  std::shared_ptr<void> Lookup(const std::string& key);

  void Erase(const std::string& key);

  /// Drops every entry whose key starts with `prefix` (e.g. all blocks of a
  /// deleted file). Compactions call this so stale blocks do not linger.
  void EraseByPrefix(const std::string& prefix);

  size_t usage() const {
    std::lock_guard<std::mutex> l(mu_);
    return usage_;
  }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Entries dropped by capacity pressure (not explicit Erase calls).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<void> value;
    size_t charge;
  };
  using LruList = std::list<Entry>;

  void EvictIfNeeded();  // REQUIRES: mu_ held.

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  size_t usage_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace talus

#endif  // TALUS_CACHE_LRU_CACHE_H_
