#include "cache/lru_cache.h"

namespace talus {

void LruCache::Insert(const std::string& key, std::shared_ptr<void> value,
                      size_t charge) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> l(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    usage_ -= it->second->charge;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(value), charge});
  index_[key] = lru_.begin();
  usage_ += charge;
  EvictIfNeeded();
}

std::shared_ptr<void> LruCache::Lookup(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> l(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::Erase(const std::string& key) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> l(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  usage_ -= it->second->charge;
  lru_.erase(it->second);
  index_.erase(it);
}

void LruCache::EraseByPrefix(const std::string& prefix) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> l(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      usage_ -= it->charge;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void LruCache::EvictIfNeeded() {
  while (usage_ > capacity_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    usage_ -= victim.charge;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace talus
