// ReadView: everything a read needs, captured in one O(1) critical section
// (DESIGN.md §2.7). A view pins
//   * one reference on the Version current at capture time (keeps the tree
//     shape and, transitively, every SST file it names alive),
//   * shared ownership of the active and immutable memtables,
//   * the visibility sequence for the read.
// After the pin, Get/Scan/iterators run entirely without the DB mutex;
// background flushes and compactions install successor versions and the
// deferred-GC machinery deletes obsolete files only once no view references
// them. Views are handed out by DB::AcquireReadView() as shared_ptrs whose
// deleter returns the references to the DB.
#ifndef TALUS_READ_READ_VIEW_H_
#define TALUS_READ_READ_VIEW_H_

#include <memory>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/version.h"
#include "mem/memtable.h"

namespace talus {
namespace read {

struct ReadView {
  /// Version current at capture time. One Version reference is held for the
  /// view's lifetime; the DB's release path unrefs it.
  const Version* version = nullptr;
  /// Active memtable at capture time (may keep receiving newer entries;
  /// `sequence` bounds what this view observes).
  std::shared_ptr<MemTable> mem;
  /// Immutable memtables, newest first — the probe order for lookups.
  std::vector<std::shared_ptr<MemTable>> imm;
  /// Visibility bound: entries with a larger sequence are invisible.
  SequenceNumber sequence = 0;
};

}  // namespace read
}  // namespace talus

#endif  // TALUS_READ_READ_VIEW_H_
