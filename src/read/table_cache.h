// TableCache: capacity-bounded, internally sharded cache of open SstReaders
// keyed by file number (DESIGN.md §2.7). Replaces the DB's unbounded,
// DB-mutex-guarded readers_ map so point lookups and scans open and probe
// SST files without the engine lock.
//
// Handles are shared_ptr pins: a reader held by an in-flight Get or a live
// iterator survives both capacity eviction and Evict() on file deletion —
// eviction only drops the cache's own reference. Opens happen outside the
// shard lock; when two threads race to open the same file, the loser's
// reader is discarded and the winner's is shared.
#ifndef TALUS_READ_TABLE_CACHE_H_
#define TALUS_READ_TABLE_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "env/env.h"
#include "table/sst_reader.h"

namespace talus {
namespace read {

class TableCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t opens = 0;      // Files actually opened (≤ misses under races).
    uint64_t evictions = 0;  // Cache references dropped by capacity pressure.
    size_t open_readers = 0;  // Gauge: readers currently cached.
    size_t capacity = 0;
  };

  /// `capacity` bounds the number of cached open readers. The bound is
  /// enforced per shard (ceil(capacity / shards), at least one each), so
  /// under skewed file-number distribution the total may briefly sit below
  /// `capacity`; Stats::capacity always reports the configured value.
  /// `block_cache` may be nullptr.
  TableCache(Env* env, std::string dbpath, LruCache* block_cache,
             size_t capacity);
  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  /// Returns a pinned reader for `file_number`, opening the file on miss.
  /// nullptr on failure (*status set when provided).
  std::shared_ptr<SstReader> GetReader(uint64_t file_number,
                                       Status* status = nullptr);

  /// Drops the cached reader (in-flight pins stay valid) and scrubs the
  /// file's blocks from the block cache. Called when a file is deleted.
  void Evict(uint64_t file_number);

  Stats GetStats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used file number.
    std::list<uint64_t> lru;
    struct Entry {
      std::shared_ptr<SstReader> reader;
      std::list<uint64_t>::iterator lru_pos;
    };
    std::unordered_map<uint64_t, Entry> map;
  };

  static constexpr size_t kNumShards = 8;

  Shard& ShardFor(uint64_t file_number) {
    return shards_[file_number % kNumShards];
  }

  Env* const env_;
  const std::string dbpath_;
  LruCache* const block_cache_;
  const size_t capacity_;  // As configured; reported in Stats.
  const size_t per_shard_capacity_;
  std::array<Shard, kNumShards> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> opens_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace read
}  // namespace talus

#endif  // TALUS_READ_TABLE_CACHE_H_
