#include "read/table_cache.h"

#include <algorithm>

#include "lsm/filename.h"
#include "util/coding.h"

namespace talus {
namespace read {

TableCache::TableCache(Env* env, std::string dbpath, LruCache* block_cache,
                       size_t capacity)
    : env_(env),
      dbpath_(std::move(dbpath)),
      block_cache_(block_cache),
      capacity_(capacity),
      per_shard_capacity_(
          std::max<size_t>(1, (capacity + kNumShards - 1) / kNumShards)) {}

std::shared_ptr<SstReader> TableCache::GetReader(uint64_t file_number,
                                                 Status* status) {
  Shard& shard = ShardFor(file_number);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(file_number);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.reader;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Open outside the shard lock so a cold file's I/O never blocks hits on
  // other files in the same shard.
  std::unique_ptr<SstReader> opened;
  Status s = SstReader::Open(env_, SstFileName(dbpath_, file_number),
                             file_number, block_cache_, &opened);
  if (!s.ok()) {
    if (status != nullptr) *status = s;
    return nullptr;
  }
  opens_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<SstReader> reader(std::move(opened));

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(file_number);
  if (it != shard.map.end()) {
    return it->second.reader;  // Lost an open race; share the winner's.
  }
  shard.lru.push_front(file_number);
  shard.map[file_number] = Shard::Entry{reader, shard.lru.begin()};
  while (shard.map.size() > per_shard_capacity_) {
    const uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return reader;
}

void TableCache::Evict(uint64_t file_number) {
  Shard& shard = ShardFor(file_number);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(file_number);
    if (it != shard.map.end()) {
      shard.lru.erase(it->second.lru_pos);
      shard.map.erase(it);
    }
  }
  if (block_cache_ != nullptr) {
    // Block-cache keys are namespaced by file number; scrub the deleted
    // file's blocks so they stop charging the cache.
    std::string prefix;
    PutFixed64(&prefix, file_number);
    block_cache_->EraseByPrefix(prefix);
  }
}

TableCache::Stats TableCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.opens = opens_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.open_readers += shard.map.size();
  }
  return stats;
}

}  // namespace read
}  // namespace talus
