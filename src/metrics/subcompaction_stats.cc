#include "metrics/subcompaction_stats.h"

#include <cstdio>

namespace talus {
namespace metrics {

std::string SubcompactionStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "subcompactions{scheduled=%llu completed=%llu active=%zu "
      "compactions=%llu flush_merges=%llu fanout_avg=%.2f fanout_p50=%.1f "
      "fanout_max=%.0f}",
      static_cast<unsigned long long>(scheduled),
      static_cast<unsigned long long>(completed), active,
      static_cast<unsigned long long>(compactions),
      static_cast<unsigned long long>(flush_merges), fanout_avg, fanout_p50,
      fanout_max);
  return buf;
}

}  // namespace metrics
}  // namespace talus
