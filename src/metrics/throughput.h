// ThroughputMeter: average and worst-case throughput over the virtual clock.
// The paper's worst-case metric is the lowest throughput observed in any
// sliding window of the most recent `window_ops` operations — compaction
// stalls surface here.
#ifndef TALUS_METRICS_THROUGHPUT_H_
#define TALUS_METRICS_THROUGHPUT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace talus {
namespace metrics {

class ThroughputMeter {
 public:
  explicit ThroughputMeter(size_t window_ops = 10000)
      : window_ops_(window_ops) {}

  /// Records that one operation completed at virtual time `clock`.
  void RecordOp(double clock) { completions_.push_back(clock); }

  uint64_t ops() const { return completions_.size(); }

  /// Ops per clock unit over the whole run.
  double AverageThroughput() const;

  /// Minimum windowed throughput: min over i of
  ///   window_ops / (t[i + window] − t[i]).
  double WorstCaseThroughput() const;

  void Reset() { completions_.clear(); }

 private:
  size_t window_ops_;
  std::vector<double> completions_;
};

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_THROUGHPUT_H_
