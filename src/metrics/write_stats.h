// GroupCommitStats: point-in-time snapshot of the write pipeline's batching
// behavior, reported through DB::GetProperty("talus.stats") and
// DB::GetGroupCommitStats(), and consumed by bench/ablation_group_commit.
// Produced by metrics::GroupCommitTracker, which the DB updates under its
// mutex at group-publish time (DESIGN.md §2.9).
#ifndef TALUS_METRICS_WRITE_STATS_H_
#define TALUS_METRICS_WRITE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/histogram.h"

namespace talus {
namespace metrics {

struct GroupCommitStats {
  /// Commit groups published (each is one WAL record + one publish).
  uint64_t group_commits = 0;
  /// Writer batches committed across all groups (excludes per-writer
  /// failures such as malformed batches).
  uint64_t batches_committed = 0;
  /// Follower batches inserted by their own thread
  /// (DbOptions::parallel_memtable_writes).
  uint64_t parallel_applies = 0;
  /// WAL fsyncs issued by the write path (wal_sync_mode accounting; one
  /// sync covers every batch in its group).
  uint64_t wal_syncs = 0;
  /// Total microseconds writers spent queued before their group formed.
  uint64_t write_queue_wait_micros = 0;
  /// Batches-per-group distribution: mean / p50 / max.
  double group_size_avg = 0;
  double group_size_p50 = 0;
  double group_size_max = 0;

  std::string ToString() const;
};

/// Accumulator behind GroupCommitStats. Not internally synchronized: the DB
/// calls OnGroupCommitted and Snapshot under its mutex.
class GroupCommitTracker {
 public:
  void OnGroupCommitted(size_t group_size, uint64_t committed_batches,
                        uint64_t queue_wait_micros, bool wal_synced,
                        size_t parallel_applies);
  GroupCommitStats Snapshot() const;

 private:
  uint64_t group_commits_ = 0;
  uint64_t batches_committed_ = 0;
  uint64_t parallel_applies_ = 0;
  uint64_t wal_syncs_ = 0;
  uint64_t write_queue_wait_micros_ = 0;
  Histogram group_sizes_;
};

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_WRITE_STATS_H_
