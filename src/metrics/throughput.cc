#include "metrics/throughput.h"

#include <algorithm>

namespace talus {
namespace metrics {

double ThroughputMeter::AverageThroughput() const {
  if (completions_.size() < 2) return 0;
  const double span = completions_.back() - completions_.front();
  if (span <= 0) return 0;
  return static_cast<double>(completions_.size() - 1) / span;
}

double ThroughputMeter::WorstCaseThroughput() const {
  const size_t n = completions_.size();
  size_t w = window_ops_;
  if (n < 2) return 0;
  if (w >= n) w = n - 1;  // Degenerate: whole-run window.
  double worst = -1;
  for (size_t i = 0; i + w < n; i++) {
    const double span = completions_[i + w] - completions_[i];
    if (span <= 0) continue;
    const double tput = static_cast<double>(w) / span;
    if (worst < 0 || tput < worst) worst = tput;
  }
  return worst < 0 ? 0 : worst;
}

}  // namespace metrics
}  // namespace talus
