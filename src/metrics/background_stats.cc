#include "metrics/background_stats.h"

#include <cstdio>

namespace talus {
namespace metrics {

std::string BackgroundJobStats::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "flush{scheduled=%llu completed=%llu failed=%llu busy_us=%llu "
      "queued=%zu} "
      "compaction{scheduled=%llu completed=%llu failed=%llu busy_us=%llu "
      "queued=%zu} running=%zu max_queue_depth=%zu",
      static_cast<unsigned long long>(scheduled[0]),
      static_cast<unsigned long long>(completed[0]),
      static_cast<unsigned long long>(failed[0]),
      static_cast<unsigned long long>(busy_micros[0]), queue_depth[0],
      static_cast<unsigned long long>(scheduled[1]),
      static_cast<unsigned long long>(completed[1]),
      static_cast<unsigned long long>(failed[1]),
      static_cast<unsigned long long>(busy_micros[1]), queue_depth[1],
      running, max_queue_depth);
  return buf;
}

}  // namespace metrics
}  // namespace talus
