// BackgroundJobStats: point-in-time snapshot of the background execution
// subsystem, reported through DB::GetProperty("talus.exec") and consumed by
// the concurrency ablation. Produced by exec::JobScheduler::GetStats().
#ifndef TALUS_METRICS_BACKGROUND_STATS_H_
#define TALUS_METRICS_BACKGROUND_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace talus {
namespace metrics {

struct BackgroundJobStats {
  // Indexed by exec::JobType (0 = flush, 1 = compaction).
  static constexpr size_t kNumJobTypes = 2;

  uint64_t scheduled[kNumJobTypes] = {0, 0};
  uint64_t completed[kNumJobTypes] = {0, 0};
  uint64_t failed[kNumJobTypes] = {0, 0};
  /// Wall time workers spent inside jobs of each type, in microseconds.
  uint64_t busy_micros[kNumJobTypes] = {0, 0};

  /// Jobs currently waiting in the priority queues.
  size_t queue_depth[kNumJobTypes] = {0, 0};
  /// Jobs currently executing on pool workers.
  size_t running = 0;
  /// High-water mark of total queued jobs (backpressure indicator).
  size_t max_queue_depth = 0;

  uint64_t total_scheduled() const {
    return scheduled[0] + scheduled[1];
  }
  uint64_t total_completed() const {
    return completed[0] + completed[1];
  }
  size_t total_queue_depth() const {
    return queue_depth[0] + queue_depth[1];
  }
  /// No job queued or executing.
  bool idle() const { return running == 0 && total_queue_depth() == 0; }

  std::string ToString() const;
};

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_BACKGROUND_STATS_H_
