// SubcompactionStats: point-in-time snapshot of the compaction executor's
// parallel merge activity, reported through DB::GetProperty("talus.exec")
// and consumed by bench/ablation_subcompactions. Produced by
// compaction::CompactionExecutor::GetStats().
#ifndef TALUS_METRICS_SUBCOMPACTION_STATS_H_
#define TALUS_METRICS_SUBCOMPACTION_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace talus {
namespace metrics {

struct SubcompactionStats {
  /// Key-range subcompactions handed to the merge stage (cumulative).
  uint64_t scheduled = 0;
  /// Subcompactions that finished their sorted-output pass.
  uint64_t completed = 0;
  /// Subcompactions executing right now.
  size_t active = 0;
  /// Compactions executed through the pipeline.
  uint64_t compactions = 0;
  /// Leveling flush merges executed through the pipeline (counted apart so
  /// the fanout histogram reflects compactions only).
  uint64_t flush_merges = 0;
  /// Per-compaction parallel-fanout distribution (subcompactions per
  /// compaction): mean / p50 / max.
  double fanout_avg = 0;
  double fanout_p50 = 0;
  double fanout_max = 0;

  std::string ToString() const;
};

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_SUBCOMPACTION_STATS_H_
