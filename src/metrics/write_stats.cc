#include "metrics/write_stats.h"

#include <cstdio>

namespace talus {
namespace metrics {

void GroupCommitTracker::OnGroupCommitted(size_t group_size,
                                          uint64_t committed_batches,
                                          uint64_t queue_wait_micros,
                                          bool wal_synced,
                                          size_t parallel_applies) {
  group_commits_++;
  batches_committed_ += committed_batches;
  parallel_applies_ += parallel_applies;
  if (wal_synced) wal_syncs_++;
  write_queue_wait_micros_ += queue_wait_micros;
  group_sizes_.Add(static_cast<double>(group_size));
}

GroupCommitStats GroupCommitTracker::Snapshot() const {
  GroupCommitStats s;
  s.group_commits = group_commits_;
  s.batches_committed = batches_committed_;
  s.parallel_applies = parallel_applies_;
  s.wal_syncs = wal_syncs_;
  s.write_queue_wait_micros = write_queue_wait_micros_;
  if (group_sizes_.Count() > 0) {
    s.group_size_avg = group_sizes_.Average();
    s.group_size_p50 = group_sizes_.Median();
    s.group_size_max = group_sizes_.Max();
  }
  return s;
}

std::string GroupCommitStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "group_commits=%llu batches=%llu group_size_avg=%.2f "
      "group_size_p50=%.1f group_size_max=%.0f wal_syncs=%llu "
      "write_queue_wait_us=%llu parallel_applies=%llu",
      static_cast<unsigned long long>(group_commits),
      static_cast<unsigned long long>(batches_committed), group_size_avg,
      group_size_p50, group_size_max,
      static_cast<unsigned long long>(wal_syncs),
      static_cast<unsigned long long>(write_queue_wait_micros),
      static_cast<unsigned long long>(parallel_applies));
  return buf;
}

}  // namespace metrics
}  // namespace talus
