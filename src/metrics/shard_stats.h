// Cross-shard stat aggregation for shard::ShardedDB's GetProperty surface
// (DESIGN.md §3). Counters sum, high-water marks take the max, and derived
// ratios (write/read amplification, group-size averages) are recomputed
// from the summed numerators and denominators rather than averaged — an
// average of per-shard ratios would weight an idle shard the same as a hot
// one.
#ifndef TALUS_METRICS_SHARD_STATS_H_
#define TALUS_METRICS_SHARD_STATS_H_

#include <vector>

#include "lsm/db.h"
#include "metrics/write_stats.h"

namespace talus {
namespace metrics {

/// Field-wise aggregate of per-shard engine stats (sums; maxes for
/// max_stall_clock / max_imm_queue_depth; level_stats element-wise).
EngineStats AggregateEngineStats(const std::vector<const EngineStats*>& in);

/// Aggregate of per-shard group-commit stats. group_size_avg is recomputed
/// from total batches / total groups; p50 and max take the max across
/// shards (a per-shard distribution does not merge exactly).
GroupCommitStats AggregateGroupCommitStats(
    const std::vector<GroupCommitStats>& in);

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_SHARD_STATS_H_
