// Cross-shard stat aggregation for shard::ShardedDB's GetProperty surface
// (DESIGN.md §3). Counters sum, high-water marks take the max, and derived
// ratios (write/read amplification, group-size averages) are recomputed
// from the summed numerators and denominators rather than averaged — an
// average of per-shard ratios would weight an idle shard the same as a hot
// one.
#ifndef TALUS_METRICS_SHARD_STATS_H_
#define TALUS_METRICS_SHARD_STATS_H_

#include <vector>

#include "lsm/db.h"
#include "metrics/write_stats.h"
#include "obs/amp_tracker.h"
#include "tune/adaptive_tuner.h"

namespace talus {
namespace metrics {

/// Field-wise aggregate of per-shard engine stats (sums; maxes for
/// max_stall_clock / max_imm_queue_depth; level_stats element-wise).
EngineStats AggregateEngineStats(const std::vector<const EngineStats*>& in);

/// Aggregate of per-shard group-commit stats. group_size_avg is recomputed
/// from total batches / total groups; p50 and max take the max across
/// shards (a per-shard distribution does not merge exactly).
GroupCommitStats AggregateGroupCommitStats(
    const std::vector<GroupCommitStats>& in);

/// Per-op latency merge: element-wise Histogram::Merge of each shard's
/// DB::GetLatencyHistograms() vector. Unlike the group-size p50 above this
/// merge is exact — shards share one bucket layout, so fleet-wide
/// percentiles come from summed bucket counts, not a max-of-maxes.
std::vector<Histogram> MergeLatencyHistograms(
    const std::vector<std::vector<Histogram>>& per_shard);

/// The talus_* Prometheus exposition shared by DB::DumpPrometheus and
/// ShardedDB::DumpPrometheus: engine counters, the stall split, one
/// talus_latency_us histogram family per op with observations, and — when
/// `amp` is non-null — the per-level talus_amp_* families plus the derived
/// write/read/space amplification gauges (DESIGN.md §6.6).
/// `latency_per_op` is indexed by obs::OpType (DB::GetLatencyHistograms /
/// MergeLatencyHistograms output); `amp` is a cumulative
/// DB::GetAmpSnapshot() (or a fleet-wide merge of them), null when amp
/// accounting is disabled. `tune` adds the talus_tune_* families
/// (DESIGN.md §9) — a single tuner's counters or a fleet-wide
/// AggregateTunerStats() merge; null when adaptive tuning is off.
std::string DumpPrometheusText(const EngineStats& stats,
                               uint64_t events_total, uint64_t data_bytes,
                               const std::vector<Histogram>& latency_per_op,
                               const obs::AmpSnapshot* amp = nullptr,
                               const tune::TunerStats* tune = nullptr);

/// Fleet merge of per-shard tuner counters: sums the counters; the last_*
/// gauges and labels come from the shard with the most recent activity
/// (highest tick count) since a cross-shard "last decision" is not a
/// well-defined single value.
tune::TunerStats AggregateTunerStats(
    const std::vector<tune::TunerStats>& in);

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_SHARD_STATS_H_
