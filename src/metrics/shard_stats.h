// Cross-shard stat aggregation for shard::ShardedDB's GetProperty surface
// (DESIGN.md §3). Counters sum, high-water marks take the max, and derived
// ratios (write/read amplification, group-size averages) are recomputed
// from the summed numerators and denominators rather than averaged — an
// average of per-shard ratios would weight an idle shard the same as a hot
// one.
#ifndef TALUS_METRICS_SHARD_STATS_H_
#define TALUS_METRICS_SHARD_STATS_H_

#include <vector>

#include "lsm/db.h"
#include "metrics/write_stats.h"
#include "obs/amp_tracker.h"

namespace talus {
namespace metrics {

/// Field-wise aggregate of per-shard engine stats (sums; maxes for
/// max_stall_clock / max_imm_queue_depth; level_stats element-wise).
EngineStats AggregateEngineStats(const std::vector<const EngineStats*>& in);

/// Aggregate of per-shard group-commit stats. group_size_avg is recomputed
/// from total batches / total groups; p50 and max take the max across
/// shards (a per-shard distribution does not merge exactly).
GroupCommitStats AggregateGroupCommitStats(
    const std::vector<GroupCommitStats>& in);

/// Per-op latency merge: element-wise Histogram::Merge of each shard's
/// DB::GetLatencyHistograms() vector. Unlike the group-size p50 above this
/// merge is exact — shards share one bucket layout, so fleet-wide
/// percentiles come from summed bucket counts, not a max-of-maxes.
std::vector<Histogram> MergeLatencyHistograms(
    const std::vector<std::vector<Histogram>>& per_shard);

/// The talus_* Prometheus exposition shared by DB::DumpPrometheus and
/// ShardedDB::DumpPrometheus: engine counters, the stall split, one
/// talus_latency_us histogram family per op with observations, and — when
/// `amp` is non-null — the per-level talus_amp_* families plus the derived
/// write/read/space amplification gauges (DESIGN.md §6.6).
/// `latency_per_op` is indexed by obs::OpType (DB::GetLatencyHistograms /
/// MergeLatencyHistograms output); `amp` is a cumulative
/// DB::GetAmpSnapshot() (or a fleet-wide merge of them), null when amp
/// accounting is disabled.
std::string DumpPrometheusText(const EngineStats& stats,
                               uint64_t events_total, uint64_t data_bytes,
                               const std::vector<Histogram>& latency_per_op,
                               const obs::AmpSnapshot* amp = nullptr);

}  // namespace metrics
}  // namespace talus

#endif  // TALUS_METRICS_SHARD_STATS_H_
