#include "metrics/shard_stats.h"

#include <algorithm>

#include "obs/latency_recorder.h"
#include "obs/prometheus.h"

namespace talus {
namespace metrics {

EngineStats AggregateEngineStats(const std::vector<const EngineStats*>& in) {
  EngineStats out;
  for (const EngineStats* s : in) {
    out.puts += s->puts;
    out.deletes += s->deletes;
    out.flushes += s->flushes;
    out.compactions += s->compactions;
    out.flush_bytes_read += s->flush_bytes_read;
    out.flush_bytes_written += s->flush_bytes_written;
    out.compaction_bytes_read += s->compaction_bytes_read;
    out.compaction_bytes_written += s->compaction_bytes_written;
    out.user_payload_written += s->user_payload_written;
    out.compaction_conflicts += s->compaction_conflicts;
    out.gets.fetch_add(s->gets.load(), std::memory_order_relaxed);
    out.gets_found.fetch_add(s->gets_found.load(), std::memory_order_relaxed);
    out.scans.fetch_add(s->scans.load(), std::memory_order_relaxed);
    out.runs_probed.fetch_add(s->runs_probed.load(),
                              std::memory_order_relaxed);
    out.filter_negatives.fetch_add(s->filter_negatives.load(),
                                   std::memory_order_relaxed);
    out.data_block_reads.fetch_add(s->data_block_reads.load(),
                                   std::memory_order_relaxed);
    out.block_cache_hits.fetch_add(s->block_cache_hits.load(),
                                   std::memory_order_relaxed);
    out.obsolete_files_deleted += s->obsolete_files_deleted;
    out.max_stall_clock = std::max(out.max_stall_clock, s->max_stall_clock);
    out.memtable_switches += s->memtable_switches;
    out.bg_flushes += s->bg_flushes;
    out.bg_compactions += s->bg_compactions;
    out.stall_slowdowns += s->stall_slowdowns;
    out.stall_stops += s->stall_stops;
    out.stall_micros += s->stall_micros;
    out.stall_slowdown_micros += s->stall_slowdown_micros;
    out.stall_stop_micros += s->stall_stop_micros;
    out.stall_slowdowns_memtable += s->stall_slowdowns_memtable;
    out.stall_slowdowns_l0 += s->stall_slowdowns_l0;
    out.stall_stops_memtable += s->stall_stops_memtable;
    out.stall_stops_l0 += s->stall_stops_l0;
    out.max_imm_queue_depth =
        std::max(out.max_imm_queue_depth, s->max_imm_queue_depth);
    if (s->level_stats.size() > out.level_stats.size()) {
      out.level_stats.resize(s->level_stats.size());
    }
    for (size_t i = 0; i < s->level_stats.size(); i++) {
      out.level_stats[i].compactions += s->level_stats[i].compactions;
      out.level_stats[i].bytes_read += s->level_stats[i].bytes_read;
      out.level_stats[i].bytes_written += s->level_stats[i].bytes_written;
    }
  }
  return out;
}

GroupCommitStats AggregateGroupCommitStats(
    const std::vector<GroupCommitStats>& in) {
  GroupCommitStats out;
  for (const GroupCommitStats& s : in) {
    out.group_commits += s.group_commits;
    out.batches_committed += s.batches_committed;
    out.parallel_applies += s.parallel_applies;
    out.wal_syncs += s.wal_syncs;
    out.write_queue_wait_micros += s.write_queue_wait_micros;
    out.group_size_p50 = std::max(out.group_size_p50, s.group_size_p50);
    out.group_size_max = std::max(out.group_size_max, s.group_size_max);
  }
  out.group_size_avg =
      out.group_commits == 0
          ? 0
          : static_cast<double>(out.batches_committed) /
                static_cast<double>(out.group_commits);
  return out;
}

std::string DumpPrometheusText(const EngineStats& stats,
                               uint64_t events_total, uint64_t data_bytes,
                               const std::vector<Histogram>& latency_per_op,
                               const obs::AmpSnapshot* amp,
                               const tune::TunerStats* tune) {
  obs::PrometheusWriter w;
  w.AddCounter("talus_puts_total", "", stats.puts);
  w.AddCounter("talus_deletes_total", "", stats.deletes);
  w.AddCounter("talus_gets_total", "", stats.gets.load());
  w.AddCounter("talus_scans_total", "", stats.scans.load());
  w.AddCounter("talus_flushes_total", "", stats.flushes);
  w.AddCounter("talus_compactions_total", "", stats.compactions);
  w.AddCounter("talus_compaction_conflicts_total", "",
               stats.compaction_conflicts);
  w.AddCounter("talus_flush_bytes_written_total", "",
               stats.flush_bytes_written);
  w.AddCounter("talus_compaction_bytes_written_total", "",
               stats.compaction_bytes_written);
  w.AddCounter("talus_stall_micros_total", "regime=\"slowdown\"",
               stats.stall_slowdown_micros);
  w.AddCounter("talus_stall_micros_total", "regime=\"stop\"",
               stats.stall_stop_micros);
  w.AddCounter("talus_stalls_total", "regime=\"slowdown\",cause=\"memtable\"",
               stats.stall_slowdowns_memtable);
  w.AddCounter("talus_stalls_total", "regime=\"slowdown\",cause=\"l0\"",
               stats.stall_slowdowns_l0);
  w.AddCounter("talus_stalls_total", "regime=\"stop\",cause=\"memtable\"",
               stats.stall_stops_memtable);
  w.AddCounter("talus_stalls_total", "regime=\"stop\",cause=\"l0\"",
               stats.stall_stops_l0);
  w.AddCounter("talus_obsolete_files_deleted_total", "",
               stats.obsolete_files_deleted);
  w.AddCounter("talus_events_total", "", events_total);
  w.AddGauge("talus_data_bytes", "", static_cast<double>(data_bytes));
  for (size_t op = 0;
       op < latency_per_op.size() &&
       op < static_cast<size_t>(obs::kNumOpTypes);
       op++) {
    if (latency_per_op[op].Count() == 0) continue;  // Untouched op series.
    w.AddHistogram("talus_latency_us",
                   std::string("op=\"") +
                       obs::OpTypeName(static_cast<obs::OpType>(op)) + "\"",
                   latency_per_op[op]);
  }
  if (amp != nullptr) {
    // Per-level families are emitted level-major (every series of a level
    // together); the writer regroups them family-major as the exposition
    // format requires.
    for (int i = 0; i < amp->num_levels; i++) {
      const obs::AmpSnapshot::Level& l = amp->levels[i];
      const std::string lv = "level=\"" + std::to_string(i) + "\"";
      w.AddCounter("talus_amp_bytes_written_total",
                   lv + ",source=\"flush\"", l.flush_bytes_written,
                   "Bytes written per level, split flush vs compaction");
      w.AddCounter("talus_amp_bytes_written_total",
                   lv + ",source=\"compaction\"", l.compaction_bytes_written,
                   "Bytes written per level, split flush vs compaction");
      w.AddCounter("talus_amp_compaction_bytes_read_total", lv,
                   l.compaction_bytes_read);
      w.AddCounter("talus_amp_files_probed_total", lv, l.files_probed,
                   "Point-lookup file probes per level");
      w.AddCounter("talus_amp_filter_negatives_total", lv,
                   l.filter_negatives);
      w.AddCounter("talus_amp_bloom_fp_total", lv, l.bloom_false_positives,
                   "Probes whose Bloom filter passed but held no result");
      w.AddCounter("talus_amp_block_reads_total", lv, l.block_reads);
      w.AddCounter("talus_amp_hits_total", lv, l.hits,
                   "Lookups decided per level (memtable hits separate)");
      w.AddGauge("talus_amp_live_bytes", lv + ",kind=\"sst\"",
                 static_cast<double>(l.live_sst_bytes),
                 "Live bytes per level: physical SST vs logical payload");
      w.AddGauge("talus_amp_live_bytes", lv + ",kind=\"payload\"",
                 static_cast<double>(l.live_payload_bytes),
                 "Live bytes per level: physical SST vs logical payload");
    }
    w.AddCounter("talus_amp_lookups_total", "", amp->lookups);
    w.AddCounter("talus_amp_memtable_hits_total", "", amp->memtable_hits);
    w.AddCounter("talus_amp_misses_total", "", amp->misses);
    w.AddCounter("talus_amp_user_payload_bytes_total", "",
                 amp->user_payload_bytes);
    w.AddGauge("talus_write_amp", "", amp->WriteAmp(),
               "Physical bytes written per user payload byte");
    w.AddGauge("talus_read_amp", "", amp->ReadAmp(),
               "Files probed per point lookup");
    w.AddGauge("talus_space_amp", "", amp->SpaceAmp(),
               "Live SST bytes per live logical payload byte");
    w.AddGauge("talus_blocks_per_lookup", "", amp->BlocksPerLookup(),
               "Data blocks fetched per point lookup (the model's R unit)");
  }
  if (tune != nullptr) {
    w.AddCounter("talus_tune_ticks_total", "", tune->ticks,
                 "Adaptive-tuner decision ticks (DESIGN.md section 9)");
    w.AddCounter("talus_tune_retunes_total", "", tune->retunes,
                 "Decision ticks that recommended a design switch");
    w.AddCounter("talus_tune_switches_total", "", tune->switches_applied,
                 "Recommended switches the engine installed");
    w.AddCounter("talus_tune_holds_total", "kind=\"hysteresis\"", tune->holds,
                 "Held decisions, by why the tuner held");
    w.AddCounter("talus_tune_holds_total", "kind=\"thin_window\"",
                 tune->thin_windows,
                 "Held decisions, by why the tuner held");
    w.AddCounter("talus_tune_holds_total", "kind=\"cooldown\"",
                 tune->cooldown_holds,
                 "Held decisions, by why the tuner held");
    w.AddCounter("talus_tune_drift_events_total", "", tune->drift_events,
                 "kModelDrift windows observed by the tuner's owner");
    w.AddGauge("talus_tune_last_gain", "", tune->last_gain,
               "Predicted fractional cost win of the last decision");
    w.AddGauge("talus_tune_cost", "design=\"current\"",
               tune->last_current_cost,
               "Model cost zeta at the last decision, current vs best");
    w.AddGauge("talus_tune_cost", "design=\"best\"", tune->last_best_cost,
               "Model cost zeta at the last decision, current vs best");
  }
  return w.Output();
}

tune::TunerStats AggregateTunerStats(
    const std::vector<tune::TunerStats>& in) {
  tune::TunerStats out;
  uint64_t freshest_ticks = 0;
  for (const tune::TunerStats& s : in) {
    out.ticks += s.ticks;
    out.thin_windows += s.thin_windows;
    out.cooldown_holds += s.cooldown_holds;
    out.holds += s.holds;
    out.retunes += s.retunes;
    out.switches_applied += s.switches_applied;
    out.drift_events += s.drift_events;
    if (s.ticks >= freshest_ticks) {
      freshest_ticks = s.ticks;
      out.last_gain = s.last_gain;
      out.last_current_cost = s.last_current_cost;
      out.last_best_cost = s.last_best_cost;
      out.last_action = s.last_action;
      out.last_design = s.last_design;
    }
  }
  return out;
}

std::vector<Histogram> MergeLatencyHistograms(
    const std::vector<std::vector<Histogram>>& per_shard) {
  size_t ops = 0;
  for (const auto& shard : per_shard) ops = std::max(ops, shard.size());
  std::vector<Histogram> out(ops);
  for (const auto& shard : per_shard) {
    for (size_t op = 0; op < shard.size(); op++) {
      out[op].Merge(shard[op]);
    }
  }
  return out;
}

}  // namespace metrics
}  // namespace talus
