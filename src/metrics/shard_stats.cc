#include "metrics/shard_stats.h"

#include <algorithm>

#include "obs/latency_recorder.h"
#include "obs/prometheus.h"

namespace talus {
namespace metrics {

EngineStats AggregateEngineStats(const std::vector<const EngineStats*>& in) {
  EngineStats out;
  for (const EngineStats* s : in) {
    out.puts += s->puts;
    out.deletes += s->deletes;
    out.flushes += s->flushes;
    out.compactions += s->compactions;
    out.flush_bytes_read += s->flush_bytes_read;
    out.flush_bytes_written += s->flush_bytes_written;
    out.compaction_bytes_read += s->compaction_bytes_read;
    out.compaction_bytes_written += s->compaction_bytes_written;
    out.user_payload_written += s->user_payload_written;
    out.compaction_conflicts += s->compaction_conflicts;
    out.gets.fetch_add(s->gets.load(), std::memory_order_relaxed);
    out.gets_found.fetch_add(s->gets_found.load(), std::memory_order_relaxed);
    out.scans.fetch_add(s->scans.load(), std::memory_order_relaxed);
    out.runs_probed.fetch_add(s->runs_probed.load(),
                              std::memory_order_relaxed);
    out.filter_negatives.fetch_add(s->filter_negatives.load(),
                                   std::memory_order_relaxed);
    out.data_block_reads.fetch_add(s->data_block_reads.load(),
                                   std::memory_order_relaxed);
    out.block_cache_hits.fetch_add(s->block_cache_hits.load(),
                                   std::memory_order_relaxed);
    out.obsolete_files_deleted += s->obsolete_files_deleted;
    out.max_stall_clock = std::max(out.max_stall_clock, s->max_stall_clock);
    out.memtable_switches += s->memtable_switches;
    out.bg_flushes += s->bg_flushes;
    out.bg_compactions += s->bg_compactions;
    out.stall_slowdowns += s->stall_slowdowns;
    out.stall_stops += s->stall_stops;
    out.stall_micros += s->stall_micros;
    out.stall_slowdown_micros += s->stall_slowdown_micros;
    out.stall_stop_micros += s->stall_stop_micros;
    out.stall_slowdowns_memtable += s->stall_slowdowns_memtable;
    out.stall_slowdowns_l0 += s->stall_slowdowns_l0;
    out.stall_stops_memtable += s->stall_stops_memtable;
    out.stall_stops_l0 += s->stall_stops_l0;
    out.max_imm_queue_depth =
        std::max(out.max_imm_queue_depth, s->max_imm_queue_depth);
    if (s->level_stats.size() > out.level_stats.size()) {
      out.level_stats.resize(s->level_stats.size());
    }
    for (size_t i = 0; i < s->level_stats.size(); i++) {
      out.level_stats[i].compactions += s->level_stats[i].compactions;
      out.level_stats[i].bytes_read += s->level_stats[i].bytes_read;
      out.level_stats[i].bytes_written += s->level_stats[i].bytes_written;
    }
  }
  return out;
}

GroupCommitStats AggregateGroupCommitStats(
    const std::vector<GroupCommitStats>& in) {
  GroupCommitStats out;
  for (const GroupCommitStats& s : in) {
    out.group_commits += s.group_commits;
    out.batches_committed += s.batches_committed;
    out.parallel_applies += s.parallel_applies;
    out.wal_syncs += s.wal_syncs;
    out.write_queue_wait_micros += s.write_queue_wait_micros;
    out.group_size_p50 = std::max(out.group_size_p50, s.group_size_p50);
    out.group_size_max = std::max(out.group_size_max, s.group_size_max);
  }
  out.group_size_avg =
      out.group_commits == 0
          ? 0
          : static_cast<double>(out.batches_committed) /
                static_cast<double>(out.group_commits);
  return out;
}

std::string DumpPrometheusText(const EngineStats& stats,
                               uint64_t events_total, uint64_t data_bytes,
                               const std::vector<Histogram>& latency_per_op) {
  obs::PrometheusWriter w;
  w.AddCounter("talus_puts_total", "", stats.puts);
  w.AddCounter("talus_deletes_total", "", stats.deletes);
  w.AddCounter("talus_gets_total", "", stats.gets.load());
  w.AddCounter("talus_scans_total", "", stats.scans.load());
  w.AddCounter("talus_flushes_total", "", stats.flushes);
  w.AddCounter("talus_compactions_total", "", stats.compactions);
  w.AddCounter("talus_compaction_conflicts_total", "",
               stats.compaction_conflicts);
  w.AddCounter("talus_flush_bytes_written_total", "",
               stats.flush_bytes_written);
  w.AddCounter("talus_compaction_bytes_written_total", "",
               stats.compaction_bytes_written);
  w.AddCounter("talus_stall_micros_total", "regime=\"slowdown\"",
               stats.stall_slowdown_micros);
  w.AddCounter("talus_stall_micros_total", "regime=\"stop\"",
               stats.stall_stop_micros);
  w.AddCounter("talus_stalls_total", "regime=\"slowdown\",cause=\"memtable\"",
               stats.stall_slowdowns_memtable);
  w.AddCounter("talus_stalls_total", "regime=\"slowdown\",cause=\"l0\"",
               stats.stall_slowdowns_l0);
  w.AddCounter("talus_stalls_total", "regime=\"stop\",cause=\"memtable\"",
               stats.stall_stops_memtable);
  w.AddCounter("talus_stalls_total", "regime=\"stop\",cause=\"l0\"",
               stats.stall_stops_l0);
  w.AddCounter("talus_obsolete_files_deleted_total", "",
               stats.obsolete_files_deleted);
  w.AddCounter("talus_events_total", "", events_total);
  w.AddGauge("talus_data_bytes", "", static_cast<double>(data_bytes));
  for (size_t op = 0;
       op < latency_per_op.size() &&
       op < static_cast<size_t>(obs::kNumOpTypes);
       op++) {
    if (latency_per_op[op].Count() == 0) continue;  // Untouched op series.
    w.AddHistogram("talus_latency_us",
                   std::string("op=\"") +
                       obs::OpTypeName(static_cast<obs::OpType>(op)) + "\"",
                   latency_per_op[op]);
  }
  return w.Output();
}

std::vector<Histogram> MergeLatencyHistograms(
    const std::vector<std::vector<Histogram>>& per_shard) {
  size_t ops = 0;
  for (const auto& shard : per_shard) ops = std::max(ops, shard.size());
  std::vector<Histogram> out(ops);
  for (const auto& shard : per_shard) {
    for (size_t op = 0; op < shard.size(); op++) {
      out[op].Merge(shard[op]);
    }
  }
  return out;
}

}  // namespace metrics
}  // namespace talus
