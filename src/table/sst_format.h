// SST physical layout:
//
//   [data block 0] ... [data block N-1]
//   [filter block]   — Bloom filter over user keys of the whole file
//   [index block]    — key: separator ≥ last key of block; value: BlockHandle
//   [footer]         — filter handle | index handle | padding | magic
//
// Index and filter blocks are pinned in memory by the reader at open time
// (the paper's cost model assumes fence pointers and Bloom filters are
// memory-resident), so a point lookup costs at most one data-block I/O per
// sorted run.
#ifndef TALUS_TABLE_SST_FORMAT_H_
#define TALUS_TABLE_SST_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace talus {

// Filter-block wire formats, dispatched on the LAST byte of the block:
//
//   0x01..0x1e        legacy bloom: [bit array][num_probes:1]
//   kBlockedBloomTag  blocked bloom: [num_blocks x kBloomBlockBytes bytes]
//                     [num_probes:1][tag:1]
//
// The blocked tag is deliberately > 30: legacy readers interpret the last
// byte as a probe count and treat anything above 30 as "maybe present", so
// an SST written with the blocked variant degrades to filter-less reads on
// old code — never a false negative. New readers detect the tag and decode
// either format, so mixed-variant databases stay fully readable.
constexpr uint8_t kBlockedBloomTag = 0xb1;
constexpr size_t kBloomBlockBytes = 64;  // One cache line per key.

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }
  bool DecodeFrom(Slice* input) {
    return GetVarint64(input, &offset) && GetVarint64(input, &size);
  }
};

struct Footer {
  static constexpr uint64_t kMagic = 0x74616c75735f7373ull;  // "talus_ss"
  static constexpr size_t kEncodedLength = 48;

  BlockHandle filter_handle;
  BlockHandle index_handle;

  void EncodeTo(std::string* dst) const {
    const size_t original = dst->size();
    filter_handle.EncodeTo(dst);
    index_handle.EncodeTo(dst);
    dst->resize(original + kEncodedLength - 8);  // Pad handles to fixed size.
    PutFixed64(dst, kMagic);
  }

  Status DecodeFrom(Slice input) {
    if (input.size() < kEncodedLength) {
      return Status::Corruption("footer too short");
    }
    const char* magic_ptr = input.data() + kEncodedLength - 8;
    if (DecodeFixed64(magic_ptr) != kMagic) {
      return Status::Corruption("bad sst magic number");
    }
    Slice handles(input.data(), kEncodedLength - 8);
    if (!filter_handle.DecodeFrom(&handles) ||
        !index_handle.DecodeFrom(&handles)) {
      return Status::Corruption("bad footer handles");
    }
    return Status::OK();
  }
};

}  // namespace talus

#endif  // TALUS_TABLE_SST_FORMAT_H_
