// MergingIterator: k-way merge over child iterators in internal-key order.
// Used by compactions (merge inputs) and range scans (memtable + all runs).
#ifndef TALUS_TABLE_MERGING_ITERATOR_H_
#define TALUS_TABLE_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "lsm/dbformat.h"
#include "table/iterator.h"

namespace talus {

/// Takes ownership of the children. Children yielding equal internal keys is
/// impossible (sequence numbers are unique); ties on user keys are resolved
/// by the internal-key ordering (newest first).
std::unique_ptr<Iterator> NewMergingIterator(
    InternalKeyComparator comparator,
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace talus

#endif  // TALUS_TABLE_MERGING_ITERATOR_H_
