#include "table/sst_reader.h"

#include <cassert>
#include <cstring>
#include <optional>

#include "util/coding.h"

namespace talus {

Status SstReader::Open(Env* env, const std::string& fname,
                       uint64_t file_number, LruCache* block_cache,
                       std::unique_ptr<SstReader>* reader) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;

  uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be an sstable", fname);
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(footer_input);
  if (!s.ok()) return s;

  auto r = std::unique_ptr<SstReader>(new SstReader());
  r->env_ = env;
  r->file_ = std::move(file);
  r->file_number_ = file_number;
  r->block_cache_ = block_cache;

  // Pin the index block: read straight into the Block's owned buffer
  // (single copy; zero when the env hands back its own memory).
  {
    auto index =
        std::make_unique<Block>(static_cast<size_t>(footer.index_handle.size));
    Slice contents;
    s = r->file_->Read(footer.index_handle.offset, footer.index_handle.size,
                       &contents, index->MutableData());
    if (!s.ok()) return s;
    if (contents.size() != footer.index_handle.size) {
      return Status::Corruption("truncated index block", fname);
    }
    if (contents.data() != index->MutableData()) {
      memcpy(index->MutableData(), contents.data(), contents.size());
    }
    index->FinishLoad();
    r->index_block_ = std::move(index);
  }

  // Pin the filter block.
  {
    r->filter_data_.resize(footer.filter_handle.size);
    Slice contents;
    s = r->file_->Read(footer.filter_handle.offset, footer.filter_handle.size,
                       &contents, r->filter_data_.data());
    if (!s.ok()) return s;
    if (contents.data() != r->filter_data_.data()) {
      r->filter_data_.assign(contents.data(), contents.size());
    }
    r->filter_ = std::make_unique<BloomFilterReader>(Slice(r->filter_data_));
  }

  *reader = std::move(r);
  return Status::OK();
}

Status SstReader::ReadDataBlock(const BlockHandle& handle,
                                std::shared_ptr<Block>* block,
                                bool* cache_hit) {
  *cache_hit = false;
  std::string cache_key;
  if (block_cache_ != nullptr) {
    PutFixed64(&cache_key, file_number_);
    PutFixed64(&cache_key, handle.offset);
    auto cached = block_cache_->Lookup(cache_key);
    if (cached != nullptr) {
      *block = std::static_pointer_cast<Block>(cached);
      *cache_hit = true;
      return Status::OK();
    }
  }

  // Single-copy load: read into the Block's own buffer (memcpy only when
  // the env returned a pointer to its internal memory instead).
  auto b = std::make_shared<Block>(static_cast<size_t>(handle.size));
  Slice contents;
  Status s = file_->Read(handle.offset, handle.size, &contents,
                         b->MutableData());
  if (!s.ok()) return s;
  if (contents.size() != handle.size) {
    return Status::Corruption("truncated data block");
  }
  if (contents.data() != b->MutableData()) {
    memcpy(b->MutableData(), contents.data(), contents.size());
  }
  b->FinishLoad();
  data_blocks_read_.fetch_add(1, std::memory_order_relaxed);
  if (block_cache_ != nullptr) {
    block_cache_->Insert(cache_key, b, b->size());
  }
  *block = std::move(b);
  return Status::OK();
}

bool SstReader::Get(const LookupKey& lkey, std::string* value, Status* s,
                    GetStats* stats, bool fast_path) {
  if (!filter_->KeyMayMatch(lkey.user_key())) {
    if (stats != nullptr) stats->filter_negative = true;
    return false;
  }
  return fast_path ? GetPointSearch(lkey, value, s, stats)
                   : GetViaIterators(lkey, value, s, stats);
}

bool SstReader::FinishGet(const LookupKey& lkey, const Slice& entry_key,
                          const Slice& entry_value, std::string* value,
                          Status* s) {
  ParsedInternalKey parsed;
  if (!ParseInternalKey(entry_key, &parsed)) {
    *s = Status::Corruption("bad internal key in data block");
    return true;
  }
  if (parsed.user_key != lkey.user_key()) return false;

  if (parsed.type == kTypeDeletion) {
    *s = Status::NotFound(Slice());
  } else {
    value->assign(entry_value.data(), entry_value.size());
    *s = Status::OK();
  }
  return true;
}

// Allocation-free point lookup: PointGet against the pinned index block,
// then against the data block — no iterator heap allocations and no
// per-entry std::string rebuilds. For the uncached no-block-cache case the
// data block is a non-owning view over a reused thread-local scratch (with
// a mem env the view points directly at the file's bytes: zero copies).
bool SstReader::GetPointSearch(const LookupKey& lkey, std::string* value,
                               Status* s, GetStats* stats) {
  const Slice ikey = lkey.internal_key();
  PointGetContext ctx;

  PointGetStatus ps = index_block_->PointGet(ikey, &ctx);
  if (ps == PointGetStatus::kCorrupt) {
    *s = Status::Corruption("bad index block");
    return true;  // Treat as decided with an error status.
  }
  if (ps == PointGetStatus::kNotFound) return false;

  BlockHandle handle;
  Slice handle_value = ctx.value();
  if (!handle.DecodeFrom(&handle_value)) {
    *s = Status::Corruption("bad index entry");
    return true;
  }

  // Resolve the data block: cache, or a direct read without constructing a
  // heap Block when there is no cache to share it with.
  std::shared_ptr<Block> cached;
  const Block* block = nullptr;
  std::optional<Block> view;  // Storage for the uncached non-owning path.
  if (block_cache_ != nullptr) {
    bool cache_hit = false;
    Status rs = ReadDataBlock(handle, &cached, &cache_hit);
    if (stats != nullptr) {
      stats->block_read = !cache_hit;
      stats->cache_hit = cache_hit;
    }
    if (!rs.ok()) {
      *s = rs;
      return true;
    }
    block = cached.get();
  } else {
    static thread_local std::string scratch;
    scratch.resize(handle.size);
    Slice contents;
    Status rs = file_->Read(handle.offset, handle.size, &contents,
                            scratch.data());
    if (stats != nullptr) {
      stats->block_read = true;
      stats->cache_hit = false;
    }
    if (!rs.ok()) {
      *s = rs;
      return true;
    }
    if (contents.size() != handle.size) {
      *s = Status::Corruption("truncated data block");
      return true;
    }
    data_blocks_read_.fetch_add(1, std::memory_order_relaxed);
    // `contents` stays valid for the rest of this call: it points either at
    // `scratch` or at memory pinned by the open file handle.
    view.emplace(contents.data(), contents.size());
    block = &*view;
  }

  ps = block->PointGet(ikey, &ctx);
  if (ps == PointGetStatus::kCorrupt) {
    *s = Status::Corruption("bad entry in block");
    return true;
  }
  if (ps == PointGetStatus::kNotFound) return false;

  return FinishGet(lkey, ctx.key(), ctx.value(), value, s);
}

// Legacy two-iterator path, kept as the A/B baseline for the ablation and
// as an escape hatch (DbOptions::point_read_fast_path = false).
bool SstReader::GetViaIterators(const LookupKey& lkey, std::string* value,
                                Status* s, GetStats* stats) {
  Slice ikey = lkey.internal_key();

  auto index_iter = index_block_->NewIterator(/*internal_key_order=*/true);
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) {
    // Seek past the last entry is a miss, but a seek that died on a corrupt
    // entry must surface the corruption, not read as "not found".
    if (!index_iter->status().ok()) {
      *s = index_iter->status();
      return true;
    }
    return false;
  }

  BlockHandle handle;
  Slice handle_value = index_iter->value();
  if (!handle.DecodeFrom(&handle_value)) {
    *s = Status::Corruption("bad index entry");
    return true;  // Treat as decided with an error status.
  }

  std::shared_ptr<Block> block;
  bool cache_hit = false;
  Status rs = ReadDataBlock(handle, &block, &cache_hit);
  if (stats != nullptr) {
    stats->block_read = !cache_hit;
    stats->cache_hit = cache_hit;
  }
  if (!rs.ok()) {
    *s = rs;
    return true;
  }

  auto block_iter = block->NewIterator(/*internal_key_order=*/true);
  block_iter->Seek(ikey);
  if (!block_iter->Valid()) {
    if (!block_iter->status().ok()) {
      *s = block_iter->status();
      return true;
    }
    return false;
  }

  return FinishGet(lkey, block_iter->key(), block_iter->value(), value, s);
}

// Iterates index entries, materializing one data block at a time.
class SstReader::TwoLevelIterator final : public Iterator {
 public:
  explicit TwoLevelIterator(SstReader* reader)
      : reader_(reader),
        index_iter_(reader->index_block_->NewIterator(true)) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (block_iter_ != nullptr) block_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }
  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (block_iter_ != nullptr) block_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }
  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (block_iter_ != nullptr) block_iter_->SeekToLast();
    SkipEmptyBlocksBackward();
  }
  void Next() override {
    assert(Valid());
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }
  void Prev() override {
    assert(Valid());
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr) return block_iter_->status();
    return Status::OK();
  }

 private:
  void InitDataBlock() {
    block_.reset();
    block_iter_.reset();
    if (!index_iter_->Valid()) return;
    BlockHandle handle;
    Slice handle_value = index_iter_->value();
    if (!handle.DecodeFrom(&handle_value)) {
      status_ = Status::Corruption("bad index entry");
      return;
    }
    bool cache_hit = false;
    Status s = reader_->ReadDataBlock(handle, &block_, &cache_hit);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_ = block_->NewIterator(/*internal_key_order=*/true);
  }

  void SkipEmptyBlocksForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (block_iter_ != nullptr) block_iter_->SeekToFirst();
    }
  }

  void SkipEmptyBlocksBackward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (block_iter_ != nullptr) block_iter_->SeekToLast();
    }
  }

  SstReader* reader_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

std::unique_ptr<Iterator> SstReader::NewIterator() {
  return std::make_unique<TwoLevelIterator>(this);
}

}  // namespace talus
