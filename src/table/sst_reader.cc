#include "table/sst_reader.h"

#include <cassert>

#include "util/coding.h"

namespace talus {

Status SstReader::Open(Env* env, const std::string& fname,
                       uint64_t file_number, LruCache* block_cache,
                       std::unique_ptr<SstReader>* reader) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;

  uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be an sstable", fname);
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(footer_input);
  if (!s.ok()) return s;

  auto r = std::unique_ptr<SstReader>(new SstReader());
  r->env_ = env;
  r->file_ = std::move(file);
  r->file_number_ = file_number;
  r->block_cache_ = block_cache;

  // Pin the index block.
  {
    std::string scratch(footer.index_handle.size, '\0');
    Slice contents;
    s = r->file_->Read(footer.index_handle.offset, footer.index_handle.size,
                       &contents, scratch.data());
    if (!s.ok()) return s;
    if (contents.size() != footer.index_handle.size) {
      return Status::Corruption("truncated index block", fname);
    }
    r->index_block_ = std::make_unique<Block>(contents.ToString());
  }

  // Pin the filter block.
  {
    r->filter_data_.resize(footer.filter_handle.size);
    Slice contents;
    s = r->file_->Read(footer.filter_handle.offset, footer.filter_handle.size,
                       &contents, r->filter_data_.data());
    if (!s.ok()) return s;
    if (contents.data() != r->filter_data_.data()) {
      r->filter_data_.assign(contents.data(), contents.size());
    }
    r->filter_ = std::make_unique<BloomFilterReader>(Slice(r->filter_data_));
  }

  *reader = std::move(r);
  return Status::OK();
}

Status SstReader::ReadDataBlock(const BlockHandle& handle,
                                std::shared_ptr<Block>* block,
                                bool* cache_hit) {
  *cache_hit = false;
  std::string cache_key;
  if (block_cache_ != nullptr) {
    PutFixed64(&cache_key, file_number_);
    PutFixed64(&cache_key, handle.offset);
    auto cached = block_cache_->Lookup(cache_key);
    if (cached != nullptr) {
      *block = std::static_pointer_cast<Block>(cached);
      *cache_hit = true;
      return Status::OK();
    }
  }

  std::string scratch(handle.size, '\0');
  Slice contents;
  Status s = file_->Read(handle.offset, handle.size, &contents,
                         scratch.data());
  if (!s.ok()) return s;
  if (contents.size() != handle.size) {
    return Status::Corruption("truncated data block");
  }
  data_blocks_read_.fetch_add(1, std::memory_order_relaxed);
  auto b = std::make_shared<Block>(contents.ToString());
  if (block_cache_ != nullptr) {
    block_cache_->Insert(cache_key, b, b->size());
  }
  *block = std::move(b);
  return Status::OK();
}

bool SstReader::Get(const LookupKey& lkey, std::string* value, Status* s,
                    GetStats* stats) {
  Slice ikey = lkey.internal_key();

  if (!filter_->KeyMayMatch(lkey.user_key())) {
    if (stats != nullptr) stats->filter_negative = true;
    return false;
  }

  auto index_iter = index_block_->NewIterator(/*internal_key_order=*/true);
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) return false;

  BlockHandle handle;
  Slice handle_value = index_iter->value();
  if (!handle.DecodeFrom(&handle_value)) {
    *s = Status::Corruption("bad index entry");
    return true;  // Treat as decided with an error status.
  }

  std::shared_ptr<Block> block;
  bool cache_hit = false;
  Status rs = ReadDataBlock(handle, &block, &cache_hit);
  if (stats != nullptr) {
    stats->block_read = !cache_hit;
    stats->cache_hit = cache_hit;
  }
  if (!rs.ok()) {
    *s = rs;
    return true;
  }

  auto block_iter = block->NewIterator(/*internal_key_order=*/true);
  block_iter->Seek(ikey);
  if (!block_iter->Valid()) return false;

  ParsedInternalKey parsed;
  if (!ParseInternalKey(block_iter->key(), &parsed)) {
    *s = Status::Corruption("bad internal key in data block");
    return true;
  }
  if (parsed.user_key != lkey.user_key()) return false;

  if (parsed.type == kTypeDeletion) {
    *s = Status::NotFound(Slice());
  } else {
    value->assign(block_iter->value().data(), block_iter->value().size());
    *s = Status::OK();
  }
  return true;
}

// Iterates index entries, materializing one data block at a time.
class SstReader::TwoLevelIterator final : public Iterator {
 public:
  explicit TwoLevelIterator(SstReader* reader)
      : reader_(reader),
        index_iter_(reader->index_block_->NewIterator(true)) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (block_iter_ != nullptr) block_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }
  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (block_iter_ != nullptr) block_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }
  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (block_iter_ != nullptr) block_iter_->SeekToLast();
    SkipEmptyBlocksBackward();
  }
  void Next() override {
    assert(Valid());
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }
  void Prev() override {
    assert(Valid());
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr) return block_iter_->status();
    return Status::OK();
  }

 private:
  void InitDataBlock() {
    block_.reset();
    block_iter_.reset();
    if (!index_iter_->Valid()) return;
    BlockHandle handle;
    Slice handle_value = index_iter_->value();
    if (!handle.DecodeFrom(&handle_value)) {
      status_ = Status::Corruption("bad index entry");
      return;
    }
    bool cache_hit = false;
    Status s = reader_->ReadDataBlock(handle, &block_, &cache_hit);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_ = block_->NewIterator(/*internal_key_order=*/true);
  }

  void SkipEmptyBlocksForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (block_iter_ != nullptr) block_iter_->SeekToFirst();
    }
  }

  void SkipEmptyBlocksBackward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (block_iter_ != nullptr) block_iter_->SeekToLast();
    }
  }

  SstReader* reader_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

std::unique_ptr<Iterator> SstReader::NewIterator() {
  return std::make_unique<TwoLevelIterator>(this);
}

}  // namespace talus
