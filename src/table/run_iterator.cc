#include "table/run_iterator.h"

#include <cassert>

#include "lsm/dbformat.h"

namespace talus {

RunIterator::RunIterator(
    std::vector<FileMetaPtr> files,
    std::function<std::shared_ptr<SstReader>(uint64_t)> open)
    : files_(std::move(files)), open_(std::move(open)) {}

bool RunIterator::Valid() const {
  return iter_ != nullptr && iter_->Valid();
}

void RunIterator::SeekToFirst() {
  index_ = 0;
  InitFile();
  if (iter_ != nullptr) iter_->SeekToFirst();
  SkipForward();
}

void RunIterator::SeekToLast() {
  if (files_.empty()) {
    iter_.reset();
    return;
  }
  index_ = files_.size() - 1;
  InitFile();
  if (iter_ != nullptr) iter_->SeekToLast();
  SkipBackward();
}

void RunIterator::Seek(const Slice& target) {
  // Binary search for the first file whose largest key >= target.
  InternalKeyComparator cmp;
  size_t left = 0, right = files_.size();
  while (left < right) {
    size_t mid = (left + right) / 2;
    if (cmp.Compare(files_[mid]->largest.Encode(), target) < 0) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  index_ = left;
  InitFile();
  if (iter_ != nullptr) iter_->Seek(target);
  SkipForward();
}

void RunIterator::Next() {
  assert(Valid());
  iter_->Next();
  SkipForward();
}

void RunIterator::Prev() {
  assert(Valid());
  iter_->Prev();
  SkipBackward();
}

Slice RunIterator::key() const { return iter_->key(); }
Slice RunIterator::value() const { return iter_->value(); }

Status RunIterator::status() const {
  if (!status_.ok()) return status_;
  return iter_ != nullptr ? iter_->status() : Status::OK();
}

void RunIterator::InitFile() {
  iter_.reset();
  reader_.reset();
  if (index_ >= files_.size()) return;
  reader_ = open_(files_[index_]->number);
  if (reader_ == nullptr) {
    status_ = Status::IOError("cannot open sst reader");
    return;
  }
  iter_ = reader_->NewIterator();
}

void RunIterator::SkipForward() {
  while ((iter_ == nullptr || !iter_->Valid()) && index_ + 1 < files_.size()) {
    index_++;
    InitFile();
    if (iter_ != nullptr) iter_->SeekToFirst();
  }
  if (iter_ != nullptr && !iter_->Valid()) iter_.reset();
}

void RunIterator::SkipBackward() {
  while ((iter_ == nullptr || !iter_->Valid()) && index_ > 0) {
    index_--;
    InitFile();
    if (iter_ != nullptr) iter_->SeekToLast();
  }
  if (iter_ != nullptr && !iter_->Valid()) iter_.reset();
}

}  // namespace talus
