// SstBuilder: streams sorted internal-key entries into the SST layout
// described in sst_format.h.
#ifndef TALUS_TABLE_SST_BUILDER_H_
#define TALUS_TABLE_SST_BUILDER_H_

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "filter/bloom.h"
#include "format/block_builder.h"
#include "lsm/dbformat.h"
#include "table/sst_format.h"

namespace talus {

struct SstBuilderOptions {
  size_t block_size = 4096;
  int restart_interval = 16;
  double bits_per_key = 5.0;  // Bloom filter budget for this file's run.
  FilterVariant filter_variant = FilterVariant::kLegacy;
};

class SstBuilder {
 public:
  SstBuilder(const SstBuilderOptions& options,
             std::unique_ptr<WritableFile> file);
  SstBuilder(const SstBuilder&) = delete;
  SstBuilder& operator=(const SstBuilder&) = delete;

  /// REQUIRES: internal keys added in strictly increasing order.
  void Add(const Slice& internal_key, const Slice& value);

  /// Writes filter, index, and footer; closes the file.
  Status Finish();

  uint64_t NumEntries() const { return num_entries_; }
  /// Bytes written so far (approximate until Finish()).
  uint64_t FileSize() const { return offset_; }

  const InternalKey& smallest() const { return smallest_; }
  const InternalKey& largest() const { return largest_; }

 private:
  void FlushDataBlock();
  Status WriteBlock(const Slice& contents, BlockHandle* handle);

  SstBuilderOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;

  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::unique_ptr<FilterBlockBuilder> filter_;

  std::string last_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;

  InternalKey smallest_;
  InternalKey largest_;
  Status status_;
};

}  // namespace talus

#endif  // TALUS_TABLE_SST_BUILDER_H_
