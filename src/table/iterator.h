// Iterator: the engine-wide ordered cursor abstraction. Positions are over
// internal keys (user key ⊕ sequence ⊕ type) unless documented otherwise.
#ifndef TALUS_TABLE_ITERATOR_H_
#define TALUS_TABLE_ITERATOR_H_

#include <memory>

#include "util/slice.h"
#include "util/status.h"

namespace talus {

class Iterator {
 public:
  Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  /// REQUIRES: Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

/// An iterator over an empty sequence, optionally carrying an error status.
std::unique_ptr<Iterator> NewEmptyIterator(Status s = Status::OK());

}  // namespace talus

#endif  // TALUS_TABLE_ITERATOR_H_
