// SstReader: read side of the SST format. The index and filter blocks are
// pinned in memory at open (the engine-wide assumption that fence pointers
// and Bloom filters are memory resident — at most one data-block I/O per run
// per point lookup). Data blocks go through the shared block cache.
//
// Thread-safe after Open: Get() and NewIterator() only read the immutable
// index/filter state, pread the file, and touch the internally locked block
// cache, so any number of threads may use one reader concurrently
// (read/table_cache.h hands out shared pins).
#ifndef TALUS_TABLE_SST_READER_H_
#define TALUS_TABLE_SST_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cache/lru_cache.h"
#include "env/env.h"
#include "filter/bloom.h"
#include "format/block.h"
#include "lsm/dbformat.h"
#include "table/sst_format.h"

namespace talus {

class SstReader {
 public:
  /// Opens an SST. `block_cache` may be nullptr (no caching). file_number
  /// namespaces block-cache keys.
  static Status Open(Env* env, const std::string& fname, uint64_t file_number,
                     LruCache* block_cache, std::unique_ptr<SstReader>* reader);

  struct GetStats {
    bool filter_negative = false;  // Bloom filter excluded the run.
    bool block_read = false;       // A data block was fetched from disk.
    bool cache_hit = false;        // Served from block cache.
  };

  /// Point lookup for the newest entry visible at `lkey`. Returns true if
  /// this run decides the key (value found or tombstone). Sets *s to OK or
  /// NotFound accordingly. `fast_path` selects the allocation-free
  /// Block::PointGet search (DESIGN.md §7); false falls back to the
  /// two-iterator seek path. Results and GetStats are identical either way.
  bool Get(const LookupKey& lkey, std::string* value, Status* s,
           GetStats* stats = nullptr, bool fast_path = true);

  /// Iterator over the whole file (internal keys).
  std::unique_ptr<Iterator> NewIterator();

  uint64_t num_data_blocks_read() const {
    return data_blocks_read_.load(std::memory_order_relaxed);
  }

 private:
  SstReader() = default;

  Status ReadDataBlock(const BlockHandle& handle,
                       std::shared_ptr<Block>* block, bool* cache_hit);

  bool GetPointSearch(const LookupKey& lkey, std::string* value, Status* s,
                      GetStats* stats);
  bool GetViaIterators(const LookupKey& lkey, std::string* value, Status* s,
                       GetStats* stats);
  /// Shared tail: classify the entry PointGet/Seek positioned on.
  bool FinishGet(const LookupKey& lkey, const Slice& entry_key,
                 const Slice& entry_value, std::string* value, Status* s);

  class TwoLevelIterator;

  Env* env_ = nullptr;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_ = 0;
  LruCache* block_cache_ = nullptr;

  std::unique_ptr<Block> index_block_;
  std::string filter_data_;
  std::unique_ptr<BloomFilterReader> filter_;

  std::atomic<uint64_t> data_blocks_read_{0};
};

}  // namespace talus

#endif  // TALUS_TABLE_SST_READER_H_
