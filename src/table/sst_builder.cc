#include "table/sst_builder.h"

namespace talus {

SstBuilder::SstBuilder(const SstBuilderOptions& options,
                       std::unique_ptr<WritableFile> file)
    : options_(options),
      file_(std::move(file)),
      data_block_(options.restart_interval, /*internal_key_order=*/true),
      index_block_(1, /*internal_key_order=*/true),
      filter_(NewFilterBuilder(options.filter_variant, options.bits_per_key)) {
}

void SstBuilder::Add(const Slice& internal_key, const Slice& value) {
  if (!status_.ok()) return;
  if (pending_index_entry_) {
    // The previous block's index entry uses its last key as separator; any
    // key ≥ it and < the new first key would work, the last key is simplest.
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  if (num_entries_ == 0) {
    smallest_.DecodeFrom(internal_key);
  }
  largest_.DecodeFrom(internal_key);

  filter_->AddKey(ExtractUserKey(internal_key));
  last_key_.assign(internal_key.data(), internal_key.size());
  data_block_.Add(internal_key, value);
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void SstBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  Slice contents = data_block_.Finish();
  status_ = WriteBlock(contents, &pending_handle_);
  data_block_.Reset();
  if (status_.ok()) {
    pending_index_entry_ = true;
  }
}

Status SstBuilder::WriteBlock(const Slice& contents, BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  Status s = file_->Append(contents);
  if (s.ok()) {
    offset_ += contents.size();
  }
  return s;
}

Status SstBuilder::Finish() {
  FlushDataBlock();
  if (!status_.ok()) return status_;
  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  Footer footer;

  std::string filter_contents = filter_->Finish();
  status_ = WriteBlock(Slice(filter_contents), &footer.filter_handle);
  if (!status_.ok()) return status_;

  Slice index_contents = index_block_.Finish();
  status_ = WriteBlock(index_contents, &footer.index_handle);
  if (!status_.ok()) return status_;

  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(Slice(footer_encoding));
  if (status_.ok()) {
    offset_ += footer_encoding.size();
    // Durability ordering: the file must be stable before the manifest
    // can reference it.
    status_ = file_->Sync();
  }
  if (status_.ok()) {
    status_ = file_->Close();
  }
  return status_;
}

}  // namespace talus
