#include "table/merging_iterator.h"

#include <cassert>

namespace talus {

namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(InternalKeyComparator comparator,
                  std::vector<std::unique_ptr<Iterator>> children)
      : comparator_(comparator),
        children_(std::move(children)),
        current_(nullptr),
        direction_(kForward) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());
    if (direction_ != kForward) {
      // Realign all children to be positioned after current key.
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_.Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kReverse) {
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid()) {
            child->Prev();  // Now before the current key.
          } else {
            child->SeekToLast();  // Everything is before the current key.
          }
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }
  Slice value() const override {
    assert(Valid());
    return current_->value();
  }
  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid() &&
          (smallest == nullptr ||
           comparator_.Compare(child->key(), smallest->key()) < 0)) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& child : children_) {
      if (child->Valid() &&
          (largest == nullptr ||
           comparator_.Compare(child->key(), largest->key()) > 0)) {
        largest = child.get();
      }
    }
    current_ = largest;
  }

  InternalKeyComparator comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    InternalKeyComparator comparator,
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return NewEmptyIterator();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(comparator, std::move(children));
}

}  // namespace talus
