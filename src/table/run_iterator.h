// RunIterator: iterates one sorted run — a sequence of key-disjoint,
// ordered SST files — as a single concatenated key space with lazy reader
// opening. Shared by the DB read path (pinned scans) and the compaction
// executor (merge inputs).
#ifndef TALUS_TABLE_RUN_ITERATOR_H_
#define TALUS_TABLE_RUN_ITERATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "lsm/version.h"
#include "table/iterator.h"
#include "table/sst_reader.h"

namespace talus {

// `open` returns a pinned handle; the iterator holds the pin for the file it
// is currently positioned in, so a table-cache eviction cannot close the
// reader mid-iteration.
class RunIterator final : public Iterator {
 public:
  RunIterator(std::vector<FileMetaPtr> files,
              std::function<std::shared_ptr<SstReader>(uint64_t)> open);

  bool Valid() const override;
  void SeekToFirst() override;
  void SeekToLast() override;
  void Seek(const Slice& target) override;
  void Next() override;
  void Prev() override;
  Slice key() const override;
  Slice value() const override;
  Status status() const override;

 private:
  void InitFile();
  void SkipForward();
  void SkipBackward();

  std::vector<FileMetaPtr> files_;
  std::function<std::shared_ptr<SstReader>(uint64_t)> open_;
  size_t index_ = 0;
  // Declared before iter_ so the iterator (which points into the reader) is
  // destroyed first.
  std::shared_ptr<SstReader> reader_;
  std::unique_ptr<Iterator> iter_;
  Status status_;
};

}  // namespace talus

#endif  // TALUS_TABLE_RUN_ITERATOR_H_
