#include "workload/generator.h"

#include <cmath>
#include <cstdio>

namespace talus {
namespace workload {

namespace {

class UniformPicker final : public KeyPicker {
 public:
  explicit UniformPicker(uint64_t n) : n_(n) {}
  uint64_t Next(Random* rnd) override { return rnd->Uniform(n_); }

 private:
  uint64_t n_;
};

// YCSB Zipfian over [0, n) with scrambling so hot keys spread across the
// key space (matching YCSB's ScrambledZipfianGenerator).
class ZipfianPicker final : public KeyPicker {
 public:
  ZipfianPicker(uint64_t n, double theta) : n_(n), theta_(theta) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Random* rnd) override {
    const double u = rnd->NextDouble();
    const double uz = u * zetan_;
    uint64_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<uint64_t>(
          static_cast<double>(n_) *
          std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= n_) rank = n_ - 1;
    }
    return FnvHash64(rank) % n_;  // Scramble.
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Exact for small n; sampled tail approximation keeps construction O(1M)
    // bounded for large key spaces.
    double sum = 0;
    const uint64_t exact = n < 10000000 ? n : 10000000;
    for (uint64_t i = 1; i <= exact; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (exact < n) {
      // Integral approximation of the remainder.
      const double a = static_cast<double>(exact);
      const double b = static_cast<double>(n);
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

// §5.3 skewed distribution: two uniform distributions U_h (hot) and U_c
// (cold). The hot set occupies the front of the scrambled index space.
class HotColdPicker final : public KeyPicker {
 public:
  HotColdPicker(uint64_t n, uint64_t hot, double hot_probability)
      : n_(n), hot_(hot < n ? hot : n), p_(hot_probability) {}

  uint64_t Next(Random* rnd) override {
    if (rnd->NextDouble() < p_) {
      return FnvHash64(rnd->Uniform(hot_)) % n_;  // Hot: scrambled subset.
    }
    return rnd->Uniform(n_);
  }

 private:
  uint64_t n_;
  uint64_t hot_;
  double p_;
};

}  // namespace

std::unique_ptr<KeyPicker> NewKeyPicker(const KeySpaceSpec& spec) {
  switch (spec.distribution) {
    case Distribution::kUniform:
      return std::make_unique<UniformPicker>(spec.num_keys);
    case Distribution::kZipfian:
      return std::make_unique<ZipfianPicker>(spec.num_keys,
                                             spec.zipfian_theta);
    case Distribution::kHotCold:
      return std::make_unique<HotColdPicker>(spec.num_keys, spec.hot_keys,
                                             spec.hot_probability);
  }
  return std::make_unique<UniformPicker>(spec.num_keys);
}

std::string FormatKey(uint64_t index, size_t key_size) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "user%016llu",
                              static_cast<unsigned long long>(index));
  std::string key(buf, static_cast<size_t>(n));
  if (key.size() < key_size) {
    key.append(key_size - key.size(), '.');
  }
  return key;
}

std::string MakeValue(uint64_t index, uint64_t version, size_t value_size) {
  std::string value;
  value.reserve(value_size);
  char buf[48];
  const int n = std::snprintf(buf, sizeof(buf), "v%llu.%llu|",
                              static_cast<unsigned long long>(index),
                              static_cast<unsigned long long>(version));
  value.assign(buf, static_cast<size_t>(n));
  // Deterministic filler derived from (index, version).
  uint64_t state = index * 0x9E3779B97F4A7C15ull + version;
  while (value.size() < value_size) {
    state = Random::SplitMix(&state);
    value.push_back('a' + static_cast<char>(state % 26));
  }
  value.resize(value_size);
  return value;
}

OpMix ReadHeavyMix() { return OpMix{0.1, 0.9, 0.0}; }
OpMix BalancedMix() { return OpMix{0.5, 0.5, 0.0}; }
OpMix WriteHeavyMix() { return OpMix{0.9, 0.1, 0.0}; }
OpMix RangeScanMix() { return OpMix{0.75, 0.0, 0.25}; }

OpStream::OpStream(const KeySpaceSpec& keys, const OpMix& mix, uint64_t seed)
    : spec_(keys), mix_(mix), rnd_(seed), picker_(NewKeyPicker(keys)) {}

Op OpStream::Next() {
  const double total =
      mix_.updates + mix_.point_lookups + mix_.range_lookups;
  const double u = rnd_.NextDouble() * (total > 0 ? total : 1.0);
  OpType type;
  if (u < mix_.updates) {
    type = OpType::kUpdate;
  } else if (u < mix_.updates + mix_.point_lookups) {
    type = OpType::kPointLookup;
  } else {
    type = OpType::kRangeLookup;
  }
  return Op{type, picker_->Next(&rnd_)};
}

}  // namespace workload
}  // namespace talus
