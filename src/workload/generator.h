// YCSB-style workload synthesis: key distributions (uniform, scrambled
// Zipfian, §5.3 hot/cold two-uniform mixture), operation mixes, and a
// deterministic operation stream.
#ifndef TALUS_WORKLOAD_GENERATOR_H_
#define TALUS_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"

namespace talus {
namespace workload {

enum class Distribution {
  kUniform,
  kZipfian,  // YCSB scrambled Zipfian, theta = 0.99.
  kHotCold,  // §5.3: a small hot set hit with probability hot_fraction.
};

struct KeySpaceSpec {
  uint64_t num_keys = 100000;  // Distinct logical keys.
  size_t key_size = 16;        // Bytes (padded, >= 12).
  size_t value_size = 100;     // Bytes.
  Distribution distribution = Distribution::kUniform;
  double zipfian_theta = 0.99;
  // Hot/cold parameters (kHotCold): |U_h| keys receive `hot_probability`
  // of all accesses.
  uint64_t hot_keys = 1000;
  double hot_probability = 0.9;
};

/// Picks key indices in [0, num_keys) under the configured distribution.
class KeyPicker {
 public:
  virtual ~KeyPicker() = default;
  virtual uint64_t Next(Random* rnd) = 0;
};

std::unique_ptr<KeyPicker> NewKeyPicker(const KeySpaceSpec& spec);

/// Formats key index i as a fixed-width key ("user" + zero-padded decimal,
/// padded with '.' to key_size). Lexicographic order == numeric order.
std::string FormatKey(uint64_t index, size_t key_size);

/// Deterministic value payload for (key index, version).
std::string MakeValue(uint64_t index, uint64_t version, size_t value_size);

enum class OpType { kUpdate, kPointLookup, kRangeLookup };

struct OpMix {
  double updates = 0.5;
  double point_lookups = 0.5;
  double range_lookups = 0.0;
};

/// Paper workload presets (§7): percentages of (updates, points, ranges).
OpMix ReadHeavyMix();    // 10% updates, 90% point lookups.
OpMix BalancedMix();     // 50% / 50%.
OpMix WriteHeavyMix();   // 90% updates, 10% point lookups.
OpMix RangeScanMix();    // 75% updates, 25% range lookups.

struct Op {
  OpType type;
  uint64_t key_index;
};

/// Deterministic operation stream: same seed → same ops.
class OpStream {
 public:
  OpStream(const KeySpaceSpec& keys, const OpMix& mix, uint64_t seed);

  Op Next();

 private:
  KeySpaceSpec spec_;
  OpMix mix_;
  Random rnd_;
  std::unique_ptr<KeyPicker> picker_;
};

}  // namespace workload
}  // namespace talus

#endif  // TALUS_WORKLOAD_GENERATOR_H_
