// DB: the talus storage engine facade. Two execution modes (DESIGN.md §2):
//
//  * ExecutionMode::kInline (default): flushes and compactions run inline on
//    the write path, which (a) makes every experiment deterministic and
//    (b) surfaces compaction-induced write stalls directly in the
//    windowed-throughput metric — the same phenomenon the paper measures
//    through background-compaction backpressure.
//  * ExecutionMode::kBackground: the write path only switches a full
//    memtable onto an immutable queue; flushes and compactions execute as
//    prioritized jobs on a thread pool (exec/job_scheduler.h) and writers
//    are paced by slowdown/stop backpressure (exec/stall_controller.h).
//    Put/Delete/Write/Get/Scan/snapshots are then safe to call from any
//    number of threads.
//
// Locking: one mutex guards the mutable DB state (memtables, version
// pointer, WAL, stats, snapshots, GC list). The read path does NOT hold it:
// Get/Scan/NewIterator pin a read::ReadView in one O(1) critical section and
// then run lock-free against the immutable Version, the lock-free-read
// memtables, and the sharded table cache (DESIGN.md §2.3/§2.7). The write
// path holds it only for two short critical sections per commit group:
// writers funnel through a group-commit queue (write/write_queue.h), and the
// group leader performs the WAL append, the amortized sync, and the memtable
// inserts with the mutex released (DESIGN.md §2.9). Background flush jobs
// drop the mutex while building SST files from an immutable memtable, and
// background compactions drop it for their whole merge stage (plan → merge →
// conflict-checked install, DESIGN.md §2.8); all metadata installation
// happens with the mutex held.
#ifndef TALUS_LSM_DB_H_
#define TALUS_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <set>

#include "cache/lru_cache.h"
#include "compaction/compaction_executor.h"
#include "compaction/compaction_plan.h"
#include "exec/job_scheduler.h"
#include "exec/stall_controller.h"
#include "exec/thread_pool.h"
#include "lsm/manifest.h"
#include "lsm/options.h"
#include "lsm/version.h"
#include "lsm/write_batch.h"
#include "mem/memtable.h"
#include "metrics/write_stats.h"
#include "obs/amp_tracker.h"
#include "obs/event_ring.h"
#include "obs/latency_recorder.h"
#include "obs/model_drift.h"
#include "obs/stats_snapshotter.h"
#include "policy/growth_policy.h"
#include "read/read_view.h"
#include "read/table_cache.h"
#include "tune/adaptive_tuner.h"
#include "wal/log_writer.h"
#include "write/write_queue.h"

namespace talus {

namespace shard {
class ShardedDB;
}  // namespace shard

/// Cumulative engine statistics (virtual-clock based where noted).
/// Write-path fields are updated under the DB mutex; read-path fields are
/// relaxed atomics because Get/Scan run without the mutex (DESIGN.md §2.7).
/// Copying takes a field-wise snapshot.
struct EngineStats {
  // Write path.
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t flush_bytes_read = 0;  // Existing-SST bytes read by flush merges.
  uint64_t flush_bytes_written = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t user_payload_written = 0;  // Key+value bytes accepted from users.
  // Merge results discarded because a concurrent flush reshaped the plan's
  // inputs before install; the work was retried (DESIGN.md §2.8).
  uint64_t compaction_conflicts = 0;

  // Read path (mutex-free increments).
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> gets_found{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> runs_probed{0};
  std::atomic<uint64_t> filter_negatives{0};
  std::atomic<uint64_t> data_block_reads{0};
  std::atomic<uint64_t> block_cache_hits{0};

  // Obsolete SSTs physically deleted after their deferred-GC pin count
  // dropped to zero (DESIGN.md §2.7).
  uint64_t obsolete_files_deleted = 0;

  // Longest single inline flush+compaction stall, in virtual clock units.
  double max_stall_clock = 0;

  // Background execution mode (all zero under kInline).
  uint64_t memtable_switches = 0;   // Active → immutable handoffs.
  uint64_t bg_flushes = 0;          // Flushes executed by background jobs.
  uint64_t bg_compactions = 0;      // Compactions executed by background jobs.
  uint64_t stall_slowdowns = 0;     // Writes delayed by the slowdown regime.
  uint64_t stall_stops = 0;         // Writes blocked until debt retired.
  uint64_t stall_micros = 0;        // Wall time writers spent stalled (total).
  // Stall time split by regime (slowdown + stop == stall_micros) and stall
  // entries split by cause, so talus.stats says *why* writes stalled:
  // memtable = immutable-memtable debt, l0 = level-0 run debt.
  uint64_t stall_slowdown_micros = 0;
  uint64_t stall_stop_micros = 0;
  uint64_t stall_slowdowns_memtable = 0;
  uint64_t stall_slowdowns_l0 = 0;
  uint64_t stall_stops_memtable = 0;
  uint64_t stall_stops_l0 = 0;
  uint64_t max_imm_queue_depth = 0; // High-water immutable-memtable count.

  // Per-output-level compaction accounting (index = output level).
  struct LevelStats {
    uint64_t compactions = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };
  std::vector<LevelStats> level_stats;

  EngineStats() = default;
  EngineStats(const EngineStats& o) { *this = o; }
  EngineStats& operator=(const EngineStats& o) {
    puts = o.puts;
    deletes = o.deletes;
    flushes = o.flushes;
    compactions = o.compactions;
    flush_bytes_read = o.flush_bytes_read;
    flush_bytes_written = o.flush_bytes_written;
    compaction_bytes_read = o.compaction_bytes_read;
    compaction_bytes_written = o.compaction_bytes_written;
    user_payload_written = o.user_payload_written;
    compaction_conflicts = o.compaction_conflicts;
    gets.store(o.gets.load());
    gets_found.store(o.gets_found.load());
    scans.store(o.scans.load());
    runs_probed.store(o.runs_probed.load());
    filter_negatives.store(o.filter_negatives.load());
    data_block_reads.store(o.data_block_reads.load());
    block_cache_hits.store(o.block_cache_hits.load());
    obsolete_files_deleted = o.obsolete_files_deleted;
    max_stall_clock = o.max_stall_clock;
    memtable_switches = o.memtable_switches;
    bg_flushes = o.bg_flushes;
    bg_compactions = o.bg_compactions;
    stall_slowdowns = o.stall_slowdowns;
    stall_stops = o.stall_stops;
    stall_micros = o.stall_micros;
    stall_slowdown_micros = o.stall_slowdown_micros;
    stall_stop_micros = o.stall_stop_micros;
    stall_slowdowns_memtable = o.stall_slowdowns_memtable;
    stall_slowdowns_l0 = o.stall_slowdowns_l0;
    stall_stops_memtable = o.stall_stops_memtable;
    stall_stops_l0 = o.stall_stops_l0;
    max_imm_queue_depth = o.max_imm_queue_depth;
    level_stats = o.level_stats;
    return *this;
  }

  /// Physical bytes written per user payload byte.
  double WriteAmplification() const {
    if (user_payload_written == 0) return 0;
    return static_cast<double>(flush_bytes_written +
                               compaction_bytes_written) /
           static_cast<double>(user_payload_written);
  }
  /// Mean sorted runs probed per point lookup.
  double ReadAmplification() const {
    if (gets == 0) return 0;
    return static_cast<double>(runs_probed) / static_cast<double>(gets);
  }
};

/// Read view pinned at a point in time. Obtained from DB::GetSnapshot();
/// versions visible to a live snapshot survive compactions until the
/// snapshot is released.
class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  friend class shard::ShardedDB;  // Cross-shard snapshots (DESIGN.md §3).
  explicit Snapshot(SequenceNumber s) : sequence_(s) {}
  SequenceNumber sequence_;
};

class DB {
 public:
  static Status Open(const DbOptions& options, std::unique_ptr<DB>* dbptr);
  ~DB();
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  /// Applies the batch atomically (one WAL record, contiguous sequences).
  /// Batches naming an empty key fail with InvalidArgument as a whole —
  /// their commit group is unaffected (DESIGN.md §2.9).
  Status Write(const WriteBatch& batch);
  /// Sharding layer only (DESIGN.md §3): commits `batch` at a sequence
  /// range the caller pre-claimed from the shared SequenceAllocator
  /// ([base_seq, base_seq + batch.Count())). The range is NOT published to
  /// the allocator here — the caller publishes once every shard of a
  /// multi-shard batch has applied its part, making the batch atomic under
  /// the cross-shard visibility watermark. Requires
  /// DbOptions::sequence_allocator.
  Status WriteAt(const WriteBatch& batch, SequenceNumber base_seq);
  Status Get(const Slice& key, std::string* value);
  /// Point lookup against a pinned snapshot (nullptr = latest).
  Status Get(const Slice& key, std::string* value, const Snapshot* snapshot);

  /// Pins the current state for repeatable reads. Must be released.
  const Snapshot* GetSnapshot();
  /// Registers a snapshot at an externally-chosen sequence (the sharding
  /// layer pins every shard at one global sequence). Must be released like
  /// any snapshot.
  const Snapshot* GetSnapshotAt(SequenceNumber sequence);
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Manual major compaction: merges every run into a single run at the
  /// bottommost non-empty level (reclaims tombstones and shadowed
  /// versions not pinned by snapshots). In background mode, drains pending
  /// background work first.
  Status CompactAll();

  /// Introspection. Returns false for unknown names. Every property is
  /// also fetchable over the wire via the PROPERTY opcode
  /// (docs/PROTOCOL.md) when the DB is served by server::Server; the
  /// operator-facing guide to reading them is docs/OPERATIONS.md.
  ///   "talus.stats"      engine counters, incl. stall split by regime/cause
  ///   "talus.levels"     per-level shape
  ///   "talus.cstats"     per-level compaction accounting
  ///   "talus.num-runs"   total sorted runs
  ///   "talus.data-bytes" approximate live logical bytes
  ///   "talus.exec"       background execution / scheduler state
  ///   "talus.latency"    per-op latency histograms, one line per op:
  ///                      `op=put count=N p50_us=.. p99_us=.. p999_us=..
  ///                      max_us=.. avg_us=..` (empty string when
  ///                      enable_latency_stats is off; DESIGN.md §6.1)
  ///   "talus.events"     the in-memory event ring, oldest first:
  ///                      `t_us=.. seq=.. shard=.. event=.. a=.. b=..`
  ///                      (DESIGN.md §6.2)
  ///   "talus.amp"        per-level amplification accounting, cumulative
  ///                      then windowed (empty when enable_amp_stats is
  ///                      off; DESIGN.md §6.6)
  ///   "talus.model"      cost-model drift: predicted vs measured per-op
  ///                      cost for the active policy's design. Evaluates
  ///                      one window (advancing it) and emits kAmpSample /
  ///                      kModelDrift events (DESIGN.md §6.7)
  ///   "talus.snapshots"  the stats snapshotter's in-memory ring, one JSON
  ///                      sample per line, oldest first (empty unless
  ///                      stats_snapshot_interval_ms > 0; DESIGN.md §6.8)
  ///   "talus.tune"       adaptive-tuner state: active policy, decision
  ///                      counters, last predicted costs/gain ("enabled=0"
  ///                      when adaptive_tuning is off; DESIGN.md §9)
  bool GetProperty(const std::string& property, std::string* value);

  /// Collects up to `count` live entries with user key >= start, in order.
  /// Runs on a pinned ReadView without the DB mutex, so it observes a
  /// consistent snapshot while writers and background maintenance proceed.
  Status Scan(const Slice& start, size_t count,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Forward iterator over live user keys (tombstones and shadowed versions
  /// skipped). Prev() is not supported. The iterator owns a ReadView: it
  /// pins the memtables AND the on-disk files it reads, observes the
  /// snapshot current at creation time, and survives concurrent flushes and
  /// compactions (obsolete files are deleted only after release). Must not
  /// outlive the DB.
  std::unique_ptr<Iterator> NewIterator();
  /// NewIterator pinned at an explicit visibility bound instead of the
  /// engine's latest sequence: entries written after `sequence` are
  /// invisible. The sharding layer pins every shard's iterator at one
  /// global sequence so a cross-shard scan is a consistent snapshot.
  std::unique_ptr<Iterator> NewIteratorAt(SequenceNumber sequence);

  /// Pins {version, memtables, sequence} in one O(1) critical section. The
  /// returned view keeps every SST it references alive; releasing the last
  /// reference returns the pins and lets deferred GC reclaim files.
  std::shared_ptr<const read::ReadView> AcquireReadView();

  /// Forces a memtable flush (and any compactions it triggers). In
  /// background mode, blocks until the flush and its compactions complete.
  Status FlushMemTable();

  /// Not synchronized: meaningful only while no background job is running,
  /// and the reference is valid only until the next flush or compaction
  /// installs a successor version.
  const Version& current_version() const { return *current_; }
  /// Not synchronized: field reads may race background jobs in kBackground
  /// mode; quiesce (FlushMemTable) before precise accounting.
  const EngineStats& stats() const { return stats_; }
  /// Snapshot of the write pipeline's group-commit counters (§2.9).
  metrics::GroupCommitStats GetGroupCommitStats() const;
  /// Per-op latency recorder; null when enable_latency_stats is off.
  obs::LatencyRecorder* latency_recorder() { return latency_.get(); }
  /// Per-level amplification tracker; null when enable_amp_stats is off.
  obs::AmpTracker* amp_tracker() { return amp_.get(); }
  /// Cumulative amp snapshot with live per-level space filled in from the
  /// current version (takes the mutex briefly). All-zero when
  /// enable_amp_stats is off. The sharding layer merges these per-shard
  /// snapshots into fleet-wide talus.amp.
  obs::AmpSnapshot GetAmpSnapshot() const;
  /// Evaluates one drift window against the active policy's cost model:
  /// feeds the windowed workload mix and windowed amp measurements into
  /// the model, emits a kAmpSample event (and kModelDrift when drift
  /// crosses the thresholds), then starts a new window. Returns a default
  /// sample when enable_amp_stats is off.
  obs::DriftSample EvaluateModelDrift();
  /// Time-series snapshotter; null unless stats_snapshot_interval_ms > 0.
  obs::StatsSnapshotter* stats_snapshotter() { return snapshotter_.get(); }
  /// Event ring (owned or borrowed via DbOptions::event_ring); never null.
  obs::EventRing* event_ring() { return ring_; }
  /// SnapshotAll() of the recorder, indexed by obs::OpType; all-empty
  /// histograms when latency stats are disabled. The sharding layer merges
  /// these per-shard vectors into fleet-wide talus.latency.
  std::vector<Histogram> GetLatencyHistograms() const;
  /// Prometheus text exposition of the engine counters and latency
  /// histograms (talus_* families; DESIGN.md §6.4).
  std::string DumpPrometheus() const;
  /// Largest sequence this engine has committed (recovery/sharding
  /// bookkeeping; takes the mutex).
  SequenceNumber LastSequence() const;
  GrowthPolicy* policy() { return policy_.get(); }

  // ---- Adaptive tuning: the sense→act loop (src/tune/, DESIGN.md §9) ----
  /// Installs `config` as the live growth policy without downtime: the new
  /// policy is swapped in under the DB mutex (after waiting out any active
  /// compaction chain), the drift monitor is re-anchored to the new design,
  /// a kPolicyChange event is emitted, the manifest persists the new config
  /// (so a reopen with adaptive_tuning resumes under it), and catch-up
  /// compactions converge the on-disk layout toward the new shape through
  /// the existing pipeline — subsequent flush/compaction planning follows
  /// the new policy automatically. Concurrent writers keep running: merges
  /// release the mutex in background mode exactly like policy-driven
  /// compactions, so the only write pressure is the usual backpressure.
  /// A config equal to the current one is a no-op. Scan results are
  /// unaffected — a policy shapes the tree, never its contents.
  Status ApplyPolicyConfig(const GrowthPolicyConfig& config);
  /// The config of the policy currently installed (reflects runtime
  /// retunes; takes the mutex).
  GrowthPolicyConfig CurrentPolicyConfig() const;
  /// One adaptive-tuning decision pass: consumes one drift window
  /// (EvaluateModelDrift, emitting kAmpSample/kModelDrift), runs the
  /// navigator, and applies a winning design via ApplyPolicyConfig. The
  /// tuner's timer calls this each interval; the sharded fleet timer and
  /// tests call it directly. No-op default decision when adaptive tuning
  /// is off.
  tune::TuneDecision RetuneNow();
  /// Per-engine tuner state; null unless adaptive tuning is active.
  tune::AdaptiveTuner* adaptive_tuner() { return tuner_.get(); }
  Env* env() { return options_.env; }
  const DbOptions& options() const { return options_; }
  LruCache* block_cache() { return block_cache_.get(); }
  read::TableCache* table_cache() { return table_cache_.get(); }

  /// Live logical data size: latest-version key+value bytes across tree and
  /// memtable (upper bound — shadowed versions in overlapping runs counted
  /// once per run).
  uint64_t ApproximateDataBytes() const;

  std::string DebugString() const;

 private:
  DB(const DbOptions& options);

  /// An immutable memtable awaiting flush, with the WAL that covers it.
  struct ImmPartition {
    std::shared_ptr<MemTable> mem;
    uint64_t wal_number = 0;
  };

  /// Per-call read-path counters, folded into stats_ under one brief lock.
  struct ReadProbeStats {
    uint64_t runs_probed = 0;
    uint64_t filter_negatives = 0;
    uint64_t block_reads = 0;
    uint64_t cache_hits = 0;
    // Per-level attribution for the amp tracker (filled only when amp
    // accounting is on; folded once per Get).
    obs::LookupProbe amp;
  };

  // ---- Group-commit write pipeline (DESIGN.md §2.9) ----
  /// Shared body of Put/Delete/Write: joins the writer queue, and — when
  /// this call wins leadership — commits a whole batch group: one short
  /// mutex section gates on stall/bg_error and claims the sequence range,
  /// then WAL append + amortized sync + memtable inserts run with the mutex
  /// released, and a second short section publishes last_sequence_, stats,
  /// and the flush trigger. Sequences are published only after durability
  /// and the inserts succeed, so a failed WAL append leaks nothing; the
  /// failure also latches wal_error_ (see its comment) so the range is
  /// never re-claimed.
  Status CommitGroup(const WriteBatch& my_batch);
  /// CommitGroup body over a caller-prepared writer (WriteAt sets the
  /// preassigned-sequence fields before joining the queue).
  Status CommitWriter(write::Writer* w);
  /// Applies wal_sync_mode: issues (or skips) the group's WAL sync. Leader
  /// only, mutex released. *synced reports whether an fsync was issued.
  Status MaybeSyncWal(wal::LogWriter* wal, bool* synced);
  Status MaybeStallLocked(std::unique_lock<std::mutex>& lock);
  Status SwitchMemTableLocked();
  SequenceNumber SmallestLiveSnapshotLocked() const;
  uint64_t ApproximateDataBytesLocked() const;

  // ---- Read path (mutex-free after the view pin; DESIGN.md §2.7) ----
  std::shared_ptr<const read::ReadView> AcquireReadViewLocked();
  /// View pinned at an explicit visibility bound (cross-shard snapshots).
  std::shared_ptr<const read::ReadView> AcquireReadViewAtLocked(
      SequenceNumber sequence);
  /// shared_ptr deleter target: returns the view's pins and runs GC.
  void ReleaseReadView(const read::ReadView* view);
  Status GetFromView(const read::ReadView& view, const LookupKey& lkey,
                     std::string* value, ReadProbeStats* probe);
  std::unique_ptr<Iterator> NewPinnedIterator(
      std::shared_ptr<const read::ReadView> view);

  // ---- Version lifecycle and obsolete-file GC ----
  /// Installs `next` as the current version (refs it, unrefs the old one).
  void InstallVersionLocked(std::unique_ptr<Version> next);
  /// Installs a padded copy when the current version has fewer than
  /// `min_levels` levels (versions are immutable; EnsureLevels on the
  /// current version would race lock-free readers).
  void EnsurePaddedLocked(size_t min_levels);
  /// Queues files dropped from the latest version for deferred deletion.
  void MarkObsoleteLocked(std::vector<FileMetaPtr> files);
  /// Physically deletes queued files whose last reference is the queue
  /// itself (no version, view, or iterator still points at them).
  Status CollectObsoleteLocked();

  /// Full inline flush: memtable → L0, compaction loop, WAL rotation.
  Status DoFlushLocked(std::unique_lock<std::mutex>& lock);
  /// Shared flush core: merges `mem` into L0 per the policy's FlushMode.
  /// When `allow_unlock` is set (background tiering flushes), the mutex is
  /// released while SST files are built.
  Status FlushMemToL0Locked(MemTable* mem, std::unique_lock<std::mutex>& lock,
                            bool allow_unlock,
                            std::vector<FileMetaPtr>* obsolete);
  Status RunCompactionLoopLocked(std::unique_lock<std::mutex>& lock,
                                 bool background);

  // ---- Compaction pipeline: plan → merge → install (DESIGN.md §2.8) ----
  /// Resolves `req` against the current version into an immutable plan
  /// (bits-per-key, smallest snapshot, and subcompaction boundaries are
  /// captured here so the merge needs no DB state).
  Status PlanForRequestLocked(const CompactionRequest& req,
                              compaction::CompactionPlan* plan);
  /// Shared merge → conflict-check → install-version core of the pipeline.
  /// With `allow_unlock` the mutex is released for the merge stage and the
  /// install is conflict-checked: on a conflict the outputs are deleted,
  /// *installed stays false, and OK is returned — the caller re-plans
  /// against the fresh version. Without it the whole pipeline runs under
  /// the mutex and a conflict is impossible. On success the consumed files
  /// are appended to *obsolete and *result carries the merge accounting;
  /// the caller owns stats attribution and manifest installation.
  Status ExecutePlanLocked(
      const compaction::CompactionPlan& plan,
      std::unique_lock<std::mutex>& lock, bool allow_unlock,
      const compaction::CompactionExecutor::ExtraInputFactory& extra,
      compaction::CompactionExecutor::Result* result,
      std::vector<FileMetaPtr>* obsolete, bool* installed);
  /// Runs one policy request through plan + ExecutePlanLocked + compaction
  /// stats + manifest install. In inline mode (allow_unlock = false) this
  /// behaves bit-identically to the pre-pipeline engine.
  Status RunCompactionRequestLocked(const CompactionRequest& req,
                                    std::unique_lock<std::mutex>& lock,
                                    bool allow_unlock, bool* installed);
  /// Background leveling flush: merges `mem` (pinned by the caller across
  /// the unlock) with level 0's newest run via the executor with the mutex
  /// released, retrying on install conflicts. *merged stays false when the
  /// conflict-retry budget is exhausted; the caller then merges under the
  /// mutex instead.
  Status FlushMergeIntoRunPipelined(MemTable* mem,
                                    std::unique_lock<std::mutex>& lock,
                                    std::vector<FileMetaPtr>* obsolete,
                                    bool* merged);
  /// Deletes merge outputs that never entered a version (failed or
  /// conflicted merges). They are invisible to every reader, so immediate
  /// removal is safe.
  void DeleteUninstalledOutputs(const std::vector<FileMetaPtr>& outputs);
  /// Output-file geometry shared by flush and compaction sorted-output
  /// passes.
  compaction::OutputShape OutputShapeForDb();

  /// Converges a freshly switched-to leveled shape: merges every
  /// multi-run level into a single run (same-level, kReplaceInputs)
  /// through the normal pipeline, re-planning against the fresh version
  /// after each install or conflict. Tiering targets need no catch-up —
  /// they absorb any shape. Bounded attempts; leftover work is picked up
  /// by the policy's own loop.
  Status CatchUpCompactionsLocked(std::unique_lock<std::mutex>& lock);

  Status InstallManifestLocked();
  Status NewWalLocked();
  Status RecoverWalsLocked(uint64_t oldest_wal,
                           std::vector<uint64_t>* replayed);
  uint64_t OldestLiveWalLocked() const;
  double BitsPerKeyForLevelLocked(int level) const;

  // Background job bodies (run on pool threads). The outer functions wrap
  // the *Locked bodies with bg_jobs_pending_ bookkeeping.
  Status BackgroundFlush();
  Status BackgroundFlushLocked(std::unique_lock<std::mutex>& lock);
  Status BackgroundCompaction();
  void ScheduleFlushLocked();
  void ScheduleCompactionLocked();
  /// Reports this shard's write debt (immutable queue depth, L0 run count)
  /// to the sharded store's unified backpressure view. No-op unless
  /// DbOptions::shard_backpressure is set.
  void ReportBackpressureLocked();

  bool is_background() const {
    return options_.execution_mode == ExecutionMode::kBackground;
  }

  DbOptions options_;
  std::unique_ptr<GrowthPolicy> policy_;
  std::unique_ptr<LruCache> block_cache_;
  std::unique_ptr<read::TableCache> table_cache_;
  // Merge-stage executor (src/compaction/). Stateless apart from
  // observability counters; safe to call with the mutex released.
  std::unique_ptr<compaction::CompactionExecutor> compaction_exec_;

  // Guards every mutable field below unless noted otherwise.
  mutable std::mutex mutex_;
  // Signaled when background work completes (stalled writers, FlushMemTable
  // waiters re-check their conditions).
  std::condition_variable bg_cv_;

  std::shared_ptr<MemTable> mem_;
  std::deque<ImmPartition> imm_;  // Oldest first; back() is newest.
  std::unique_ptr<wal::LogWriter> wal_;
  uint64_t wal_number_ = 0;

  // ---- Group-commit write pipeline (DESIGN.md §2.9) ----
  // The writer queue has its own internal lock, taken either with no other
  // lock held or inside mutex_ (never the reverse).
  std::unique_ptr<write::WriteQueue> write_queue_;
  // Group-commit counters; updated and snapshotted under mutex_.
  metrics::GroupCommitTracker write_stats_;
  // True while a group leader is appending to the WAL / inserting into
  // mem_ with the mutex released. FlushMemTable waits for it to clear
  // before switching or flushing the active memtable, so a mid-commit
  // insert is never flushed out from under its group.
  bool commit_in_flight_ = false;
  // kInterval sync bookkeeping. Leader-only: reads and writes happen off
  // the mutex but are serialized (and ordered) by queue leadership handoff.
  uint64_t last_wal_sync_micros_ = 0;
  // First write-path WAL append/sync failure; all subsequent writes fail
  // fast with it (reads and flushes of already-committed state continue).
  // Latching is what keeps sequences unique: a failed append may still
  // have persisted its record, so re-claiming the failed group's range
  // could otherwise put two records with the same base_seq in the WAL and
  // make recovery replay duplicate sequences.
  Status wal_error_;

  // Current version. Heap-allocated and refcounted: the DB holds one
  // reference, every ReadView one more. Mutations install a successor copy
  // (InstallVersionLocked) instead of editing in place, so lock-free
  // readers always walk an immutable object.
  Version* current_ = nullptr;
  // Obsolete SSTs awaiting deletion: each entry is the GC queue's own
  // reference; a file is deleted when that reference is the last one.
  std::vector<FileMetaPtr> gc_pending_;
  // Mirror of gc_pending_.size(): lets view release skip the mutex when
  // nothing is queued.
  std::atomic<size_t> gc_pending_count_{0};

  // Atomic so background SST builds can allocate file numbers while the
  // mutex is released.
  std::atomic<uint64_t> next_file_number_{1};
  uint64_t next_run_id_ = 1;
  uint64_t manifest_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  uint64_t flush_count_ = 0;

  // Live operation-mix estimator, shared with self-designing policies.
  WorkloadMixTracker mix_tracker_;

  // Sequences pinned by live snapshots (multiset: snapshots may coincide).
  std::multiset<SequenceNumber> snapshot_seqs_;

  EngineStats stats_;

  // ---- Observability (src/obs/, DESIGN.md §6) ----
  // Null when enable_latency_stats is off: the hot paths then skip both the
  // clock reads and the recorder stores (ScopedOpTimer's null fast path).
  std::unique_ptr<obs::LatencyRecorder> latency_;
  // ring_ points at owned_ring_ unless DbOptions::event_ring lends a shared
  // one (sharded stores). Emits happen inside and outside mutex_; the ring
  // has its own lock.
  std::unique_ptr<obs::EventRing> owned_ring_;
  obs::EventRing* ring_ = nullptr;
  // Null when enable_amp_stats is off (the read path then skips the probe
  // fold, mirroring latency_'s null fast path). Write-side hooks run under
  // mutex_; the tracker itself is lock-free.
  std::unique_ptr<obs::AmpTracker> amp_;
  // Null when amp stats are off (drift needs measured amplification).
  std::unique_ptr<obs::ModelDriftMonitor> drift_;
  // Null unless stats_snapshot_interval_ms > 0. ~DB stops it first thing:
  // its samples read engine state and may run on the shared pool, so it
  // must quiesce before anything else is torn down.
  std::unique_ptr<obs::StatsSnapshotter> snapshotter_;
  // Adaptive tuner (null unless adaptive_tuning is active): decision state
  // plus, for a standalone DB, the timer driving RetuneNow. Stopped first
  // in ~DB for the same reason as the snapshotter.
  std::unique_ptr<tune::AdaptiveTuner> tuner_;
  /// Fills the per-level live_sst/live_payload fields from current_.
  void FillLiveSpaceLocked(obs::AmpSnapshot* snap) const;
  /// One snapshotter JSON sample line (amp + latency + drift).
  std::string BuildStatsSample();

  // ---- Background execution (null / unused under kInline) ----
  // The pool is either owned (standalone DB) or borrowed from the sharded
  // store (DbOptions::shared_pool); only an owned pool is shut down here.
  std::unique_ptr<exec::ThreadPool> owned_pool_;
  exec::ThreadPool* pool_ = nullptr;
  std::unique_ptr<exec::JobScheduler> scheduler_;
  std::unique_ptr<exec::StallController> stall_;
  // Only one flush job / one compaction chain does work at a time; extra
  // jobs observe the guard and return (their work is picked up by the
  // active job's drain loop).
  bool flush_active_ = false;
  bool compaction_active_ = false;
  // Scheduled jobs that have not finished their DB work yet. Maintained
  // under mutex_ (unlike the scheduler's own counters) so stall waits on
  // bg_cv_ can use it in their predicate without missed wakeups: the
  // decrement and the notify happen under the same mutex the waiter holds.
  int bg_jobs_pending_ = 0;
  // First background failure; writers fail fast once set.
  Status bg_error_;
};

}  // namespace talus

#endif  // TALUS_LSM_DB_H_
