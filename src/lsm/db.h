// DB: the talus storage engine facade. Single-threaded by design: flushes
// and compactions run inline on the write path, which (a) makes every
// experiment deterministic and (b) surfaces compaction-induced write stalls
// directly in the windowed-throughput metric — the same phenomenon the paper
// measures through background-compaction backpressure (DESIGN.md §2).
#ifndef TALUS_LSM_DB_H_
#define TALUS_LSM_DB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <set>

#include "cache/lru_cache.h"
#include "lsm/manifest.h"
#include "lsm/options.h"
#include "lsm/version.h"
#include "lsm/write_batch.h"
#include "mem/memtable.h"
#include "policy/growth_policy.h"
#include "table/sst_reader.h"
#include "wal/log_writer.h"

namespace talus {

/// Cumulative engine statistics (virtual-clock based where noted).
struct EngineStats {
  // Write path.
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t flush_bytes_written = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t user_payload_written = 0;  // Key+value bytes accepted from users.

  // Read path.
  uint64_t gets = 0;
  uint64_t gets_found = 0;
  uint64_t scans = 0;
  uint64_t runs_probed = 0;
  uint64_t filter_negatives = 0;
  uint64_t data_block_reads = 0;
  uint64_t block_cache_hits = 0;

  // Longest single inline flush+compaction stall, in virtual clock units.
  double max_stall_clock = 0;

  // Per-output-level compaction accounting (index = output level).
  struct LevelStats {
    uint64_t compactions = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };
  std::vector<LevelStats> level_stats;

  /// Physical bytes written per user payload byte.
  double WriteAmplification() const {
    if (user_payload_written == 0) return 0;
    return static_cast<double>(flush_bytes_written +
                               compaction_bytes_written) /
           static_cast<double>(user_payload_written);
  }
  /// Mean sorted runs probed per point lookup.
  double ReadAmplification() const {
    if (gets == 0) return 0;
    return static_cast<double>(runs_probed) / static_cast<double>(gets);
  }
};

/// Read view pinned at a point in time. Obtained from DB::GetSnapshot();
/// versions visible to a live snapshot survive compactions until the
/// snapshot is released.
class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  explicit Snapshot(SequenceNumber s) : sequence_(s) {}
  SequenceNumber sequence_;
};

class DB {
 public:
  static Status Open(const DbOptions& options, std::unique_ptr<DB>* dbptr);
  ~DB();
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  /// Applies the batch atomically (one WAL record, contiguous sequences).
  Status Write(const WriteBatch& batch);
  Status Get(const Slice& key, std::string* value);
  /// Point lookup against a pinned snapshot (nullptr = latest).
  Status Get(const Slice& key, std::string* value, const Snapshot* snapshot);

  /// Pins the current state for repeatable reads. Must be released.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Manual major compaction: merges every run into a single run at the
  /// bottommost non-empty level (reclaims tombstones and shadowed
  /// versions not pinned by snapshots).
  Status CompactAll();

  /// Introspection: "talus.stats", "talus.levels", "talus.cstats",
  /// "talus.num-runs", "talus.data-bytes". Returns false for unknown names.
  bool GetProperty(const std::string& property, std::string* value);

  /// Collects up to `count` live entries with user key >= start, in order.
  Status Scan(const Slice& start, size_t count,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Forward iterator over live user keys (tombstones and shadowed versions
  /// skipped). Prev() is not supported.
  std::unique_ptr<Iterator> NewIterator();

  /// Forces a memtable flush (and any compactions it triggers).
  Status FlushMemTable();

  const Version& current_version() const { return version_; }
  const EngineStats& stats() const { return stats_; }
  GrowthPolicy* policy() { return policy_.get(); }
  Env* env() { return options_.env; }
  const DbOptions& options() const { return options_; }
  LruCache* block_cache() { return block_cache_.get(); }

  /// Live logical data size: latest-version key+value bytes across tree and
  /// memtable (upper bound — shadowed versions in overlapping runs counted
  /// once per run).
  uint64_t ApproximateDataBytes() const;

  std::string DebugString() const { return version_.DebugString(); }

 private:
  DB(const DbOptions& options);

  Status WriteImpl(const WriteBatch& batch);
  SequenceNumber SmallestLiveSnapshot() const;
  Status DoFlush();
  Status RunCompactionLoop();
  Status ExecuteCompaction(const CompactionRequest& req);
  Status WriteSortedOutput(Iterator* input, int output_level,
                           bool drop_tombstones, bool is_flush,
                           uint64_t* bytes_read,
                           std::vector<FileMetaPtr>* outputs);
  Status InstallManifest();
  Status NewWal();
  Status RecoverWal(uint64_t wal_number);
  SstReader* GetReader(uint64_t file_number);
  void ForgetFile(uint64_t file_number);
  Status DeleteObsoleteFiles(const std::vector<uint64_t>& files);
  double BitsPerKeyForLevel(int level) const;

  DbOptions options_;
  std::unique_ptr<GrowthPolicy> policy_;
  std::unique_ptr<LruCache> block_cache_;

  std::unique_ptr<MemTable> mem_;
  std::unique_ptr<wal::LogWriter> wal_;
  uint64_t wal_number_ = 0;

  Version version_;
  uint64_t next_file_number_ = 1;
  uint64_t next_run_id_ = 1;
  uint64_t manifest_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  uint64_t flush_count_ = 0;

  std::unordered_map<uint64_t, std::unique_ptr<SstReader>> readers_;

  // Live operation-mix estimator, shared with self-designing policies.
  WorkloadMixTracker mix_tracker_;

  // Sequences pinned by live snapshots (multiset: snapshots may coincide).
  std::multiset<SequenceNumber> snapshot_seqs_;

  EngineStats stats_;
};

}  // namespace talus

#endif  // TALUS_LSM_DB_H_
