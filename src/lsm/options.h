// DbOptions: engine configuration. Defaults mirror the paper's experimental
// setting scaled to simulator size (DESIGN.md §3): 1KB entries, buffer =
// target file size, size ratio T = 6, 5 bits-per-key Bloom filters.
#ifndef TALUS_LSM_OPTIONS_H_
#define TALUS_LSM_OPTIONS_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "filter/filter_allocator.h"
#include "policy/policy_config.h"

namespace talus {

/// How flushes and compactions execute (DESIGN.md §2).
enum class ExecutionMode {
  /// Flushes and compactions run inline on the write path. Deterministic:
  /// every paper experiment reproduces bit-identically. The default.
  kInline,
  /// Flushes and compactions run on a background thread pool with
  /// slowdown/stop write backpressure (exec/). The DB becomes safe for
  /// concurrent Put/Get/Scan/Write from many threads.
  kBackground,
};

struct DbOptions {
  Env* env = nullptr;  // Required.
  std::string path;    // Required: directory for SSTs, WAL, MANIFEST.

  uint64_t write_buffer_size = 1 << 20;  // B: memtable capacity in bytes.
  uint64_t target_file_size = 1 << 20;   // Max SST size (RocksDB-style).
  size_t block_size = 4096;
  int block_restart_interval = 16;

  size_t block_cache_bytes = 8 << 20;
  /// Max open SstReaders cached by the read path's table cache (pinned
  /// handles keep in-use readers alive past eviction). DESIGN.md §2.7.
  size_t table_cache_open_files = 512;

  double bloom_bits_per_key = 5.0;
  FilterLayout filter_layout = FilterLayout::kStatic;

  bool enable_wal = true;
  // Sync the WAL after every write (RocksDB's WriteOptions::sync). Off by
  // default like production systems: a power loss may drop the unsynced
  // WAL tail, but never flushed data and never consistency.
  bool wal_sync_writes = false;
  // Replay WAL / manifest on open when present.
  bool create_if_missing = true;

  GrowthPolicyConfig policy;

  // ---- Background execution (ExecutionMode::kBackground only) ----
  ExecutionMode execution_mode = ExecutionMode::kInline;
  int num_background_threads = 2;
  /// Immutable memtables allowed before writers stop.
  size_t max_immutable_memtables = 2;
  /// Level-0 run counts triggering write slowdown / stop.
  size_t l0_slowdown_runs = 12;
  size_t l0_stop_runs = 20;
  /// Delay injected per write while in the slowdown regime.
  uint64_t slowdown_delay_micros = 1000;
  /// Upper bound on key-range subcompactions a single compaction merge is
  /// split into (DESIGN.md §2.8). In kBackground mode the ranges fan out
  /// over the background thread pool; in kInline mode they run serially, so
  /// 1 (the default) preserves the seed's bit-identical behavior while
  /// larger values stay scan-equivalent.
  int max_subcompactions = 1;

  // CPU epsilons for the virtual clock (see env/io_stats.h).
  double cpu_cost_per_write = 0.02;
  double cpu_cost_per_read = 0.02;
};

}  // namespace talus

#endif  // TALUS_LSM_OPTIONS_H_
