// DbOptions: engine configuration. Defaults mirror the paper's experimental
// setting scaled to simulator size (DESIGN.md §4): 1KB entries, buffer =
// target file size, size ratio T = 6, 5 bits-per-key Bloom filters.
#ifndef TALUS_LSM_OPTIONS_H_
#define TALUS_LSM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "filter/bloom.h"
#include "filter/filter_allocator.h"
#include "policy/policy_config.h"

namespace talus {

namespace exec {
class ThreadPool;
}  // namespace exec
namespace obs {
class EventRing;
}  // namespace obs
namespace shard {
class SequenceAllocator;
class ShardBackpressure;
}  // namespace shard

/// When the write path fsyncs the WAL (DESIGN.md §2.9). Syncs are issued by
/// the group-commit leader, so one sync covers every batch in its group.
enum class WalSyncMode {
  /// Never sync on the write path (flush/manifest installs still sync).
  /// A power loss may drop the unsynced WAL tail, never consistency.
  kNone,
  /// One sync per commit group: full durability with the cost amortized
  /// across the group's batches (RocksDB group commit).
  kPerGroup,
  /// Sync at most once per wal_sync_interval_micros: bounded-staleness
  /// durability for ingest-heavy workloads. The bound holds while writes
  /// keep arriving (syncs ride the write path); the tail of a burst that
  /// goes idle stays unsynced until the next write or flush rotation.
  kInterval,
};

/// How flushes and compactions execute (DESIGN.md §2).
enum class ExecutionMode {
  /// Flushes and compactions run inline on the write path. Deterministic:
  /// every paper experiment reproduces bit-identically. The default.
  kInline,
  /// Flushes and compactions run on a background thread pool with
  /// slowdown/stop write backpressure (exec/). The DB becomes safe for
  /// concurrent Put/Get/Scan/Write from many threads.
  kBackground,
};

struct DbOptions {
  Env* env = nullptr;  // Required.
  std::string path;    // Required: directory for SSTs, WAL, MANIFEST.

  uint64_t write_buffer_size = 1 << 20;  // B: memtable capacity in bytes.
  uint64_t target_file_size = 1 << 20;   // Max SST size (RocksDB-style).
  size_t block_size = 4096;
  int block_restart_interval = 16;

  size_t block_cache_bytes = 8 << 20;
  /// Max open SstReaders cached by the read path's table cache (pinned
  /// handles keep in-use readers alive past eviction). DESIGN.md §2.7.
  size_t table_cache_open_files = 512;

  double bloom_bits_per_key = 5.0;
  FilterLayout filter_layout = FilterLayout::kStatic;
  /// Filter wire format for newly written SSTs. Readers auto-detect per
  /// file, so this can change across restarts without breaking old files.
  /// kLegacy by default to keep the seed's on-disk bytes reproducible;
  /// kBlocked makes every filter probe a single-cache-line access.
  FilterVariant filter_variant = FilterVariant::kLegacy;
  /// Use the allocation-free Block::PointGet path in SstReader::Get
  /// instead of the two-iterator seek path (DESIGN.md §7). Amp counters
  /// are identical either way; this exists as an A/B switch for the
  /// ablation bench and as an escape hatch.
  bool point_read_fast_path = true;

  bool enable_wal = true;
  /// When the write path fsyncs the WAL; see WalSyncMode. kNone by default
  /// like production systems.
  WalSyncMode wal_sync_mode = WalSyncMode::kNone;
  /// kInterval only: minimum microseconds between write-path WAL syncs.
  uint64_t wal_sync_interval_micros = 10000;
  // Legacy alias (pre group-commit): sync the WAL on every write. When set
  // with wal_sync_mode == kNone it is upgraded to kPerGroup at Open, which
  // preserves the old durability guarantee while amortizing the sync.
  bool wal_sync_writes = false;
  // Replay WAL / manifest on open when present.
  bool create_if_missing = true;

  // ---- Group-commit write pipeline (DESIGN.md §2.9) ----
  /// Byte budget for one commit group: the leader absorbs queued batches
  /// until their combined encoded size would exceed this (its own batch
  /// always commits). Larger groups amortize WAL appends and syncs further
  /// but lengthen the tail of the writers at the back of the group.
  uint64_t max_write_group_bytes = 1 << 20;
  /// When true, followers insert their own sub-batches into the memtable
  /// concurrently (CAS skiplist inserts) instead of the leader applying the
  /// whole group serially. Off by default: leader-applies keeps kInline
  /// single-writer behavior bit-identical to the pre-pipeline engine.
  bool parallel_memtable_writes = false;

  GrowthPolicyConfig policy;

  // ---- Range sharding (shard::ShardedDB, DESIGN.md §3) ----
  /// Number of range-partitioned shards shard::ShardedDB::Open creates,
  /// each a full engine (own memtable, WAL, versions, table cache) behind
  /// one shared thread pool and one global sequence allocator. Plain
  /// DB::Open ignores it. 1 behaves bit-identically to the single engine.
  int shard_count = 1;
  /// Explicit split points (shard_count - 1 strictly ascending keys); shard
  /// i owns [point[i-1], point[i]). Empty = uniform split of the 8-byte
  /// key-prefix space (see shard::ShardRouter::DefaultBoundaries — pass
  /// explicit points when keys share a long common prefix). Fixed at store
  /// creation and persisted in the SHARD manifest.
  std::vector<std::string> shard_split_points;
  // Internal wiring, set by ShardedDB::Open on the per-shard options it
  // derives. User code leaves these untouched.
  shard::SequenceAllocator* sequence_allocator = nullptr;  // Global seqs.
  shard::ShardBackpressure* shard_backpressure = nullptr;  // Unified stall.
  size_t shard_index = 0;  // This engine's index within the sharded store.
  /// Borrowed pool shared by every shard's background jobs; the DB neither
  /// owns nor shuts it down. Null = the DB creates its own.
  exec::ThreadPool* shared_pool = nullptr;

  // ---- Background execution (ExecutionMode::kBackground only) ----
  ExecutionMode execution_mode = ExecutionMode::kInline;
  /// Flush/compaction threads. Deliberately separate from the network
  /// layer's request workers (server::ServerOptions::worker_threads) so
  /// request execution and engine maintenance cannot starve each other;
  /// a served DB should run kBackground (DESIGN.md §8).
  int num_background_threads = 2;
  /// Immutable memtables allowed before writers stop.
  size_t max_immutable_memtables = 2;
  /// Level-0 run counts triggering write slowdown / stop.
  size_t l0_slowdown_runs = 12;
  size_t l0_stop_runs = 20;
  /// Delay injected per write while in the slowdown regime.
  uint64_t slowdown_delay_micros = 1000;
  /// Upper bound on key-range subcompactions a single compaction merge is
  /// split into (DESIGN.md §2.8). In kBackground mode the ranges fan out
  /// over the background thread pool; in kInline mode they run serially, so
  /// 1 (the default) preserves the seed's bit-identical behavior while
  /// larger values stay scan-equivalent.
  int max_subcompactions = 1;

  // ---- Observability (src/obs/, DESIGN.md §6) ----
  /// Record per-op latency histograms (talus.latency) via the lock-free
  /// obs::LatencyRecorder. On by default: the recorder costs <3% at 8
  /// concurrent writers (DESIGN.md §6.5) and tail latency is a first-class
  /// metric. When off the DB allocates no recorder and the hot paths skip
  /// the clock reads entirely.
  bool enable_latency_stats = true;
  /// Capacity of the in-memory event ring behind talus.events.
  size_t event_ring_size = 1024;
  /// When non-empty, every engine event is appended to this file as one
  /// JSON object per line (the talus.events taxonomy) for postmortem stall
  /// reconstruction. Ignored when event_ring is supplied (the owner of the
  /// shared ring decides where its trace goes).
  std::string trace_file_path;
  /// Borrowed shared event ring (ShardedDB passes its own to every shard so
  /// cross-shard events land in one ordered stream). Null = the DB owns a
  /// private ring of event_ring_size.
  obs::EventRing* event_ring = nullptr;
  /// Per-level amplification accounting (talus.amp, talus.model, the
  /// talus_amp_* Prometheus families) via the lock-free obs::AmpTracker.
  /// On by default: write-side hooks ride rare flush/compaction installs
  /// and the read-side probe fold costs one striped-atomic pass per Get
  /// (measured in DESIGN.md §6.9). When off the DB allocates no tracker
  /// and both properties return empty.
  bool enable_amp_stats = true;
  /// A talus.model evaluation flags drift (and emits kModelDrift) when the
  /// measured/predicted per-op cost ratio exceeds this factor in either
  /// direction.
  double model_drift_threshold = 4.0;
  /// ... or when the windowed workload mix moves more than this L1/2
  /// distance from the previous window (a workload flip the cost model's
  /// design inputs no longer reflect).
  double model_mix_shift_threshold = 0.35;
  /// When > 0, a background obs::StatsSnapshotter samples amp, latency and
  /// drift stats every this many milliseconds into a bounded in-memory
  /// ring (talus.snapshots) and, when stats_snapshot_path is set, an
  /// append-only JSONL time-series file. 0 disables the snapshotter.
  /// ShardedDB runs one fleet-level snapshotter instead of per-shard ones.
  uint64_t stats_snapshot_interval_ms = 0;
  /// Samples retained in the snapshotter's in-memory ring.
  size_t stats_snapshot_ring = 240;
  /// Snapshotter JSONL output file ("" = in-memory ring only).
  std::string stats_snapshot_path;

  // ---- Adaptive tuning (src/tune/, DESIGN.md §9) ----
  /// Close the paper's sense→act loop: a tune::AdaptiveTuner periodically
  /// re-solves the vertical cost model against the windowed measured mix
  /// and amplification, and — when the predicted win exceeds
  /// tune_hysteresis — switches the growth policy or retunes its size
  /// ratio at runtime via DB::ApplyPolicyConfig, emitting kPolicyChange.
  /// Requires enable_amp_stats (the tuner feeds on the measured windows)
  /// and a vertical-scheme policy (the family the cost model solves and
  /// the only shapes with a cheap live-migration path); ignored otherwise.
  /// A tuned store persists its current policy config in the manifest and
  /// re-resolves it on reopen, so a store reopened with adaptive_tuning
  /// keeps its tuned design rather than failing the policy-name check.
  bool adaptive_tuning = false;
  /// Cadence of the tuner's decision loop. Per engine; under
  /// shard::ShardedDB one fleet-level timer ticks every shard instead
  /// (per-shard timers are disabled at Open, mirroring the snapshotter).
  /// 0 = no timer: decisions happen only via explicit DB::RetuneNow()
  /// calls (tests drive this directly).
  uint64_t tune_interval_ms = 1000;
  /// Minimum predicted fractional cost win (model ζ ratio − 1) before the
  /// tuner switches designs — the band that prevents flapping when two
  /// designs are near-equal at the decision boundary.
  double tune_hysteresis = 0.35;
  /// Drift windows with fewer operations than this are skipped by the
  /// tuner: a thin window's mix estimate is noise, not workload.
  uint64_t tune_min_window_ops = 256;
  /// Decision ticks the tuner holds after a switch, letting the windowed
  /// measurements refill under the new shape before re-deciding.
  int tune_cooldown_ticks = 2;

  // CPU epsilons for the virtual clock (see env/io_stats.h).
  double cpu_cost_per_write = 0.02;
  double cpu_cost_per_read = 0.02;
};

}  // namespace talus

#endif  // TALUS_LSM_OPTIONS_H_
