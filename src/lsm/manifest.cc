#include "lsm/manifest.h"

#include "lsm/filename.h"
#include "util/coding.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace talus {

namespace {

void EncodeFileMeta(std::string* dst, const FileMeta& f) {
  PutVarint64(dst, f.number);
  PutVarint64(dst, f.file_size);
  PutVarint64(dst, f.num_entries);
  PutVarint64(dst, f.payload_bytes);
  PutVarint64(dst, f.oldest_seq);
  PutLengthPrefixedSlice(dst, f.smallest.Encode());
  PutLengthPrefixedSlice(dst, f.largest.Encode());
}

bool DecodeFileMeta(Slice* input, FileMeta* f) {
  Slice smallest, largest;
  if (!GetVarint64(input, &f->number) || !GetVarint64(input, &f->file_size) ||
      !GetVarint64(input, &f->num_entries) ||
      !GetVarint64(input, &f->payload_bytes) ||
      !GetVarint64(input, &f->oldest_seq) ||
      !GetLengthPrefixedSlice(input, &smallest) ||
      !GetLengthPrefixedSlice(input, &largest)) {
    return false;
  }
  f->smallest.DecodeFrom(smallest);
  f->largest.DecodeFrom(largest);
  return true;
}

std::string EncodeSnapshot(const ManifestData& data) {
  std::string out;
  PutVarint64(&out, data.next_file_number);
  PutVarint64(&out, data.next_run_id);
  PutVarint64(&out, data.last_sequence);
  PutVarint64(&out, data.flush_count);
  PutVarint64(&out, data.wal_number);
  PutLengthPrefixedSlice(&out, Slice(data.policy_name));
  PutLengthPrefixedSlice(&out, Slice(data.policy_state));
  PutVarint64(&out, data.version.levels.size());
  for (const LevelState& level : data.version.levels) {
    PutVarint64(&out, level.runs.size());
    for (const SortedRun& run : level.runs) {
      PutVarint64(&out, run.run_id);
      PutVarint64(&out, run.files.size());
      for (const FileMetaPtr& f : run.files) {
        EncodeFileMeta(&out, *f);
      }
    }
  }
  // Appended after the level tree so pre-existing manifests (which end at
  // the tree) still decode: absence of trailing bytes means "no config".
  PutLengthPrefixedSlice(&out, Slice(data.policy_config));
  return out;
}

Status DecodeSnapshot(Slice input, ManifestData* data) {
  Slice policy_name, policy_state;
  uint64_t num_levels;
  if (!GetVarint64(&input, &data->next_file_number) ||
      !GetVarint64(&input, &data->next_run_id) ||
      !GetVarint64(&input, &data->last_sequence) ||
      !GetVarint64(&input, &data->flush_count) ||
      !GetVarint64(&input, &data->wal_number) ||
      !GetLengthPrefixedSlice(&input, &policy_name) ||
      !GetLengthPrefixedSlice(&input, &policy_state) ||
      !GetVarint64(&input, &num_levels)) {
    return Status::Corruption("bad manifest header");
  }
  data->policy_name = policy_name.ToString();
  data->policy_state = policy_state.ToString();
  data->version.levels.clear();
  data->version.levels.resize(num_levels);
  for (uint64_t i = 0; i < num_levels; i++) {
    uint64_t num_runs;
    if (!GetVarint64(&input, &num_runs)) {
      return Status::Corruption("bad manifest level");
    }
    for (uint64_t r = 0; r < num_runs; r++) {
      SortedRun run;
      uint64_t num_files;
      if (!GetVarint64(&input, &run.run_id) ||
          !GetVarint64(&input, &num_files)) {
        return Status::Corruption("bad manifest run");
      }
      for (uint64_t f = 0; f < num_files; f++) {
        auto meta = std::make_shared<FileMeta>();
        if (!DecodeFileMeta(&input, meta.get())) {
          return Status::Corruption("bad manifest file meta");
        }
        run.files.push_back(std::move(meta));
      }
      data->version.levels[i].runs.push_back(std::move(run));
    }
  }
  data->policy_config.clear();
  if (!input.empty()) {
    Slice policy_config;
    if (!GetLengthPrefixedSlice(&input, &policy_config)) {
      return Status::Corruption("bad manifest policy config");
    }
    data->policy_config = policy_config.ToString();
  }
  return Status::OK();
}

}  // namespace

Status WriteManifestSnapshot(Env* env, const std::string& dbpath,
                             uint64_t manifest_number,
                             const ManifestData& data) {
  const std::string fname = ManifestFileName(dbpath, manifest_number);
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  wal::LogWriter writer(std::move(file));
  s = writer.AddRecord(Slice(EncodeSnapshot(data)));
  if (s.ok()) s = writer.Sync();
  if (s.ok()) s = writer.Close();
  if (!s.ok()) return s;

  // Atomically repoint CURRENT via rename.
  const std::string tmp = dbpath + "/CURRENT.tmp";
  std::unique_ptr<WritableFile> cur;
  s = env->NewWritableFile(tmp, &cur);
  if (!s.ok()) return s;
  std::string manifest_basename =
      fname.substr(fname.find_last_of('/') + 1);
  s = cur->Append(Slice(manifest_basename));
  if (s.ok()) s = cur->Sync();
  if (s.ok()) s = cur->Close();
  if (!s.ok()) return s;
  return env->RenameFile(tmp, CurrentFileName(dbpath));
}

Status ReadCurrentManifest(Env* env, const std::string& dbpath,
                           ManifestData* data, uint64_t* manifest_number) {
  const std::string current = CurrentFileName(dbpath);
  if (!env->FileExists(current)) {
    return Status::NotFound("no CURRENT file", dbpath);
  }
  std::unique_ptr<SequentialFile> cur;
  Status s = env->NewSequentialFile(current, &cur);
  if (!s.ok()) return s;
  std::string name;
  {
    Slice chunk;
    std::string scratch(256, '\0');
    s = cur->Read(256, &chunk, scratch.data());
    if (!s.ok()) return s;
    name = chunk.ToString();
  }
  // Trim trailing whitespace/newlines.
  while (!name.empty() && (name.back() == '\n' || name.back() == ' ')) {
    name.pop_back();
  }
  uint64_t number = 0;
  std::string suffix;
  if (!ParseFileName(name, &number, &suffix) || suffix != "manifest") {
    return Status::Corruption("CURRENT names a non-manifest file", name);
  }

  std::unique_ptr<SequentialFile> file;
  s = env->NewSequentialFile(dbpath + "/" + name, &file);
  if (!s.ok()) return s;
  wal::LogReader reader(std::move(file));
  std::string record;
  if (!reader.ReadRecord(&record)) {
    return Status::Corruption("manifest unreadable", name);
  }
  s = DecodeSnapshot(Slice(record), data);
  if (s.ok() && manifest_number != nullptr) *manifest_number = number;
  return s;
}

}  // namespace talus
