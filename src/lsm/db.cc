#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "lsm/filename.h"
#include "table/merging_iterator.h"
#include "table/sst_builder.h"
#include "util/coding.h"
#include "wal/log_reader.h"

namespace talus {

namespace {

// WAL record: base_seq fixed64 | WriteBatch rep (one record per batch, so
// multi-op batches commit atomically).
std::string EncodeWalRecord(SequenceNumber base_seq, const WriteBatch& batch) {
  std::string rec;
  PutFixed64(&rec, base_seq);
  rec.append(batch.rep());
  return rec;
}

bool DecodeWalRecord(Slice input, SequenceNumber* base_seq,
                     WriteBatch* batch) {
  uint64_t s;
  if (!GetFixed64(&input, &s)) return false;
  *base_seq = s;
  return WriteBatch::FromRep(input, batch).ok();
}

// Applies a batch to a memtable with sequences base, base+1, ...
class MemTableInserter : public WriteBatch::Handler {
 public:
  MemTableInserter(MemTable* mem, SequenceNumber base)
      : mem_(mem), seq_(base) {}
  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(seq_++, kTypeValue, key, value);
  }
  void Delete(const Slice& key) override {
    mem_->Add(seq_++, kTypeDeletion, key, Slice());
  }
  SequenceNumber next_sequence() const { return seq_; }

 private:
  MemTable* mem_;
  SequenceNumber seq_;
};

// Iterates a sorted run: files are disjoint and ordered, so this is a simple
// concatenation with lazy reader opening.
class RunIterator final : public Iterator {
 public:
  RunIterator(std::vector<FileMetaPtr> files,
              std::function<SstReader*(uint64_t)> open)
      : files_(std::move(files)), open_(std::move(open)) {}

  bool Valid() const override { return iter_ != nullptr && iter_->Valid(); }

  void SeekToFirst() override {
    index_ = 0;
    InitFile();
    if (iter_ != nullptr) iter_->SeekToFirst();
    SkipForward();
  }
  void SeekToLast() override {
    if (files_.empty()) {
      iter_.reset();
      return;
    }
    index_ = files_.size() - 1;
    InitFile();
    if (iter_ != nullptr) iter_->SeekToLast();
    SkipBackward();
  }
  void Seek(const Slice& target) override {
    // Binary search for the first file whose largest key >= target.
    InternalKeyComparator cmp;
    size_t left = 0, right = files_.size();
    while (left < right) {
      size_t mid = (left + right) / 2;
      if (cmp.Compare(files_[mid]->largest.Encode(), target) < 0) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    index_ = left;
    InitFile();
    if (iter_ != nullptr) iter_->Seek(target);
    SkipForward();
  }
  void Next() override {
    assert(Valid());
    iter_->Next();
    SkipForward();
  }
  void Prev() override {
    assert(Valid());
    iter_->Prev();
    SkipBackward();
  }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return iter_ != nullptr ? iter_->status() : Status::OK();
  }

 private:
  void InitFile() {
    iter_.reset();
    if (index_ >= files_.size()) return;
    SstReader* reader = open_(files_[index_]->number);
    if (reader == nullptr) {
      status_ = Status::IOError("cannot open sst reader");
      return;
    }
    iter_ = reader->NewIterator();
  }
  void SkipForward() {
    while ((iter_ == nullptr || !iter_->Valid()) &&
           index_ + 1 < files_.size()) {
      index_++;
      InitFile();
      if (iter_ != nullptr) iter_->SeekToFirst();
    }
    if (iter_ != nullptr && !iter_->Valid()) iter_.reset();
  }
  void SkipBackward() {
    while ((iter_ == nullptr || !iter_->Valid()) && index_ > 0) {
      index_--;
      InitFile();
      if (iter_ != nullptr) iter_->SeekToLast();
    }
    if (iter_ != nullptr && !iter_->Valid()) iter_.reset();
  }

  std::vector<FileMetaPtr> files_;
  std::function<SstReader*(uint64_t)> open_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> iter_;
  Status status_;
};

// User-facing iterator: walks internal keys, surfacing only the newest
// visible version of each user key and skipping tombstones. Forward only.
class DbIterator final : public Iterator {
 public:
  explicit DbIterator(std::unique_ptr<Iterator> internal)
      : internal_(std::move(internal)) {}

  bool Valid() const override { return valid_; }
  void SeekToFirst() override {
    has_current_ = false;
    internal_->SeekToFirst();
    FindNextUserEntry();
  }
  void Seek(const Slice& user_key) override {
    has_current_ = false;
    std::string target;
    AppendInternalKey(&target, user_key, kMaxSequenceNumber,
                      kValueTypeForSeek);
    internal_->Seek(Slice(target));
    FindNextUserEntry();
  }
  void Next() override {
    assert(valid_);
    internal_->Next();
    FindNextUserEntry();
  }
  void SeekToLast() override { valid_ = false; }  // Forward-only.
  void Prev() override { assert(false); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override { return internal_->status(); }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (has_current_ && parsed.user_key == Slice(key_)) {
        internal_->Next();  // Shadowed older version.
        continue;
      }
      key_.assign(parsed.user_key.data(), parsed.user_key.size());
      has_current_ = true;
      if (parsed.type == kTypeDeletion) {
        internal_->Next();  // Tombstone hides every older version too.
        continue;
      }
      value_.assign(internal_->value().data(), internal_->value().size());
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  bool valid_ = false;
  bool has_current_ = false;
  std::string key_;
  std::string value_;
};

}  // namespace

DB::DB(const DbOptions& options) : options_(options) {
  block_cache_ = std::make_unique<LruCache>(options_.block_cache_bytes);
}

DB::~DB() = default;

Status DB::Open(const DbOptions& options, std::unique_ptr<DB>* dbptr) {
  if (options.env == nullptr || options.path.empty()) {
    return Status::InvalidArgument("env and path are required");
  }
  auto db = std::unique_ptr<DB>(new DB(options));
  Env* env = options.env;
  Status s = env->CreateDirIfMissing(options.path);
  if (!s.ok()) return s;

  PolicyContext ctx;
  ctx.buffer_bytes = options.write_buffer_size;
  ctx.mix_tracker = &db->mix_tracker_;
  GrowthPolicyConfig policy_config = options.policy;
  policy_config.bloom_bits_per_key = options.bloom_bits_per_key;
  db->policy_ = CreateGrowthPolicy(policy_config, ctx);
  if (db->policy_ == nullptr) {
    return Status::InvalidArgument("unknown growth policy");
  }

  ManifestData manifest;
  uint64_t manifest_number = 0;
  uint64_t old_wal = 0;
  s = ReadCurrentManifest(env, options.path, &manifest, &manifest_number);
  if (s.ok()) {
    if (manifest.policy_name != db->policy_->name()) {
      return Status::InvalidArgument(
          "db was created with a different growth policy",
          manifest.policy_name);
    }
    db->version_ = std::move(manifest.version);
    db->next_file_number_ = manifest.next_file_number;
    db->next_run_id_ = manifest.next_run_id;
    db->last_sequence_ = manifest.last_sequence;
    db->flush_count_ = manifest.flush_count;
    db->manifest_number_ = manifest_number;
    old_wal = manifest.wal_number;
    if (!db->policy_->DecodeState(manifest.policy_state)) {
      return Status::Corruption("bad growth policy state in manifest");
    }
  } else if (s.IsNotFound()) {
    if (!options.create_if_missing) return s;
  } else {
    return s;
  }

  db->mem_ = std::make_unique<MemTable>();
  if (old_wal != 0) {
    Status rs = db->RecoverWal(old_wal);
    if (!rs.ok()) return rs;
  }

  if (db->mem_->num_entries() > 0) {
    // Recovered entries are only in memory and the old WAL; flush them so
    // the old WAL can be retired safely. DoFlush performs the safe
    // new-WAL → manifest → delete-old-WAL sequence.
    db->wal_number_ = old_wal;
    Status fs = db->DoFlush();
    if (!fs.ok()) return fs;
  } else {
    Status ws = db->NewWal();
    if (!ws.ok()) return ws;
    ws = db->InstallManifest();
    if (!ws.ok()) return ws;
    if (old_wal != 0) {
      env->RemoveFile(WalFileName(options.path, old_wal));
    }
  }

  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::RecoverWal(uint64_t wal_number) {
  const std::string fname = WalFileName(options_.path, wal_number);
  if (!options_.env->FileExists(fname)) return Status::OK();
  std::unique_ptr<SequentialFile> file;
  Status s = options_.env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  wal::LogReader reader(std::move(file));
  std::string record;
  while (reader.ReadRecord(&record)) {
    SequenceNumber base_seq;
    WriteBatch batch;
    if (!DecodeWalRecord(Slice(record), &base_seq, &batch)) {
      return Status::Corruption("bad WAL record", fname);
    }
    MemTableInserter inserter(mem_.get(), base_seq);
    Status bs = batch.Iterate(&inserter);
    if (!bs.ok()) return bs;
    const SequenceNumber last = base_seq + batch.Count() - 1;
    if (batch.Count() > 0 && last > last_sequence_) last_sequence_ = last;
  }
  // A torn tail is expected after a crash; everything before it is intact.
  return Status::OK();
}

Status DB::NewWal() {
  if (!options_.enable_wal) {
    wal_number_ = 0;
    wal_.reset();
    return Status::OK();
  }
  wal_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> file;
  Status s = options_.env->NewWritableFile(
      WalFileName(options_.path, wal_number_), &file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<wal::LogWriter>(std::move(file));
  return Status::OK();
}

Status DB::Put(const Slice& key, const Slice& value) {
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  stats_.puts++;
  mix_tracker_.RecordUpdate();
  WriteBatch batch;
  batch.Put(key, value);
  return WriteImpl(batch);
}

Status DB::Delete(const Slice& key) {
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  stats_.deletes++;
  mix_tracker_.RecordUpdate();
  WriteBatch batch;
  batch.Delete(key);
  return WriteImpl(batch);
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  stats_.puts += batch.Count();
  mix_tracker_.RecordUpdate();
  return WriteImpl(batch);
}

Status DB::WriteImpl(const WriteBatch& batch) {
  const SequenceNumber base_seq = last_sequence_ + 1;
  last_sequence_ += batch.Count();
  if (wal_ != nullptr) {
    Status s = wal_->AddRecord(Slice(EncodeWalRecord(base_seq, batch)));
    if (s.ok() && options_.wal_sync_writes) s = wal_->Sync();
    if (!s.ok()) return s;
  }
  MemTableInserter inserter(mem_.get(), base_seq);
  Status s = batch.Iterate(&inserter);
  if (!s.ok()) return s;
  stats_.user_payload_written += batch.PayloadBytes();
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_write);

  if (mem_->payload_bytes() >= options_.write_buffer_size) {
    return DoFlush();
  }
  return Status::OK();
}

SequenceNumber DB::SmallestLiveSnapshot() const {
  if (snapshot_seqs_.empty()) return last_sequence_;
  return std::min(*snapshot_seqs_.begin(), last_sequence_);
}

const Snapshot* DB::GetSnapshot() {
  snapshot_seqs_.insert(last_sequence_);
  return new Snapshot(last_sequence_);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  auto it = snapshot_seqs_.find(snapshot->sequence());
  if (it != snapshot_seqs_.end()) snapshot_seqs_.erase(it);
  delete snapshot;
}

Status DB::FlushMemTable() {
  if (mem_->num_entries() == 0) return Status::OK();
  return DoFlush();
}

Status DB::DoFlush() {
  const double stall_start = options_.env->io_stats()->clock();

  version_.EnsureLevels(
      static_cast<size_t>(std::max(1, policy_->RequiredLevels(version_))));

  const MergeMode mode = policy_->FlushMode(version_);
  std::vector<uint64_t> obsolete;
  uint64_t bytes_read = 0;
  std::vector<FileMetaPtr> outputs;

  if (mode == MergeMode::kMergeIntoRun && !version_.levels[0].empty()) {
    // Leveling flush: merge the memtable with level 0's newest run.
    SortedRun& target = version_.levels[0].runs[0];
    std::vector<std::unique_ptr<Iterator>> children;
    children.push_back(mem_->NewIterator());
    children.push_back(std::make_unique<RunIterator>(
        target.files, [this](uint64_t n) { return GetReader(n); }));
    auto merged = NewMergingIterator(InternalKeyComparator(),
                                     std::move(children));
    merged->SeekToFirst();
    const bool drop = version_.BottommostNonEmptyLevel() <= 0 &&
                      version_.levels[0].runs.size() == 1;
    Status s = WriteSortedOutput(merged.get(), 0, drop, /*is_flush=*/true,
                                 &bytes_read, &outputs);
    if (!s.ok()) return s;
    for (const auto& f : target.files) obsolete.push_back(f->number);
    target.files = std::move(outputs);
    if (target.files.empty()) {
      version_.levels[0].runs.erase(version_.levels[0].runs.begin());
    }
  } else {
    // Tiering flush (or empty level 0): new run at the front.
    auto iter = mem_->NewIterator();
    iter->SeekToFirst();
    const bool drop = version_.BottommostNonEmptyLevel() < 0;
    Status s = WriteSortedOutput(iter.get(), 0, drop, /*is_flush=*/true,
                                 &bytes_read, &outputs);
    if (!s.ok()) return s;
    if (!outputs.empty()) {
      SortedRun run;
      run.run_id = next_run_id_++;
      run.files = std::move(outputs);
      version_.levels[0].runs.insert(version_.levels[0].runs.begin(),
                                     std::move(run));
    }
  }

  stats_.flushes++;
  stats_.compaction_bytes_read += bytes_read;
  flush_count_++;
  mem_ = std::make_unique<MemTable>();

  policy_->OnFlushCompleted(version_);
  Status s = RunCompactionLoop();
  if (!s.ok()) return s;

  // Safe WAL retirement: open the new WAL, persist the pointer, only then
  // drop the old log and the files consumed by the flush.
  const uint64_t old_wal = wal_number_;
  s = NewWal();
  if (!s.ok()) return s;
  s = InstallManifest();
  if (!s.ok()) return s;
  s = DeleteObsoleteFiles(obsolete);
  if (!s.ok()) return s;
  if (old_wal != 0) {
    options_.env->RemoveFile(WalFileName(options_.path, old_wal));
  }

  const double stall = options_.env->io_stats()->clock() - stall_start;
  if (stall > stats_.max_stall_clock) stats_.max_stall_clock = stall;
  return Status::OK();
}

Status DB::RunCompactionLoop() {
  // Bounded to catch policy bugs that would loop forever.
  for (int rounds = 0; rounds < 100000; rounds++) {
    version_.EnsureLevels(
        static_cast<size_t>(std::max(1, policy_->RequiredLevels(version_))));
    auto req = policy_->PickCompaction(version_);
    if (!req.has_value()) return Status::OK();
    Status s = ExecuteCompaction(*req);
    if (!s.ok()) return s;
    policy_->OnCompactionCompleted(*req, version_);
  }
  return Status::Corruption("compaction loop did not converge",
                            policy_->name());
}

Status DB::ExecuteCompaction(const CompactionRequest& req) {
  version_.EnsureLevels(static_cast<size_t>(req.output_level) + 1);

  // ---- Resolve input files. ----
  struct ResolvedInput {
    int level;
    uint64_t run_id;
    std::vector<FileMetaPtr> files;
    bool whole_run;
  };
  std::vector<ResolvedInput> resolved;
  std::string min_user, max_user;
  bool have_range = false;

  for (const auto& in : req.inputs) {
    if (in.level < 0 || in.level >= static_cast<int>(version_.levels.size())) {
      return Status::InvalidArgument("compaction input level out of range");
    }
    SortedRun* run = version_.levels[in.level].FindRun(in.run_id);
    if (run == nullptr) {
      return Status::InvalidArgument("compaction input run not found");
    }
    ResolvedInput ri;
    ri.level = in.level;
    ri.run_id = in.run_id;
    ri.whole_run = in.file_numbers.empty();
    if (ri.whole_run) {
      ri.files = run->files;
    } else {
      std::set<uint64_t> wanted(in.file_numbers.begin(),
                                in.file_numbers.end());
      for (const auto& f : run->files) {
        if (wanted.count(f->number)) ri.files.push_back(f);
      }
      if (ri.files.size() != wanted.size()) {
        return Status::InvalidArgument("compaction input file not found");
      }
    }
    for (const auto& f : ri.files) {
      Slice lo = f->smallest.user_key();
      Slice hi = f->largest.user_key();
      if (!have_range) {
        min_user = lo.ToString();
        max_user = hi.ToString();
        have_range = true;
      } else {
        if (lo.compare(Slice(min_user)) < 0) min_user = lo.ToString();
        if (hi.compare(Slice(max_user)) > 0) max_user = hi.ToString();
      }
    }
    resolved.push_back(std::move(ri));
  }
  if (!have_range) return Status::OK();  // Nothing to do.

  // ---- Resolve the output target (leveling-style merge). ----
  LevelState& out_level = version_.levels[req.output_level];
  SortedRun* target_run = nullptr;
  std::vector<FileMetaPtr> target_overlaps;
  if (req.output_run_id.has_value()) {
    target_run = out_level.FindRun(*req.output_run_id);
    if (target_run == nullptr) {
      return Status::InvalidArgument("compaction output run not found");
    }
    for (size_t idx :
         target_run->OverlappingFiles(Slice(min_user), Slice(max_user))) {
      target_overlaps.push_back(target_run->files[idx]);
    }
  }

  // ---- Tombstone GC admissibility. ----
  // Safe only when no older data for these keys can exist below the output
  // position: nothing in deeper levels, and nothing in older runs of the
  // output level beyond the target itself (inputs from the output level are
  // consumed, so they do not count).
  bool older_data_below = false;
  for (size_t l = req.output_level;
       l < version_.levels.size() && !older_data_below; l++) {
    for (const auto& run : version_.levels[l].runs) {
      if (run.files.empty()) continue;
      if (l == static_cast<size_t>(req.output_level)) {
        if (target_run != nullptr && run.run_id == target_run->run_id) {
          continue;  // The target itself is merged, not "below".
        }
        bool is_whole_input = false;
        for (const auto& ri : resolved) {
          if (ri.level == req.output_level && ri.run_id == run.run_id &&
              ri.whole_run) {
            is_whole_input = true;
            break;
          }
        }
        if (is_whole_input) continue;
        if (target_run == nullptr) {
          older_data_below = true;  // Fresh front run: everything else older.
          break;
        }
        // Runs positioned after (older than) the target block GC.
        size_t target_pos = 0, run_pos = 0;
        for (size_t i = 0; i < out_level.runs.size(); i++) {
          if (out_level.runs[i].run_id == target_run->run_id) target_pos = i;
          if (out_level.runs[i].run_id == run.run_id) run_pos = i;
        }
        if (run_pos > target_pos) {
          older_data_below = true;
          break;
        }
      } else {
        older_data_below = true;
        break;
      }
    }
  }
  const bool drop_tombstones = !older_data_below;

  // ---- Merge. ----
  std::vector<std::unique_ptr<Iterator>> children;
  auto open = [this](uint64_t n) { return GetReader(n); };
  for (const auto& ri : resolved) {
    children.push_back(std::make_unique<RunIterator>(ri.files, open));
  }
  if (!target_overlaps.empty()) {
    children.push_back(std::make_unique<RunIterator>(target_overlaps, open));
  }
  auto merged =
      NewMergingIterator(InternalKeyComparator(), std::move(children));
  merged->SeekToFirst();

  uint64_t bytes_read = 0;
  std::vector<FileMetaPtr> outputs;
  Status s = WriteSortedOutput(merged.get(), req.output_level, drop_tombstones,
                               /*is_flush=*/false, &bytes_read, &outputs);
  if (!s.ok()) return s;
  uint64_t output_bytes = 0;
  for (const auto& f : outputs) output_bytes += f->file_size;

  // ---- Install the result. ----
  std::vector<uint64_t> obsolete;
  for (const auto& ri : resolved) {
    for (const auto& f : ri.files) obsolete.push_back(f->number);
  }
  for (const auto& f : target_overlaps) obsolete.push_back(f->number);

  // For kReplaceInputs, note the position of the youngest consumed run in
  // the output level before mutation.
  size_t replace_position = out_level.runs.size();
  if (req.placement == CompactionRequest::Placement::kReplaceInputs) {
    for (const auto& ri : resolved) {
      if (ri.level != req.output_level) continue;
      for (size_t i = 0; i < out_level.runs.size(); i++) {
        if (out_level.runs[i].run_id == ri.run_id) {
          replace_position = std::min(replace_position, i);
        }
      }
    }
    if (replace_position == out_level.runs.size()) replace_position = 0;
  }

  for (const auto& ri : resolved) {
    LevelState& level = version_.levels[ri.level];
    SortedRun* run = level.FindRun(ri.run_id);
    assert(run != nullptr);
    if (ri.whole_run) {
      run->files.clear();
    } else {
      std::set<uint64_t> consumed;
      for (const auto& f : ri.files) consumed.insert(f->number);
      auto& files = run->files;
      files.erase(std::remove_if(files.begin(), files.end(),
                                 [&](const FileMetaPtr& f) {
                                   return consumed.count(f->number) > 0;
                                 }),
                  files.end());
    }
  }

  InternalKeyComparator cmp;
  if (target_run != nullptr) {
    // Splice outputs into the target run where the overlaps were removed.
    std::set<uint64_t> consumed;
    for (const auto& f : target_overlaps) consumed.insert(f->number);
    auto& files = target_run->files;
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const FileMetaPtr& f) {
                                 return consumed.count(f->number) > 0;
                               }),
                files.end());
    for (auto& f : outputs) files.push_back(std::move(f));
    std::sort(files.begin(), files.end(),
              [&cmp](const FileMetaPtr& a, const FileMetaPtr& b) {
                return cmp.Compare(a->smallest.Encode(),
                                   b->smallest.Encode()) < 0;
              });
  } else if (!outputs.empty()) {
    SortedRun run;
    run.run_id = next_run_id_++;
    run.files = std::move(outputs);
    if (req.placement == CompactionRequest::Placement::kReplaceInputs) {
      replace_position = std::min(replace_position, out_level.runs.size());
      out_level.runs.insert(out_level.runs.begin() + replace_position,
                            std::move(run));
    } else {
      out_level.runs.insert(out_level.runs.begin(), std::move(run));
    }
  }

  // Drop now-empty runs everywhere.
  for (auto& level : version_.levels) {
    auto& runs = level.runs;
    runs.erase(std::remove_if(
                   runs.begin(), runs.end(),
                   [](const SortedRun& r) { return r.files.empty(); }),
               runs.end());
  }

  stats_.compactions++;
  stats_.compaction_bytes_read += bytes_read;
  if (stats_.level_stats.size() <=
      static_cast<size_t>(req.output_level)) {
    stats_.level_stats.resize(req.output_level + 1);
  }
  auto& ls = stats_.level_stats[req.output_level];
  ls.compactions++;
  ls.bytes_read += bytes_read;
  ls.bytes_written += output_bytes;

  // Persist the new structure before dropping the inputs (crash safety).
  s = InstallManifest();
  if (!s.ok()) return s;
  return DeleteObsoleteFiles(obsolete);
}

Status DB::CompactAll() {
  Status s = FlushMemTable();
  if (!s.ok()) return s;
  const int bottom = version_.BottommostNonEmptyLevel();
  if (bottom < 0) return Status::OK();

  CompactionRequest req;
  for (int level = 0; level <= bottom; level++) {
    for (const auto& run : version_.levels[level].runs) {
      req.inputs.push_back({level, run.run_id, {}});
    }
  }
  if (req.inputs.empty()) return Status::OK();
  req.output_level = bottom;
  req.placement = CompactionRequest::Placement::kReplaceInputs;
  req.reason = "manual-compact-all";
  s = ExecuteCompaction(req);
  if (!s.ok()) return s;
  policy_->OnCompactionCompleted(req, version_);
  return Status::OK();
}

bool DB::GetProperty(const std::string& property, std::string* value) {
  value->clear();
  if (property == "talus.levels") {
    *value = version_.DebugString();
    return true;
  }
  if (property == "talus.num-runs") {
    *value = std::to_string(version_.TotalRuns());
    return true;
  }
  if (property == "talus.data-bytes") {
    *value = std::to_string(ApproximateDataBytes());
    return true;
  }
  if (property == "talus.stats") {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "puts=%llu deletes=%llu gets=%llu scans=%llu flushes=%llu "
        "compactions=%llu write_amp=%.3f read_amp=%.3f "
        "filter_negatives=%llu cache_hits=%llu max_stall=%.1f",
        static_cast<unsigned long long>(stats_.puts),
        static_cast<unsigned long long>(stats_.deletes),
        static_cast<unsigned long long>(stats_.gets),
        static_cast<unsigned long long>(stats_.scans),
        static_cast<unsigned long long>(stats_.flushes),
        static_cast<unsigned long long>(stats_.compactions),
        stats_.WriteAmplification(), stats_.ReadAmplification(),
        static_cast<unsigned long long>(stats_.filter_negatives),
        static_cast<unsigned long long>(stats_.block_cache_hits),
        stats_.max_stall_clock);
    *value = buf;
    return true;
  }
  if (property == "talus.cstats") {
    std::string out = "level compactions bytes_read bytes_written\n";
    for (size_t i = 0; i < stats_.level_stats.size(); i++) {
      const auto& ls = stats_.level_stats[i];
      char buf[128];
      std::snprintf(buf, sizeof(buf), "L%zu %llu %llu %llu\n", i,
                    static_cast<unsigned long long>(ls.compactions),
                    static_cast<unsigned long long>(ls.bytes_read),
                    static_cast<unsigned long long>(ls.bytes_written));
      out += buf;
    }
    *value = out;
    return true;
  }
  return false;
}

Status DB::WriteSortedOutput(Iterator* input, int output_level,
                             bool drop_tombstones, bool is_flush,
                             uint64_t* bytes_read,
                             std::vector<FileMetaPtr>* outputs) {
  // Compaction/flush merges stream their inputs: charge sequential rates.
  IoStats::SequentialScope seq_scope(options_.env->io_stats());
  SstBuilderOptions bopts;
  bopts.block_size = options_.block_size;
  bopts.restart_interval = options_.block_restart_interval;
  bopts.bits_per_key = BitsPerKeyForLevel(output_level);

  std::unique_ptr<SstBuilder> builder;
  uint64_t file_number = 0;
  std::string last_user_key;
  bool has_last = false;
  // Newest-to-oldest sequence of the previously kept/seen version of the
  // current user key; versions at or below the smallest live snapshot that
  // are shadowed by a newer such version are unreachable from every read
  // view and can be dropped (LevelDB's retention rule).
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const SequenceNumber smallest_snapshot = SmallestLiveSnapshot();
  uint64_t read_accum = 0;
  uint64_t payload_accum = 0;
  uint64_t oldest_seq_accum = kMaxSequenceNumber;

  auto finish_file = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    auto meta = std::make_shared<FileMeta>();
    meta->number = file_number;
    meta->file_size = builder->FileSize();
    meta->num_entries = builder->NumEntries();
    meta->payload_bytes = payload_accum;
    meta->smallest = builder->smallest();
    meta->largest = builder->largest();
    meta->oldest_seq = oldest_seq_accum;
    if (is_flush) {
      stats_.flush_bytes_written += meta->file_size;
    } else {
      stats_.compaction_bytes_written += meta->file_size;
    }
    outputs->push_back(std::move(meta));
    builder.reset();
    payload_accum = 0;
    oldest_seq_accum = kMaxSequenceNumber;
    return Status::OK();
  };

  for (; input->Valid(); input->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(input->key(), &parsed)) {
      return Status::Corruption("bad internal key during compaction");
    }
    read_accum += input->key().size() + input->value().size();

    if (!has_last || parsed.user_key != Slice(last_user_key)) {
      last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      // A newer version of this key is already visible at the oldest read
      // view: this one is unreachable.
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= smallest_snapshot && drop_tombstones) {
      drop = true;
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    // Cut the output file at the size target, but never between versions of
    // the same user key: files within a run must stay user-key disjoint
    // (point lookups probe exactly one file per run).
    if (builder != nullptr &&
        builder->FileSize() >= options_.target_file_size &&
        builder->NumEntries() > 0 &&
        ExtractUserKey(builder->largest().Encode()) != parsed.user_key) {
      Status fs = finish_file();
      if (!fs.ok()) return fs;
    }

    if (builder == nullptr) {
      file_number = next_file_number_++;
      std::unique_ptr<WritableFile> file;
      Status fs = options_.env->NewWritableFile(
          SstFileName(options_.path, file_number), &file);
      if (!fs.ok()) return fs;
      builder = std::make_unique<SstBuilder>(bopts, std::move(file));
    }
    builder->Add(input->key(), input->value());
    payload_accum += parsed.user_key.size() + input->value().size();
    if (parsed.sequence < oldest_seq_accum) {
      oldest_seq_accum = parsed.sequence;
    }
  }
  Status fs = finish_file();
  if (!fs.ok()) return fs;
  *bytes_read = read_accum;
  return input->status();
}

Status DB::InstallManifest() {
  ManifestData data;
  data.next_file_number = next_file_number_;
  data.next_run_id = next_run_id_;
  data.last_sequence = last_sequence_;
  data.flush_count = flush_count_;
  data.wal_number = wal_number_;
  data.policy_name = policy_->name();
  data.policy_state = policy_->EncodeState();
  data.version = version_;

  const uint64_t new_number = manifest_number_ + 1;
  Status s = WriteManifestSnapshot(options_.env, options_.path, new_number,
                                   data);
  if (!s.ok()) return s;
  if (manifest_number_ != 0) {
    options_.env->RemoveFile(
        ManifestFileName(options_.path, manifest_number_));
  }
  manifest_number_ = new_number;
  return Status::OK();
}

Status DB::DeleteObsoleteFiles(const std::vector<uint64_t>& files) {
  for (uint64_t number : files) {
    ForgetFile(number);
    Status s = options_.env->RemoveFile(SstFileName(options_.path, number));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

SstReader* DB::GetReader(uint64_t file_number) {
  auto it = readers_.find(file_number);
  if (it != readers_.end()) return it->second.get();
  std::unique_ptr<SstReader> reader;
  Status s =
      SstReader::Open(options_.env, SstFileName(options_.path, file_number),
                      file_number, block_cache_.get(), &reader);
  if (!s.ok()) return nullptr;
  SstReader* raw = reader.get();
  readers_[file_number] = std::move(reader);
  return raw;
}

void DB::ForgetFile(uint64_t file_number) {
  readers_.erase(file_number);
  std::string prefix;
  PutFixed64(&prefix, file_number);
  block_cache_->EraseByPrefix(prefix);
}

double DB::BitsPerKeyForLevel(int level) const {
  auto allocator =
      NewFilterAllocator(options_.filter_layout, options_.bloom_bits_per_key);
  return allocator->BitsForLevel(policy_->FilterInfo(version_), level);
}

Status DB::Get(const Slice& key, std::string* value) {
  return Get(key, value, nullptr);
}

Status DB::Get(const Slice& key, std::string* value,
               const Snapshot* snapshot) {
  stats_.gets++;
  mix_tracker_.RecordPointLookup();
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_read);
  LookupKey lkey(key,
                 snapshot != nullptr ? snapshot->sequence() : last_sequence_);

  Status s;
  if (mem_->Get(lkey, value, &s)) {
    if (s.ok()) stats_.gets_found++;
    return s;
  }

  for (const auto& level : version_.levels) {
    for (const auto& run : level.runs) {
      // Locate the single file that may contain the key.
      const auto& files = run.files;
      size_t left = 0, right = files.size();
      while (left < right) {
        size_t mid = (left + right) / 2;
        if (files[mid]->largest.user_key().compare(key) < 0) {
          left = mid + 1;
        } else {
          right = mid;
        }
      }
      if (left == files.size()) continue;
      if (files[left]->smallest.user_key().compare(key) > 0) continue;

      stats_.runs_probed++;
      SstReader* reader = GetReader(files[left]->number);
      if (reader == nullptr) {
        return Status::IOError("cannot open sst for read");
      }
      SstReader::GetStats gs;
      bool decided = reader->Get(lkey, value, &s, &gs);
      if (gs.filter_negative) stats_.filter_negatives++;
      if (gs.block_read) stats_.data_block_reads++;
      if (gs.cache_hit) stats_.block_cache_hits++;
      if (decided) {
        if (s.ok()) stats_.gets_found++;
        return s;
      }
    }
  }
  return Status::NotFound(Slice());
}

std::unique_ptr<Iterator> DB::NewIterator() {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem_->NewIterator());
  auto open = [this](uint64_t n) { return GetReader(n); };
  for (const auto& level : version_.levels) {
    for (const auto& run : level.runs) {
      children.push_back(std::make_unique<RunIterator>(run.files, open));
    }
  }
  auto merged =
      NewMergingIterator(InternalKeyComparator(), std::move(children));
  return std::make_unique<DbIterator>(std::move(merged));
}

Status DB::Scan(const Slice& start, size_t count,
                std::vector<std::pair<std::string, std::string>>* out) {
  stats_.scans++;
  mix_tracker_.RecordRangeLookup();
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_read);
  out->clear();
  auto iter = NewIterator();
  iter->Seek(start);
  while (iter->Valid() && out->size() < count) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  return iter->status();
}

uint64_t DB::ApproximateDataBytes() const {
  uint64_t total = mem_->payload_bytes();
  for (const auto& level : version_.levels) {
    total += level.PayloadBytes();
  }
  return total;
}

}  // namespace talus
