#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>
#include <thread>

#include "lsm/filename.h"
#include "table/merging_iterator.h"
#include "table/sst_builder.h"
#include "util/coding.h"
#include "util/wall_clock.h"
#include "wal/log_reader.h"

namespace talus {

namespace {

// WAL record: base_seq fixed64 | WriteBatch rep (one record per batch, so
// multi-op batches commit atomically).
std::string EncodeWalRecord(SequenceNumber base_seq, const WriteBatch& batch) {
  std::string rec;
  PutFixed64(&rec, base_seq);
  rec.append(batch.rep());
  return rec;
}

bool DecodeWalRecord(Slice input, SequenceNumber* base_seq,
                     WriteBatch* batch) {
  uint64_t s;
  if (!GetFixed64(&input, &s)) return false;
  *base_seq = s;
  return WriteBatch::FromRep(input, batch).ok();
}

// Applies a batch to a memtable with sequences base, base+1, ...
class MemTableInserter : public WriteBatch::Handler {
 public:
  MemTableInserter(MemTable* mem, SequenceNumber base)
      : mem_(mem), seq_(base) {}
  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(seq_++, kTypeValue, key, value);
  }
  void Delete(const Slice& key) override {
    mem_->Add(seq_++, kTypeDeletion, key, Slice());
  }
  SequenceNumber next_sequence() const { return seq_; }

 private:
  MemTable* mem_;
  SequenceNumber seq_;
};

// Iterates a sorted run: files are disjoint and ordered, so this is a simple
// concatenation with lazy reader opening. `open` returns a pinned handle;
// the iterator holds the pin for the file it is currently positioned in, so
// a table-cache eviction cannot close the reader mid-iteration.
class RunIterator final : public Iterator {
 public:
  RunIterator(std::vector<FileMetaPtr> files,
              std::function<std::shared_ptr<SstReader>(uint64_t)> open)
      : files_(std::move(files)), open_(std::move(open)) {}

  bool Valid() const override { return iter_ != nullptr && iter_->Valid(); }

  void SeekToFirst() override {
    index_ = 0;
    InitFile();
    if (iter_ != nullptr) iter_->SeekToFirst();
    SkipForward();
  }
  void SeekToLast() override {
    if (files_.empty()) {
      iter_.reset();
      return;
    }
    index_ = files_.size() - 1;
    InitFile();
    if (iter_ != nullptr) iter_->SeekToLast();
    SkipBackward();
  }
  void Seek(const Slice& target) override {
    // Binary search for the first file whose largest key >= target.
    InternalKeyComparator cmp;
    size_t left = 0, right = files_.size();
    while (left < right) {
      size_t mid = (left + right) / 2;
      if (cmp.Compare(files_[mid]->largest.Encode(), target) < 0) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    index_ = left;
    InitFile();
    if (iter_ != nullptr) iter_->Seek(target);
    SkipForward();
  }
  void Next() override {
    assert(Valid());
    iter_->Next();
    SkipForward();
  }
  void Prev() override {
    assert(Valid());
    iter_->Prev();
    SkipBackward();
  }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return iter_ != nullptr ? iter_->status() : Status::OK();
  }

 private:
  void InitFile() {
    iter_.reset();
    reader_.reset();
    if (index_ >= files_.size()) return;
    reader_ = open_(files_[index_]->number);
    if (reader_ == nullptr) {
      status_ = Status::IOError("cannot open sst reader");
      return;
    }
    iter_ = reader_->NewIterator();
  }
  void SkipForward() {
    while ((iter_ == nullptr || !iter_->Valid()) &&
           index_ + 1 < files_.size()) {
      index_++;
      InitFile();
      if (iter_ != nullptr) iter_->SeekToFirst();
    }
    if (iter_ != nullptr && !iter_->Valid()) iter_.reset();
  }
  void SkipBackward() {
    while ((iter_ == nullptr || !iter_->Valid()) && index_ > 0) {
      index_--;
      InitFile();
      if (iter_ != nullptr) iter_->SeekToLast();
    }
    if (iter_ != nullptr && !iter_->Valid()) iter_.reset();
  }

  std::vector<FileMetaPtr> files_;
  std::function<std::shared_ptr<SstReader>(uint64_t)> open_;
  size_t index_ = 0;
  // Declared before iter_ so the iterator (which points into the reader) is
  // destroyed first.
  std::shared_ptr<SstReader> reader_;
  std::unique_ptr<Iterator> iter_;
  Status status_;
};

// User-facing iterator: walks internal keys, surfacing only the newest
// version of each user key visible at the view's sequence and skipping
// tombstones. Forward only. Owns its ReadView, so the memtables and SST
// files it reads stay alive and the result set is a consistent snapshot no
// matter what flushes, compactions, or writes happen concurrently.
class DbIterator final : public Iterator {
 public:
  DbIterator(std::shared_ptr<const read::ReadView> view,
             std::unique_ptr<Iterator> internal)
      : view_(std::move(view)),
        internal_(std::move(internal)),
        sequence_(view_->sequence) {}

  bool Valid() const override { return valid_; }
  void SeekToFirst() override {
    has_current_ = false;
    internal_->SeekToFirst();
    FindNextUserEntry();
  }
  void Seek(const Slice& user_key) override {
    has_current_ = false;
    std::string target;
    AppendInternalKey(&target, user_key, sequence_, kValueTypeForSeek);
    internal_->Seek(Slice(target));
    FindNextUserEntry();
  }
  void Next() override {
    assert(valid_);
    internal_->Next();
    FindNextUserEntry();
  }
  void SeekToLast() override { valid_ = false; }  // Forward-only.
  void Prev() override { assert(false); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override { return internal_->status(); }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (parsed.sequence > sequence_) {
        internal_->Next();  // Written after this view was pinned.
        continue;
      }
      if (has_current_ && parsed.user_key == Slice(key_)) {
        internal_->Next();  // Shadowed older version.
        continue;
      }
      key_.assign(parsed.user_key.data(), parsed.user_key.size());
      has_current_ = true;
      if (parsed.type == kTypeDeletion) {
        internal_->Next();  // Tombstone hides every older version too.
        continue;
      }
      value_.assign(internal_->value().data(), internal_->value().size());
      valid_ = true;
      return;
    }
  }

  // view_ is declared first so it is destroyed LAST: the internal iterator
  // (whose RunIterators hold FileMetaPtrs and reader pins) must release its
  // references before the view's deleter runs obsolete-file GC.
  std::shared_ptr<const read::ReadView> view_;
  std::unique_ptr<Iterator> internal_;
  SequenceNumber sequence_ = 0;
  bool valid_ = false;
  bool has_current_ = false;
  std::string key_;
  std::string value_;
};

}  // namespace

DB::DB(const DbOptions& options) : options_(options) {
  block_cache_ = std::make_unique<LruCache>(options_.block_cache_bytes);
  table_cache_ = std::make_unique<read::TableCache>(
      options_.env, options_.path, block_cache_.get(),
      options_.table_cache_open_files);
  current_ = new Version();
  current_->Ref();
}

DB::~DB() {
  // Drain accepted background jobs, then the pool's task queue, before any
  // member is destroyed. Both calls are idempotent.
  if (scheduler_ != nullptr) scheduler_->Shutdown();
  if (pool_ != nullptr) pool_->Shutdown();
  std::lock_guard<std::mutex> lock(mutex_);
  // Best effort: anything still pinned (stray iterator outliving the DB is
  // undefined behavior anyway) stays on disk and is swept at the next Open.
  CollectObsoleteLocked();
  if (current_ != nullptr && current_->Unref()) delete current_;
}

Status DB::Open(const DbOptions& options, std::unique_ptr<DB>* dbptr) {
  if (options.env == nullptr || options.path.empty()) {
    return Status::InvalidArgument("env and path are required");
  }
  auto db = std::unique_ptr<DB>(new DB(options));
  Env* env = options.env;
  Status s = env->CreateDirIfMissing(options.path);
  if (!s.ok()) return s;

  PolicyContext ctx;
  ctx.buffer_bytes = options.write_buffer_size;
  ctx.mix_tracker = &db->mix_tracker_;
  GrowthPolicyConfig policy_config = options.policy;
  policy_config.bloom_bits_per_key = options.bloom_bits_per_key;
  db->policy_ = CreateGrowthPolicy(policy_config, ctx);
  if (db->policy_ == nullptr) {
    return Status::InvalidArgument("unknown growth policy");
  }

  ManifestData manifest;
  uint64_t manifest_number = 0;
  uint64_t old_wal = 0;
  s = ReadCurrentManifest(env, options.path, &manifest, &manifest_number);
  if (s.ok()) {
    if (manifest.policy_name != db->policy_->name()) {
      return Status::InvalidArgument(
          "db was created with a different growth policy",
          manifest.policy_name);
    }
    db->InstallVersionLocked(
        std::make_unique<Version>(std::move(manifest.version)));
    db->next_file_number_.store(manifest.next_file_number,
                                std::memory_order_relaxed);
    db->next_run_id_ = manifest.next_run_id;
    db->last_sequence_ = manifest.last_sequence;
    db->flush_count_ = manifest.flush_count;
    db->manifest_number_ = manifest_number;
    old_wal = manifest.wal_number;
    if (!db->policy_->DecodeState(manifest.policy_state)) {
      return Status::Corruption("bad growth policy state in manifest");
    }
  } else if (s.IsNotFound()) {
    if (!options.create_if_missing) return s;
  } else {
    return s;
  }

  db->mem_ = std::make_shared<MemTable>();

  // Sweep orphaned SSTs: files on disk but absent from the manifest's
  // version (left by a crash between a manifest install and deferred GC, or
  // by a shutdown with pinned iterators). Nothing else runs yet, so every
  // unreferenced .sst is garbage.
  {
    std::vector<std::string> children;
    if (env->GetChildren(options.path, &children).ok()) {
      for (const auto& name : children) {
        uint64_t number = 0;
        std::string suffix;
        if (ParseFileName(name, &number, &suffix) && suffix == "sst" &&
            !db->current_->ReferencesFile(number)) {
          env->RemoveFile(SstFileName(options.path, number));
        }
      }
    }
  }

  // Recovery and the initial flush run inline (and under the mutex) even in
  // background mode: the exec subsystem starts only once the DB is
  // consistent.
  std::unique_lock<std::mutex> lock(db->mutex_);
  std::vector<uint64_t> replayed;
  if (old_wal != 0) {
    Status rs = db->RecoverWalsLocked(old_wal, &replayed);
    if (!rs.ok()) return rs;
  }

  if (db->mem_->num_entries() > 0) {
    // Recovered entries are only in memory and the old WALs; flush them so
    // the old WALs can be retired safely. DoFlushLocked performs the safe
    // new-WAL → manifest → delete-old-WAL sequence for the newest WAL; any
    // older replayed WALs are deleted once the manifest stopped naming them.
    db->wal_number_ = replayed.back();
    Status fs = db->DoFlushLocked(lock);
    if (!fs.ok()) return fs;
    for (size_t i = 0; i + 1 < replayed.size(); i++) {
      env->RemoveFile(WalFileName(options.path, replayed[i]));
    }
  } else {
    Status ws = db->NewWalLocked();
    if (!ws.ok()) return ws;
    ws = db->InstallManifestLocked();
    if (!ws.ok()) return ws;
    for (uint64_t w : replayed) {
      env->RemoveFile(WalFileName(options.path, w));
    }
  }
  lock.unlock();

  if (db->is_background()) {
    db->pool_ =
        std::make_unique<exec::ThreadPool>(options.num_background_threads);
    db->scheduler_ = std::make_unique<exec::JobScheduler>(db->pool_.get());
    exec::StallConfig stall_config;
    stall_config.max_immutable_memtables = options.max_immutable_memtables;
    stall_config.l0_slowdown_runs = options.l0_slowdown_runs;
    stall_config.l0_stop_runs = options.l0_stop_runs;
    stall_config.slowdown_delay_micros = options.slowdown_delay_micros;
    db->stall_ = std::make_unique<exec::StallController>(stall_config);
  }

  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::RecoverWalsLocked(uint64_t oldest_wal,
                             std::vector<uint64_t>* replayed) {
  // The manifest names the oldest WAL that may hold unflushed data. In
  // background mode several WALs can be live at once (one per queued
  // immutable memtable plus the active one), so replay every WAL file at or
  // above that number, in order; sequence numbers keep replay idempotent
  // with respect to ordering.
  std::vector<std::string> children;
  Status s = options_.env->GetChildren(options_.path, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> wals;
  for (const auto& name : children) {
    uint64_t number = 0;
    std::string suffix;
    if (ParseFileName(name, &number, &suffix) && suffix == "wal" &&
        number >= oldest_wal) {
      wals.push_back(number);
    }
  }
  std::sort(wals.begin(), wals.end());

  for (uint64_t wal_number : wals) {
    const std::string fname = WalFileName(options_.path, wal_number);
    std::unique_ptr<SequentialFile> file;
    s = options_.env->NewSequentialFile(fname, &file);
    if (!s.ok()) return s;
    wal::LogReader reader(std::move(file));
    std::string record;
    while (reader.ReadRecord(&record)) {
      SequenceNumber base_seq;
      WriteBatch batch;
      if (!DecodeWalRecord(Slice(record), &base_seq, &batch)) {
        return Status::Corruption("bad WAL record", fname);
      }
      MemTableInserter inserter(mem_.get(), base_seq);
      Status bs = batch.Iterate(&inserter);
      if (!bs.ok()) return bs;
      const SequenceNumber last = base_seq + batch.Count() - 1;
      if (batch.Count() > 0 && last > last_sequence_) last_sequence_ = last;
    }
    // A torn tail is expected after a crash; everything before it is intact.
    replayed->push_back(wal_number);
  }
  return Status::OK();
}

Status DB::NewWalLocked() {
  if (!options_.enable_wal) {
    wal_number_ = 0;
    wal_.reset();
    return Status::OK();
  }
  wal_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> file;
  Status s = options_.env->NewWritableFile(
      WalFileName(options_.path, wal_number_), &file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<wal::LogWriter>(std::move(file));
  return Status::OK();
}

uint64_t DB::OldestLiveWalLocked() const {
  // WALs retire in order, so the oldest queued immutable memtable's WAL
  // bounds what recovery must replay.
  return imm_.empty() ? wal_number_ : imm_.front().wal_number;
}

Status DB::Put(const Slice& key, const Slice& value) {
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  WriteBatch batch;
  batch.Put(key, value);
  std::unique_lock<std::mutex> lock(mutex_);
  stats_.puts++;
  mix_tracker_.RecordUpdate();
  return WriteLocked(batch, lock);
}

Status DB::Delete(const Slice& key) {
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  WriteBatch batch;
  batch.Delete(key);
  std::unique_lock<std::mutex> lock(mutex_);
  stats_.deletes++;
  mix_tracker_.RecordUpdate();
  return WriteLocked(batch, lock);
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  std::unique_lock<std::mutex> lock(mutex_);
  stats_.puts += batch.Count();
  mix_tracker_.RecordUpdate();
  return WriteLocked(batch, lock);
}

Status DB::WriteLocked(const WriteBatch& batch,
                       std::unique_lock<std::mutex>& lock) {
  if (is_background()) {
    if (!bg_error_.ok()) return bg_error_;
    Status ss = MaybeStallLocked(lock);
    if (!ss.ok()) return ss;
  }
  const SequenceNumber base_seq = last_sequence_ + 1;
  last_sequence_ += batch.Count();
  if (wal_ != nullptr) {
    Status s = wal_->AddRecord(Slice(EncodeWalRecord(base_seq, batch)));
    if (s.ok() && options_.wal_sync_writes) s = wal_->Sync();
    if (!s.ok()) return s;
  }
  MemTableInserter inserter(mem_.get(), base_seq);
  Status s = batch.Iterate(&inserter);
  if (!s.ok()) return s;
  stats_.user_payload_written += batch.PayloadBytes();
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_write);

  if (mem_->payload_bytes() >= options_.write_buffer_size) {
    if (!is_background()) return DoFlushLocked(lock);
    return SwitchMemTableLocked();
  }
  return Status::OK();
}

Status DB::MaybeStallLocked(std::unique_lock<std::mutex>& lock) {
  bool already_slowed = false;
  while (true) {
    if (!bg_error_.ok()) return bg_error_;
    const size_t l0_runs =
        current_->levels.empty() ? 0 : current_->levels[0].runs.size();
    const exec::StallDecision decision =
        stall_->Decide(imm_.size(), l0_runs);
    if (decision == exec::StallDecision::kStop) {
      // Safety valve: if no background job is pending, no background
      // progress can clear the condition (the policy's stable shape exceeds
      // the configured threshold) — proceed instead of deadlocking.
      // bg_jobs_pending_ (not the scheduler's counters) is what makes this
      // wait sound: it is decremented under mutex_ together with a
      // bg_cv_.notify_all(), so the last job's completion is never missed.
      if (imm_.empty() && bg_jobs_pending_ == 0) return Status::OK();
      const uint64_t start = NowMicros();
      stats_.stall_stops++;
      bg_cv_.wait(lock, [this] {
        if (!bg_error_.ok()) return true;
        const size_t l0 =
            current_->levels.empty() ? 0 : current_->levels[0].runs.size();
        if (stall_->Decide(imm_.size(), l0) != exec::StallDecision::kStop) {
          return true;
        }
        return imm_.empty() && bg_jobs_pending_ == 0;
      });
      const uint64_t waited = NowMicros() - start;
      stats_.stall_micros += waited;
      continue;
    }
    if (decision == exec::StallDecision::kSlowdown && !already_slowed) {
      already_slowed = true;
      const uint64_t start = NowMicros();
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(
          stall_->config().slowdown_delay_micros));
      lock.lock();
      const uint64_t waited = NowMicros() - start;
      stats_.stall_slowdowns++;
      stats_.stall_micros += waited;
      continue;
    }
    return Status::OK();
  }
}

Status DB::SwitchMemTableLocked() {
  imm_.push_back(ImmPartition{mem_, wal_number_});
  stats_.memtable_switches++;
  if (imm_.size() > stats_.max_imm_queue_depth) {
    stats_.max_imm_queue_depth = imm_.size();
  }
  mem_ = std::make_shared<MemTable>();
  Status s = NewWalLocked();
  if (!s.ok()) {
    bg_error_ = s;
    return s;
  }
  ScheduleFlushLocked();
  return Status::OK();
}

void DB::ScheduleFlushLocked() {
  if (scheduler_->Schedule(exec::JobType::kFlush, [this] {
        return BackgroundFlush();
      }) != exec::JobScheduler::kInvalidJobId) {
    bg_jobs_pending_++;
  }
}

void DB::ScheduleCompactionLocked() {
  if (scheduler_->Schedule(exec::JobType::kCompaction, [this] {
        return BackgroundCompaction();
      }) != exec::JobScheduler::kInvalidJobId) {
    bg_jobs_pending_++;
  }
}

Status DB::BackgroundFlush() {
  std::unique_lock<std::mutex> lock(mutex_);
  Status s = BackgroundFlushLocked(lock);
  bg_jobs_pending_--;
  bg_cv_.notify_all();
  return s;
}

Status DB::BackgroundFlushLocked(std::unique_lock<std::mutex>& lock) {
  if (flush_active_) return Status::OK();  // The active job drains the queue.
  flush_active_ = true;
  Status s;
  while (s.ok() && !imm_.empty()) {
    // The front partition stays visible to readers (and its WAL stays named
    // by the manifest) until the flush result is installed below.
    ImmPartition part = imm_.front();
    std::vector<FileMetaPtr> obsolete;
    s = FlushMemToL0Locked(part.mem.get(), lock, /*allow_unlock=*/true,
                           &obsolete);
    if (!s.ok()) break;
    imm_.pop_front();
    stats_.bg_flushes++;
    policy_->OnFlushCompleted(*current_);
    s = InstallManifestLocked();
    if (s.ok()) {
      MarkObsoleteLocked(std::move(obsolete));
      s = CollectObsoleteLocked();
    }
    if (s.ok() && part.wal_number != 0) {
      options_.env->RemoveFile(WalFileName(options_.path, part.wal_number));
    }
    bg_cv_.notify_all();
  }
  if (!s.ok()) bg_error_ = s;
  flush_active_ = false;
  if (s.ok()) ScheduleCompactionLocked();
  bg_cv_.notify_all();
  return s;
}

Status DB::BackgroundCompaction() {
  std::unique_lock<std::mutex> lock(mutex_);
  Status s = Status::OK();
  if (!compaction_active_) {  // Otherwise the active chain picks the work up.
    compaction_active_ = true;
    s = RunCompactionLoopLocked(lock, /*yield_between_rounds=*/true);
    if (!s.ok()) bg_error_ = s;
    compaction_active_ = false;
  }
  bg_jobs_pending_--;
  bg_cv_.notify_all();
  return s;
}

SequenceNumber DB::SmallestLiveSnapshotLocked() const {
  if (snapshot_seqs_.empty()) return last_sequence_;
  return std::min(*snapshot_seqs_.begin(), last_sequence_);
}

const Snapshot* DB::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_seqs_.insert(last_sequence_);
  return new Snapshot(last_sequence_);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = snapshot_seqs_.find(snapshot->sequence());
  if (it != snapshot_seqs_.end()) snapshot_seqs_.erase(it);
  delete snapshot;
}

Status DB::FlushMemTable() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!is_background()) {
    if (mem_->num_entries() == 0) return Status::OK();
    return DoFlushLocked(lock);
  }
  if (!bg_error_.ok()) return bg_error_;
  if (mem_->num_entries() > 0) {
    Status s = SwitchMemTableLocked();
    if (!s.ok()) return s;
  }
  lock.unlock();
  scheduler_->WaitIdle();
  lock.lock();
  return bg_error_;
}

Status DB::DoFlushLocked(std::unique_lock<std::mutex>& lock) {
  const double stall_start = options_.env->io_stats()->clock();

  std::vector<FileMetaPtr> obsolete;
  Status s = FlushMemToL0Locked(mem_.get(), lock, /*allow_unlock=*/false,
                                &obsolete);
  if (!s.ok()) return s;
  mem_ = std::make_shared<MemTable>();

  policy_->OnFlushCompleted(*current_);
  s = RunCompactionLoopLocked(lock, /*yield_between_rounds=*/false);
  if (!s.ok()) return s;

  // Safe WAL retirement: open the new WAL, persist the pointer, only then
  // drop the old log and the files consumed by the flush.
  const uint64_t old_wal = wal_number_;
  s = NewWalLocked();
  if (!s.ok()) return s;
  s = InstallManifestLocked();
  if (!s.ok()) return s;
  MarkObsoleteLocked(std::move(obsolete));
  s = CollectObsoleteLocked();
  if (!s.ok()) return s;
  if (old_wal != 0) {
    options_.env->RemoveFile(WalFileName(options_.path, old_wal));
  }

  const double stall = options_.env->io_stats()->clock() - stall_start;
  if (stall > stats_.max_stall_clock) stats_.max_stall_clock = stall;
  return Status::OK();
}

Status DB::FlushMemToL0Locked(MemTable* mem,
                              std::unique_lock<std::mutex>& lock,
                              bool allow_unlock,
                              std::vector<FileMetaPtr>* obsolete) {
  EnsurePaddedLocked(
      static_cast<size_t>(std::max(1, policy_->RequiredLevels(*current_))));

  const MergeMode mode = policy_->FlushMode(*current_);
  uint64_t bytes_read = 0;
  std::vector<FileMetaPtr> outputs;

  if (mode == MergeMode::kMergeIntoRun && !current_->levels[0].empty()) {
    // Leveling flush: merge the memtable with level 0's newest run. Reads
    // existing SSTs, so it stays under the mutex even in background mode.
    // The edit is prepared on a successor copy and installed atomically;
    // pinned views keep reading the pre-flush version.
    auto next = std::make_unique<Version>(*current_);
    SortedRun& target = next->levels[0].runs[0];
    std::vector<std::unique_ptr<Iterator>> children;
    children.push_back(mem->NewIterator());
    children.push_back(std::make_unique<RunIterator>(
        target.files,
        [this](uint64_t n) { return table_cache_->GetReader(n); }));
    auto merged = NewMergingIterator(InternalKeyComparator(),
                                     std::move(children));
    merged->SeekToFirst();
    OutputSpec spec;
    spec.output_level = 0;
    spec.drop_tombstones = next->BottommostNonEmptyLevel() <= 0 &&
                           next->levels[0].runs.size() == 1;
    spec.bits_per_key = BitsPerKeyForLevelLocked(0);
    spec.smallest_snapshot = SmallestLiveSnapshotLocked();
    Status s = WriteSortedOutput(merged.get(), spec, &bytes_read, &outputs);
    if (!s.ok()) return s;
    for (const auto& f : target.files) obsolete->push_back(f);
    uint64_t written = 0;
    for (const auto& f : outputs) written += f->file_size;
    stats_.flush_bytes_written += written;
    target.files = std::move(outputs);
    if (target.files.empty()) {
      next->levels[0].runs.erase(next->levels[0].runs.begin());
    }
    InstallVersionLocked(std::move(next));
  } else {
    // Tiering flush (or empty level 0): new run at the front. The input is
    // the (immutable) memtable only, so in background mode the mutex is
    // released while SST files are built — the dominant flush cost overlaps
    // foreground traffic. Everything the pass needs is captured first;
    // file numbers come from an atomic counter.
    OutputSpec spec;
    spec.output_level = 0;
    spec.drop_tombstones = current_->BottommostNonEmptyLevel() < 0;
    spec.bits_per_key = BitsPerKeyForLevelLocked(0);
    spec.smallest_snapshot = SmallestLiveSnapshotLocked();
    auto iter = mem->NewIterator();
    iter->SeekToFirst();
    Status s;
    if (allow_unlock) {
      lock.unlock();
      s = WriteSortedOutput(iter.get(), spec, &bytes_read, &outputs);
      lock.lock();
    } else {
      s = WriteSortedOutput(iter.get(), spec, &bytes_read, &outputs);
    }
    if (!s.ok()) return s;
    uint64_t written = 0;
    for (const auto& f : outputs) written += f->file_size;
    stats_.flush_bytes_written += written;
    if (!outputs.empty()) {
      // Copy the post-relock state: a concurrent compaction may have
      // reshaped level 0, but this run is still the newest data and belongs
      // at the front.
      auto next = std::make_unique<Version>(*current_);
      next->EnsureLevels(1);
      SortedRun run;
      run.run_id = next_run_id_++;
      run.files = std::move(outputs);
      next->levels[0].runs.insert(next->levels[0].runs.begin(),
                                  std::move(run));
      InstallVersionLocked(std::move(next));
    }
  }

  stats_.flushes++;
  stats_.compaction_bytes_read += bytes_read;
  flush_count_++;
  return Status::OK();
}

Status DB::RunCompactionLoopLocked(std::unique_lock<std::mutex>& lock,
                                   bool yield_between_rounds) {
  // Bounded to catch policy bugs that would loop forever.
  for (int rounds = 0; rounds < 100000; rounds++) {
    EnsurePaddedLocked(
        static_cast<size_t>(std::max(1, policy_->RequiredLevels(*current_))));
    auto req = policy_->PickCompaction(*current_);
    if (!req.has_value()) return Status::OK();
    Status s = ExecuteCompactionLocked(*req);
    if (!s.ok()) return s;
    policy_->OnCompactionCompleted(*req, *current_);
    // The merge locals inside ExecuteCompactionLocked have released their
    // file references by now, so unpinned inputs are deleted here.
    s = CollectObsoleteLocked();
    if (!s.ok()) return s;
    if (yield_between_rounds) {
      stats_.bg_compactions++;
      // Let stalled writers and readers interleave between rounds. The
      // yield matters: std::mutex permits barging, so without it the OS may
      // hand the relock straight back to this thread for the whole chain.
      bg_cv_.notify_all();
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
  }
  return Status::Corruption("compaction loop did not converge",
                            policy_->name());
}

Status DB::ExecuteCompactionLocked(const CompactionRequest& req) {
  // All resolution and mutation happens on a successor copy; lock-free
  // readers keep walking the current version until the install below.
  auto next = std::make_unique<Version>(*current_);
  next->EnsureLevels(static_cast<size_t>(req.output_level) + 1);

  // ---- Resolve input files. ----
  struct ResolvedInput {
    int level;
    uint64_t run_id;
    std::vector<FileMetaPtr> files;
    bool whole_run;
  };
  std::vector<ResolvedInput> resolved;
  std::string min_user, max_user;
  bool have_range = false;

  for (const auto& in : req.inputs) {
    if (in.level < 0 || in.level >= static_cast<int>(next->levels.size())) {
      return Status::InvalidArgument("compaction input level out of range");
    }
    SortedRun* run = next->levels[in.level].FindRun(in.run_id);
    if (run == nullptr) {
      return Status::InvalidArgument("compaction input run not found");
    }
    ResolvedInput ri;
    ri.level = in.level;
    ri.run_id = in.run_id;
    ri.whole_run = in.file_numbers.empty();
    if (ri.whole_run) {
      ri.files = run->files;
    } else {
      std::set<uint64_t> wanted(in.file_numbers.begin(),
                                in.file_numbers.end());
      for (const auto& f : run->files) {
        if (wanted.count(f->number)) ri.files.push_back(f);
      }
      if (ri.files.size() != wanted.size()) {
        return Status::InvalidArgument("compaction input file not found");
      }
    }
    for (const auto& f : ri.files) {
      Slice lo = f->smallest.user_key();
      Slice hi = f->largest.user_key();
      if (!have_range) {
        min_user = lo.ToString();
        max_user = hi.ToString();
        have_range = true;
      } else {
        if (lo.compare(Slice(min_user)) < 0) min_user = lo.ToString();
        if (hi.compare(Slice(max_user)) > 0) max_user = hi.ToString();
      }
    }
    resolved.push_back(std::move(ri));
  }
  if (!have_range) return Status::OK();  // Nothing to do.

  // ---- Resolve the output target (leveling-style merge). ----
  LevelState& out_level = next->levels[req.output_level];
  SortedRun* target_run = nullptr;
  std::vector<FileMetaPtr> target_overlaps;
  if (req.output_run_id.has_value()) {
    target_run = out_level.FindRun(*req.output_run_id);
    if (target_run == nullptr) {
      return Status::InvalidArgument("compaction output run not found");
    }
    for (size_t idx :
         target_run->OverlappingFiles(Slice(min_user), Slice(max_user))) {
      target_overlaps.push_back(target_run->files[idx]);
    }
  }

  // ---- Tombstone GC admissibility. ----
  // Safe only when no older data for these keys can exist below the output
  // position: nothing in deeper levels, and nothing in older runs of the
  // output level beyond the target itself (inputs from the output level are
  // consumed, so they do not count).
  bool older_data_below = false;
  for (size_t l = req.output_level;
       l < next->levels.size() && !older_data_below; l++) {
    for (const auto& run : next->levels[l].runs) {
      if (run.files.empty()) continue;
      if (l == static_cast<size_t>(req.output_level)) {
        if (target_run != nullptr && run.run_id == target_run->run_id) {
          continue;  // The target itself is merged, not "below".
        }
        bool is_whole_input = false;
        for (const auto& ri : resolved) {
          if (ri.level == req.output_level && ri.run_id == run.run_id &&
              ri.whole_run) {
            is_whole_input = true;
            break;
          }
        }
        if (is_whole_input) continue;
        if (target_run == nullptr) {
          older_data_below = true;  // Fresh front run: everything else older.
          break;
        }
        // Runs positioned after (older than) the target block GC.
        size_t target_pos = 0, run_pos = 0;
        for (size_t i = 0; i < out_level.runs.size(); i++) {
          if (out_level.runs[i].run_id == target_run->run_id) target_pos = i;
          if (out_level.runs[i].run_id == run.run_id) run_pos = i;
        }
        if (run_pos > target_pos) {
          older_data_below = true;
          break;
        }
      } else {
        older_data_below = true;
        break;
      }
    }
  }

  // ---- Merge. ----
  std::vector<std::unique_ptr<Iterator>> children;
  auto open = [this](uint64_t n) { return table_cache_->GetReader(n); };
  for (const auto& ri : resolved) {
    children.push_back(std::make_unique<RunIterator>(ri.files, open));
  }
  if (!target_overlaps.empty()) {
    children.push_back(std::make_unique<RunIterator>(target_overlaps, open));
  }
  auto merged =
      NewMergingIterator(InternalKeyComparator(), std::move(children));
  merged->SeekToFirst();

  OutputSpec spec;
  spec.output_level = req.output_level;
  spec.drop_tombstones = !older_data_below;
  spec.bits_per_key = BitsPerKeyForLevelLocked(req.output_level);
  spec.smallest_snapshot = SmallestLiveSnapshotLocked();

  uint64_t bytes_read = 0;
  std::vector<FileMetaPtr> outputs;
  Status s = WriteSortedOutput(merged.get(), spec, &bytes_read, &outputs);
  if (!s.ok()) return s;
  uint64_t output_bytes = 0;
  for (const auto& f : outputs) output_bytes += f->file_size;
  stats_.compaction_bytes_written += output_bytes;

  // ---- Install the result. ----
  std::vector<FileMetaPtr> obsolete;
  for (const auto& ri : resolved) {
    for (const auto& f : ri.files) obsolete.push_back(f);
  }
  for (const auto& f : target_overlaps) obsolete.push_back(f);

  // For kReplaceInputs, note the position of the youngest consumed run in
  // the output level before mutation.
  size_t replace_position = out_level.runs.size();
  if (req.placement == CompactionRequest::Placement::kReplaceInputs) {
    for (const auto& ri : resolved) {
      if (ri.level != req.output_level) continue;
      for (size_t i = 0; i < out_level.runs.size(); i++) {
        if (out_level.runs[i].run_id == ri.run_id) {
          replace_position = std::min(replace_position, i);
        }
      }
    }
    if (replace_position == out_level.runs.size()) replace_position = 0;
  }

  for (const auto& ri : resolved) {
    LevelState& level = next->levels[ri.level];
    SortedRun* run = level.FindRun(ri.run_id);
    assert(run != nullptr);
    if (ri.whole_run) {
      run->files.clear();
    } else {
      std::set<uint64_t> consumed;
      for (const auto& f : ri.files) consumed.insert(f->number);
      auto& files = run->files;
      files.erase(std::remove_if(files.begin(), files.end(),
                                 [&](const FileMetaPtr& f) {
                                   return consumed.count(f->number) > 0;
                                 }),
                  files.end());
    }
  }

  InternalKeyComparator cmp;
  if (target_run != nullptr) {
    // Splice outputs into the target run where the overlaps were removed.
    std::set<uint64_t> consumed;
    for (const auto& f : target_overlaps) consumed.insert(f->number);
    auto& files = target_run->files;
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const FileMetaPtr& f) {
                                 return consumed.count(f->number) > 0;
                               }),
                files.end());
    for (auto& f : outputs) files.push_back(std::move(f));
    std::sort(files.begin(), files.end(),
              [&cmp](const FileMetaPtr& a, const FileMetaPtr& b) {
                return cmp.Compare(a->smallest.Encode(),
                                   b->smallest.Encode()) < 0;
              });
  } else if (!outputs.empty()) {
    SortedRun run;
    run.run_id = next_run_id_++;
    run.files = std::move(outputs);
    if (req.placement == CompactionRequest::Placement::kReplaceInputs) {
      replace_position = std::min(replace_position, out_level.runs.size());
      out_level.runs.insert(out_level.runs.begin() + replace_position,
                            std::move(run));
    } else {
      out_level.runs.insert(out_level.runs.begin(), std::move(run));
    }
  }

  // Drop now-empty runs everywhere.
  for (auto& level : next->levels) {
    auto& runs = level.runs;
    runs.erase(std::remove_if(
                   runs.begin(), runs.end(),
                   [](const SortedRun& r) { return r.files.empty(); }),
               runs.end());
  }

  InstallVersionLocked(std::move(next));

  stats_.compactions++;
  stats_.compaction_bytes_read += bytes_read;
  if (stats_.level_stats.size() <=
      static_cast<size_t>(req.output_level)) {
    stats_.level_stats.resize(req.output_level + 1);
  }
  auto& ls = stats_.level_stats[req.output_level];
  ls.compactions++;
  ls.bytes_read += bytes_read;
  ls.bytes_written += output_bytes;

  // Persist the new structure before queueing the inputs for deletion
  // (crash safety); the caller runs CollectObsoleteLocked once its merge
  // locals have dropped their file references.
  s = InstallManifestLocked();
  if (!s.ok()) return s;
  MarkObsoleteLocked(std::move(obsolete));
  return Status::OK();
}

Status DB::CompactAll() {
  Status s = FlushMemTable();
  if (!s.ok()) return s;

  std::unique_lock<std::mutex> lock(mutex_);
  const int bottom = current_->BottommostNonEmptyLevel();
  if (bottom < 0) return Status::OK();

  CompactionRequest req;
  for (int level = 0; level <= bottom; level++) {
    for (const auto& run : current_->levels[level].runs) {
      req.inputs.push_back({level, run.run_id, {}});
    }
  }
  if (req.inputs.empty()) return Status::OK();
  req.output_level = bottom;
  req.placement = CompactionRequest::Placement::kReplaceInputs;
  req.reason = "manual-compact-all";
  s = ExecuteCompactionLocked(req);
  if (!s.ok()) return s;
  policy_->OnCompactionCompleted(req, *current_);
  return CollectObsoleteLocked();
}

bool DB::GetProperty(const std::string& property, std::string* value) {
  value->clear();
  std::unique_lock<std::mutex> lock(mutex_);
  if (property == "talus.levels") {
    *value = current_->DebugString();
    return true;
  }
  if (property == "talus.num-runs") {
    *value = std::to_string(current_->TotalRuns());
    return true;
  }
  if (property == "talus.data-bytes") {
    *value = std::to_string(ApproximateDataBytesLocked());
    return true;
  }
  if (property == "talus.stats") {
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "puts=%llu deletes=%llu gets=%llu scans=%llu flushes=%llu "
        "compactions=%llu write_amp=%.3f read_amp=%.3f "
        "filter_negatives=%llu cache_hits=%llu max_stall=%.1f "
        "switches=%llu bg_flushes=%llu bg_compactions=%llu "
        "stall_us=%llu slowdowns=%llu stops=%llu",
        static_cast<unsigned long long>(stats_.puts),
        static_cast<unsigned long long>(stats_.deletes),
        static_cast<unsigned long long>(stats_.gets),
        static_cast<unsigned long long>(stats_.scans),
        static_cast<unsigned long long>(stats_.flushes),
        static_cast<unsigned long long>(stats_.compactions),
        stats_.WriteAmplification(), stats_.ReadAmplification(),
        static_cast<unsigned long long>(stats_.filter_negatives),
        static_cast<unsigned long long>(stats_.block_cache_hits),
        stats_.max_stall_clock,
        static_cast<unsigned long long>(stats_.memtable_switches),
        static_cast<unsigned long long>(stats_.bg_flushes),
        static_cast<unsigned long long>(stats_.bg_compactions),
        static_cast<unsigned long long>(stats_.stall_micros),
        static_cast<unsigned long long>(stats_.stall_slowdowns),
        static_cast<unsigned long long>(stats_.stall_stops));
    const read::TableCache::Stats tc = table_cache_->GetStats();
    char caches[512];
    std::snprintf(
        caches, sizeof(caches),
        " bc_hits=%llu bc_misses=%llu bc_evictions=%llu bc_usage=%zu "
        "bc_cap=%zu tc_hits=%llu tc_misses=%llu tc_opens=%llu "
        "tc_evictions=%llu tc_open_readers=%zu tc_cap=%zu "
        "gc_pending=%zu gc_deleted=%llu",
        static_cast<unsigned long long>(block_cache_->hits()),
        static_cast<unsigned long long>(block_cache_->misses()),
        static_cast<unsigned long long>(block_cache_->evictions()),
        block_cache_->usage(), block_cache_->capacity(),
        static_cast<unsigned long long>(tc.hits),
        static_cast<unsigned long long>(tc.misses),
        static_cast<unsigned long long>(tc.opens),
        static_cast<unsigned long long>(tc.evictions), tc.open_readers,
        tc.capacity, gc_pending_.size(),
        static_cast<unsigned long long>(stats_.obsolete_files_deleted));
    *value = std::string(buf) + caches;
    return true;
  }
  if (property == "talus.cstats") {
    std::string out = "level compactions bytes_read bytes_written\n";
    for (size_t i = 0; i < stats_.level_stats.size(); i++) {
      const auto& ls = stats_.level_stats[i];
      char buf[128];
      std::snprintf(buf, sizeof(buf), "L%zu %llu %llu %llu\n", i,
                    static_cast<unsigned long long>(ls.compactions),
                    static_cast<unsigned long long>(ls.bytes_read),
                    static_cast<unsigned long long>(ls.bytes_written));
      out += buf;
    }
    *value = out;
    return true;
  }
  if (property == "talus.exec") {
    if (!is_background()) {
      *value = "mode=inline";
      return true;
    }
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "mode=background threads=%zu imm_queued=%zu max_imm_queue=%llu "
        "stall_us=%llu slowdowns=%llu stops=%llu | ",
        pool_->num_threads(), imm_.size(),
        static_cast<unsigned long long>(stats_.max_imm_queue_depth),
        static_cast<unsigned long long>(stats_.stall_micros),
        static_cast<unsigned long long>(stats_.stall_slowdowns),
        static_cast<unsigned long long>(stats_.stall_stops));
    *value = std::string(buf) + scheduler_->GetStats().ToString();
    return true;
  }
  return false;
}

Status DB::WriteSortedOutput(Iterator* input, const OutputSpec& spec,
                             uint64_t* bytes_read,
                             std::vector<FileMetaPtr>* outputs) {
  // Compaction/flush merges stream their inputs: charge sequential rates.
  // Thread-safe when given an exclusive input iterator: allocates file
  // numbers from the atomic counter and touches no other shared DB state,
  // so background flushes call it with the DB mutex released.
  IoStats::SequentialScope seq_scope(options_.env->io_stats());
  SstBuilderOptions bopts;
  bopts.block_size = options_.block_size;
  bopts.restart_interval = options_.block_restart_interval;
  bopts.bits_per_key = spec.bits_per_key;

  std::unique_ptr<SstBuilder> builder;
  uint64_t file_number = 0;
  std::string last_user_key;
  bool has_last = false;
  // Newest-to-oldest sequence of the previously kept/seen version of the
  // current user key; versions at or below the smallest live snapshot that
  // are shadowed by a newer such version are unreachable from every read
  // view and can be dropped (LevelDB's retention rule).
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const SequenceNumber smallest_snapshot = spec.smallest_snapshot;
  uint64_t read_accum = 0;
  uint64_t payload_accum = 0;
  uint64_t oldest_seq_accum = kMaxSequenceNumber;

  auto finish_file = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    auto meta = std::make_shared<FileMeta>();
    meta->number = file_number;
    meta->file_size = builder->FileSize();
    meta->num_entries = builder->NumEntries();
    meta->payload_bytes = payload_accum;
    meta->smallest = builder->smallest();
    meta->largest = builder->largest();
    meta->oldest_seq = oldest_seq_accum;
    outputs->push_back(std::move(meta));
    builder.reset();
    payload_accum = 0;
    oldest_seq_accum = kMaxSequenceNumber;
    return Status::OK();
  };

  for (; input->Valid(); input->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(input->key(), &parsed)) {
      return Status::Corruption("bad internal key during compaction");
    }
    read_accum += input->key().size() + input->value().size();

    if (!has_last || parsed.user_key != Slice(last_user_key)) {
      last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      // A newer version of this key is already visible at the oldest read
      // view: this one is unreachable.
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= smallest_snapshot &&
               spec.drop_tombstones) {
      drop = true;
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    // Cut the output file at the size target, but never between versions of
    // the same user key: files within a run must stay user-key disjoint
    // (point lookups probe exactly one file per run).
    if (builder != nullptr &&
        builder->FileSize() >= options_.target_file_size &&
        builder->NumEntries() > 0 &&
        ExtractUserKey(builder->largest().Encode()) != parsed.user_key) {
      Status fs = finish_file();
      if (!fs.ok()) return fs;
    }

    if (builder == nullptr) {
      file_number = next_file_number_++;
      std::unique_ptr<WritableFile> file;
      Status fs = options_.env->NewWritableFile(
          SstFileName(options_.path, file_number), &file);
      if (!fs.ok()) return fs;
      builder = std::make_unique<SstBuilder>(bopts, std::move(file));
    }
    builder->Add(input->key(), input->value());
    payload_accum += parsed.user_key.size() + input->value().size();
    if (parsed.sequence < oldest_seq_accum) {
      oldest_seq_accum = parsed.sequence;
    }
  }
  Status fs = finish_file();
  if (!fs.ok()) return fs;
  *bytes_read = read_accum;
  return input->status();
}

Status DB::InstallManifestLocked() {
  ManifestData data;
  data.next_file_number = next_file_number_.load(std::memory_order_relaxed);
  data.next_run_id = next_run_id_;
  data.last_sequence = last_sequence_;
  data.flush_count = flush_count_;
  data.wal_number = OldestLiveWalLocked();
  data.policy_name = policy_->name();
  data.policy_state = policy_->EncodeState();
  data.version = *current_;

  const uint64_t new_number = manifest_number_ + 1;
  Status s = WriteManifestSnapshot(options_.env, options_.path, new_number,
                                   data);
  if (!s.ok()) return s;
  if (manifest_number_ != 0) {
    options_.env->RemoveFile(
        ManifestFileName(options_.path, manifest_number_));
  }
  manifest_number_ = new_number;
  return Status::OK();
}

void DB::InstallVersionLocked(std::unique_ptr<Version> next) {
  next->Ref();
  Version* old = current_;
  current_ = next.release();
  if (old != nullptr && old->Unref()) delete old;
}

void DB::EnsurePaddedLocked(size_t min_levels) {
  if (current_->levels.size() >= min_levels) return;
  auto padded = std::make_unique<Version>(*current_);
  padded->EnsureLevels(min_levels);
  InstallVersionLocked(std::move(padded));
}

void DB::MarkObsoleteLocked(std::vector<FileMetaPtr> files) {
  for (auto& f : files) gc_pending_.push_back(std::move(f));
  gc_pending_count_.store(gc_pending_.size(), std::memory_order_release);
}

Status DB::CollectObsoleteLocked() {
  Status result;
  for (auto it = gc_pending_.begin(); it != gc_pending_.end();) {
    // use_count() == 1 means the queue's own reference is the last: every
    // version, view, and iterator has let go. A stale concurrent read can
    // only over-count, which defers (never corrupts) the deletion.
    if (it->use_count() > 1) {
      ++it;
      continue;
    }
    const uint64_t number = (*it)->number;
    table_cache_->Evict(number);
    Status s = options_.env->RemoveFile(SstFileName(options_.path, number));
    if (!s.ok() && !s.IsNotFound()) {
      // Keep the entry so the next collection retries the deletion.
      if (result.ok()) result = s;
      ++it;
      continue;
    }
    it = gc_pending_.erase(it);
    stats_.obsolete_files_deleted++;
  }
  gc_pending_count_.store(gc_pending_.size(), std::memory_order_release);
  return result;
}

std::shared_ptr<const read::ReadView> DB::AcquireReadView() {
  std::lock_guard<std::mutex> lock(mutex_);
  return AcquireReadViewLocked();
}

std::shared_ptr<const read::ReadView> DB::AcquireReadViewLocked() {
  auto* view = new read::ReadView;
  current_->Ref();
  view->version = current_;
  view->mem = mem_;
  view->imm.reserve(imm_.size());
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    view->imm.push_back(it->mem);
  }
  view->sequence = last_sequence_;
  return std::shared_ptr<const read::ReadView>(
      view, [this](const read::ReadView* v) { ReleaseReadView(v); });
}

void DB::ReleaseReadView(const read::ReadView* view) {
  std::unique_ptr<const read::ReadView> owned(view);
  const Version* version = view->version;
  // Fast path: no files awaiting GC and the version outlives this view (the
  // DB itself still references it) — pure refcount traffic, no mutex.
  if (gc_pending_count_.load(std::memory_order_acquire) == 0) {
    if (!version->Unref()) return;
    // Last reference to a replaced version; its files were either adopted
    // by successors or already collected (the GC queue is empty).
    delete version;
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (version->Unref()) delete version;
  Status s = CollectObsoleteLocked();
  if (!s.ok() && is_background() && bg_error_.ok()) bg_error_ = s;
}

double DB::BitsPerKeyForLevelLocked(int level) const {
  auto allocator =
      NewFilterAllocator(options_.filter_layout, options_.bloom_bits_per_key);
  return allocator->BitsForLevel(policy_->FilterInfo(*current_), level);
}

Status DB::Get(const Slice& key, std::string* value) {
  return Get(key, value, nullptr);
}

Status DB::Get(const Slice& key, std::string* value,
               const Snapshot* snapshot) {
  // The view pin is the only mutex acquisition on the lookup path; the
  // probe itself runs against immutable state and the lock-free memtables.
  auto view = AcquireReadView();
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_read);
  LookupKey lkey(
      key, snapshot != nullptr ? snapshot->sequence() : view->sequence);

  ReadProbeStats probe;
  Status result = GetFromView(*view, lkey, value, &probe);

  // Read-path stats are relaxed atomics: no second mutex acquisition.
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) stats_.gets_found.fetch_add(1, std::memory_order_relaxed);
  stats_.runs_probed.fetch_add(probe.runs_probed, std::memory_order_relaxed);
  stats_.filter_negatives.fetch_add(probe.filter_negatives,
                                    std::memory_order_relaxed);
  stats_.data_block_reads.fetch_add(probe.block_reads,
                                    std::memory_order_relaxed);
  stats_.block_cache_hits.fetch_add(probe.cache_hits,
                                    std::memory_order_relaxed);
  mix_tracker_.RecordPointLookup();
  return result;
}

Status DB::GetFromView(const read::ReadView& view, const LookupKey& lkey,
                       std::string* value, ReadProbeStats* probe) {
  Status s;
  if (view.mem->Get(lkey, value, &s)) return s;
  // Immutable memtables, newest first.
  for (const auto& mem : view.imm) {
    if (mem->Get(lkey, value, &s)) return s;
  }

  const Slice key = lkey.user_key();
  for (const auto& level : view.version->levels) {
    for (const auto& run : level.runs) {
      // Locate the single file that may contain the key.
      const auto& files = run.files;
      size_t left = 0, right = files.size();
      while (left < right) {
        size_t mid = (left + right) / 2;
        if (files[mid]->largest.user_key().compare(key) < 0) {
          left = mid + 1;
        } else {
          right = mid;
        }
      }
      if (left == files.size()) continue;
      if (files[left]->smallest.user_key().compare(key) > 0) continue;

      probe->runs_probed++;
      std::shared_ptr<SstReader> reader =
          table_cache_->GetReader(files[left]->number);
      if (reader == nullptr) {
        return Status::IOError("cannot open sst for read");
      }
      SstReader::GetStats gs;
      bool decided = reader->Get(lkey, value, &s, &gs);
      if (gs.filter_negative) probe->filter_negatives++;
      if (gs.block_read) probe->block_reads++;
      if (gs.cache_hit) probe->cache_hits++;
      if (decided) return s;
    }
  }
  return Status::NotFound(Slice());
}

std::unique_ptr<Iterator> DB::NewIterator() {
  return NewPinnedIterator(AcquireReadView());
}

std::unique_ptr<Iterator> DB::NewPinnedIterator(
    std::shared_ptr<const read::ReadView> view) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(view->mem->NewIterator());
  for (const auto& mem : view->imm) {
    children.push_back(mem->NewIterator());
  }
  auto open = [this](uint64_t n) { return table_cache_->GetReader(n); };
  for (const auto& level : view->version->levels) {
    for (const auto& run : level.runs) {
      children.push_back(std::make_unique<RunIterator>(run.files, open));
    }
  }
  auto merged =
      NewMergingIterator(InternalKeyComparator(), std::move(children));
  return std::make_unique<DbIterator>(std::move(view), std::move(merged));
}

Status DB::Scan(const Slice& start, size_t count,
                std::vector<std::pair<std::string, std::string>>* out) {
  // Pin once, then iterate with no lock held: the view's sequence bound
  // makes the whole scan a consistent snapshot even while writers and
  // background maintenance proceed.
  auto iter = NewPinnedIterator(AcquireReadView());
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_read);
  out->clear();
  iter->Seek(start);
  while (iter->Valid() && out->size() < count) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  mix_tracker_.RecordRangeLookup();
  return iter->status();
}

uint64_t DB::ApproximateDataBytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return ApproximateDataBytesLocked();
}

uint64_t DB::ApproximateDataBytesLocked() const {
  uint64_t total = mem_->payload_bytes();
  for (const auto& part : imm_) total += part.mem->payload_bytes();
  for (const auto& level : current_->levels) {
    total += level.PayloadBytes();
  }
  return total;
}

std::string DB::DebugString() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return current_->DebugString();
}

}  // namespace talus
