#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <set>
#include <thread>

#include "compaction/compaction_install.h"
#include "compaction/compaction_planner.h"
#include "compaction/sorted_output.h"
#include "lsm/filename.h"
#include "metrics/shard_stats.h"
#include "shard/backpressure.h"
#include "shard/sequence_allocator.h"
#include "table/merging_iterator.h"
#include "table/run_iterator.h"
#include "util/coding.h"
#include "util/wall_clock.h"
#include "wal/log_reader.h"

namespace talus {

namespace {

// WAL record: base_seq fixed64 | concatenated WriteBatch reps. The group
// leader emits one record per commit group (CommitGroup), so every batch in
// the group — and every multi-op batch — commits atomically.
bool DecodeWalRecord(Slice input, SequenceNumber* base_seq,
                     WriteBatch* batch) {
  uint64_t s;
  if (!GetFixed64(&input, &s)) return false;
  *base_seq = s;
  return WriteBatch::FromRep(input, batch).ok();
}

// Publishes a committed (or failed-and-burned) group's sequence ranges to
// the shared allocator: the group's own contiguous claim plus every
// preassigned writer that asked to be published. Used by both the success
// and the WAL-failure path of CommitWriter — the ranges must reach the
// allocator either way, or the global watermark wedges.
void PublishGroupSequences(shard::SequenceAllocator* alloc,
                           SequenceNumber base_seq, uint64_t claim_count,
                           const write::WriteGroup& group) {
  if (alloc == nullptr) return;
  if (claim_count > 0) alloc->Publish(base_seq, claim_count);
  for (write::Writer* wr : group.writers) {
    if (wr->preassigned && wr->publish_sequence && wr->batch->Count() > 0) {
      alloc->Publish(wr->base_seq, wr->batch->Count());
    }
  }
}

// The merge discipline the drift monitor's analytical model should price
// the active policy with: every scheme reduces to leveled or tiered merge
// behavior for cost purposes (the paper's W/R/Q formulas, DESIGN.md §6.7).
tuning::HorizontalMerge MergeForDriftModel(const GrowthPolicyConfig& config) {
  switch (config.scheme) {
    case GrowthScheme::kVertical:
      return config.merge == MergePolicy::kTiering
                 ? tuning::HorizontalMerge::kTiering
                 : tuning::HorizontalMerge::kLeveling;
    case GrowthScheme::kHorizontalTiering:
      return tuning::HorizontalMerge::kTiering;
    case GrowthScheme::kVertiorizon:
      return config.vrn_fixed_merge == MergePolicy::kTiering
                 ? tuning::HorizontalMerge::kTiering
                 : tuning::HorizontalMerge::kLeveling;
    case GrowthScheme::kHorizontalLeveling:
    case GrowthScheme::kLazyLeveling:
    case GrowthScheme::kUniversal:
      return tuning::HorizontalMerge::kLeveling;
  }
  return tuning::HorizontalMerge::kLeveling;
}

// Applies a batch to a memtable with sequences base, base+1, ...
class MemTableInserter : public WriteBatch::Handler {
 public:
  MemTableInserter(MemTable* mem, SequenceNumber base)
      : mem_(mem), seq_(base) {}
  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(seq_++, kTypeValue, key, value);
  }
  void Delete(const Slice& key) override {
    mem_->Add(seq_++, kTypeDeletion, key, Slice());
  }
  SequenceNumber next_sequence() const { return seq_; }

 private:
  MemTable* mem_;
  SequenceNumber seq_;
};

// User-facing iterator: walks internal keys, surfacing only the newest
// version of each user key visible at the view's sequence and skipping
// tombstones. Forward only. Owns its ReadView, so the memtables and SST
// files it reads stay alive and the result set is a consistent snapshot no
// matter what flushes, compactions, or writes happen concurrently.
class DbIterator final : public Iterator {
 public:
  DbIterator(std::shared_ptr<const read::ReadView> view,
             std::unique_ptr<Iterator> internal,
             obs::LatencyRecorder* recorder)
      : view_(std::move(view)),
        internal_(std::move(internal)),
        recorder_(recorder),
        sequence_(view_->sequence) {}

  bool Valid() const override { return valid_; }
  void SeekToFirst() override {
    obs::ScopedOpTimer timer(recorder_, obs::OpType::kIterSeek);
    has_current_ = false;
    internal_->SeekToFirst();
    FindNextUserEntry();
  }
  void Seek(const Slice& user_key) override {
    obs::ScopedOpTimer timer(recorder_, obs::OpType::kIterSeek);
    has_current_ = false;
    std::string target;
    AppendInternalKey(&target, user_key, sequence_, kValueTypeForSeek);
    internal_->Seek(Slice(target));
    FindNextUserEntry();
  }
  void Next() override {
    assert(valid_);
    internal_->Next();
    FindNextUserEntry();
  }
  void SeekToLast() override { valid_ = false; }  // Forward-only.
  void Prev() override { assert(false); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override { return internal_->status(); }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (parsed.sequence > sequence_) {
        internal_->Next();  // Written after this view was pinned.
        continue;
      }
      if (has_current_ && parsed.user_key == Slice(key_)) {
        internal_->Next();  // Shadowed older version.
        continue;
      }
      key_.assign(parsed.user_key.data(), parsed.user_key.size());
      has_current_ = true;
      if (parsed.type == kTypeDeletion) {
        internal_->Next();  // Tombstone hides every older version too.
        continue;
      }
      value_.assign(internal_->value().data(), internal_->value().size());
      valid_ = true;
      return;
    }
  }

  // view_ is declared first so it is destroyed LAST: the internal iterator
  // (whose RunIterators hold FileMetaPtrs and reader pins) must release its
  // references before the view's deleter runs obsolete-file GC.
  std::shared_ptr<const read::ReadView> view_;
  std::unique_ptr<Iterator> internal_;
  obs::LatencyRecorder* recorder_ = nullptr;
  SequenceNumber sequence_ = 0;
  bool valid_ = false;
  bool has_current_ = false;
  std::string key_;
  std::string value_;
};

}  // namespace

DB::DB(const DbOptions& options) : options_(options) {
  // Legacy alias: wal_sync_writes predates wal_sync_mode and promised one
  // fsync per write. Group commit keeps the guarantee (every acked batch is
  // synced before its status is published) while amortizing the cost.
  if (options_.wal_sync_writes && options_.wal_sync_mode == WalSyncMode::kNone) {
    options_.wal_sync_mode = WalSyncMode::kPerGroup;
  }
  write_queue_ = std::make_unique<write::WriteQueue>();
  block_cache_ = std::make_unique<LruCache>(options_.block_cache_bytes);
  table_cache_ = std::make_unique<read::TableCache>(
      options_.env, options_.path, block_cache_.get(),
      options_.table_cache_open_files);
  compaction_exec_ = std::make_unique<compaction::CompactionExecutor>(
      OutputShapeForDb(), table_cache_.get());
  if (options_.enable_latency_stats) {
    latency_ = std::make_unique<obs::LatencyRecorder>();
  }
  if (options_.enable_amp_stats) {
    amp_ = std::make_unique<obs::AmpTracker>();
    obs::ModelDriftMonitor::Params drift_params;
    drift_params.merge = MergeForDriftModel(options_.policy);
    drift_params.size_ratio = options_.policy.size_ratio;
    // Optimal-k Bloom FPR for the configured bits/key: f = 2^(-bits·ln 2).
    drift_params.bloom_fpr =
        std::pow(2.0, -options_.bloom_bits_per_key * 0.6931471805599453);
    drift_params.drift_threshold = options_.model_drift_threshold;
    drift_params.mix_shift_threshold = options_.model_mix_shift_threshold;
    drift_ = std::make_unique<obs::ModelDriftMonitor>(drift_params);
  }
  if (options_.event_ring != nullptr) {
    // Borrowed ring (sharded store): its owner decides about tracing.
    ring_ = options_.event_ring;
  } else {
    owned_ring_ = std::make_unique<obs::EventRing>(options_.event_ring_size);
    ring_ = owned_ring_.get();
    if (!options_.trace_file_path.empty()) {
      ring_->OpenTraceFile(options_.trace_file_path);
    }
  }
  current_ = new Version();
  current_->Ref();
}

compaction::OutputShape DB::OutputShapeForDb() {
  compaction::OutputShape shape;
  shape.env = options_.env;
  shape.path = options_.path;
  shape.block_size = options_.block_size;
  shape.restart_interval = options_.block_restart_interval;
  shape.filter_variant = options_.filter_variant;
  shape.target_file_size = options_.target_file_size;
  shape.next_file_number = &next_file_number_;
  return shape;
}

DB::~DB() {
  // The tuner's tick and the snapshotter's samples read live engine state;
  // quiesce both before anything else is torn down.
  if (tuner_ != nullptr) tuner_->Stop();
  if (snapshotter_ != nullptr) snapshotter_->Stop();
  // Drain accepted background jobs, then the pool's task queue, before any
  // member is destroyed. Both calls are idempotent. A borrowed pool (shared
  // across shards) is the sharded store's to shut down, not ours.
  if (scheduler_ != nullptr) scheduler_->Shutdown();
  if (owned_pool_ != nullptr) owned_pool_->Shutdown();
  std::lock_guard<std::mutex> lock(mutex_);
  // Best effort: anything still pinned (stray iterator outliving the DB is
  // undefined behavior anyway) stays on disk and is swept at the next Open.
  CollectObsoleteLocked();
  if (current_ != nullptr && current_->Unref()) delete current_;
}

Status DB::Open(const DbOptions& options, std::unique_ptr<DB>* dbptr) {
  if (options.env == nullptr || options.path.empty()) {
    return Status::InvalidArgument("env and path are required");
  }
  auto db = std::unique_ptr<DB>(new DB(options));
  Env* env = options.env;
  Status s = env->CreateDirIfMissing(options.path);
  if (!s.ok()) return s;

  PolicyContext ctx;
  ctx.buffer_bytes = options.write_buffer_size;
  ctx.mix_tracker = &db->mix_tracker_;
  GrowthPolicyConfig policy_config = options.policy;
  policy_config.bloom_bits_per_key = options.bloom_bits_per_key;
  db->policy_ = CreateGrowthPolicy(policy_config, ctx);
  if (db->policy_ == nullptr) {
    return Status::InvalidArgument("unknown growth policy");
  }

  ManifestData manifest;
  uint64_t manifest_number = 0;
  uint64_t old_wal = 0;
  s = ReadCurrentManifest(env, options.path, &manifest, &manifest_number);
  if (s.ok()) {
    if (options.adaptive_tuning && !manifest.policy_config.empty()) {
      // Re-resolution (DESIGN.md §9): a tuned store's live design may have
      // moved away from the statically configured one. The manifest's
      // persisted config is authoritative — rebuild the policy from it so
      // the name check below compares like with like.
      GrowthPolicyConfig persisted;
      if (!DecodeGrowthPolicyConfig(manifest.policy_config, &persisted)) {
        return Status::Corruption("bad growth policy config in manifest");
      }
      persisted.bloom_bits_per_key = options.bloom_bits_per_key;
      db->options_.policy = persisted;
      db->policy_ = CreateGrowthPolicy(persisted, ctx);
      if (db->policy_ == nullptr) {
        return Status::Corruption("unresolvable growth policy in manifest");
      }
      if (db->drift_ != nullptr) {
        db->drift_->Reconfigure(MergeForDriftModel(persisted),
                                persisted.size_ratio);
      }
    }
    if (manifest.policy_name != db->policy_->name()) {
      return Status::InvalidArgument(
          "db was created with a different growth policy",
          manifest.policy_name);
    }
    db->InstallVersionLocked(
        std::make_unique<Version>(std::move(manifest.version)));
    db->next_file_number_.store(manifest.next_file_number,
                                std::memory_order_relaxed);
    db->next_run_id_ = manifest.next_run_id;
    db->last_sequence_ = manifest.last_sequence;
    db->flush_count_ = manifest.flush_count;
    db->manifest_number_ = manifest_number;
    old_wal = manifest.wal_number;
    if (!db->policy_->DecodeState(manifest.policy_state)) {
      return Status::Corruption("bad growth policy state in manifest");
    }
  } else if (s.IsNotFound()) {
    if (!options.create_if_missing) return s;
  } else {
    return s;
  }

  db->mem_ = std::make_shared<MemTable>();

  // Sweep orphaned SSTs: files on disk but absent from the manifest's
  // version (left by a crash between a manifest install and deferred GC, or
  // by a shutdown with pinned iterators). Nothing else runs yet, so every
  // unreferenced .sst is garbage.
  {
    std::vector<std::string> children;
    if (env->GetChildren(options.path, &children).ok()) {
      for (const auto& name : children) {
        uint64_t number = 0;
        std::string suffix;
        if (ParseFileName(name, &number, &suffix) && suffix == "sst" &&
            !db->current_->ReferencesFile(number)) {
          env->RemoveFile(SstFileName(options.path, number));
        }
      }
    }
  }

  // Recovery and the initial flush run inline (and under the mutex) even in
  // background mode: the exec subsystem starts only once the DB is
  // consistent.
  std::unique_lock<std::mutex> lock(db->mutex_);
  std::vector<uint64_t> replayed;
  if (old_wal != 0) {
    Status rs = db->RecoverWalsLocked(old_wal, &replayed);
    if (!rs.ok()) return rs;
  }

  if (db->mem_->num_entries() > 0) {
    // Recovered entries are only in memory and the old WALs; flush them so
    // the old WALs can be retired safely. DoFlushLocked performs the safe
    // new-WAL → manifest → delete-old-WAL sequence for the newest WAL; any
    // older replayed WALs are deleted once the manifest stopped naming them.
    db->wal_number_ = replayed.back();
    Status fs = db->DoFlushLocked(lock);
    if (!fs.ok()) return fs;
    for (size_t i = 0; i + 1 < replayed.size(); i++) {
      env->RemoveFile(WalFileName(options.path, replayed[i]));
    }
  } else {
    Status ws = db->NewWalLocked();
    if (!ws.ok()) return ws;
    ws = db->InstallManifestLocked();
    if (!ws.ok()) return ws;
    for (uint64_t w : replayed) {
      env->RemoveFile(WalFileName(options.path, w));
    }
  }
  lock.unlock();

  if (db->is_background()) {
    if (options.shared_pool != nullptr) {
      db->pool_ = options.shared_pool;
    } else {
      db->owned_pool_ =
          std::make_unique<exec::ThreadPool>(options.num_background_threads);
      db->pool_ = db->owned_pool_.get();
    }
    db->scheduler_ = std::make_unique<exec::JobScheduler>(db->pool_);
    exec::StallConfig stall_config;
    stall_config.max_immutable_memtables = options.max_immutable_memtables;
    stall_config.l0_slowdown_runs = options.l0_slowdown_runs;
    stall_config.l0_stop_runs = options.l0_stop_runs;
    stall_config.slowdown_delay_micros = options.slowdown_delay_micros;
    db->stall_ = std::make_unique<exec::StallController>(stall_config);
    // Attach the pool so background compactions fan their subcompactions
    // out (bounded by DbOptions::max_subcompactions).
    db->compaction_exec_->SetPool(db->pool_);
  }

  if (options.stats_snapshot_interval_ms > 0) {
    obs::StatsSnapshotter::Options snap_opts;
    snap_opts.interval_ms = options.stats_snapshot_interval_ms;
    snap_opts.ring_capacity = options.stats_snapshot_ring;
    snap_opts.jsonl_path = options.stats_snapshot_path;
    DB* raw = db.get();
    db->snapshotter_ = std::make_unique<obs::StatsSnapshotter>(
        db->pool_, snap_opts, [raw] { return raw->BuildStatsSample(); });
    db->snapshotter_->Start();
  }

  // The tuner needs the measured windows (amp stats) and only tunes the
  // vertical family — the shapes the cost model solves and the only ones
  // with a cheap live-migration path between them.
  if (options.adaptive_tuning && db->amp_ != nullptr &&
      db->options_.policy.scheme == GrowthScheme::kVertical) {
    tune::TunerConfig tcfg;
    tcfg.hysteresis = options.tune_hysteresis;
    tcfg.min_window_ops = options.tune_min_window_ops;
    tcfg.cooldown_ticks = options.tune_cooldown_ticks;
    tcfg.interval_ms = options.tune_interval_ms;
    DB* raw = db.get();
    db->tuner_ = std::make_unique<tune::AdaptiveTuner>(
        tcfg, [raw] { raw->RetuneNow(); });
    db->tuner_->Start();
  }

  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::RecoverWalsLocked(uint64_t oldest_wal,
                             std::vector<uint64_t>* replayed) {
  // The manifest names the oldest WAL that may hold unflushed data. In
  // background mode several WALs can be live at once (one per queued
  // immutable memtable plus the active one), so replay every WAL file at or
  // above that number, in order; sequence numbers keep replay idempotent
  // with respect to ordering.
  std::vector<std::string> children;
  Status s = options_.env->GetChildren(options_.path, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> wals;
  for (const auto& name : children) {
    uint64_t number = 0;
    std::string suffix;
    if (ParseFileName(name, &number, &suffix) && suffix == "wal" &&
        number >= oldest_wal) {
      wals.push_back(number);
    }
  }
  std::sort(wals.begin(), wals.end());

  for (uint64_t wal_number : wals) {
    const std::string fname = WalFileName(options_.path, wal_number);
    std::unique_ptr<SequentialFile> file;
    s = options_.env->NewSequentialFile(fname, &file);
    if (!s.ok()) return s;
    wal::LogReader reader(std::move(file));
    std::string record;
    while (reader.ReadRecord(&record)) {
      SequenceNumber base_seq;
      WriteBatch batch;
      if (!DecodeWalRecord(Slice(record), &base_seq, &batch)) {
        return Status::Corruption("bad WAL record", fname);
      }
      MemTableInserter inserter(mem_.get(), base_seq);
      Status bs = batch.Iterate(&inserter);
      if (!bs.ok()) return bs;
      const SequenceNumber last = base_seq + batch.Count() - 1;
      if (batch.Count() > 0 && last > last_sequence_) last_sequence_ = last;
    }
    // A torn tail is expected after a crash; everything before it is intact.
    replayed->push_back(wal_number);
  }
  return Status::OK();
}

Status DB::NewWalLocked() {
  if (!options_.enable_wal) {
    wal_number_ = 0;
    wal_.reset();
    return Status::OK();
  }
  wal_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> file;
  Status s = options_.env->NewWritableFile(
      WalFileName(options_.path, wal_number_), &file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<wal::LogWriter>(std::move(file));
  return Status::OK();
}

uint64_t DB::OldestLiveWalLocked() const {
  // WALs retire in order, so the oldest queued immutable memtable's WAL
  // bounds what recovery must replay.
  return imm_.empty() ? wal_number_ : imm_.front().wal_number;
}

Status DB::Put(const Slice& key, const Slice& value) {
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  WriteBatch batch;
  batch.Put(key, value);
  return CommitGroup(batch);
}

Status DB::Delete(const Slice& key) {
  if (key.empty()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  WriteBatch batch;
  batch.Delete(key);
  return CommitGroup(batch);
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  return CommitGroup(batch);
}

Status DB::MaybeSyncWal(wal::LogWriter* wal, bool* synced) {
  switch (options_.wal_sync_mode) {
    case WalSyncMode::kNone:
      return Status::OK();
    case WalSyncMode::kPerGroup:
      *synced = true;
      return wal->Sync();
    case WalSyncMode::kInterval: {
      // The log is always dirty here (called right after a successful
      // append), so the only question is whether the interval elapsed.
      const uint64_t now = NowMicros();
      if (now - last_wal_sync_micros_ < options_.wal_sync_interval_micros) {
        return Status::OK();
      }
      last_wal_sync_micros_ = now;
      *synced = true;
      return wal->Sync();
    }
  }
  return Status::OK();
}

Status DB::CommitGroup(const WriteBatch& my_batch) {
  write::Writer w(&my_batch);
  return CommitWriter(&w);
}

Status DB::WriteAt(const WriteBatch& batch, SequenceNumber base_seq) {
  if (batch.empty()) return Status::OK();
  if (batch.HasEmptyKey()) {
    return Status::InvalidArgument("empty keys are not supported");
  }
  write::Writer w(&batch);
  w.preassigned = true;
  w.publish_sequence = false;  // The sharding layer publishes the range.
  w.base_seq = base_seq;
  return CommitWriter(&w);
}

Status DB::CommitWriter(write::Writer* writer) {
  write::Writer& w = *writer;
  // kPut spans the whole call — queue wait, group commit, stall gate — which
  // is the latency the caller of Put/Delete/Write actually observed.
  obs::ScopedOpTimer put_timer(latency_.get(), obs::OpType::kPut);
  if (!write_queue_->JoinAndAwaitLeadership(&w)) {
    // Committed (or failed) by another leader; join_micros is the time this
    // writer sat in the queue before its group's leader took it.
    if (latency_ != nullptr) {
      latency_->Record(obs::OpType::kGroupWait, w.join_micros);
    }
    return w.status;
  }
  if (latency_ != nullptr) {
    latency_->Record(obs::OpType::kGroupWait, w.join_micros);
  }

  // ---- Leader: gate + claim (first short mutex section). ----
  write::WriteGroup group;
  std::unique_lock<std::mutex> lock(mutex_);
  Status gate;
  if (!wal_error_.ok()) {
    gate = wal_error_;
  } else if (is_background()) {
    gate = bg_error_.ok() ? MaybeStallLocked(lock) : bg_error_;
  }
  // Build the group only after the stall gate: writers that queued up while
  // the leader was stalled amortize into this one commit.
  write_queue_->BuildGroup(&w, options_.max_write_group_bytes, &group);
  if (!gate.ok()) {
    lock.unlock();
    for (write::Writer* wr : group.writers) wr->status = gate;
    write_queue_->ExitGroup(&group);
    return w.status;
  }

  // Claim the group's sequence range privately, in queue order. Nothing is
  // published yet: readers pin views at the pre-group visibility bound, so
  // the whole group becomes visible atomically at publish time — and if the
  // WAL append fails below, the claim simply evaporates (the sequence-leak
  // fix; under a shared allocator the range is burned instead, see the
  // failure branch). Malformed batches (empty keys) fail alone, not their
  // group. Preassigned writers (WriteAt) carry ranges the sharding layer
  // already claimed, so they stay out of this group's contiguous claim.
  shard::SequenceAllocator* alloc = options_.sequence_allocator;
  uint64_t claim_count = 0;
  uint64_t total_count = 0;
  for (write::Writer* wr : group.writers) {
    if (wr->batch->HasEmptyKey()) {
      wr->status = Status::InvalidArgument("empty keys are not supported");
      continue;
    }
    total_count += wr->batch->Count();
    if (!wr->preassigned) claim_count += wr->batch->Count();
  }
  const SequenceNumber base_seq = alloc != nullptr && claim_count > 0
                                      ? alloc->Claim(claim_count)
                                      : last_sequence_ + 1;
  SequenceNumber next_seq = base_seq;
  SequenceNumber max_seq = last_sequence_;
  for (write::Writer* wr : group.writers) {
    if (!wr->status.ok()) continue;
    if (!wr->preassigned) {
      wr->base_seq = next_seq;
      next_seq += wr->batch->Count();
    }
    if (wr->batch->Count() > 0) {
      max_seq = std::max(max_seq, wr->base_seq + wr->batch->Count() - 1);
    }
  }
  const uint64_t group_count = total_count;
  std::shared_ptr<MemTable> mem = mem_;
  wal::LogWriter* wal = wal_.get();
  commit_in_flight_ = true;
  lock.unlock();

  // ---- WAL append + one amortized sync (no mutex). ----
  // One record covers the whole group: recovery decodes the concatenated
  // batch reps and replays them at base_seq onward, reproducing exactly the
  // per-writer sequence assignment above.
  Status s;
  bool synced = false;
  if (wal != nullptr && group_count > 0) {
    const uint64_t wal_t0 = latency_ != nullptr ? NowMicros() : 0;
    if (claim_count > 0) {
      std::string rec;
      PutFixed64(&rec, base_seq);
      for (write::Writer* wr : group.writers) {
        if (wr->status.ok() && !wr->preassigned) rec.append(wr->batch->rep());
      }
      s = wal->AddRecord(Slice(rec));
    }
    // Preassigned sub-batches get their own records: their ranges are
    // disjoint from the group's contiguous claim, and the record format
    // (base_seq + reps, replayed sequentially) already encodes that.
    for (write::Writer* wr : group.writers) {
      if (!s.ok()) break;
      if (!wr->status.ok() || !wr->preassigned) continue;
      std::string rec;
      PutFixed64(&rec, wr->base_seq);
      rec.append(wr->batch->rep());
      s = wal->AddRecord(Slice(rec));
    }
    if (latency_ != nullptr) {
      latency_->Record(obs::OpType::kWalAppend, NowMicros() - wal_t0);
    }
    if (s.ok()) {
      const uint64_t sync_t0 = latency_ != nullptr ? NowMicros() : 0;
      s = MaybeSyncWal(wal, &synced);
      // Only actual fsyncs are observations; skipped intervals would bury
      // the sync tail under zeros.
      if (latency_ != nullptr && synced) {
        latency_->Record(obs::OpType::kWalSync, NowMicros() - sync_t0);
      }
    }
  }

  // ---- Memtable inserts (no mutex). ----
  size_t parallel_applies = 0;
  if (s.ok() && group_count > 0) {
    if (options_.parallel_memtable_writes && group.writers.size() > 1) {
      // Followers insert their own sub-batches concurrently (CAS skiplist
      // inserts); the leader applies its own and then waits for them.
      group.apply = [mem_raw = mem.get()](write::Writer* wr) {
        if (!wr->status.ok()) return;
        MemTableInserter inserter(mem_raw, wr->base_seq);
        wr->status = wr->batch->Iterate(&inserter);
      };
      write_queue_->StartParallelApplies(&group);
      group.apply(&w);  // The leader's own sub-batch, same path.
      write_queue_->AwaitParallelApplies(&group);
      for (size_t i = 1; i < group.writers.size(); i++) {
        if (group.writers[i]->status.ok()) parallel_applies++;
      }
    } else {
      for (write::Writer* wr : group.writers) {
        if (!wr->status.ok()) continue;
        MemTableInserter inserter(mem.get(), wr->base_seq);
        wr->status = wr->batch->Iterate(&inserter);
      }
    }
  }

  // ---- Publish (second short mutex section). ----
  lock.lock();
  commit_in_flight_ = false;
  if (!s.ok()) {
    // WAL failure: nothing was inserted and last_sequence_ never moved.
    // The error is latched — the append may have persisted its record even
    // though it reported failure (e.g. a sync failure after a successful
    // append), so letting a later group re-claim this range could put two
    // WAL records with the same base_seq on disk and make recovery replay
    // duplicate sequences. The whole group shares the error; the store
    // stays readable and reopens cleanly.
    if (wal_error_.ok()) wal_error_ = s;
    for (write::Writer* wr : group.writers) {
      if (wr->status.ok()) wr->status = s;
    }
    // Burn the claimed ranges: the latched error means they can never be
    // reused, and an unpublished hole would wedge the global watermark for
    // every other shard. Ranges the sharding layer claimed itself
    // (publish_sequence == false) are its to burn.
    PublishGroupSequences(alloc, base_seq, claim_count, group);
    bg_cv_.notify_all();
    lock.unlock();
    write_queue_->ExitGroup(&group);
    return w.status;
  }
  if (max_seq > last_sequence_) last_sequence_ = max_seq;
  // Publish once the inserts are complete: the global watermark may now
  // advance over this group, making it visible to cross-shard snapshots
  // atomically. Multi-shard sub-batches (publish_sequence == false) stay
  // pending until the sharding layer publishes their whole range.
  PublishGroupSequences(alloc, base_seq, claim_count, group);
  uint64_t committed = 0;
  for (write::Writer* wr : group.writers) {
    if (!wr->status.ok()) continue;
    committed++;
    stats_.puts += wr->batch->Puts();
    stats_.deletes += wr->batch->Deletes();
    stats_.user_payload_written += wr->batch->PayloadBytes();
    if (amp_ != nullptr) amp_->RecordUserPayload(wr->batch->PayloadBytes());
    mix_tracker_.RecordUpdate();
    options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_write);
  }
  write_stats_.OnGroupCommitted(group.writers.size(), committed,
                                group.queue_wait_micros, synced,
                                parallel_applies);
  Status flush_status;
  if (mem_->payload_bytes() >= options_.write_buffer_size) {
    // The flush (inline) or switch (background) is attributed to the
    // leader: followers' data is already durable in the WAL and memtable.
    flush_status =
        is_background() ? SwitchMemTableLocked() : DoFlushLocked(lock);
  }
  bg_cv_.notify_all();
  lock.unlock();
  write_queue_->ExitGroup(&group);
  if (w.status.ok() && !flush_status.ok()) w.status = flush_status;
  return w.status;
}

Status DB::MaybeStallLocked(std::unique_lock<std::mutex>& lock) {
  bool already_slowed = false;
  bool already_agg_stopped = false;
  shard::ShardBackpressure* agg = options_.shard_backpressure;
  const uint16_t shard = static_cast<uint16_t>(options_.shard_index);
  while (true) {
    if (!bg_error_.ok()) return bg_error_;
    const size_t l0_runs =
        current_->levels.empty() ? 0 : current_->levels[0].runs.size();
    exec::StallCause cause = exec::StallCause::kNone;
    const exec::StallDecision decision =
        stall_->Decide(imm_.size(), l0_runs, &cause);
    const uint64_t cause_code = cause == exec::StallCause::kMemtable
                                    ? obs::kCauseMemtable
                                    : cause == exec::StallCause::kL0
                                          ? obs::kCauseL0
                                          : obs::kCauseNone;
    const exec::StallDecision agg_decision =
        agg != nullptr ? agg->Decide() : exec::StallDecision::kNone;
    if (decision != exec::StallDecision::kStop &&
        agg_decision == exec::StallDecision::kStop && !already_agg_stopped) {
      // Unified backpressure (DESIGN.md §3): the sharded store's aggregate
      // debt — possibly all on one hot shard — stops intake everywhere.
      // The wait is bounded (and taken at most once per write) because the
      // local controllers own unbounded stops; this layer only paces
      // intake while the shared pool catches up. The debt is remote, so it
      // counts toward stop time but not the local memtable/l0 causes.
      already_agg_stopped = true;
      stats_.stall_stops++;
      ring_->Emit(obs::EventType::kShardBackpressure, shard, 1, 0);
      const uint64_t start = NowMicros();
      lock.unlock();
      agg->WaitWhileStopped();
      lock.lock();
      const uint64_t waited = NowMicros() - start;
      stats_.stall_micros += waited;
      stats_.stall_stop_micros += waited;
      ring_->Emit(obs::EventType::kShardBackpressure, shard, 0, waited);
      continue;
    }
    if (decision == exec::StallDecision::kStop) {
      // Safety valve: if no background job is pending, no background
      // progress can clear the condition (the policy's stable shape exceeds
      // the configured threshold) — proceed instead of deadlocking.
      // bg_jobs_pending_ (not the scheduler's counters) is what makes this
      // wait sound: it is decremented under mutex_ together with a
      // bg_cv_.notify_all(), so the last job's completion is never missed.
      if (imm_.empty() && bg_jobs_pending_ == 0) return Status::OK();
      stats_.stall_stops++;
      if (cause == exec::StallCause::kMemtable) {
        stats_.stall_stops_memtable++;
      } else {
        stats_.stall_stops_l0++;
      }
      ring_->Emit(obs::EventType::kStallEnter, shard, cause_code, 1);
      const uint64_t start = NowMicros();
      bg_cv_.wait(lock, [this] {
        if (!bg_error_.ok()) return true;
        const size_t l0 =
            current_->levels.empty() ? 0 : current_->levels[0].runs.size();
        if (stall_->Decide(imm_.size(), l0) != exec::StallDecision::kStop) {
          return true;
        }
        return imm_.empty() && bg_jobs_pending_ == 0;
      });
      const uint64_t waited = NowMicros() - start;
      stats_.stall_micros += waited;
      stats_.stall_stop_micros += waited;
      ring_->Emit(obs::EventType::kStallExit, shard, cause_code, waited);
      continue;
    }
    if ((decision == exec::StallDecision::kSlowdown ||
         agg_decision == exec::StallDecision::kSlowdown) &&
        !already_slowed) {
      already_slowed = true;
      // An aggregate-only slowdown has no local cause; its event carries
      // cause=none and it stays out of the local cause counters.
      const uint64_t slow_cause =
          decision == exec::StallDecision::kSlowdown ? cause_code
                                                     : obs::kCauseNone;
      if (decision == exec::StallDecision::kSlowdown) {
        if (cause == exec::StallCause::kMemtable) {
          stats_.stall_slowdowns_memtable++;
        } else {
          stats_.stall_slowdowns_l0++;
        }
      }
      ring_->Emit(obs::EventType::kStallEnter, shard, slow_cause, 0);
      const uint64_t start = NowMicros();
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(
          stall_->config().slowdown_delay_micros));
      lock.lock();
      const uint64_t waited = NowMicros() - start;
      stats_.stall_slowdowns++;
      stats_.stall_micros += waited;
      stats_.stall_slowdown_micros += waited;
      ring_->Emit(obs::EventType::kStallExit, shard, slow_cause, waited);
      continue;
    }
    return Status::OK();
  }
}

Status DB::SwitchMemTableLocked() {
  ring_->Emit(obs::EventType::kMemtableSwitch,
              static_cast<uint16_t>(options_.shard_index),
              mem_->payload_bytes(), 0);
  imm_.push_back(ImmPartition{mem_, wal_number_});
  stats_.memtable_switches++;
  if (imm_.size() > stats_.max_imm_queue_depth) {
    stats_.max_imm_queue_depth = imm_.size();
  }
  mem_ = std::make_shared<MemTable>();
  ReportBackpressureLocked();
  Status s = NewWalLocked();
  if (!s.ok()) {
    bg_error_ = s;
    return s;
  }
  ScheduleFlushLocked();
  return Status::OK();
}

void DB::ScheduleFlushLocked() {
  if (scheduler_->Schedule(exec::JobType::kFlush, [this] {
        return BackgroundFlush();
      }) != exec::JobScheduler::kInvalidJobId) {
    bg_jobs_pending_++;
  }
}

void DB::ScheduleCompactionLocked() {
  if (scheduler_->Schedule(exec::JobType::kCompaction, [this] {
        return BackgroundCompaction();
      }) != exec::JobScheduler::kInvalidJobId) {
    bg_jobs_pending_++;
  }
}

Status DB::BackgroundFlush() {
  std::unique_lock<std::mutex> lock(mutex_);
  Status s = BackgroundFlushLocked(lock);
  bg_jobs_pending_--;
  bg_cv_.notify_all();
  return s;
}

Status DB::BackgroundFlushLocked(std::unique_lock<std::mutex>& lock) {
  if (flush_active_) return Status::OK();  // The active job drains the queue.
  flush_active_ = true;
  Status s;
  while (s.ok() && !imm_.empty()) {
    // The front partition stays visible to readers (and its WAL stays named
    // by the manifest) until the flush result is installed below.
    ImmPartition part = imm_.front();
    std::vector<FileMetaPtr> obsolete;
    s = FlushMemToL0Locked(part.mem.get(), lock, /*allow_unlock=*/true,
                           &obsolete);
    if (!s.ok()) break;
    imm_.pop_front();
    ReportBackpressureLocked();
    stats_.bg_flushes++;
    policy_->OnFlushCompleted(*current_);
    s = InstallManifestLocked();
    if (s.ok()) {
      MarkObsoleteLocked(std::move(obsolete));
      s = CollectObsoleteLocked();
    }
    if (s.ok() && part.wal_number != 0) {
      options_.env->RemoveFile(WalFileName(options_.path, part.wal_number));
    }
    bg_cv_.notify_all();
  }
  if (!s.ok()) bg_error_ = s;
  flush_active_ = false;
  if (s.ok()) ScheduleCompactionLocked();
  bg_cv_.notify_all();
  return s;
}

Status DB::BackgroundCompaction() {
  std::unique_lock<std::mutex> lock(mutex_);
  Status s = Status::OK();
  if (!compaction_active_) {  // Otherwise the active chain picks the work up.
    compaction_active_ = true;
    s = RunCompactionLoopLocked(lock, /*background=*/true);
    if (!s.ok()) bg_error_ = s;
    compaction_active_ = false;
  }
  bg_jobs_pending_--;
  bg_cv_.notify_all();
  return s;
}

SequenceNumber DB::SmallestLiveSnapshotLocked() const {
  // Sharded stores read at the global watermark, not this shard's own last
  // sequence, so the tombstone-GC horizon must not outrun it: a future
  // cross-shard read pins at visible(t') >= visible(now) (monotonic), so
  // keeping versions needed at visible(now) keeps everything any such read
  // can still ask for (registered snapshots handle the rest via the min).
  const SequenceNumber horizon =
      options_.sequence_allocator != nullptr
          ? options_.sequence_allocator->visible()
          : last_sequence_;
  if (snapshot_seqs_.empty()) return horizon;
  return std::min(*snapshot_seqs_.begin(), horizon);
}

const Snapshot* DB::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_seqs_.insert(last_sequence_);
  return new Snapshot(last_sequence_);
}

const Snapshot* DB::GetSnapshotAt(SequenceNumber sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_seqs_.insert(sequence);
  return new Snapshot(sequence);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = snapshot_seqs_.find(snapshot->sequence());
  if (it != snapshot_seqs_.end()) snapshot_seqs_.erase(it);
  delete snapshot;
}

Status DB::FlushMemTable() {
  std::unique_lock<std::mutex> lock(mutex_);
  // A commit group may be inserting into mem_ with the mutex released;
  // switching or flushing mid-commit would flush a half-applied group.
  bg_cv_.wait(lock, [this] { return !commit_in_flight_; });
  if (!is_background()) {
    if (mem_->num_entries() == 0) return Status::OK();
    return DoFlushLocked(lock);
  }
  if (!bg_error_.ok()) return bg_error_;
  if (mem_->num_entries() > 0) {
    Status s = SwitchMemTableLocked();
    if (!s.ok()) return s;
  }
  lock.unlock();
  scheduler_->WaitIdle();
  lock.lock();
  return bg_error_;
}

Status DB::DoFlushLocked(std::unique_lock<std::mutex>& lock) {
  const double stall_start = options_.env->io_stats()->clock();

  std::vector<FileMetaPtr> obsolete;
  Status s = FlushMemToL0Locked(mem_.get(), lock, /*allow_unlock=*/false,
                                &obsolete);
  if (!s.ok()) return s;
  mem_ = std::make_shared<MemTable>();

  policy_->OnFlushCompleted(*current_);
  s = RunCompactionLoopLocked(lock, /*background=*/false);
  if (!s.ok()) return s;

  // Safe WAL retirement: open the new WAL, persist the pointer, only then
  // drop the old log and the files consumed by the flush.
  const uint64_t old_wal = wal_number_;
  s = NewWalLocked();
  if (!s.ok()) return s;
  s = InstallManifestLocked();
  if (!s.ok()) return s;
  MarkObsoleteLocked(std::move(obsolete));
  s = CollectObsoleteLocked();
  if (!s.ok()) return s;
  if (old_wal != 0) {
    options_.env->RemoveFile(WalFileName(options_.path, old_wal));
  }

  const double stall = options_.env->io_stats()->clock() - stall_start;
  if (stall > stats_.max_stall_clock) stats_.max_stall_clock = stall;
  return Status::OK();
}

Status DB::FlushMemToL0Locked(MemTable* mem,
                              std::unique_lock<std::mutex>& lock,
                              bool allow_unlock,
                              std::vector<FileMetaPtr>* obsolete) {
  const uint16_t shard = static_cast<uint16_t>(options_.shard_index);
  const uint64_t flush_t0 = NowMicros();
  const uint64_t written_before = stats_.flush_bytes_written;
  ring_->Emit(obs::EventType::kFlushBegin, shard, mem->payload_bytes(), 0);
  EnsurePaddedLocked(
      static_cast<size_t>(std::max(1, policy_->RequiredLevels(*current_))));

  const MergeMode mode = policy_->FlushMode(*current_);
  uint64_t bytes_read = 0;
  std::vector<FileMetaPtr> outputs;

  bool leveling_merge =
      mode == MergeMode::kMergeIntoRun && !current_->levels[0].empty();
  if (leveling_merge && allow_unlock) {
    // Background mode: route through the compaction pipeline so the merge —
    // which reads existing SSTs and dominates the flush cost — runs with
    // the mutex released (the caller pins `mem` via its ImmPartition copy).
    // Falls back to the under-mutex merge below only if concurrent
    // compactions keep conflicting the install.
    bool merged = false;
    Status s = FlushMergeIntoRunPipelined(mem, lock, obsolete, &merged);
    if (!s.ok()) return s;
    if (merged) {
      stats_.flushes++;
      flush_count_++;
      if (amp_ != nullptr) {
        amp_->RecordFlushWrite(0,
                               stats_.flush_bytes_written - written_before);
      }
      const uint64_t dur = NowMicros() - flush_t0;
      ring_->Emit(obs::EventType::kFlushEnd, shard,
                  stats_.flush_bytes_written - written_before, dur);
      if (latency_ != nullptr) latency_->Record(obs::OpType::kFlush, dur);
      return Status::OK();
    }
    // The mutex was released: a concurrent compaction may have emptied
    // level 0, in which case the flush degrades to a plain new-run flush.
    leveling_merge = !current_->levels[0].empty();
  }

  if (leveling_merge) {
    // Leveling flush: merge the memtable with level 0's newest run under
    // the mutex (inline mode, or the background conflict fallback). The
    // edit is prepared on a successor copy and installed atomically; pinned
    // views keep reading the pre-flush version.
    auto next = std::make_unique<Version>(*current_);
    SortedRun& target = next->levels[0].runs[0];
    std::vector<std::unique_ptr<Iterator>> children;
    children.push_back(mem->NewIterator());
    children.push_back(std::make_unique<RunIterator>(
        target.files,
        [this](uint64_t n) { return table_cache_->GetReader(n); }));
    auto merged = NewMergingIterator(InternalKeyComparator(),
                                     std::move(children));
    merged->SeekToFirst();
    compaction::OutputSpec spec;
    spec.output_level = 0;
    spec.drop_tombstones = next->BottommostNonEmptyLevel() <= 0 &&
                           next->levels[0].runs.size() == 1;
    spec.bits_per_key = BitsPerKeyForLevelLocked(0);
    spec.smallest_snapshot = SmallestLiveSnapshotLocked();
    Status s = compaction::WriteSortedOutput(OutputShapeForDb(), merged.get(),
                                             spec, &bytes_read, &outputs);
    if (!s.ok()) return s;
    for (const auto& f : target.files) obsolete->push_back(f);
    uint64_t written = 0;
    for (const auto& f : outputs) written += f->file_size;
    stats_.flush_bytes_written += written;
    target.files = std::move(outputs);
    if (target.files.empty()) {
      next->levels[0].runs.erase(next->levels[0].runs.begin());
    }
    InstallVersionLocked(std::move(next));
  } else {
    // Tiering flush (or empty level 0): new run at the front. The input is
    // the (immutable) memtable only, so in background mode the mutex is
    // released while SST files are built — the dominant flush cost overlaps
    // foreground traffic. Everything the pass needs is captured first;
    // file numbers come from an atomic counter.
    compaction::OutputSpec spec;
    spec.output_level = 0;
    spec.drop_tombstones = current_->BottommostNonEmptyLevel() < 0;
    spec.bits_per_key = BitsPerKeyForLevelLocked(0);
    spec.smallest_snapshot = SmallestLiveSnapshotLocked();
    auto iter = mem->NewIterator();
    iter->SeekToFirst();
    const compaction::OutputShape shape = OutputShapeForDb();
    Status s;
    if (allow_unlock) {
      lock.unlock();
      s = compaction::WriteSortedOutput(shape, iter.get(), spec, &bytes_read,
                                        &outputs);
      lock.lock();
    } else {
      s = compaction::WriteSortedOutput(shape, iter.get(), spec, &bytes_read,
                                        &outputs);
    }
    if (!s.ok()) return s;
    uint64_t written = 0;
    for (const auto& f : outputs) written += f->file_size;
    stats_.flush_bytes_written += written;
    if (!outputs.empty()) {
      // Copy the post-relock state: a concurrent compaction may have
      // reshaped level 0, but this run is still the newest data and belongs
      // at the front.
      auto next = std::make_unique<Version>(*current_);
      next->EnsureLevels(1);
      SortedRun run;
      run.run_id = next_run_id_++;
      run.files = std::move(outputs);
      next->levels[0].runs.insert(next->levels[0].runs.begin(),
                                  std::move(run));
      InstallVersionLocked(std::move(next));
    }
  }

  stats_.flushes++;
  // Existing-SST bytes read by the flush merge are flush work, not
  // compaction work: charging them to compaction_bytes_read (as the
  // pre-pipeline engine did) inflated the per-level compaction accounting.
  stats_.flush_bytes_read += bytes_read;
  flush_count_++;
  if (amp_ != nullptr) {
    amp_->RecordFlushWrite(0, stats_.flush_bytes_written - written_before);
  }
  const uint64_t dur = NowMicros() - flush_t0;
  ring_->Emit(obs::EventType::kFlushEnd, shard,
              stats_.flush_bytes_written - written_before, dur);
  if (latency_ != nullptr) latency_->Record(obs::OpType::kFlush, dur);
  return Status::OK();
}

Status DB::FlushMergeIntoRunPipelined(MemTable* mem,
                                      std::unique_lock<std::mutex>& lock,
                                      std::vector<FileMetaPtr>* obsolete,
                                      bool* merged) {
  *merged = false;
  // A handful of retries: each conflict means a compaction installed while
  // the merge ran, which is rare and self-limiting (one chain at a time).
  for (int attempt = 0; attempt < 8; attempt++) {
    if (current_->levels[0].empty()) return Status::OK();  // Caller re-checks.
    CompactionRequest req;
    req.inputs.push_back({0, current_->levels[0].runs[0].run_id, {}});
    req.output_level = 0;
    req.placement = CompactionRequest::Placement::kFront;
    req.reason = "leveling-flush-merge";
    compaction::CompactionPlan plan;
    Status s = PlanForRequestLocked(req, &plan);
    if (!s.ok()) return s;
    // The planner's general GC-admissibility rule reduces, for this plan
    // shape, to the flush rule: drop tombstones iff level 0's only run is
    // the merge target and no deeper level holds data.

    compaction::CompactionExecutor::Result result;
    bool installed = false;
    s = ExecutePlanLocked(
        plan, lock, /*allow_unlock=*/true,
        [mem] { return mem->NewIterator(); }, &result, obsolete, &installed);
    if (!s.ok()) return s;
    if (!installed) continue;  // Conflict: re-plan against the fresh tree.
    stats_.flush_bytes_written += result.bytes_written;
    stats_.flush_bytes_read += result.bytes_read;
    *merged = true;
    return Status::OK();
  }
  return Status::OK();  // Caller falls back to the under-mutex merge.
}

Status DB::RunCompactionLoopLocked(std::unique_lock<std::mutex>& lock,
                                   bool background) {
  // Bounded to catch policy bugs that would loop forever.
  int consecutive_conflicts = 0;
  for (int rounds = 0; rounds < 100000; rounds++) {
    EnsurePaddedLocked(
        static_cast<size_t>(std::max(1, policy_->RequiredLevels(*current_))));
    auto req = policy_->PickCompaction(*current_);
    if (!req.has_value()) return Status::OK();
    // Forward-progress valve: optimistic (off-mutex) merges can in
    // principle conflict every round under a hostile flush cadence. After
    // a few consecutive conflicts run one merge under the mutex — it
    // cannot conflict — then resume optimistically.
    const bool optimistic = background && consecutive_conflicts < 4;
    bool installed = false;
    Status s = RunCompactionRequestLocked(*req, lock, optimistic, &installed);
    if (!s.ok()) return s;
    if (installed) {
      consecutive_conflicts = 0;
      policy_->OnCompactionCompleted(*req, *current_);
      // The merge stage has released its file references by now, so
      // unpinned inputs are deleted here.
      s = CollectObsoleteLocked();
      if (!s.ok()) return s;
    } else {
      consecutive_conflicts++;
    }
    // On a conflict (background only) the round re-picks against the fresh
    // version: the concurrent flush that caused it already reshaped the
    // tree the policy will now see.
    if (background) {
      if (installed) stats_.bg_compactions++;
      // Let stalled writers and readers interleave between rounds. The
      // yield matters: std::mutex permits barging, so without it the OS may
      // hand the relock straight back to this thread for the whole chain.
      bg_cv_.notify_all();
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
  }
  return Status::Corruption("compaction loop did not converge",
                            policy_->name());
}

Status DB::PlanForRequestLocked(const CompactionRequest& req,
                                compaction::CompactionPlan* plan) {
  compaction::PlannerContext ctx;
  ctx.max_subcompactions = std::max(1, options_.max_subcompactions);
  ctx.bits_per_key = BitsPerKeyForLevelLocked(req.output_level);
  ctx.smallest_snapshot = SmallestLiveSnapshotLocked();
  return compaction::PlanCompaction(*current_, req, ctx, plan);
}

void DB::DeleteUninstalledOutputs(const std::vector<FileMetaPtr>& outputs) {
  // These files never entered a version, so no reader can hold a pin;
  // immediate deletion is safe (anything half-written by a failed merge is
  // swept as an orphan at the next Open).
  for (const auto& f : outputs) {
    options_.env->RemoveFile(SstFileName(options_.path, f->number));
  }
}

Status DB::ExecutePlanLocked(
    const compaction::CompactionPlan& plan, std::unique_lock<std::mutex>& lock,
    bool allow_unlock,
    const compaction::CompactionExecutor::ExtraInputFactory& extra,
    compaction::CompactionExecutor::Result* result,
    std::vector<FileMetaPtr>* obsolete, bool* installed) {
  *installed = false;
  const uint16_t shard = static_cast<uint16_t>(options_.shard_index);
  const uint64_t t0 = NowMicros();

  // ---- Merge (mutex released in background mode). ----
  // The plan's FileMetaPtr references pin every input SST: deferred GC
  // never deletes a referenced file, so the merge reads a frozen snapshot
  // regardless of what installs concurrently.
  Status s;
  if (allow_unlock) {
    lock.unlock();
    s = compaction_exec_->Run(plan, extra, result);
    lock.lock();
  } else {
    s = compaction_exec_->Run(plan, extra, result);
  }
  if (!s.ok()) {
    DeleteUninstalledOutputs(result->outputs);
    return s;
  }
  ring_->Emit(obs::EventType::kCompactionMerge, shard,
              static_cast<uint64_t>(plan.output_level),
              result->bytes_written);

  // ---- Install (under mutex), conflict-checked. ----
  if (allow_unlock && !compaction::PlanStillValid(plan, *current_)) {
    // A concurrent flush reshaped an input while the merge ran: discard
    // the outputs and let the caller re-plan against the fresh version.
    stats_.compaction_conflicts++;
    ring_->Emit(obs::EventType::kCompactionConflict, shard,
                static_cast<uint64_t>(plan.output_level), 0);
    DeleteUninstalledOutputs(result->outputs);
    return Status::OK();
  }

  auto next = std::make_unique<Version>(*current_);
  compaction::ApplyCompactionPlan(plan, std::move(result->outputs),
                                  &next_run_id_, next.get(), obsolete);
  InstallVersionLocked(std::move(next));
  *installed = true;
  ring_->Emit(obs::EventType::kCompactionInstall, shard,
              static_cast<uint64_t>(plan.output_level), NowMicros() - t0);
  return Status::OK();
}

Status DB::RunCompactionRequestLocked(const CompactionRequest& req,
                                      std::unique_lock<std::mutex>& lock,
                                      bool allow_unlock, bool* installed) {
  *installed = false;

  // ---- Plan (under mutex). ----
  const uint64_t comp_t0 = latency_ != nullptr ? NowMicros() : 0;
  compaction::CompactionPlan plan;
  Status s = PlanForRequestLocked(req, &plan);
  if (!s.ok()) return s;
  if (plan.empty()) {
    *installed = true;  // Nothing to do counts as completed.
    return Status::OK();
  }
  ring_->Emit(obs::EventType::kCompactionPlan,
              static_cast<uint16_t>(options_.shard_index),
              static_cast<uint64_t>(req.output_level), plan.inputs.size());

  compaction::CompactionExecutor::Result result;
  std::vector<FileMetaPtr> obsolete;
  s = ExecutePlanLocked(plan, lock, allow_unlock, nullptr, &result, &obsolete,
                        installed);
  if (!s.ok() || !*installed) return s;

  stats_.compactions++;
  if (latency_ != nullptr) {
    latency_->Record(obs::OpType::kCompaction, NowMicros() - comp_t0);
  }
  stats_.compaction_bytes_read += result.bytes_read;
  stats_.compaction_bytes_written += result.bytes_written;
  if (stats_.level_stats.size() <= static_cast<size_t>(req.output_level)) {
    stats_.level_stats.resize(req.output_level + 1);
  }
  auto& ls = stats_.level_stats[req.output_level];
  ls.compactions++;
  ls.bytes_read += result.bytes_read;
  ls.bytes_written += result.bytes_written;
  if (amp_ != nullptr) {
    amp_->RecordCompactionWrite(req.output_level, result.bytes_read,
                                result.bytes_written);
  }

  // Persist the new structure before queueing the inputs for deletion
  // (crash safety); the caller runs CollectObsoleteLocked once the merge
  // stage has dropped its file references.
  s = InstallManifestLocked();
  if (!s.ok()) return s;
  MarkObsoleteLocked(std::move(obsolete));
  return Status::OK();
}

Status DB::CompactAll() {
  Status s = FlushMemTable();
  if (!s.ok()) return s;

  std::unique_lock<std::mutex> lock(mutex_);
  // In background mode the merge stage runs off the mutex, so concurrent
  // writers can flush mid-compaction; a conflicted install rebuilds the
  // request from the fresh version and tries again. The final attempt
  // holds the mutex for the merge — it cannot conflict — so a sustained
  // flush storm degrades to the inline behavior instead of an error.
  constexpr int kOptimisticAttempts = 8;
  for (int attempt = 0; attempt <= kOptimisticAttempts; attempt++) {
    const int bottom = current_->BottommostNonEmptyLevel();
    if (bottom < 0) return Status::OK();

    CompactionRequest req;
    for (int level = 0; level <= bottom; level++) {
      for (const auto& run : current_->levels[level].runs) {
        req.inputs.push_back({level, run.run_id, {}});
      }
    }
    if (req.inputs.empty()) return Status::OK();
    req.output_level = bottom;
    req.placement = CompactionRequest::Placement::kReplaceInputs;
    req.reason = "manual-compact-all";
    // Planner hint: the bottommost run's file cuts are natural
    // subcompaction split points for a whole-tree merge.
    for (const auto& run : current_->levels[bottom].runs) {
      for (size_t i = 1; i < run.files.size(); i++) {
        req.boundary_hints.push_back(
            run.files[i]->smallest.user_key().ToString());
      }
    }
    bool installed = false;
    const bool optimistic = is_background() && attempt < kOptimisticAttempts;
    s = RunCompactionRequestLocked(req, lock, optimistic, &installed);
    if (!s.ok()) return s;
    if (installed) {
      policy_->OnCompactionCompleted(req, *current_);
      return CollectObsoleteLocked();
    }
  }
  // Unreachable: the final under-mutex attempt always installs.
  return Status::OK();
}

bool DB::GetProperty(const std::string& property, std::string* value) {
  value->clear();
  std::unique_lock<std::mutex> lock(mutex_);
  if (property == "talus.levels") {
    *value = current_->DebugString();
    return true;
  }
  if (property == "talus.num-runs") {
    *value = std::to_string(current_->TotalRuns());
    return true;
  }
  if (property == "talus.data-bytes") {
    *value = std::to_string(ApproximateDataBytesLocked());
    return true;
  }
  if (property == "talus.stats") {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "puts=%llu deletes=%llu gets=%llu scans=%llu flushes=%llu "
        "compactions=%llu write_amp=%.3f read_amp=%.3f "
        "flush_read=%llu comp_read=%llu conflicts=%llu "
        "filter_negatives=%llu cache_hits=%llu max_stall=%.1f "
        "switches=%llu bg_flushes=%llu bg_compactions=%llu "
        "stall_us=%llu slowdowns=%llu stops=%llu "
        "stall_slowdown_us=%llu stall_stop_us=%llu "
        "slowdowns_memtable=%llu slowdowns_l0=%llu "
        "stops_memtable=%llu stops_l0=%llu",
        static_cast<unsigned long long>(stats_.puts),
        static_cast<unsigned long long>(stats_.deletes),
        static_cast<unsigned long long>(stats_.gets),
        static_cast<unsigned long long>(stats_.scans),
        static_cast<unsigned long long>(stats_.flushes),
        static_cast<unsigned long long>(stats_.compactions),
        stats_.WriteAmplification(), stats_.ReadAmplification(),
        static_cast<unsigned long long>(stats_.flush_bytes_read),
        static_cast<unsigned long long>(stats_.compaction_bytes_read),
        static_cast<unsigned long long>(stats_.compaction_conflicts),
        static_cast<unsigned long long>(stats_.filter_negatives),
        static_cast<unsigned long long>(stats_.block_cache_hits),
        stats_.max_stall_clock,
        static_cast<unsigned long long>(stats_.memtable_switches),
        static_cast<unsigned long long>(stats_.bg_flushes),
        static_cast<unsigned long long>(stats_.bg_compactions),
        static_cast<unsigned long long>(stats_.stall_micros),
        static_cast<unsigned long long>(stats_.stall_slowdowns),
        static_cast<unsigned long long>(stats_.stall_stops),
        static_cast<unsigned long long>(stats_.stall_slowdown_micros),
        static_cast<unsigned long long>(stats_.stall_stop_micros),
        static_cast<unsigned long long>(stats_.stall_slowdowns_memtable),
        static_cast<unsigned long long>(stats_.stall_slowdowns_l0),
        static_cast<unsigned long long>(stats_.stall_stops_memtable),
        static_cast<unsigned long long>(stats_.stall_stops_l0));
    const read::TableCache::Stats tc = table_cache_->GetStats();
    char caches[512];
    std::snprintf(
        caches, sizeof(caches),
        " bc_hits=%llu bc_misses=%llu bc_evictions=%llu bc_usage=%zu "
        "bc_cap=%zu tc_hits=%llu tc_misses=%llu tc_opens=%llu "
        "tc_evictions=%llu tc_open_readers=%zu tc_cap=%zu "
        "gc_pending=%zu gc_deleted=%llu",
        static_cast<unsigned long long>(block_cache_->hits()),
        static_cast<unsigned long long>(block_cache_->misses()),
        static_cast<unsigned long long>(block_cache_->evictions()),
        block_cache_->usage(), block_cache_->capacity(),
        static_cast<unsigned long long>(tc.hits),
        static_cast<unsigned long long>(tc.misses),
        static_cast<unsigned long long>(tc.opens),
        static_cast<unsigned long long>(tc.evictions), tc.open_readers,
        tc.capacity, gc_pending_.size(),
        static_cast<unsigned long long>(stats_.obsolete_files_deleted));
    *value = std::string(buf) + caches + " | " +
             write_stats_.Snapshot().ToString();
    return true;
  }
  if (property == "talus.cstats") {
    std::string out = "level compactions bytes_read bytes_written\n";
    for (size_t i = 0; i < stats_.level_stats.size(); i++) {
      const auto& ls = stats_.level_stats[i];
      char buf[128];
      std::snprintf(buf, sizeof(buf), "L%zu %llu %llu %llu\n", i,
                    static_cast<unsigned long long>(ls.compactions),
                    static_cast<unsigned long long>(ls.bytes_read),
                    static_cast<unsigned long long>(ls.bytes_written));
      out += buf;
    }
    *value = out;
    return true;
  }
  if (property == "talus.exec") {
    if (!is_background()) {
      *value = "mode=inline";
      return true;
    }
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "mode=background threads=%zu imm_queued=%zu max_imm_queue=%llu "
        "stall_us=%llu slowdowns=%llu stops=%llu | ",
        pool_->num_threads(), imm_.size(),
        static_cast<unsigned long long>(stats_.max_imm_queue_depth),
        static_cast<unsigned long long>(stats_.stall_micros),
        static_cast<unsigned long long>(stats_.stall_slowdowns),
        static_cast<unsigned long long>(stats_.stall_stops));
    *value = std::string(buf) + scheduler_->GetStats().ToString() + " | " +
             compaction_exec_->GetStats().ToString();
    return true;
  }
  if (property == "talus.latency") {
    // Empty (but recognized) when latency stats are disabled.
    if (latency_ != nullptr) {
      lock.unlock();  // Snapshots only touch the recorder's own atomics.
      *value = latency_->ToString();
    }
    return true;
  }
  if (property == "talus.events") {
    lock.unlock();  // The ring has its own lock.
    *value = ring_->ToString();
    return true;
  }
  if (property == "talus.amp") {
    // Empty (but recognized) when amp accounting is disabled.
    if (amp_ != nullptr) {
      obs::AmpSnapshot cumulative = amp_->Snapshot();
      obs::AmpSnapshot window = amp_->WindowSnapshot();
      FillLiveSpaceLocked(&cumulative);
      FillLiveSpaceLocked(&window);
      lock.unlock();
      *value = "cumulative:\n" + cumulative.ToString() + "window:\n" +
               window.ToString();
    }
    return true;
  }
  if (property == "talus.model") {
    if (amp_ != nullptr) {
      lock.unlock();  // EvaluateModelDrift manages its own locking.
      *value = EvaluateModelDrift().ToString();
    }
    return true;
  }
  if (property == "talus.tune") {
    if (tuner_ == nullptr) {
      *value = "enabled=0";
      return true;
    }
    const std::string policy_name = policy_->name();
    const double size_ratio = options_.policy.size_ratio;
    lock.unlock();  // The tuner has its own lock.
    const tune::TunerStats ts = tuner_->GetStats();
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "enabled=1 policy=%s T=%.1f hysteresis=%.2f ticks=%llu "
        "retunes=%llu switches=%llu holds=%llu thin=%llu cooldown=%llu "
        "drift_events=%llu last_gain=%.3f last_cost_cur=%.4f "
        "last_cost_best=%.4f last_action=%s last_design=%s",
        policy_name.c_str(), size_ratio, tuner_->config().hysteresis,
        static_cast<unsigned long long>(ts.ticks),
        static_cast<unsigned long long>(ts.retunes),
        static_cast<unsigned long long>(ts.switches_applied),
        static_cast<unsigned long long>(ts.holds),
        static_cast<unsigned long long>(ts.thin_windows),
        static_cast<unsigned long long>(ts.cooldown_holds),
        static_cast<unsigned long long>(ts.drift_events), ts.last_gain,
        ts.last_current_cost, ts.last_best_cost,
        ts.last_action.empty() ? "none" : ts.last_action.c_str(),
        ts.last_design.empty() ? "none" : ts.last_design.c_str());
    *value = buf;
    return true;
  }
  if (property == "talus.snapshots") {
    if (snapshotter_ != nullptr) {
      lock.unlock();  // The snapshotter has its own lock.
      std::string out;
      for (const std::string& line : snapshotter_->RingContents()) {
        out += line;
        out += '\n';
      }
      *value = out;
    }
    return true;
  }
  return false;
}

Status DB::InstallManifestLocked() {
  ManifestData data;
  data.next_file_number = next_file_number_.load(std::memory_order_relaxed);
  data.next_run_id = next_run_id_;
  data.last_sequence = last_sequence_;
  data.flush_count = flush_count_;
  data.wal_number = OldestLiveWalLocked();
  data.policy_name = policy_->name();
  data.policy_state = policy_->EncodeState();
  // The live config (not the DbOptions one): under adaptive tuning the two
  // diverge, and reopen re-resolves from this field (DESIGN.md §9).
  data.policy_config = EncodeGrowthPolicyConfig(options_.policy);
  data.version = *current_;

  const uint64_t new_number = manifest_number_ + 1;
  Status s = WriteManifestSnapshot(options_.env, options_.path, new_number,
                                   data);
  if (!s.ok()) return s;
  if (manifest_number_ != 0) {
    options_.env->RemoveFile(
        ManifestFileName(options_.path, manifest_number_));
  }
  manifest_number_ = new_number;
  return Status::OK();
}

void DB::InstallVersionLocked(std::unique_ptr<Version> next) {
  next->Ref();
  Version* old = current_;
  current_ = next.release();
  if (old != nullptr && old->Unref()) delete old;
  ReportBackpressureLocked();  // L0 run count may have changed.
}

void DB::ReportBackpressureLocked() {
  if (options_.shard_backpressure == nullptr) return;
  const size_t l0_runs =
      current_->levels.empty() ? 0 : current_->levels[0].runs.size();
  options_.shard_backpressure->Report(options_.shard_index, imm_.size(),
                                      l0_runs);
}

void DB::EnsurePaddedLocked(size_t min_levels) {
  if (current_->levels.size() >= min_levels) return;
  auto padded = std::make_unique<Version>(*current_);
  padded->EnsureLevels(min_levels);
  InstallVersionLocked(std::move(padded));
}

void DB::MarkObsoleteLocked(std::vector<FileMetaPtr> files) {
  for (auto& f : files) gc_pending_.push_back(std::move(f));
  gc_pending_count_.store(gc_pending_.size(), std::memory_order_release);
}

Status DB::CollectObsoleteLocked() {
  Status result;
  uint64_t deleted_now = 0;
  for (auto it = gc_pending_.begin(); it != gc_pending_.end();) {
    // use_count() == 1 means the queue's own reference is the last: every
    // version, view, and iterator has let go. A stale concurrent read can
    // only over-count, which defers (never corrupts) the deletion.
    if (it->use_count() > 1) {
      ++it;
      continue;
    }
    const uint64_t number = (*it)->number;
    table_cache_->Evict(number);
    Status s = options_.env->RemoveFile(SstFileName(options_.path, number));
    if (!s.ok() && !s.IsNotFound()) {
      // Keep the entry so the next collection retries the deletion.
      if (result.ok()) result = s;
      ++it;
      continue;
    }
    it = gc_pending_.erase(it);
    stats_.obsolete_files_deleted++;
    deleted_now++;
  }
  gc_pending_count_.store(gc_pending_.size(), std::memory_order_release);
  if (deleted_now > 0) {
    ring_->Emit(obs::EventType::kGcDelete,
                static_cast<uint16_t>(options_.shard_index), deleted_now, 0);
  }
  return result;
}

std::shared_ptr<const read::ReadView> DB::AcquireReadView() {
  std::lock_guard<std::mutex> lock(mutex_);
  return AcquireReadViewLocked();
}

std::shared_ptr<const read::ReadView> DB::AcquireReadViewLocked() {
  // Under a shared sequence allocator the visibility bound is the global
  // watermark, not this shard's own last sequence: everything at or below
  // the watermark is fully applied in EVERY shard, so views pinned at it in
  // different shards compose into one consistent cross-shard snapshot.
  // (With one shard the two are always equal — claim and publish alternate
  // under queue leadership.)
  return AcquireReadViewAtLocked(options_.sequence_allocator != nullptr
                                     ? options_.sequence_allocator->visible()
                                     : last_sequence_);
}

std::shared_ptr<const read::ReadView> DB::AcquireReadViewAtLocked(
    SequenceNumber sequence) {
  auto* view = new read::ReadView;
  current_->Ref();
  view->version = current_;
  view->mem = mem_;
  view->imm.reserve(imm_.size());
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    view->imm.push_back(it->mem);
  }
  view->sequence = sequence;
  return std::shared_ptr<const read::ReadView>(
      view, [this](const read::ReadView* v) { ReleaseReadView(v); });
}

void DB::ReleaseReadView(const read::ReadView* view) {
  std::unique_ptr<const read::ReadView> owned(view);
  const Version* version = view->version;
  // Fast path: no files awaiting GC and the version outlives this view (the
  // DB itself still references it) — pure refcount traffic, no mutex.
  if (gc_pending_count_.load(std::memory_order_acquire) == 0) {
    if (!version->Unref()) return;
    // Last reference to a replaced version; its files were either adopted
    // by successors or already collected (the GC queue is empty).
    delete version;
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (version->Unref()) delete version;
  Status s = CollectObsoleteLocked();
  if (!s.ok() && is_background() && bg_error_.ok()) bg_error_ = s;
}

double DB::BitsPerKeyForLevelLocked(int level) const {
  auto allocator =
      NewFilterAllocator(options_.filter_layout, options_.bloom_bits_per_key);
  return allocator->BitsForLevel(policy_->FilterInfo(*current_), level);
}

Status DB::Get(const Slice& key, std::string* value) {
  return Get(key, value, nullptr);
}

Status DB::Get(const Slice& key, std::string* value,
               const Snapshot* snapshot) {
  obs::ScopedOpTimer timer(latency_.get(), obs::OpType::kGet);
  // The view pin is the only mutex acquisition on the lookup path; the
  // probe itself runs against immutable state and the lock-free memtables.
  auto view = AcquireReadView();
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_read);
  LookupKey lkey(
      key, snapshot != nullptr ? snapshot->sequence() : view->sequence);

  ReadProbeStats probe;
  Status result = GetFromView(*view, lkey, value, &probe);

  // Read-path stats are relaxed atomics: no second mutex acquisition.
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) stats_.gets_found.fetch_add(1, std::memory_order_relaxed);
  stats_.runs_probed.fetch_add(probe.runs_probed, std::memory_order_relaxed);
  stats_.filter_negatives.fetch_add(probe.filter_negatives,
                                    std::memory_order_relaxed);
  stats_.data_block_reads.fetch_add(probe.block_reads,
                                    std::memory_order_relaxed);
  stats_.block_cache_hits.fetch_add(probe.cache_hits,
                                    std::memory_order_relaxed);
  if (amp_ != nullptr) amp_->RecordLookup(probe.amp);
  mix_tracker_.RecordPointLookup();
  return result;
}

Status DB::GetFromView(const read::ReadView& view, const LookupKey& lkey,
                       std::string* value, ReadProbeStats* probe) {
  Status s;
  if (view.mem->Get(lkey, value, &s)) {
    probe->amp.hit_level = obs::LookupProbe::kHitMemtable;
    return s;
  }
  // Immutable memtables, newest first.
  for (const auto& mem : view.imm) {
    if (mem->Get(lkey, value, &s)) {
      probe->amp.hit_level = obs::LookupProbe::kHitMemtable;
      return s;
    }
  }

  const Slice key = lkey.user_key();
  const auto& levels = view.version->levels;
  for (size_t level_idx = 0; level_idx < levels.size(); level_idx++) {
    const int slot = obs::AmpSlot(static_cast<int>(level_idx));
    for (const auto& run : levels[level_idx].runs) {
      // Locate the single file that may contain the key.
      const auto& files = run.files;
      size_t left = 0, right = files.size();
      while (left < right) {
        size_t mid = (left + right) / 2;
        if (files[mid]->largest.user_key().compare(key) < 0) {
          left = mid + 1;
        } else {
          right = mid;
        }
      }
      if (left == files.size()) continue;
      if (files[left]->smallest.user_key().compare(key) > 0) continue;

      probe->runs_probed++;
      std::shared_ptr<SstReader> reader =
          table_cache_->GetReader(files[left]->number);
      if (reader == nullptr) {
        return Status::IOError("cannot open sst for read");
      }
      SstReader::GetStats gs;
      bool decided = reader->Get(lkey, value, &s, &gs,
                                 options_.point_read_fast_path);
      if (gs.filter_negative) probe->filter_negatives++;
      if (gs.block_read) probe->block_reads++;
      if (gs.cache_hit) probe->cache_hits++;
      // Per-level attribution for the amp tracker. A probe whose filter
      // passed but that did not decide the key is a Bloom false positive —
      // exactly the per-lookup cost the model's R term prices.
      probe->amp.files_probed[slot]++;
      if (gs.filter_negative) probe->amp.filter_negatives[slot]++;
      if (gs.block_read) probe->amp.block_reads[slot]++;
      if (!decided && !gs.filter_negative) {
        probe->amp.bloom_false_positives[slot]++;
      }
      if (slot > probe->amp.deepest_slot) probe->amp.deepest_slot = slot;
      if (decided) {
        probe->amp.hit_level = static_cast<int>(level_idx);
        return s;
      }
    }
  }
  return Status::NotFound(Slice());
}

std::unique_ptr<Iterator> DB::NewIterator() {
  return NewPinnedIterator(AcquireReadView());
}

std::unique_ptr<Iterator> DB::NewIteratorAt(SequenceNumber sequence) {
  std::shared_ptr<const read::ReadView> view;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    view = AcquireReadViewAtLocked(sequence);
  }
  return NewPinnedIterator(std::move(view));
}

std::unique_ptr<Iterator> DB::NewPinnedIterator(
    std::shared_ptr<const read::ReadView> view) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(view->mem->NewIterator());
  for (const auto& mem : view->imm) {
    children.push_back(mem->NewIterator());
  }
  auto open = [this](uint64_t n) { return table_cache_->GetReader(n); };
  for (const auto& level : view->version->levels) {
    for (const auto& run : level.runs) {
      children.push_back(std::make_unique<RunIterator>(run.files, open));
    }
  }
  auto merged =
      NewMergingIterator(InternalKeyComparator(), std::move(children));
  return std::make_unique<DbIterator>(std::move(view), std::move(merged),
                                      latency_.get());
}

Status DB::Scan(const Slice& start, size_t count,
                std::vector<std::pair<std::string, std::string>>* out) {
  obs::ScopedOpTimer timer(latency_.get(), obs::OpType::kScan);
  // Pin once, then iterate with no lock held: the view's sequence bound
  // makes the whole scan a consistent snapshot even while writers and
  // background maintenance proceed.
  auto iter = NewPinnedIterator(AcquireReadView());
  options_.env->io_stats()->RecordCpu(options_.cpu_cost_per_read);
  out->clear();
  iter->Seek(start);
  while (iter->Valid() && out->size() < count) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    iter->Next();
  }
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  mix_tracker_.RecordRangeLookup();
  return iter->status();
}

metrics::GroupCommitStats DB::GetGroupCommitStats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return write_stats_.Snapshot();
}

SequenceNumber DB::LastSequence() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return last_sequence_;
}

uint64_t DB::ApproximateDataBytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return ApproximateDataBytesLocked();
}

uint64_t DB::ApproximateDataBytesLocked() const {
  uint64_t total = mem_->payload_bytes();
  for (const auto& part : imm_) total += part.mem->payload_bytes();
  for (const auto& level : current_->levels) {
    total += level.PayloadBytes();
  }
  return total;
}

std::string DB::DebugString() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return current_->DebugString();
}

std::vector<Histogram> DB::GetLatencyHistograms() const {
  if (latency_ == nullptr) {
    return std::vector<Histogram>(obs::kNumOpTypes);  // All empty.
  }
  return latency_->SnapshotAll();
}

std::string DB::DumpPrometheus() const {
  EngineStats stats;
  uint64_t data_bytes = 0;
  obs::AmpSnapshot amp;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stats = stats_;
    data_bytes = ApproximateDataBytesLocked();
    if (amp_ != nullptr) {
      amp = amp_->Snapshot();
      FillLiveSpaceLocked(&amp);
    }
  }
  tune::TunerStats tune_stats;
  if (tuner_ != nullptr) tune_stats = tuner_->GetStats();
  return metrics::DumpPrometheusText(stats, ring_->TotalEmitted(), data_bytes,
                                     GetLatencyHistograms(),
                                     amp_ != nullptr ? &amp : nullptr,
                                     tuner_ != nullptr ? &tune_stats : nullptr);
}

void DB::FillLiveSpaceLocked(obs::AmpSnapshot* snap) const {
  const auto& levels = current_->levels;
  for (size_t i = 0; i < levels.size(); i++) {
    const int slot = obs::AmpSlot(static_cast<int>(i));
    for (const auto& run : levels[i].runs) {
      for (const auto& f : run.files) {
        snap->levels[slot].live_sst_bytes += f->file_size;
        snap->levels[slot].live_payload_bytes += f->payload_bytes;
        if (slot + 1 > snap->num_levels) snap->num_levels = slot + 1;
      }
    }
  }
}

obs::AmpSnapshot DB::GetAmpSnapshot() const {
  obs::AmpSnapshot snap;
  if (amp_ == nullptr) return snap;
  snap = amp_->Snapshot();
  std::unique_lock<std::mutex> lock(mutex_);
  FillLiveSpaceLocked(&snap);
  return snap;
}

GrowthPolicyConfig DB::CurrentPolicyConfig() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.policy;
}

Status DB::ApplyPolicyConfig(const GrowthPolicyConfig& config) {
  GrowthPolicyConfig resolved = config;
  resolved.bloom_bits_per_key = options_.bloom_bits_per_key;
  PolicyContext ctx;
  ctx.buffer_bytes = options_.write_buffer_size;
  ctx.mix_tracker = &mix_tracker_;
  auto next = CreateGrowthPolicy(resolved, ctx);
  if (next == nullptr) {
    return Status::InvalidArgument("unknown growth policy");
  }

  std::unique_lock<std::mutex> lock(mutex_);
  {
    GrowthPolicyConfig current = options_.policy;
    current.bloom_bits_per_key = options_.bloom_bits_per_key;
    if (EncodeGrowthPolicyConfig(resolved) ==
        EncodeGrowthPolicyConfig(current)) {
      return Status::OK();  // Identical design; nothing to do.
    }
  }
  // The swap must not happen under an in-flight old-policy merge (its
  // install would follow shapes the new policy never planned), and the
  // catch-up below claims the single-chain guard. Chains always terminate
  // and clear the flag under this mutex, so the wait is bounded.
  bg_cv_.wait(lock, [this] { return !compaction_active_; });
  if (!bg_error_.ok()) return bg_error_;
  compaction_active_ = true;

  policy_ = std::move(next);
  options_.policy = resolved;
  if (drift_ != nullptr) {
    drift_->Reconfigure(MergeForDriftModel(resolved), resolved.size_ratio);
  }
  ring_->Emit(obs::EventType::kPolicyChange,
              static_cast<uint16_t>(options_.shard_index),
              MergeForDriftModel(resolved) ==
                      tuning::HorizontalMerge::kTiering
                  ? 1
                  : 0,
              static_cast<uint64_t>(resolved.size_ratio * 1000.0));

  // Persist the new design first: a crash after this point reopens under
  // the new policy with whatever layout the catch-up had reached.
  Status s = InstallManifestLocked();
  // Converge the layout, then let the new policy's own loop finish the
  // job. Writers keep running: in background mode both release the mutex
  // around merges exactly like policy-driven compactions.
  if (s.ok()) s = CatchUpCompactionsLocked(lock);
  if (s.ok()) s = RunCompactionLoopLocked(lock, is_background());
  compaction_active_ = false;
  if (!s.ok() && is_background()) bg_error_ = s;
  bg_cv_.notify_all();
  return s;
}

Status DB::CatchUpCompactionsLocked(std::unique_lock<std::mutex>& lock) {
  if (policy_->FlushMode(*current_) != MergeMode::kMergeIntoRun) {
    // Tiering-family target: any layout is a valid tiered layout; the
    // policy's run-count triggers take it from here.
    return Status::OK();
  }
  // A leveled target wants one run per level, but a previously tiered
  // level holds several and the leveling policy's byte triggers never
  // consolidate them. Merge each multi-run level into a single run in
  // place (the universal-compaction request shape), re-planning against
  // the fresh version after every install or conflict.
  int attempts = 0;
  const int max_attempts =
      8 + 4 * static_cast<int>(current_->levels.size());
  while (attempts < max_attempts) {
    int target = -1;
    for (size_t i = 0; i < current_->levels.size(); i++) {
      if (current_->levels[i].runs.size() > 1) {
        target = static_cast<int>(i);
        break;
      }
    }
    if (target < 0) return Status::OK();  // Converged: ≤1 run everywhere.
    CompactionRequest req;
    for (const SortedRun& run : current_->levels[target].runs) {
      CompactionRequest::Input in;
      in.level = target;
      in.run_id = run.run_id;
      req.inputs.push_back(in);
    }
    req.output_level = target;
    req.placement = CompactionRequest::Placement::kReplaceInputs;
    req.reason = "tune-catchup-L" + std::to_string(target);
    bool installed = false;
    attempts++;
    Status s =
        RunCompactionRequestLocked(req, lock, is_background(), &installed);
    if (!s.ok()) return s;
    if (installed) {
      s = CollectObsoleteLocked();
      if (!s.ok()) return s;
    }
    if (is_background()) {
      // Same interleave point as the policy loop: let writers breathe.
      bg_cv_.notify_all();
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
  }
  // Conflict storm exhausted the budget; the remaining multi-run levels
  // are still a correct tree and converge under later flush traffic.
  return Status::OK();
}

tune::TuneDecision DB::RetuneNow() {
  tune::TuneDecision decision;
  if (tuner_ == nullptr) return decision;

  // Sense: consume one drift window (emits kAmpSample / kModelDrift).
  const obs::DriftSample drift = EvaluateModelDrift();
  if (drift.drifted) tuner_->NoteDrift();

  tune::TunerInputs in;
  in.mix = drift.mix;
  in.window_ops = drift.window_lookups + drift.window_updates;
  in.bloom_fpr = drift.bloom_fpr;
  in.page_entries = std::max(1.0, drift.page_entries);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    in.data_buffers = std::max<uint64_t>(
        1, ApproximateDataBytesLocked() /
               std::max<uint64_t>(1, options_.write_buffer_size));
    in.current_merge = MergeForDriftModel(options_.policy);
    in.current_size_ratio = options_.policy.size_ratio;
  }

  // Navigate: hysteresis-banded re-solve of the vertical cost model.
  decision = tuner_->Decide(in);
  if (!decision.retune()) return decision;

  // Act: install the winning design, keeping every non-design knob.
  GrowthPolicyConfig next = CurrentPolicyConfig();
  next.merge = decision.merge == tuning::HorizontalMerge::kTiering
                   ? MergePolicy::kTiering
                   : MergePolicy::kLeveling;
  next.size_ratio = decision.size_ratio;
  if (ApplyPolicyConfig(next).ok()) {
    tuner_->NoteSwitchApplied(next.Label());
  }
  return decision;
}

obs::DriftSample DB::EvaluateModelDrift() {
  obs::DriftSample sample;
  if (amp_ == nullptr || drift_ == nullptr) return sample;

  const obs::AmpSnapshot window = amp_->WindowSnapshot();
  const WorkloadMixTracker::RawCounts window_ops =
      mix_tracker_.WindowRawCounts();
  uint64_t data_bytes = 0;
  uint64_t ops = 0;
  uint64_t payload = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    data_bytes = ApproximateDataBytesLocked();
    ops = stats_.puts + stats_.deletes;
    payload = stats_.user_payload_written;
  }

  obs::ModelDriftMonitor::Measured m;
  m.mix = mix_tracker_.WindowEstimate();
  m.window_lookups = window.lookups;
  m.window_updates = window_ops.updates;
  if (window.lookups > 0) {
    m.found_fraction =
        static_cast<double>(window.lookups - window.misses) /
        static_cast<double>(window.lookups);
  }
  m.blocks_per_lookup = window.BlocksPerLookup();
  m.write_amp = window.WriteAmp();
  // P: entries per data block, from the observed mean entry size (the
  // model prices I/O in pages of P entries).
  const double avg_entry =
      ops > 0 ? static_cast<double>(payload) / static_cast<double>(ops)
              : 64.0;
  m.page_entries =
      std::max(1.0, static_cast<double>(options_.block_size) /
                        std::max(1.0, avg_entry));
  m.data_buffers = std::max<uint64_t>(
      1, data_bytes / std::max<uint64_t>(1, options_.write_buffer_size));

  sample = drift_->Evaluate(m);

  const uint16_t shard = static_cast<uint16_t>(options_.shard_index);
  ring_->Emit(obs::EventType::kAmpSample, shard,
              static_cast<uint64_t>(m.write_amp * 1000.0),
              static_cast<uint64_t>(m.blocks_per_lookup * 1000.0));
  if (sample.drifted) {
    ring_->Emit(obs::EventType::kModelDrift, shard,
                static_cast<uint64_t>(sample.drift_score * 1000.0),
                static_cast<uint64_t>(sample.mix_shift * 1000.0));
  }

  // The evaluated window is consumed; the next evaluation sees only newer
  // traffic.
  amp_->AdvanceWindow();
  mix_tracker_.AdvanceWindow();
  return sample;
}

std::string DB::BuildStatsSample() {
  const obs::AmpSnapshot amp = GetAmpSnapshot();
  const obs::DriftSample drift = EvaluateModelDrift();
  uint64_t data_bytes = ApproximateDataBytes();

  double put_p99 = 0;
  double get_p99 = 0;
  if (latency_ != nullptr) {
    put_p99 = latency_->SnapshotOp(obs::OpType::kPut).Percentile(99.0);
    get_p99 = latency_->SnapshotOp(obs::OpType::kGet).Percentile(99.0);
  }

  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"t_us\": %llu, \"shard\": %zu, \"write_amp\": %.4f, "
      "\"read_amp\": %.4f, \"space_amp\": %.4f, \"blocks_per_lookup\": %.4f, "
      "\"lookups\": %llu, \"user_payload\": %llu, \"data_bytes\": %llu, "
      "\"put_p99_us\": %.1f, \"get_p99_us\": %.1f, \"mix_w\": %.3f, "
      "\"mix_r\": %.3f, \"predicted_point\": %.4f, \"measured_point\": %.4f, "
      "\"drift_score\": %.3f, \"drifted\": %d}",
      static_cast<unsigned long long>(NowMicros()), options_.shard_index,
      amp.WriteAmp(), amp.ReadAmp(), amp.SpaceAmp(), amp.BlocksPerLookup(),
      static_cast<unsigned long long>(amp.lookups),
      static_cast<unsigned long long>(amp.user_payload_bytes),
      static_cast<unsigned long long>(data_bytes), put_p99, get_p99,
      drift.mix.updates, drift.mix.point_lookups, drift.predicted_point,
      drift.measured_point, drift.drift_score, drift.drifted ? 1 : 0);
  return buf;
}

}  // namespace talus
