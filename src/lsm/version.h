// Version: the on-disk shape of the tree — levels of sorted runs of files.
//
// A *sorted run* is a sequence of key-disjoint files that together form one
// sorted key space (a leveled level is one run; a tiered level holds many).
// Runs within a level are ordered newest-first: run 0 holds the most recently
// written data, so point lookups may stop at the first run that decides a
// key. Growth policies manipulate this structure only through
// CompactionRequests (policy/growth_policy.h).
#ifndef TALUS_LSM_VERSION_H_
#define TALUS_LSM_VERSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/dbformat.h"

namespace talus {

struct FileMeta {
  uint64_t number = 0;       // Unique file number (names the .sst file).
  uint64_t file_size = 0;    // Physical bytes.
  uint64_t num_entries = 0;  // Internal-key entries.
  uint64_t payload_bytes = 0;  // Sum of user key+value bytes (logical size).
  InternalKey smallest;
  InternalKey largest;
  // Smallest sequence number in the file; used by the
  // kOldestSmallestSeqFirst file picking policy (RocksDB-Tuned).
  uint64_t oldest_seq = 0;
};

using FileMetaPtr = std::shared_ptr<FileMeta>;

struct SortedRun {
  uint64_t run_id = 0;
  std::vector<FileMetaPtr> files;  // Sorted by smallest key, disjoint ranges.

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;
  uint64_t PayloadBytes() const;

  /// Indices of files whose key range overlaps [begin, end] (user keys).
  /// Empty `begin`/`end` mean unbounded.
  std::vector<size_t> OverlappingFiles(const Slice& begin,
                                       const Slice& end) const;
};

struct LevelState {
  std::vector<SortedRun> runs;  // Index 0 = newest run.

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;
  uint64_t PayloadBytes() const;
  size_t NumRuns() const { return runs.size(); }
  bool empty() const { return runs.empty(); }

  const SortedRun* FindRun(uint64_t run_id) const;
  SortedRun* FindRun(uint64_t run_id);
};

class Version {
 public:
  std::vector<LevelState> levels;

  /// Ensures at least n levels exist.
  void EnsureLevels(size_t n) {
    if (levels.size() < n) levels.resize(n);
  }

  /// Index of the deepest non-empty level, or -1 when the tree is empty.
  int BottommostNonEmptyLevel() const;

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;

  /// Total number of sorted runs across all levels.
  size_t TotalRuns() const;

  /// Multi-line structural dump for debugging and the visualizer example.
  std::string DebugString() const;
};

}  // namespace talus

#endif  // TALUS_LSM_VERSION_H_
