// Version: the on-disk shape of the tree — levels of sorted runs of files.
//
// A *sorted run* is a sequence of key-disjoint files that together form one
// sorted key space (a leveled level is one run; a tiered level holds many).
// Runs within a level are ordered newest-first: run 0 holds the most recently
// written data, so point lookups may stop at the first run that decides a
// key. Growth policies manipulate this structure only through
// CompactionRequests (policy/growth_policy.h).
#ifndef TALUS_LSM_VERSION_H_
#define TALUS_LSM_VERSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/dbformat.h"

namespace talus {

struct FileMeta {
  uint64_t number = 0;       // Unique file number (names the .sst file).
  uint64_t file_size = 0;    // Physical bytes.
  uint64_t num_entries = 0;  // Internal-key entries.
  uint64_t payload_bytes = 0;  // Sum of user key+value bytes (logical size).
  InternalKey smallest;
  InternalKey largest;
  // Smallest sequence number in the file; used by the
  // kOldestSmallestSeqFirst file picking policy (RocksDB-Tuned).
  uint64_t oldest_seq = 0;
};

using FileMetaPtr = std::shared_ptr<FileMeta>;

struct SortedRun {
  uint64_t run_id = 0;
  std::vector<FileMetaPtr> files;  // Sorted by smallest key, disjoint ranges.

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;
  uint64_t PayloadBytes() const;

  /// Indices of files whose key range overlaps [begin, end] (user keys).
  /// Empty `begin`/`end` mean unbounded.
  std::vector<size_t> OverlappingFiles(const Slice& begin,
                                       const Slice& end) const;
};

struct LevelState {
  std::vector<SortedRun> runs;  // Index 0 = newest run.

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;
  uint64_t PayloadBytes() const;
  size_t NumRuns() const { return runs.size(); }
  bool empty() const { return runs.empty(); }

  const SortedRun* FindRun(uint64_t run_id) const;
  SortedRun* FindRun(uint64_t run_id);
};

class Version {
 public:
  std::vector<LevelState> levels;

  Version() = default;
  // Copies and moves transfer the tree shape only; the reference count
  // belongs to the object's identity, so the destination starts at zero.
  Version(const Version& other) : levels(other.levels) {}
  Version(Version&& other) noexcept : levels(std::move(other.levels)) {}
  Version& operator=(const Version& other) {
    if (this != &other) levels = other.levels;
    return *this;
  }
  Version& operator=(Version&& other) noexcept {
    levels = std::move(other.levels);
    return *this;
  }

  /// Reference lifecycle (DESIGN.md §2.7). A Version is immutable once
  /// installed: the DB holds one reference to the current version and every
  /// ReadView holds one more, so readers walk `levels` without any lock
  /// while compactions install successor versions.
  void Ref() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  /// Drops one reference. Returns true when this was the last one; the
  /// caller then owns destruction.
  bool Unref() const {
    return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
  int32_t RefCount() const { return refs_.load(std::memory_order_relaxed); }

  /// True when any run in any level contains file `number`.
  bool ReferencesFile(uint64_t number) const;

  /// Ensures at least n levels exist.
  void EnsureLevels(size_t n) {
    if (levels.size() < n) levels.resize(n);
  }

  /// Index of the deepest non-empty level, or -1 when the tree is empty.
  int BottommostNonEmptyLevel() const;

  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;

  /// Total number of sorted runs across all levels.
  size_t TotalRuns() const;

  /// Multi-line structural dump for debugging and the visualizer example.
  std::string DebugString() const;

 private:
  mutable std::atomic<int32_t> refs_{0};
};

}  // namespace talus

#endif  // TALUS_LSM_VERSION_H_
