#include "lsm/version.h"

#include <sstream>

namespace talus {

uint64_t SortedRun::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& f : files) total += f->file_size;
  return total;
}

uint64_t SortedRun::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& f : files) total += f->num_entries;
  return total;
}

uint64_t SortedRun::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& f : files) total += f->payload_bytes;
  return total;
}

std::vector<size_t> SortedRun::OverlappingFiles(const Slice& begin,
                                                const Slice& end) const {
  std::vector<size_t> result;
  for (size_t i = 0; i < files.size(); i++) {
    const FileMeta& f = *files[i];
    if (!begin.empty() && f.largest.user_key().compare(begin) < 0) continue;
    if (!end.empty() && f.smallest.user_key().compare(end) > 0) continue;
    result.push_back(i);
  }
  return result;
}

uint64_t LevelState::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& r : runs) total += r.TotalBytes();
  return total;
}

uint64_t LevelState::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& r : runs) total += r.TotalEntries();
  return total;
}

uint64_t LevelState::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& r : runs) total += r.PayloadBytes();
  return total;
}

const SortedRun* LevelState::FindRun(uint64_t run_id) const {
  for (const auto& r : runs) {
    if (r.run_id == run_id) return &r;
  }
  return nullptr;
}

SortedRun* LevelState::FindRun(uint64_t run_id) {
  for (auto& r : runs) {
    if (r.run_id == run_id) return &r;
  }
  return nullptr;
}

bool Version::ReferencesFile(uint64_t number) const {
  for (const auto& level : levels) {
    for (const auto& run : level.runs) {
      for (const auto& f : run.files) {
        if (f->number == number) return true;
      }
    }
  }
  return false;
}

int Version::BottommostNonEmptyLevel() const {
  for (int i = static_cast<int>(levels.size()) - 1; i >= 0; i--) {
    if (!levels[i].empty()) return i;
  }
  return -1;
}

uint64_t Version::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& l : levels) total += l.TotalBytes();
  return total;
}

uint64_t Version::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& l : levels) total += l.TotalEntries();
  return total;
}

size_t Version::TotalRuns() const {
  size_t total = 0;
  for (const auto& l : levels) total += l.runs.size();
  return total;
}

std::string Version::DebugString() const {
  std::ostringstream out;
  for (size_t i = 0; i < levels.size(); i++) {
    const LevelState& level = levels[i];
    out << "L" << i << ":";
    if (level.empty()) {
      out << " (empty)\n";
      continue;
    }
    out << "\n";
    for (const auto& run : level.runs) {
      out << "  run " << run.run_id << ": " << run.files.size() << " files, "
          << run.TotalBytes() << " bytes, " << run.TotalEntries()
          << " entries\n";
    }
  }
  return out.str();
}

}  // namespace talus
