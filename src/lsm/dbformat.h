// Internal key format: user_key ⊕ trailer(8 bytes), ordered by user key
// ascending then sequence descending so the newest version of a key sorts
// first.
//
// The trailer is the big-endian encoding of ~((sequence << 8) | type).
// Complementing and storing big-endian makes plain bytewise comparison of
// whole internal keys equal the semantic ordering (user key asc, sequence
// desc, type desc). Every component — blocks, file metadata, memtable,
// merging iterators — can therefore compare keys with memcmp; there is no
// comparator plumbing anywhere.
#ifndef TALUS_LSM_DBFORMAT_H_
#define TALUS_LSM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace talus {

using SequenceNumber = uint64_t;

static constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

// When seeking, we want the newest visible entry: the max sequence and the
// larger type sort first under the complemented ordering.
static constexpr ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
};

inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64BE(result, ~PackSequenceAndType(seq, t));
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  const size_t n = internal_key.size();
  if (n < 8) return false;
  uint64_t num = ~DecodeFixed64BE(internal_key.data() + n - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), n - 8);
  return c <= kTypeValue;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return (~DecodeFixed64BE(internal_key.data() + internal_key.size() - 8)) >>
         8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(
      (~DecodeFixed64BE(internal_key.data() + internal_key.size() - 8)) &
      0xff);
}

/// Orders internal keys: user key ascending, then (sequence, type)
/// descending. The complemented big-endian trailer makes the tie-break a
/// plain memcmp of the last 8 bytes. (Whole-key bytewise comparison is NOT
/// equivalent when one user key is a strict prefix of another, hence the
/// explicit split.)
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r == 0) {
      r = memcmp(a.data() + a.size() - 8, b.data() + b.size() - 8, 8);
    }
    return r;
  }
  bool operator()(const Slice& a, const Slice& b) const {
    return Compare(a, b) < 0;
  }
};

/// Owning internal key, convenient for file metadata.
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, user_key, s, t);
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return Slice(rep_); }
  Slice user_key() const { return ExtractUserKey(Slice(rep_)); }
  bool empty() const { return rep_.empty(); }
  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

/// Key formatted for a memtable/SST lookup at a given snapshot.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence) {
    internal_key_.reserve(user_key.size() + 8);
    AppendInternalKey(&internal_key_, user_key, sequence, kValueTypeForSeek);
  }

  Slice internal_key() const { return Slice(internal_key_); }
  Slice user_key() const { return ExtractUserKey(Slice(internal_key_)); }

 private:
  std::string internal_key_;
};

}  // namespace talus

#endif  // TALUS_LSM_DBFORMAT_H_
