#include "lsm/write_batch.h"

#include "util/coding.h"

namespace talus {

void WriteBatch::Put(const Slice& key, const Slice& value) {
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
  count_++;
  puts_++;
  payload_bytes_ += key.size() + value.size();
  if (key.empty()) has_empty_key_ = true;
}

void WriteBatch::Delete(const Slice& key) {
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
  count_++;
  deletes_++;
  payload_bytes_ += key.size();
  if (key.empty()) has_empty_key_ = true;
}

void WriteBatch::Clear() {
  rep_.clear();
  count_ = 0;
  puts_ = 0;
  deletes_ = 0;
  payload_bytes_ = 0;
  has_empty_key_ = false;
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  uint32_t found = 0;
  while (!input.empty()) {
    const uint8_t tag = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    Slice key, value;
    switch (tag) {
      case kTypeValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put record");
        }
        handler->Put(key, value);
        break;
      case kTypeDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete record");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown WriteBatch op tag");
    }
    found++;
  }
  if (found != count_) {
    return Status::Corruption("WriteBatch count mismatch");
  }
  return Status::OK();
}

Status WriteBatch::FromRep(const Slice& rep, WriteBatch* batch) {
  batch->Clear();
  // Validate and count by replaying into the batch.
  class Builder : public Handler {
   public:
    explicit Builder(WriteBatch* b) : b_(b) {}
    void Put(const Slice& key, const Slice& value) override {
      b_->Put(key, value);
    }
    void Delete(const Slice& key) override { b_->Delete(key); }

   private:
    WriteBatch* b_;
  };
  WriteBatch probe;
  probe.rep_.assign(rep.data(), rep.size());
  // Count unknown: walk the rep directly.
  Slice input(rep);
  uint32_t count = 0;
  while (!input.empty()) {
    const uint8_t tag = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    Slice key, value;
    if (tag == kTypeValue) {
      if (!GetLengthPrefixedSlice(&input, &key) ||
          !GetLengthPrefixedSlice(&input, &value)) {
        return Status::Corruption("bad batch rep");
      }
    } else if (tag == kTypeDeletion) {
      if (!GetLengthPrefixedSlice(&input, &key)) {
        return Status::Corruption("bad batch rep");
      }
    } else {
      return Status::Corruption("bad batch tag");
    }
    count++;
  }
  probe.count_ = count;
  Builder builder(batch);
  return probe.Iterate(&builder);
}

}  // namespace talus
