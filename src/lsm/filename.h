// File naming conventions inside a DB directory.
#ifndef TALUS_LSM_FILENAME_H_
#define TALUS_LSM_FILENAME_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace talus {

inline std::string SstFileName(const std::string& dbpath, uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.sst",
                static_cast<unsigned long long>(number));
  return dbpath + buf;
}

inline std::string WalFileName(const std::string& dbpath, uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.wal",
                static_cast<unsigned long long>(number));
  return dbpath + buf;
}

inline std::string ManifestFileName(const std::string& dbpath,
                                    uint64_t number) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbpath + buf;
}

inline std::string CurrentFileName(const std::string& dbpath) {
  return dbpath + "/CURRENT";
}

/// Parses "<number>.<suffix>" / "MANIFEST-<number>" names. Returns true and
/// sets *number and *suffix on success.
bool ParseFileName(const std::string& name, uint64_t* number,
                   std::string* suffix);

}  // namespace talus

#endif  // TALUS_LSM_FILENAME_H_
