// WriteBatch: an atomic group of updates. The whole batch is committed with
// one WAL record and one sequence-number range, so either every operation
// survives a crash or none does.
#ifndef TALUS_LSM_WRITE_BATCH_H_
#define TALUS_LSM_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "lsm/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace talus {

class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Number of operations in the batch.
  uint32_t Count() const { return count_; }
  /// Number of Put / Delete operations (Count() == Puts() + Deletes()).
  uint32_t Puts() const { return puts_; }
  uint32_t Deletes() const { return deletes_; }
  /// Sum of key+value bytes across operations.
  uint64_t PayloadBytes() const { return payload_bytes_; }
  bool empty() const { return count_ == 0; }
  /// True if any operation names an empty key. The engine rejects such
  /// batches per-writer (Status::InvalidArgument) without failing the rest
  /// of their commit group (DESIGN.md §2.9).
  bool HasEmptyKey() const { return has_empty_key_; }

  /// Visitor over the operations, in insertion order.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  /// Raw record payload (ops only, no sequence header). Used by the WAL
  /// encoding in db.cc.
  const std::string& rep() const { return rep_; }
  /// Reconstructs a batch from a raw record payload (WAL replay).
  static Status FromRep(const Slice& rep, WriteBatch* batch);

 private:
  std::string rep_;  // Sequence of: type byte | key lp | [value lp].
  uint32_t count_ = 0;
  uint32_t puts_ = 0;
  uint32_t deletes_ = 0;
  uint64_t payload_bytes_ = 0;
  bool has_empty_key_ = false;
};

}  // namespace talus

#endif  // TALUS_LSM_WRITE_BATCH_H_
