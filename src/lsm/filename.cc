#include "lsm/filename.h"

#include <cctype>

namespace talus {

bool ParseFileName(const std::string& name, uint64_t* number,
                   std::string* suffix) {
  if (name.rfind("MANIFEST-", 0) == 0) {
    const std::string digits = name.substr(9);
    if (digits.empty()) return false;
    uint64_t n = 0;
    for (char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
      n = n * 10 + (c - '0');
    }
    *number = n;
    *suffix = "manifest";
    return true;
  }
  size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return false;
  uint64_t n = 0;
  for (size_t i = 0; i < dot; i++) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    n = n * 10 + (name[i] - '0');
  }
  *number = n;
  *suffix = name.substr(dot + 1);
  return true;
}

}  // namespace talus
