// Manifest: durable snapshot of the tree structure plus engine counters.
// Each structural change writes a complete snapshot to MANIFEST-<n> and
// atomically repoints CURRENT — simple, crash-consistent, and cheap at
// research scale (metadata is tiny relative to data).
#ifndef TALUS_LSM_MANIFEST_H_
#define TALUS_LSM_MANIFEST_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "lsm/version.h"

namespace talus {

struct ManifestData {
  uint64_t next_file_number = 1;
  uint64_t next_run_id = 1;
  uint64_t last_sequence = 0;
  uint64_t flush_count = 0;
  uint64_t wal_number = 0;       // Live WAL file number (0 = none).
  std::string policy_name;       // Sanity check on reopen.
  std::string policy_state;      // Opaque GrowthPolicy::EncodeState() blob.
  /// EncodeGrowthPolicyConfig() of the policy the store is CURRENTLY
  /// running — which, under adaptive tuning (DESIGN.md §9), may differ
  /// from the one in DbOptions. Reopening with adaptive_tuning re-resolves
  /// the policy from this instead of the options. Empty in manifests
  /// written before the field existed (decoded as absent, never an error).
  std::string policy_config;
  Version version;
};

/// Writes a full snapshot as MANIFEST-<manifest_number> and repoints CURRENT.
Status WriteManifestSnapshot(Env* env, const std::string& dbpath,
                             uint64_t manifest_number, const ManifestData& data);

/// Loads the snapshot named by CURRENT. NotFound when no CURRENT exists.
Status ReadCurrentManifest(Env* env, const std::string& dbpath,
                           ManifestData* data, uint64_t* manifest_number);

}  // namespace talus

#endif  // TALUS_LSM_MANIFEST_H_
