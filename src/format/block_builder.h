// BlockBuilder: builds the LevelDB-style block format used for data and index
// blocks. Keys are prefix-compressed; every `restart_interval` entries a full
// key is stored and its offset recorded in the restart array, enabling binary
// search at read time.
//
// Entry:   shared_len varint32 | non_shared_len varint32 | value_len varint32
//          | key_delta | value
// Trailer: restart offsets (fixed32 each) | num_restarts fixed32
#ifndef TALUS_FORMAT_BLOCK_BUILDER_H_
#define TALUS_FORMAT_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace talus {

class BlockBuilder {
 public:
  /// `internal_key_order` affects only the debug-mode ordering assertion;
  /// the format itself is order-agnostic.
  explicit BlockBuilder(int restart_interval = 16,
                        bool internal_key_order = false);
  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// REQUIRES: key > any previously added key (bytewise on internal keys).
  void Add(const Slice& key, const Slice& value);

  /// Finishes the block and returns a slice referencing its contents, valid
  /// until Reset() is called.
  Slice Finish();

  void Reset();

  /// Estimated size of the block being built (incl. trailer if finished now).
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  const bool internal_key_order_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;
  bool finished_;
  std::string last_key_;
};

}  // namespace talus

#endif  // TALUS_FORMAT_BLOCK_BUILDER_H_
