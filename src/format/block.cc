#include "format/block.h"

#include <cassert>
#include <cstring>

#include "lsm/dbformat.h"
#include "util/coding.h"

namespace talus {

Block::Block(std::string contents) : storage_(std::move(contents)) {
  data_ = storage_.data();
  size_ = storage_.size();
  Parse();
}

Block::Block(size_t size) : storage_(size, '\0') {
  data_ = storage_.data();
  size_ = size;
  // Trailer not parsed yet: the caller fills MutableData() and calls
  // FinishLoad(). Until then the block reads as malformed/empty.
  malformed_ = true;
  num_restarts_ = 0;
}

Block::Block(const char* data, size_t size) : data_(data), size_(size) {
  Parse();
}

void Block::Parse() {
  malformed_ = false;
  num_restarts_ = 0;
  restart_offset_ = 0;
  if (size_ < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  num_restarts_ = DecodeFixed32(data_ + size_ - sizeof(uint32_t));
  const size_t max_restarts = (size_ - sizeof(uint32_t)) / sizeof(uint32_t);
  if (num_restarts_ > max_restarts) {
    malformed_ = true;
    return;
  }
  restart_offset_ =
      static_cast<uint32_t>(size_ - (1 + num_restarts_) * sizeof(uint32_t));
}

void PointGetContext::Reserve(size_t n) {
  if (n <= kInlineKeyBytes || n <= heap_cap_) return;
  size_t cap = heap_cap_ > 0 ? heap_cap_ : kInlineKeyBytes;
  while (cap < n) cap *= 2;
  std::unique_ptr<char[]> grown(new char[cap]);
  memcpy(grown.get(), buf(), key_len_);
  heap_ = std::move(grown);
  heap_cap_ = cap;
}

namespace {

// Decodes the entry header starting at p. Returns pointer to the key delta,
// or nullptr on corruption.
const char* DecodeEntry(const char* p, const char* limit, uint32_t* shared,
                        uint32_t* non_shared, uint32_t* value_length) {
  if (limit - p < 3) return nullptr;
  *shared = reinterpret_cast<const unsigned char*>(p)[0];
  *non_shared = reinterpret_cast<const unsigned char*>(p)[1];
  *value_length = reinterpret_cast<const unsigned char*>(p)[2];
  if ((*shared | *non_shared | *value_length) < 128) {
    // Fast path: all three values fit in one byte each.
    p += 3;
  } else {
    if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) return nullptr;
  }
  if (static_cast<uint32_t>(limit - p) < (*non_shared + *value_length)) {
    return nullptr;
  }
  return p;
}

// Three-way compare of a block entry key against the probe target whose
// first `skip` bytes are already known equal. `trailer` is 8 for internal
// keys (user key asc, then bytewise trailer — the complemented big-endian
// encoding makes the tie-break a plain memcmp) and 0 for raw bytewise
// blocks. *match returns the common prefix length of the two keys'
// user-key parts so the caller can carry it into the next entry.
// REQUIRES: both keys at least `trailer` bytes long.
int CompareEntryKey(const Slice& entry, const Slice& target, size_t trailer,
                    size_t skip, size_t* match) {
  const Slice eu(entry.data(), entry.size() - trailer);
  const Slice tu(target.data(), target.size() - trailer);
  int r = CompareSkipPrefix(eu, tu, skip, match);
  if (r != 0 || trailer == 0) return r;
  return memcmp(entry.data() + entry.size() - trailer,
                target.data() + target.size() - trailer, trailer);
}

}  // namespace

PointGetStatus Block::PointGet(const Slice& target, PointGetContext* ctx,
                               bool internal_key_order) const {
  const size_t trailer = internal_key_order ? 8 : 0;
  if (malformed_ || target.size() < trailer) return PointGetStatus::kCorrupt;
  if (num_restarts_ == 0) return PointGetStatus::kNotFound;

  const char* const data = data_;
  const char* const limit = data + restart_offset_;
  auto restart_point = [&](uint32_t index) {
    return DecodeFixed32(data + restart_offset_ + index * sizeof(uint32_t));
  };

  // Binary search over restart points for the last restart whose (full,
  // shared == 0) key is < target.
  uint32_t left = 0;
  uint32_t right = num_restarts_ - 1;
  size_t ignored_match = 0;
  while (left < right) {
    const uint32_t mid = (left + right + 1) / 2;
    const uint32_t region_offset = restart_point(mid);
    if (region_offset >= restart_offset_) return PointGetStatus::kCorrupt;
    uint32_t shared, non_shared, value_length;
    const char* key_ptr = DecodeEntry(data + region_offset, limit, &shared,
                                      &non_shared, &value_length);
    if (key_ptr == nullptr || shared != 0 || non_shared < trailer) {
      return PointGetStatus::kCorrupt;
    }
    const Slice mid_key(key_ptr, non_shared);
    if (CompareEntryKey(mid_key, target, trailer, 0, &ignored_match) < 0) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }

  // Linear scan from the restart, delta-decoding into ctx's buffer.
  // `matched` counts the leading user-key bytes of the CURRENT entry known
  // equal to the target; an entry sharing `shared` bytes with its
  // predecessor therefore agrees with the target on min(matched, shared)
  // bytes, which the comparison skips.
  const uint32_t start = restart_point(left);
  if (start >= restart_offset_) return PointGetStatus::kCorrupt;
  const char* p = data + start;
  size_t matched = 0;
  ctx->key_len_ = 0;
  while (true) {
    if (p >= limit) return PointGetStatus::kNotFound;
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || shared > ctx->key_len_) {
      return PointGetStatus::kCorrupt;
    }
    const size_t key_len = static_cast<size_t>(shared) + non_shared;
    if (key_len < trailer) return PointGetStatus::kCorrupt;
    ctx->Reserve(key_len);
    memcpy(ctx->buf() + shared, p, non_shared);
    ctx->key_len_ = key_len;
    const Slice value(p + non_shared, value_length);
    p += non_shared + value_length;

    size_t skip = matched < shared ? matched : shared;
    const size_t user_len = key_len - trailer;
    if (skip > user_len) skip = user_len;
    const int c = CompareEntryKey(Slice(ctx->buf(), key_len), target, trailer,
                                  skip, &matched);
    if (c >= 0) {
      ctx->value_ = value;
      return PointGetStatus::kFound;
    }
  }
}

class Block::Iter final : public Iterator {
 public:
  Iter(const char* data, uint32_t restarts, uint32_t num_restarts,
       bool internal_key_order)
      : data_(data),
        restarts_(restarts),
        num_restarts_(num_restarts),
        internal_key_order_(internal_key_order),
        current_(restarts),
        restart_index_(num_restarts) {}

  bool Valid() const override { return current_ < restarts_; }
  Status status() const override { return status_; }
  Slice key() const override {
    assert(Valid());
    return Slice(key_);
  }
  Slice value() const override {
    assert(Valid());
    return value_;
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  void Prev() override {
    assert(Valid());
    // Back up to a restart point before current_, then scan forward.
    const uint32_t original = current_;
    while (GetRestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        current_ = restarts_;
        restart_index_ = num_restarts_;
        return;  // No entries before the first one.
      }
      restart_index_--;
    }
    SeekToRestartPoint(restart_index_);
    do {
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

  void Seek(const Slice& target) override {
    // Binary search over restart points for the last restart with a key
    // < target, then linear scan.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = GetRestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr =
          DecodeEntry(data_ + region_offset, data_ + restarts_, &shared,
                      &non_shared, &value_length);
      if (key_ptr == nullptr || shared != 0 ||
          (internal_key_order_ && non_shared < 8)) {
        CorruptionError();
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (KeyCompare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (true) {
      if (!ParseNextKey()) return;
      if (KeyCompare(Slice(key_), target) >= 0) return;
    }
  }

  void SeekToFirst() override {
    if (num_restarts_ == 0) {
      current_ = restarts_;
      return;
    }
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    if (num_restarts_ == 0) {
      current_ = restarts_;
      return;
    }
    SeekToRestartPoint(num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < restarts_) {
    }
  }

 private:
  int KeyCompare(const Slice& a, const Slice& b) const {
    if (internal_key_order_) {
      return icmp_.Compare(a, b);
    }
    return a.compare(b);
  }

  uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  uint32_t GetRestartPoint(uint32_t index) const {
    assert(index < num_restarts_);
    return DecodeFixed32(data_ + restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    uint32_t offset = GetRestartPoint(index);
    // value_ is positioned so NextEntryOffset() lands on the restart entry.
    value_ = Slice(data_ + offset, 0);
  }

  void CorruptionError() {
    current_ = restarts_;
    restart_index_ = num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_.clear();
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;
    if (p >= limit) {
      current_ = restarts_;
      restart_index_ = num_restarts_;
      return false;
    }
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    if (internal_key_order_ && key_.size() < 8) {
      // An internal key is at least its 8-byte trailer; anything shorter
      // would send the comparator out of bounds.
      CorruptionError();
      return false;
    }
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      ++restart_index_;
    }
    return true;
  }

  const char* const data_;
  const uint32_t restarts_;
  const uint32_t num_restarts_;
  const bool internal_key_order_;
  // Hoisted: one comparator for the iterator's lifetime instead of a
  // construction per comparison.
  const InternalKeyComparator icmp_{};

  uint32_t current_;        // Offset of current entry; >= restarts_ if !Valid.
  uint32_t restart_index_;  // Restart block in which current_ falls.
  std::string key_;
  Slice value_;
  Status status_;
};

std::unique_ptr<Iterator> Block::NewIterator(bool internal_key_order) const {
  if (malformed_) {
    return NewEmptyIterator(Status::Corruption("bad block contents"));
  }
  if (num_restarts_ == 0) {
    return NewEmptyIterator();
  }
  return std::make_unique<Iter>(data_, restart_offset_, num_restarts_,
                                internal_key_order);
}

namespace {
class EmptyIterator final : public Iterator {
 public:
  explicit EmptyIterator(Status s) : status_(std::move(s)) {}
  bool Valid() const override { return false; }
  void Seek(const Slice&) override {}
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Next() override { assert(false); }
  void Prev() override { assert(false); }
  Slice key() const override {
    assert(false);
    return Slice();
  }
  Slice value() const override {
    assert(false);
    return Slice();
  }
  Status status() const override { return status_; }

 private:
  Status status_;
};
}  // namespace

std::unique_ptr<Iterator> NewEmptyIterator(Status s) {
  return std::make_unique<EmptyIterator>(std::move(s));
}

}  // namespace talus
