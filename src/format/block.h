// Block: read side of the block format, with a binary-searching iterator
// and an allocation-free point-search (PointGet) for the lookup hot path.
#ifndef TALUS_FORMAT_BLOCK_H_
#define TALUS_FORMAT_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "table/iterator.h"
#include "util/slice.h"

namespace talus {

/// Outcome of Block::PointGet.
enum class PointGetStatus {
  kFound,     // ctx holds the first entry with key >= target.
  kNotFound,  // Every entry in the block is < target.
  kCorrupt,   // Malformed block or entry; results are unusable.
};

/// Scratch state for Block::PointGet, reusable across calls. Holds the
/// delta-decoded entry key in inline storage (heap only for keys longer
/// than kInlineKeyBytes), so a point lookup materializes keys without a
/// std::string resize+append per scanned entry. The value slice points
/// into the block's bytes (zero-copy): it is valid only while the block's
/// backing storage is.
class PointGetContext {
 public:
  PointGetContext() = default;
  PointGetContext(const PointGetContext&) = delete;
  PointGetContext& operator=(const PointGetContext&) = delete;

  /// Key / value of the found entry. Valid only after PointGet returned
  /// kFound, until the next PointGet call with this context.
  Slice key() const { return Slice(buf(), key_len_); }
  Slice value() const { return value_; }

 private:
  friend class Block;
  static constexpr size_t kInlineKeyBytes = 224;

  const char* buf() const { return heap_cap_ > 0 ? heap_.get() : inline_; }
  char* buf() { return heap_cap_ > 0 ? heap_.get() : inline_; }
  /// Grows the key buffer to at least n bytes, preserving current contents
  /// (a delta-decoded key keeps its shared prefix in place).
  void Reserve(size_t n);

  char inline_[kInlineKeyBytes];
  std::unique_ptr<char[]> heap_;
  size_t heap_cap_ = 0;
  size_t key_len_ = 0;
  Slice value_;
};

class Block {
 public:
  /// Takes ownership of `contents` (the exact bytes BlockBuilder produced).
  explicit Block(std::string contents);
  /// Owning block with an uninitialized buffer of `size` bytes: the loader
  /// reads file bytes directly into MutableData() and then calls
  /// FinishLoad() to parse the trailer — the single-copy load path.
  explicit Block(size_t size);
  /// Non-owning view over externally owned bytes (e.g. a reusable read
  /// scratch); the storage must outlive the Block and its iterators.
  Block(const char* data, size_t size);
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  /// For the Block(size) path: the buffer to read into, then FinishLoad().
  char* MutableData() { return storage_.data(); }
  void FinishLoad() { Parse(); }

  size_t size() const { return size_; }

  /// Iterator over the block. The Block must outlive the iterator.
  /// `internal_key_order` selects the engine's internal-key comparator
  /// (user key asc, sequence desc) instead of plain bytewise ordering;
  /// data and index blocks of SSTs always use it.
  std::unique_ptr<Iterator> NewIterator(bool internal_key_order = false) const;

  /// Allocation-free point search: finds the first entry with key >=
  /// target (exactly what Iter::Seek positions on) by binary-searching the
  /// restart array and delta-decoding forward into ctx's inline buffer,
  /// comparing with shared-prefix skipping. On kFound, ctx->key()/value()
  /// hold the entry; value() points into this block's bytes.
  PointGetStatus PointGet(const Slice& target, PointGetContext* ctx,
                          bool internal_key_order = true) const;

 private:
  class Iter;

  void Parse();

  std::string storage_;        // Empty for non-owning views.
  const char* data_ = nullptr; // storage_.data() or external bytes.
  size_t size_ = 0;
  uint32_t restart_offset_ = 0;  // Offset of restart array in data_.
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace talus

#endif  // TALUS_FORMAT_BLOCK_H_
