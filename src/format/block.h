// Block: read side of the block format, with a binary-searching iterator.
#ifndef TALUS_FORMAT_BLOCK_H_
#define TALUS_FORMAT_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "table/iterator.h"
#include "util/slice.h"

namespace talus {

class Block {
 public:
  /// Takes ownership of `contents` (the exact bytes BlockBuilder produced).
  explicit Block(std::string contents);
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  /// Iterator over the block. The Block must outlive the iterator.
  /// `internal_key_order` selects the engine's internal-key comparator
  /// (user key asc, sequence desc) instead of plain bytewise ordering;
  /// data and index blocks of SSTs always use it.
  std::unique_ptr<Iterator> NewIterator(bool internal_key_order = false) const;

 private:
  class Iter;

  std::string data_;
  uint32_t restart_offset_ = 0;  // Offset of restart array in data_.
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace talus

#endif  // TALUS_FORMAT_BLOCK_H_
