// MemTable: the in-memory write buffer. Entries are stored in a skiplist over
// length-prefixed internal keys; flushing iterates in internal-key order.
//
// Concurrency: concurrent Add()s are safe as long as every concurrent entry
// carries a distinct (user key, sequence) pair — which the group-commit
// pipeline guarantees by assigning disjoint sequence ranges to the writers
// of a group (DESIGN.md §2.9); the skiplist links nodes with CAS and the
// arena serializes allocation internally. Get() and iterators are safe
// without any lock concurrently with writers — the skiplist publishes nodes
// with release-stores (skiplist.h), which is what lets the DB read path
// drop the mutex (DESIGN.md §2.7).
#ifndef TALUS_MEM_MEMTABLE_H_
#define TALUS_MEM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/dbformat.h"
#include "mem/skiplist.h"
#include "table/iterator.h"
#include "util/arena.h"

namespace talus {

class MemTable {
 public:
  MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Adds an entry (kTypeValue) or a tombstone (kTypeDeletion).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If the memtable contains the newest entry for key visible at `lkey`'s
  /// sequence: returns true and sets *value (found) or *s to NotFound
  /// (tombstone). Returns false if the key is not in the memtable at all.
  bool Get(const LookupKey& lkey, std::string* value, Status* s);

  /// Iterator over internal keys; value() is the user value. The memtable
  /// must outlive the iterator.
  std::unique_ptr<Iterator> NewIterator();

  /// Approximate bytes used (arena blocks).
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  /// Sum of user key + value bytes added (logical payload size).
  uint64_t payload_bytes() const {
    return payload_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    InternalKeyComparator comparator;
    // Keys are length-prefixed internal keys allocated in the arena.
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  // Relaxed atomics: bumped by (possibly concurrent) Add()s and read by the
  // flush trigger and property/stat paths without a common lock.
  std::atomic<uint64_t> num_entries_{0};
  std::atomic<uint64_t> payload_bytes_{0};
};

}  // namespace talus

#endif  // TALUS_MEM_MEMTABLE_H_
