#include "mem/memtable.h"

#include "util/coding.h"

namespace talus {

namespace {

// Entries in the skiplist are:
//   klen varint32 | internal key (klen bytes) | vlen varint32 | value
Slice GetLengthPrefixed(const char* data) {
  uint32_t len;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  Slice a = GetLengthPrefixed(aptr);
  Slice b = GetLengthPrefixed(bptr);
  return comparator.Compare(a, b);
}

MemTable::MemTable() : table_(comparator_, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  std::string tmp;
  tmp.reserve(encoded_len);
  PutVarint32(&tmp, static_cast<uint32_t>(internal_key_size));
  tmp.append(key.data(), key_size);
  PutFixed64BE(&tmp, ~PackSequenceAndType(seq, type));
  PutVarint32(&tmp, static_cast<uint32_t>(val_size));
  tmp.append(value.data(), val_size);
  memcpy(buf, tmp.data(), encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(key_size + val_size, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& lkey, std::string* value, Status* s) {
  Table::Iterator iter(&table_);
  // Seek to the first entry >= the lookup internal key.
  std::string seek_target;
  Slice ik = lkey.internal_key();
  PutVarint32(&seek_target, static_cast<uint32_t>(ik.size()));
  seek_target.append(ik.data(), ik.size());
  iter.Seek(seek_target.data());
  if (!iter.Valid()) return false;

  const char* entry = iter.key();
  Slice found_ikey = GetLengthPrefixed(entry);
  if (ExtractUserKey(found_ikey) != lkey.user_key()) return false;

  switch (ExtractValueType(found_ikey)) {
    case kTypeValue: {
      const char* value_start = found_ikey.data() + found_ikey.size();
      uint32_t vlen;
      const char* p = GetVarint32Ptr(value_start, value_start + 5, &vlen);
      value->assign(p, vlen);
      *s = Status::OK();
      return true;
    }
    case kTypeDeletion:
      *s = Status::NotFound(Slice());
      return true;
  }
  return false;
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override {
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(k.size()));
    scratch_.append(k.data(), k.size());
    iter_.Seek(scratch_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixed(iter_.key()); }
  Slice value() const override {
    Slice k = GetLengthPrefixed(iter_.key());
    const char* value_start = k.data() + k.size();
    uint32_t vlen;
    const char* p = GetVarint32Ptr(value_start, value_start + 5, &vlen);
    return Slice(p, vlen);
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string scratch_;  // For Seek target encoding.
};

std::unique_ptr<Iterator> MemTable::NewIterator() {
  return std::make_unique<MemTableIterator>(&table_);
}

}  // namespace talus
