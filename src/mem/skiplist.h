// Arena-backed skiplist, the memtable's core index. Single-writer,
// multi-reader (the engine is single-threaded per DB; the skiplist is still
// written with the standard lock-free-read discipline for clarity).
#ifndef TALUS_MEM_SKIPLIST_H_
#define TALUS_MEM_SKIPLIST_H_

#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace talus {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(0 /* any key */, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// REQUIRES: nothing that compares equal to key is currently in the list.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));

    int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; i++) {
        prev[i] = head_;
      }
      max_height_ = height;
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* Next(int n) {
      assert(n >= 0);
      return next_[n];
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n] = x;
    }

   private:
    // Flexible array: actual length equals the node's height.
    Node* next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        sizeof(Node*) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
      height++;
    }
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (KeyIsAfterNode(key, next)) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next == nullptr || compare_(next->key, key) >= 0) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next == nullptr) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  int max_height_;
  Random rnd_;
};

}  // namespace talus

#endif  // TALUS_MEM_SKIPLIST_H_
