// Arena-backed skiplist, the memtable's core index. Multi-writer,
// multi-reader: Insert links nodes with per-level CAS retry loops, so the
// parallel-memtable-write mode can apply commit-group sub-batches from
// several threads at once (DESIGN.md §2.9), while readers traverse with
// acquire loads and never lock (DESIGN.md §2.7). A new node is fully built
// before the release-CAS that links it in, so a reader either sees the node
// completely or not at all. With a single writer the CAS never fails and
// the resulting structure is bit-identical to the classic single-writer
// insert (heights are drawn from one serialized PRNG stream).
#ifndef TALUS_MEM_SKIPLIST_H_
#define TALUS_MEM_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace talus {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(0 /* any key */, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// REQUIRES: nothing that compares equal to key is in the list or being
  /// inserted concurrently. Concurrent Inserts of distinct keys are safe:
  /// each level is linked with a CAS that retries from the surviving
  /// predecessor on contention (nodes are never removed, so a stale
  /// predecessor is always a valid search start).
  void Insert(const Key& key) {
    const int height = RandomHeight();
    Node* x = NewNode(key, height);

    int max_h = max_height_.load(std::memory_order_relaxed);
    while (height > max_h &&
           !max_height_.compare_exchange_weak(max_h, height,
                                              std::memory_order_relaxed)) {
      // max_h reloaded by the failed CAS; concurrent readers observing the
      // new height before any tall node is linked just fall through head_'s
      // nullptr at the extra levels.
    }

    Node* prev[kMaxHeight];
    for (int i = 0; i < kMaxHeight; i++) prev[i] = head_;
    FindGreaterOrEqual(key, prev);

    // Link bottom-up: once level 0 succeeds the node is in the list; upper
    // levels only accelerate searches, so readers tolerate the window where
    // they are not linked yet.
    for (int i = 0; i < height; i++) {
      while (true) {
        Node* before = prev[i];
        Node* next;
        FindSpliceForLevel(key, &before, &next, i);
        // The new node's pointer is not yet visible at this level, so a
        // relaxed store is enough; the release-CAS into `before` publishes
        // the whole node.
        x->NoBarrierSetNext(i, next);
        if (before->CasNext(i, next, x)) break;
        // Lost the race at this level: rescan forward from the surviving
        // predecessor and retry.
        prev[i] = before;
      }
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* Next(int n) {
      assert(n >= 0);
      return slot(n)->load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      slot(n)->store(x, std::memory_order_release);
    }
    bool CasNext(int n, Node* expected, Node* x) {
      return slot(n)->compare_exchange_strong(expected, x,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
    }
    Node* NoBarrierNext(int n) {
      return slot(n)->load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      slot(n)->store(x, std::memory_order_relaxed);
    }

   private:
    // Trailing-array access through a decayed pointer (not next_[n]): the
    // node is allocated with its true height's worth of slots, and this
    // spelling keeps UBSan's array-bounds check off the flexible-array
    // idiom.
    std::atomic<Node*>* slot(int n) { return next_ + n; }

    // Flexible array: actual length equals the node's height.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  int RandomHeight() {
    // One PRNG stream shared by all inserters behind a spinlock: concurrent
    // inserts stay thread-safe, and a single writer draws the exact
    // sequence the seed engine drew (bit-identical structures).
    while (rnd_lock_.test_and_set(std::memory_order_acquire)) {
    }
    int height = 1;
    while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
      height++;
    }
    rnd_lock_.clear(std::memory_order_release);
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  /// Advances *before along `level` until (*before, *next) brackets key.
  /// REQUIRES: (*before)->key < key (head_ counts as < everything).
  void FindSpliceForLevel(const Key& key, Node** before, Node** next,
                          int level) const {
    while (true) {
      Node* n = (*before)->Next(level);
      if (!KeyIsAfterNode(key, n)) {
        assert(n == nullptr || !Equal(key, n->key));
        *next = n;
        return;
      }
      *before = n;
    }
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (KeyIsAfterNode(key, next)) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next == nullptr || compare_(next->key, key) >= 0) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next == nullptr) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  std::atomic_flag rnd_lock_ = ATOMIC_FLAG_INIT;
  Random rnd_;
};

}  // namespace talus

#endif  // TALUS_MEM_SKIPLIST_H_
