// AdaptiveTuner: the *acting* half of the paper's sense→act loop
// (DESIGN.md §9). The sensing half (obs::AmpTracker windowed amplification,
// obs::ModelDriftMonitor drift scores, WorkloadMixTracker windowed mix)
// landed first; this class closes the loop: each decision tick it re-solves
// the vertical cost model (tuning::BestVertical) against the *measured*
// windowed mix and amp-derived parameters, and recommends switching the
// growth policy — or retuning its size ratio — when the predicted win
// clears a hysteresis band.
//
// Split of responsibilities:
//   * Decide() is the navigator: pure cost-model arithmetic plus the two
//     pieces of anti-flap state (the hysteresis band and a post-switch
//     cooldown). It never touches the engine; tests drive it directly.
//   * The owner (DB::RetuneNow) evaluates one drift window, feeds the
//     measurements in, and applies a kRetune decision via
//     DB::ApplyPolicyConfig (the live-migration path).
//   * An optional timer thread gives a standalone DB its own cadence.
//     Under shard::ShardedDB the per-shard tuners keep the decision state
//     but the fleet runs ONE timer that ticks every shard, mirroring the
//     fleet-level stats snapshotter.
//
// Hysteresis semantics: a switch is recommended only when
// zeta(current design) / zeta(best design) - 1 > hysteresis. At the
// indifference boundary the ratio is ~1 from either side, so the tuner
// holds whichever design is installed instead of flapping between two
// near-equal ones. After a switch the cooldown holds decisions for a few
// ticks so the windowed measurements refill under the new shape.
#ifndef TALUS_TUNE_ADAPTIVE_TUNER_H_
#define TALUS_TUNE_ADAPTIVE_TUNER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "tuning/vertical_cost_model.h"
#include "tuning/workload_mix.h"

namespace talus {
namespace tune {

struct TunerConfig {
  /// Minimum predicted fractional cost win (ζ ratio − 1) before a switch
  /// is recommended; the anti-flap band.
  double hysteresis = 0.35;
  /// Windows with fewer operations (lookups + updates) than this are
  /// skipped: a thin window's mix estimate is noise, not workload.
  uint64_t min_window_ops = 256;
  /// Decision ticks held after a switch while measurements refill.
  int cooldown_ticks = 2;
  /// Timer cadence; 0 = externally driven (fleet timer or explicit
  /// RetuneNow calls) and Start() is a no-op.
  uint64_t interval_ms = 0;
};

/// One decision tick's measured inputs (all from the just-consumed drift
/// window plus the engine's current design).
struct TunerInputs {
  WorkloadMix mix;                  // windowed measured mix
  uint64_t window_ops = 0;          // lookups + updates in the window
  double bloom_fpr = 0.1;           // f
  double page_entries = 4.0;        // P
  uint64_t data_buffers = 1;        // N/B
  tuning::HorizontalMerge current_merge = tuning::HorizontalMerge::kLeveling;
  double current_size_ratio = 6.0;  // T
};

struct TuneDecision {
  enum class Action { kHold, kThinWindow, kCooldown, kRetune };
  Action action = Action::kHold;
  /// The recommended design (valid when action == kRetune; echoes the
  /// current design otherwise).
  tuning::HorizontalMerge merge = tuning::HorizontalMerge::kLeveling;
  double size_ratio = 6.0;
  double current_cost = 0;    // ζ(current design, measured mix)
  double best_cost = 0;       // ζ(best design, measured mix)
  double predicted_gain = 0;  // current_cost / best_cost − 1

  bool retune() const { return action == Action::kRetune; }
  const char* ActionName() const;
};

/// Snapshot of the tuner's counters (the talus.tune property and the
/// talus_tune_* Prometheus families).
struct TunerStats {
  uint64_t ticks = 0;
  uint64_t thin_windows = 0;
  uint64_t cooldown_holds = 0;
  uint64_t holds = 0;
  uint64_t retunes = 0;          // kRetune decisions
  uint64_t switches_applied = 0; // decisions the engine installed
  uint64_t drift_events = 0;     // kModelDrift samples seen by the owner
  double last_gain = 0;
  double last_current_cost = 0;
  double last_best_cost = 0;
  std::string last_action;  // ActionName() of the last decision
  std::string last_design;  // label of the last applied design
};

class AdaptiveTuner {
 public:
  using TickFn = std::function<void()>;

  /// `tick` runs on the tuner's own timer thread (never a shared pool: a
  /// tick may wait for an active compaction chain, which on a small pool
  /// could be queued behind the tick itself). Null tick or interval 0
  /// makes Start a no-op.
  AdaptiveTuner(const TunerConfig& config, TickFn tick);
  ~AdaptiveTuner();
  AdaptiveTuner(const AdaptiveTuner&) = delete;
  AdaptiveTuner& operator=(const AdaptiveTuner&) = delete;

  void Start();
  /// Stops the timer thread and waits for an in-flight tick. Idempotent.
  void Stop();

  /// One navigation decision over the measured window. Thread-safe;
  /// updates the anti-flap state and counters.
  TuneDecision Decide(const TunerInputs& in);

  /// Owner feedback: a drift window flagged kModelDrift.
  void NoteDrift();
  /// Owner feedback: a kRetune decision was installed as `label`.
  void NoteSwitchApplied(const std::string& label);

  TunerStats GetStats() const;
  const TunerConfig& config() const { return config_; }

 private:
  void TimerLoop();

  const TunerConfig config_;
  TickFn tick_;

  mutable std::mutex mu_;  // decision state + stats
  int cooldown_ = 0;
  TunerStats stats_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool started_ = false;
  bool stopping_ = false;
  std::thread timer_;
};

}  // namespace tune
}  // namespace talus

#endif  // TALUS_TUNE_ADAPTIVE_TUNER_H_
