#include "tune/adaptive_tuner.h"

#include <chrono>

namespace talus {
namespace tune {

const char* TuneDecision::ActionName() const {
  switch (action) {
    case Action::kHold: return "hold";
    case Action::kThinWindow: return "thin-window";
    case Action::kCooldown: return "cooldown";
    case Action::kRetune: return "retune";
  }
  return "unknown";
}

AdaptiveTuner::AdaptiveTuner(const TunerConfig& config, TickFn tick)
    : config_(config), tick_(std::move(tick)) {}

AdaptiveTuner::~AdaptiveTuner() { Stop(); }

void AdaptiveTuner::Start() {
  if (config_.interval_ms == 0 || tick_ == nullptr) return;
  std::lock_guard<std::mutex> lock(timer_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  timer_ = std::thread([this] { TimerLoop(); });
}

void AdaptiveTuner::Stop() {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  std::lock_guard<std::mutex> lock(timer_mu_);
  started_ = false;
}

void AdaptiveTuner::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!stopping_) {
    if (timer_cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                           [this] { return stopping_; })) {
      break;
    }
    // Run the tick with the timer lock released so Stop() never waits on
    // a tick that is itself waiting on engine state.
    lock.unlock();
    tick_();
    lock.lock();
  }
}

TuneDecision AdaptiveTuner::Decide(const TunerInputs& in) {
  TuneDecision d;
  d.merge = in.current_merge;
  d.size_ratio = in.current_size_ratio;

  std::lock_guard<std::mutex> lock(mu_);
  stats_.ticks++;

  if (in.window_ops < config_.min_window_ops) {
    d.action = TuneDecision::Action::kThinWindow;
    stats_.thin_windows++;
    stats_.last_action = d.ActionName();
    return d;
  }

  WorkloadMix mix = in.mix;
  mix.Normalize();
  tuning::VerticalCostModel current;
  current.size_ratio = in.current_size_ratio;
  current.bloom_fpr = in.bloom_fpr;
  current.page_entries = in.page_entries;
  current.data_buffers = in.data_buffers;
  d.current_cost = current.Zeta(in.current_merge, mix);

  const tuning::VerticalChoice best =
      tuning::BestVertical(in.bloom_fpr, in.page_entries, in.data_buffers, mix);
  d.best_cost = best.cost;
  d.predicted_gain =
      best.cost > 0 ? d.current_cost / best.cost - 1.0 : 0.0;

  stats_.last_gain = d.predicted_gain;
  stats_.last_current_cost = d.current_cost;
  stats_.last_best_cost = d.best_cost;

  if (cooldown_ > 0) {
    cooldown_--;
    d.action = TuneDecision::Action::kCooldown;
    stats_.cooldown_holds++;
    stats_.last_action = d.ActionName();
    return d;
  }

  const bool same_design = best.merge == in.current_merge &&
                           best.size_ratio == in.current_size_ratio;
  if (same_design || d.predicted_gain <= config_.hysteresis) {
    d.action = TuneDecision::Action::kHold;
    stats_.holds++;
    stats_.last_action = d.ActionName();
    return d;
  }

  d.action = TuneDecision::Action::kRetune;
  d.merge = best.merge;
  d.size_ratio = best.size_ratio;
  cooldown_ = config_.cooldown_ticks;
  stats_.retunes++;
  stats_.last_action = d.ActionName();
  return d;
}

void AdaptiveTuner::NoteDrift() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.drift_events++;
}

void AdaptiveTuner::NoteSwitchApplied(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.switches_applied++;
  stats_.last_design = label;
}

TunerStats AdaptiveTuner::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tune
}  // namespace talus
