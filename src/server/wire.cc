#include "server/wire.h"

#include "util/coding.h"

namespace talus {
namespace server {
namespace wire {

StatusCode CodeForStatus(const Status& s) {
  if (s.ok()) return StatusCode::kOk;
  if (s.IsNotFound()) return StatusCode::kNotFound;
  if (s.IsCorruption()) return StatusCode::kCorruption;
  if (s.IsNotSupported()) return StatusCode::kNotSupported;
  if (s.IsInvalidArgument()) return StatusCode::kInvalidArgument;
  if (s.IsIOError()) return StatusCode::kIOError;
  if (s.IsBusy()) return StatusCode::kBusy;
  return StatusCode::kIOError;  // Unreachable with today's Status codes.
}

Status StatusForCode(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kNotSupported:
      return Status::NotSupported(message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kBusy:
      return Status::Busy(message);
    case StatusCode::kBadRequest:
      return Status::InvalidArgument("bad request", message);
    case StatusCode::kBadVersion:
      return Status::NotSupported("protocol version", message);
    case StatusCode::kShuttingDown:
      return Status::Busy("server shutting down", message);
  }
  return Status::IOError("unknown wire status code");
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not-supported";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kBusy:
      return "busy";
    case StatusCode::kBadRequest:
      return "bad-request";
    case StatusCode::kBadVersion:
      return "bad-version";
    case StatusCode::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

void AppendFrame(std::string* out, uint8_t op, uint64_t request_id,
                 const Slice& payload) {
  PutFixed32(out, static_cast<uint32_t>(kHeaderLen + payload.size()));
  out->push_back(static_cast<char>(kMagic));
  out->push_back(static_cast<char>(kVersion));
  out->push_back(static_cast<char>(op));
  out->push_back(0);  // flags
  PutFixed64(out, request_id);
  out->append(payload.data(), payload.size());
}

DecodeResult DecodeFrame(const char* buf, size_t size, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed) {
  if (size < 4) return DecodeResult::kNeedMore;
  const uint32_t len = DecodeFixed32(buf);
  if (len < kHeaderLen) return DecodeResult::kBadMagic;
  if (len > max_frame_bytes) return DecodeResult::kTooLarge;
  if (size < 4 + static_cast<size_t>(len)) return DecodeResult::kNeedMore;
  const unsigned char* h = reinterpret_cast<const unsigned char*>(buf + 4);
  if (h[0] != kMagic) return DecodeResult::kBadMagic;
  if (h[1] != kVersion) return DecodeResult::kBadVersion;
  if (h[3] != 0) return DecodeResult::kBadFlags;
  frame->op = h[2];
  frame->request_id = DecodeFixed64(buf + 8);
  frame->payload.assign(buf + 4 + kHeaderLen, len - kHeaderLen);
  *consumed = 4 + len;
  return DecodeResult::kFrame;
}

void PutLp(std::string* out, const Slice& value) {
  PutFixed32(out, static_cast<uint32_t>(value.size()));
  out->append(value.data(), value.size());
}

void PutU32(std::string* out, uint32_t value) { PutFixed32(out, value); }

bool GetLp(const Slice& payload, size_t* pos, Slice* value) {
  uint32_t len;
  if (!GetU32(payload, pos, &len)) return false;
  if (payload.size() - *pos < len) return false;
  *value = Slice(payload.data() + *pos, len);
  *pos += len;
  return true;
}

bool GetU32(const Slice& payload, size_t* pos, uint32_t* value) {
  if (payload.size() < *pos || payload.size() - *pos < 4) return false;
  *value = DecodeFixed32(payload.data() + *pos);
  *pos += 4;
  return true;
}

}  // namespace wire
}  // namespace server
}  // namespace talus
