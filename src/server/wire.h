// Wire protocol for the network service layer (DESIGN.md §8; normative
// spec with byte-level examples in docs/PROTOCOL.md). Requests and
// responses share one length-prefixed frame layout:
//
//   u32  len         little-endian; bytes after this field (>= kHeaderLen)
//   u8   magic       kMagic (0xC3)
//   u8   version     kVersion (1)
//   u8   op          request: Opcode; response: StatusCode
//   u8   flags       reserved, must be 0
//   u64  request_id  little-endian; echoed verbatim in the response
//   ...  payload     len - kHeaderLen bytes, opcode-specific
//
// All strings inside payloads are "lp" encoded: u32 little-endian length
// followed by that many raw bytes. Responses on a connection are returned
// in request order; request_id exists for client-side correlation, the
// server never reorders.
//
// Error taxonomy: FRAMING errors (bad magic/version/flags, oversize or
// undersize len) poison the stream — the server answers with one error
// frame (request_id 0) and closes. PAYLOAD errors (unknown opcode,
// truncated or trailing payload bytes, empty key) fail only that request;
// the connection stays usable.
//
// The same listener also speaks plaintext HTTP for `GET /metrics`: a
// connection whose first four bytes are "GET " is HTTP. This cannot
// collide with a binary frame — those four bytes read as a len field of
// 0x20544547 (~542 MB), far above any permitted max_frame_bytes.
#ifndef TALUS_SERVER_WIRE_H_
#define TALUS_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace talus {
namespace server {
namespace wire {

constexpr uint8_t kMagic = 0xC3;
constexpr uint8_t kVersion = 1;
/// Bytes after the len field that every frame carries before its payload:
/// magic + version + op + flags + request_id.
constexpr size_t kHeaderLen = 12;
/// Hard floor every server must accept; servers may allow more via
/// ServerOptions::max_frame_bytes.
constexpr size_t kMinMaxFrameBytes = 1 << 20;

/// Request opcodes. Unknown opcodes are a per-request error
/// (kNotSupported), so new opcodes can be added without a version bump.
enum class Opcode : uint8_t {
  kPing = 0x01,      // empty -> empty
  kGet = 0x02,       // lp key -> lp value
  kPut = 0x03,       // lp key, lp value -> empty
  kDelete = 0x04,    // lp key -> empty
  kWrite = 0x05,     // u32 count, count x (u8 type, lp key, [lp value])
  kScan = 0x06,      // lp start, u32 limit -> u32 count, count x (lp k, lp v)
  kProperty = 0x07,  // lp name -> lp text
};
/// kWrite op types.
constexpr uint8_t kWriteOpPut = 0;
constexpr uint8_t kWriteOpDelete = 1;

/// Response status. 0x00-0x0F mirror util/Status codes; 0x10+ are
/// protocol-level errors the engine never produces. Non-kOk responses
/// carry `lp message` as their payload.
enum class StatusCode : uint8_t {
  kOk = 0x00,
  kNotFound = 0x01,
  kCorruption = 0x02,
  kNotSupported = 0x03,
  kInvalidArgument = 0x04,
  kIOError = 0x05,
  kBusy = 0x06,
  kBadRequest = 0x10,    // Malformed frame or payload.
  kBadVersion = 0x11,    // Header version != kVersion.
  kShuttingDown = 0x12,  // Server is draining; retry elsewhere.
};

StatusCode CodeForStatus(const Status& s);
/// Reconstructs a Status from a wire code + message (client side).
Status StatusForCode(StatusCode code, const std::string& message);
const char* StatusCodeName(StatusCode code);

/// One decoded frame: header fields plus the raw payload bytes.
struct Frame {
  uint8_t op = 0;  // Opcode on requests, StatusCode on responses.
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends a complete frame (len + header + payload) to *out.
void AppendFrame(std::string* out, uint8_t op, uint64_t request_id,
                 const Slice& payload);

/// Outcome of trying to decode one frame from a byte buffer.
enum class DecodeResult {
  kFrame,       // *frame filled; *consumed bytes were used.
  kNeedMore,    // Buffer holds a frame prefix; read more bytes.
  kBadMagic,    // Framing error: close the connection.
  kBadVersion,  // Framing error: close the connection.
  kBadFlags,    // Framing error: close the connection.
  kTooLarge,    // len exceeds max_frame_bytes: close the connection.
};

/// Decodes the first frame of buf[0, size). On kFrame, *consumed is the
/// total frame size (len field included). Framing errors report without
/// consuming; the caller answers and closes.
DecodeResult DecodeFrame(const char* buf, size_t size, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed);

// ---- Payload helpers (shared by server decode and client encode) ----

/// Appends `u32 len + bytes`.
void PutLp(std::string* out, const Slice& value);
void PutU32(std::string* out, uint32_t value);
/// Reads an lp string at *pos; advances *pos. False on overrun (the
/// payload is malformed).
bool GetLp(const Slice& payload, size_t* pos, Slice* value);
bool GetU32(const Slice& payload, size_t* pos, uint32_t* value);

}  // namespace wire
}  // namespace server
}  // namespace talus

#endif  // TALUS_SERVER_WIRE_H_
