// Network service layer (DESIGN.md §8): serves a shard::ShardedDB over the
// length-prefixed binary protocol in server/wire.h, plus plaintext HTTP
// `GET /metrics` (Prometheus exposition) on the same port.
//
// Threading model — one acceptor/event-loop thread plus a worker pool:
//
//   * The event-loop thread owns ALL socket I/O and every Connection's
//     lifecycle: it epoll-waits on the listen fd, an eventfd wakeup, and
//     every connection; reads bytes into per-connection input buffers;
//     decodes complete frames; and writes queued response bytes back out.
//   * Decoded requests are handed to the worker pool in per-connection
//     batches. A connection has at most one batch in flight (`busy`), so
//     requests on one connection execute — and answer — strictly in order,
//     while different connections proceed in parallel across workers.
//   * Workers never touch sockets: they execute against the ShardedDB,
//     append encoded responses to the connection's output buffer under its
//     lock, clear `busy`, and wake the event loop to flush.
//
// Pipelining is group-commit fuel: within one dispatched batch, maximal
// runs of consecutive PUT/DELETE requests are coalesced into a single
// WriteBatch and committed through one ShardedDB::Write call — N pipelined
// puts from one client cost one commit-group entry (and batches from
// different connections still group in the engine's write queue). Each
// coalesced request is answered individually with the commit's status.
//
// Backpressure / admission control: at most max_pipeline_depth requests
// are dispatched per batch, and once a connection's input buffer exceeds
// max_frame_bytes + 64 KiB of undecoded bytes the loop stops reading from
// its socket until the backlog drains — TCP flow control then pushes back
// on the client.
//
// Graceful shutdown (Stop): stop accepting, stop reading new bytes, keep
// executing every request already received (in-flight batches and buffered
// frames), flush every response, then close connections, optionally flush
// the engine's memtables, and join. A drain deadline
// (drain_timeout_ms) force-closes sockets that will not finish in time.
#ifndef TALUS_SERVER_SERVER_H_
#define TALUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "server/wire.h"
#include "shard/sharded_db.h"
#include "util/status.h"

namespace talus {
namespace server {

struct ServerOptions {
  /// IPv4 address to bind, numeric form ("127.0.0.1", "0.0.0.0").
  std::string listen_addr = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()).
  uint16_t port = 0;
  /// Worker threads executing decoded requests against the DB. The server
  /// owns this pool; it is separate from DbOptions::num_background_threads
  /// (flush/compaction) so request execution and engine maintenance cannot
  /// starve each other.
  int worker_threads = 4;
  /// Max requests decoded into one dispatched batch per connection — the
  /// per-connection pipelining (and PUT/DELETE coalescing) window. Deeper
  /// pipelines amortize commit groups further but lengthen per-request
  /// tail latency at the back of the window.
  size_t max_pipeline_depth = 64;
  /// Frames with len above this are a fatal framing error (connection
  /// closed). Floor wire::kMinMaxFrameBytes is always allowed.
  size_t max_frame_bytes = 8 << 20;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Stop(): how long to wait for in-flight requests and response flushes
  /// before force-closing sockets.
  uint64_t drain_timeout_ms = 5000;
  /// Stop(): flush the engine's memtables after the drain, so a clean
  /// shutdown leaves nothing to WAL replay.
  bool flush_on_shutdown = true;
};

/// Counters for the talus_server_* Prometheus families (OPERATIONS.md).
/// Snapshot is value-copied; fields are cumulative since Start().
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // Over max_connections.
  uint64_t connections_active = 0;
  uint64_t requests_total = 0;        // Binary protocol requests answered.
  uint64_t request_errors = 0;        // Non-kOk responses.
  uint64_t bad_frames = 0;            // Fatal framing errors.
  uint64_t coalesced_batches = 0;     // WriteBatch commits from coalescing.
  uint64_t coalesced_ops = 0;         // PUT/DELETEs inside those commits.
  uint64_t http_requests = 0;         // /metrics scrapes and friends.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class Server {
 public:
  /// `db` must outlive the server. Serving starts at Start().
  Server(shard::ShardedDB* db, const ServerOptions& options);
  /// Implies Stop().
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loop + workers. On failure
  /// nothing is left running.
  Status Start();
  /// Graceful shutdown; see the class comment. Idempotent, thread-safe.
  void Stop();

  /// Bound TCP port (resolves port 0); valid after a successful Start().
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  ServerStats stats() const;
  /// The /metrics body: the DB's Prometheus exposition plus the
  /// talus_server_* families.
  std::string MetricsText() const;

 private:
  struct Connection;
  struct Request;

  void EventLoop();
  void AcceptReady();
  /// Reads available bytes (unless paused or draining); returns false when
  /// the connection should be torn down (EOF with nothing left to do is
  /// handled by ServiceConnection instead).
  void ReadInput(Connection* c);
  /// Decode + dispatch + flush + epoll-interest upkeep for one connection.
  /// Returns false when the connection was closed and erased.
  bool ServiceConnection(Connection* c);
  /// Decodes up to max_pipeline_depth requests; returns false on a fatal
  /// framing error (error frame queued, connection marked for close).
  bool DecodeRequests(Connection* c, std::vector<Request>* out);
  void DispatchBatch(Connection* c, std::vector<Request> batch);
  /// Executes one batch on a worker thread: coalesces write runs, encodes
  /// responses, appends them to the output buffer, wakes the loop.
  void ExecuteBatch(Connection* c, std::vector<Request>& batch);
  void ExecuteOne(const Request& req, std::string* responses);
  /// Serves one parsed HTTP request line ("/metrics", "/healthz").
  void ExecuteHttp(const Request& req, std::string* responses);
  /// Writes pending output; returns false on a dead socket.
  bool FlushOutput(Connection* c);
  void UpdateInterest(Connection* c);
  void CloseConnection(Connection* c);
  void Wake();

  shard::ShardedDB* const db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::unique_ptr<exec::ThreadPool> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;

  // Event-loop-thread state: connections by fd. Only the loop touches it.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;

  // Connections whose worker batch completed and need servicing; workers
  // push, the loop swaps out. Guarded by ready_mu_.
  std::mutex ready_mu_;
  std::vector<int> ready_fds_;

  // stats_: loop-owned fields are plain; cross-thread ones are atomic.
  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_rejected{0};
    std::atomic<uint64_t> connections_active{0};
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> request_errors{0};
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> coalesced_batches{0};
    std::atomic<uint64_t> coalesced_ops{0};
    std::atomic<uint64_t> http_requests{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
  };
  AtomicStats stats_;
};

}  // namespace server
}  // namespace talus

#endif  // TALUS_SERVER_SERVER_H_
