#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "lsm/write_batch.h"
#include "obs/prometheus.h"
#include "util/wall_clock.h"

namespace talus {
namespace server {

namespace {

// Upper bound on one SCAN response's entry count; bounds response frames
// independently of what limit the client asks for (docs/PROTOCOL.md).
constexpr uint32_t kMaxScanLimit = 65536;
// An HTTP request whose headers exceed this is dropped.
constexpr size_t kMaxHttpHeaderBytes = 16 << 10;
constexpr size_t kReadChunk = 64 << 10;

void AppendErrorFrame(std::string* out, wire::StatusCode code,
                      uint64_t request_id, const Slice& message) {
  std::string payload;
  wire::PutLp(&payload, message);
  wire::AppendFrame(out, static_cast<uint8_t>(code), request_id, payload);
}

void AppendStatusFrame(std::string* out, const Status& s, uint64_t request_id,
                       const Slice& ok_payload) {
  if (s.ok()) {
    wire::AppendFrame(out, static_cast<uint8_t>(wire::StatusCode::kOk),
                      request_id, ok_payload);
  } else {
    AppendErrorFrame(out, wire::CodeForStatus(s), request_id, s.ToString());
  }
}

}  // namespace

struct Server::Request {
  wire::Frame frame;
  bool http = false;
  std::string http_path;
};

struct Server::Connection {
  int fd = -1;

  // ---- Event-loop-thread state (never touched by workers) ----
  enum class Kind { kUnknown, kBinary, kHttp };
  Kind kind = Kind::kUnknown;
  std::string inbuf;
  size_t inpos = 0;        // Bytes of inbuf already decoded.
  bool read_closed = false;
  bool io_error = false;
  bool decode_blocked = false;  // Last decode pass ended on a partial frame.
  // Fatal framing error seen at inbuf[inpos]; the error frame and close
  // wait until already-dispatched requests have answered, preserving
  // response order.
  bool fatal_pending = false;
  wire::StatusCode fatal_code = wire::StatusCode::kBadRequest;
  uint32_t events = 0;  // Current epoll interest mask.

  // Set by workers (HTTP responses, shutdown refusals) and the loop.
  std::atomic<bool> close_after_flush{false};

  // ---- Shared state, guarded by mu ----
  std::mutex mu;
  bool busy = false;    // A dispatched batch is executing on a worker.
  std::string outbuf;   // Encoded responses awaiting socket write.
};

Server::Server(shard::ShardedDB* db, const ServerOptions& options)
    : db_(db), options_(options) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket", strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.listen_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen_addr", options_.listen_addr);
  }

  Status s;
  socklen_t addr_len = sizeof(addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    s = Status::IOError("bind " + options_.listen_addr, strerror(errno));
  } else if (::listen(listen_fd_, 128) != 0) {
    s = Status::IOError("listen", strerror(errno));
  } else if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &addr_len) != 0) {
    s = Status::IOError("getsockname", strerror(errno));
  }
  if (s.ok()) {
    port_ = ntohs(addr.sin_port);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      s = Status::IOError("epoll/eventfd", strerror(errno));
    }
  }
  if (s.ok()) {
    epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      s = Status::IOError("epoll_ctl listen", strerror(errno));
    } else {
      ev.events = EPOLLIN;
      ev.data.fd = wake_fd_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
        s = Status::IOError("epoll_ctl wake", strerror(errno));
      }
    }
  }
  if (!s.ok()) {
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    return s;
  }

  workers_ = std::make_unique<exec::ThreadPool>(options_.worker_threads);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void Server::Stop() {
  std::call_once(stop_once_, [this] {
    if (!running_.load()) return;
    stopping_.store(true, std::memory_order_release);
    Wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    // The loop exits only once every connection is gone, and a connection
    // is destroyed only after its in-flight batch cleared `busy` — so no
    // queued worker task references a connection here.
    workers_->Shutdown();
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    if (options_.flush_on_shutdown) db_->FlushMemTable();
    running_.store(false, std::memory_order_release);
  });
}

void Server::Wake() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    (void)n;  // EAGAIN means a wakeup is already pending.
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = stats_.connections_accepted.load();
  out.connections_rejected = stats_.connections_rejected.load();
  out.connections_active = stats_.connections_active.load();
  out.requests_total = stats_.requests_total.load();
  out.request_errors = stats_.request_errors.load();
  out.bad_frames = stats_.bad_frames.load();
  out.coalesced_batches = stats_.coalesced_batches.load();
  out.coalesced_ops = stats_.coalesced_ops.load();
  out.http_requests = stats_.http_requests.load();
  out.bytes_in = stats_.bytes_in.load();
  out.bytes_out = stats_.bytes_out.load();
  return out;
}

std::string Server::MetricsText() const {
  std::string text = db_->DumpPrometheus();
  obs::PrometheusWriter w;
  const ServerStats s = stats();
  w.AddCounter("talus_server_connections_accepted_total", "",
               s.connections_accepted, "Connections accepted since Start().");
  w.AddCounter("talus_server_connections_rejected_total", "",
               s.connections_rejected,
               "Connections closed for exceeding max_connections.");
  w.AddGauge("talus_server_connections_active", "",
             static_cast<double>(s.connections_active),
             "Currently open client connections.");
  w.AddCounter("talus_server_requests_total", "", s.requests_total,
               "Binary-protocol requests answered.");
  w.AddCounter("talus_server_request_errors_total", "", s.request_errors,
               "Requests answered with a non-OK status.");
  w.AddCounter("talus_server_bad_frames_total", "", s.bad_frames,
               "Fatal framing errors (connection closed).");
  w.AddCounter("talus_server_coalesced_batches_total", "",
               s.coalesced_batches,
               "WriteBatch commits formed by coalescing pipelined writes.");
  w.AddCounter("talus_server_coalesced_ops_total", "", s.coalesced_ops,
               "PUT/DELETE requests committed inside coalesced batches.");
  w.AddCounter("talus_server_http_requests_total", "", s.http_requests,
               "HTTP requests served (/metrics scrapes).");
  w.AddCounter("talus_server_bytes_in_total", "", s.bytes_in,
               "Bytes read from client sockets.");
  w.AddCounter("talus_server_bytes_out_total", "", s.bytes_out,
               "Bytes written to client sockets.");
  text += w.Output();
  return text;
}

void Server::EventLoop() {
  std::vector<epoll_event> events(64);
  bool listener_open = true;
  bool deadline_forced = false;
  uint64_t drain_deadline_us = 0;

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listener_open) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
      drain_deadline_us = NowMicros() + options_.drain_timeout_ms * 1000;
      // Kick every connection once: idle ones close immediately, the rest
      // drain their buffered frames and in-flight batches.
      std::vector<int> fds;
      fds.reserve(conns_.size());
      for (const auto& kv : conns_) fds.push_back(kv.first);
      for (int fd : fds) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) ServiceConnection(it->second.get());
      }
    }
    if (stopping && conns_.empty()) break;

    int timeout_ms = -1;
    if (stopping) {
      const uint64_t now = NowMicros();
      timeout_ms = now >= drain_deadline_us
                       ? 10
                       : static_cast<int>((drain_deadline_us - now) / 1000 + 1);
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; i++) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Connection* c = it->second.get();
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) ReadInput(c);
      ServiceConnection(c);
    }

    // Connections whose worker batch just completed.
    std::vector<int> ready;
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      ready.swap(ready_fds_);
    }
    for (int fd : ready) {
      auto it = conns_.find(fd);
      if (it != conns_.end()) ServiceConnection(it->second.get());
    }

    if (stopping && !deadline_forced && NowMicros() >= drain_deadline_us) {
      deadline_forced = true;
      std::vector<int> fds;
      fds.reserve(conns_.size());
      for (const auto& kv : conns_) fds.push_back(kv.first);
      for (int fd : fds) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Connection* c = it->second.get();
        c->io_error = true;  // Discard pending output; close when not busy.
        ::shutdown(c->fd, SHUT_RDWR);
        ServiceConnection(c);
      }
    }
  }
}

void Server::AcceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient error; epoll will re-arm.
    if (conns_.size() >= options_.max_connections) {
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->events = EPOLLIN;
    conns_.emplace(fd, std::move(conn));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ReadInput(Connection* c) {
  if (c->read_closed || c->io_error ||
      c->close_after_flush.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return;
  }
  const size_t effective_max =
      std::max(options_.max_frame_bytes, wire::kMinMaxFrameBytes);
  const size_t input_limit = effective_max + (64 << 10);
  char chunk[kReadChunk];
  while (c->inbuf.size() - c->inpos < input_limit) {
    const ssize_t n = ::read(c->fd, chunk, sizeof(chunk));
    if (n > 0) {
      c->inbuf.append(chunk, static_cast<size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n == 0) {
      c->read_closed = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) c->io_error = true;
    return;
  }
}

bool Server::DecodeRequests(Connection* c, std::vector<Request>* out) {
  if (c->fatal_pending) return false;  // Already poisoned; don't re-parse.
  c->decode_blocked = false;
  const size_t effective_max =
      std::max(options_.max_frame_bytes, wire::kMinMaxFrameBytes);

  if (c->kind == Connection::Kind::kUnknown) {
    if (c->inbuf.size() - c->inpos < 4) {
      if (c->read_closed) c->close_after_flush.store(true);  // Junk prefix.
      c->decode_blocked = true;
      return true;
    }
    c->kind = memcmp(c->inbuf.data() + c->inpos, "GET ", 4) == 0
                  ? Connection::Kind::kHttp
                  : Connection::Kind::kBinary;
  }

  if (c->kind == Connection::Kind::kHttp) {
    const size_t end = c->inbuf.find("\r\n\r\n", c->inpos);
    if (end == std::string::npos) {
      if (c->inbuf.size() - c->inpos > kMaxHttpHeaderBytes || c->read_closed) {
        c->close_after_flush.store(true);
      }
      c->decode_blocked = true;
      return true;
    }
    const size_t line_end = c->inbuf.find("\r\n", c->inpos);
    std::string line = c->inbuf.substr(c->inpos, line_end - c->inpos);
    c->inpos = end + 4;
    Request req;
    req.http = true;
    // "GET <path> HTTP/1.x" — extract the path token.
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    req.http_path = sp2 == std::string::npos
                        ? line.substr(sp1 + 1)
                        : line.substr(sp1 + 1, sp2 - sp1 - 1);
    out->push_back(std::move(req));
    return true;
  }

  while (out->size() < options_.max_pipeline_depth) {
    Request req;
    size_t consumed = 0;
    const wire::DecodeResult r =
        wire::DecodeFrame(c->inbuf.data() + c->inpos,
                          c->inbuf.size() - c->inpos, effective_max,
                          &req.frame, &consumed);
    if (r == wire::DecodeResult::kFrame) {
      c->inpos += consumed;
      out->push_back(std::move(req));
      continue;
    }
    if (r == wire::DecodeResult::kNeedMore) {
      c->decode_blocked = true;
      break;
    }
    // Fatal framing error: remember it; the error frame is emitted (and
    // the connection closed) only after already-decoded requests answer,
    // preserving response order.
    stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    c->fatal_pending = true;
    c->fatal_code = r == wire::DecodeResult::kBadVersion
                        ? wire::StatusCode::kBadVersion
                        : wire::StatusCode::kBadRequest;
    break;
  }
  // Reclaim decoded prefix bytes.
  if (c->inpos == c->inbuf.size()) {
    c->inbuf.clear();
    c->inpos = 0;
  } else if (c->inpos > (1 << 20)) {
    c->inbuf.erase(0, c->inpos);
    c->inpos = 0;
  }
  return !c->fatal_pending;
}

bool Server::ServiceConnection(Connection* c) {
  bool busy;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    busy = c->busy;
  }
  // Close decisions below require that this pass (not a stale earlier one)
  // observed the decode state; a pass that found the connection busy never
  // closes it — the worker-completion wakeup guarantees another pass.
  const bool busy_at_entry = busy;

  if (!busy && !c->io_error &&
      !c->close_after_flush.load(std::memory_order_acquire)) {
    std::vector<Request> batch;
    DecodeRequests(c, &batch);
    if (!batch.empty()) {
      DispatchBatch(c, std::move(batch));
      busy = true;
    } else if (c->fatal_pending) {
      // Every earlier request has answered; fail the stream and close.
      std::string err;
      AppendErrorFrame(&err, c->fatal_code, 0, "malformed frame");
      {
        std::lock_guard<std::mutex> lock(c->mu);
        c->outbuf += err;
      }
      c->fatal_pending = false;
      c->close_after_flush.store(true);
    }
  }

  if (!FlushOutput(c)) c->io_error = true;

  bool out_empty;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    out_empty = c->outbuf.empty();
    busy = c->busy;
  }
  const bool close_requested =
      c->close_after_flush.load(std::memory_order_acquire);
  const bool no_more_input = c->read_closed || close_requested ||
                             c->io_error ||
                             stopping_.load(std::memory_order_acquire);
  const bool input_drained =
      c->inpos >= c->inbuf.size() || c->decode_blocked || close_requested;
  if (!busy_at_entry && !busy &&
      (c->io_error || (no_more_input && input_drained && out_empty &&
                       !c->fatal_pending))) {
    CloseConnection(c);
    return false;
  }
  UpdateInterest(c);
  return true;
}

void Server::DispatchBatch(Connection* c, std::vector<Request> batch) {
  {
    std::lock_guard<std::mutex> lock(c->mu);
    c->busy = true;
  }
  const int fd = c->fd;
  auto shared = std::make_shared<std::vector<Request>>(std::move(batch));
  const bool submitted = workers_->Submit([this, c, fd, shared] {
    ExecuteBatch(c, *shared);
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      ready_fds_.push_back(fd);
    }
    Wake();
  });
  if (!submitted) {
    // Pool already shut down (server stopping): refuse the batch.
    std::string responses;
    for (const Request& r : *shared) {
      if (!r.http) {
        AppendErrorFrame(&responses, wire::StatusCode::kShuttingDown,
                         r.frame.request_id, "server shutting down");
      }
    }
    std::lock_guard<std::mutex> lock(c->mu);
    c->outbuf += responses;
    c->busy = false;
  }
}

void Server::ExecuteBatch(Connection* c, std::vector<Request>& batch) {
  std::string responses;
  uint64_t answered = 0;

  size_t i = 0;
  while (i < batch.size()) {
    const Request& req = batch[i];
    if (req.http) {
      ExecuteHttp(req, &responses);
      c->close_after_flush.store(true, std::memory_order_release);
      i++;
      continue;
    }
    const uint8_t op = req.frame.op;
    if (op != static_cast<uint8_t>(wire::Opcode::kPut) &&
        op != static_cast<uint8_t>(wire::Opcode::kDelete)) {
      ExecuteOne(req, &responses);
      answered++;
      i++;
      continue;
    }

    // A run of consecutive PUT/DELETE requests: decode them all, answer
    // malformed ones individually, and commit the valid ones as ONE
    // WriteBatch — pipelined writes become a single commit-group entry.
    struct PendingWrite {
      uint64_t request_id;
      bool valid;
      wire::StatusCode error;  // When !valid.
    };
    std::vector<PendingWrite> run;
    WriteBatch wb;
    size_t j = i;
    while (j < batch.size() && !batch[j].http &&
           (batch[j].frame.op == static_cast<uint8_t>(wire::Opcode::kPut) ||
            batch[j].frame.op ==
                static_cast<uint8_t>(wire::Opcode::kDelete))) {
      const wire::Frame& f = batch[j].frame;
      const Slice payload(f.payload);
      size_t pos = 0;
      Slice key, value;
      bool valid = wire::GetLp(payload, &pos, &key);
      const bool is_put =
          f.op == static_cast<uint8_t>(wire::Opcode::kPut);
      if (valid && is_put) valid = wire::GetLp(payload, &pos, &value);
      if (valid && pos != payload.size()) valid = false;  // Trailing bytes.
      wire::StatusCode error = wire::StatusCode::kBadRequest;
      if (valid && key.empty()) {
        valid = false;
        error = wire::StatusCode::kInvalidArgument;
      }
      if (valid) {
        if (is_put) {
          wb.Put(key, value);
        } else {
          wb.Delete(key);
        }
      }
      run.push_back({f.request_id, valid, error});
      j++;
    }
    Status commit;
    if (wb.Count() > 0) {
      commit = db_->Write(wb);
      if (wb.Count() > 1) {
        stats_.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
        stats_.coalesced_ops.fetch_add(wb.Count(),
                                       std::memory_order_relaxed);
      }
    }
    for (const PendingWrite& p : run) {
      if (!p.valid) {
        AppendErrorFrame(&responses, p.error, p.request_id,
                         p.error == wire::StatusCode::kInvalidArgument
                             ? "empty key"
                             : "malformed write payload");
      } else {
        AppendStatusFrame(&responses, commit, p.request_id, Slice());
      }
      answered++;
    }
    i = j;
  }

  stats_.requests_total.fetch_add(answered, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(c->mu);
    c->outbuf += responses;
    c->busy = false;
  }
  // Caller (DispatchBatch's task) wakes the loop; `c` must not be touched
  // past this point — once busy is false the loop may destroy it.
}

void Server::ExecuteOne(const Request& req, std::string* responses) {
  const wire::Frame& f = req.frame;
  const Slice payload(f.payload);
  size_t pos = 0;
  Status s;
  std::string ok_payload;

  const auto bad_request = [&](const char* what) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    AppendErrorFrame(responses, wire::StatusCode::kBadRequest, f.request_id,
                     what);
  };

  switch (static_cast<wire::Opcode>(f.op)) {
    case wire::Opcode::kPing:
      break;  // s stays OK, empty payload.
    case wire::Opcode::kGet: {
      Slice key;
      if (!wire::GetLp(payload, &pos, &key) || pos != payload.size()) {
        return bad_request("malformed get payload");
      }
      std::string value;
      s = db_->Get(key, &value);
      if (s.ok()) wire::PutLp(&ok_payload, value);
      break;
    }
    case wire::Opcode::kScan: {
      Slice start;
      uint32_t limit;
      if (!wire::GetLp(payload, &pos, &start) ||
          !wire::GetU32(payload, &pos, &limit) || pos != payload.size()) {
        return bad_request("malformed scan payload");
      }
      std::vector<std::pair<std::string, std::string>> entries;
      s = db_->Scan(start, std::min(limit, kMaxScanLimit), &entries);
      if (s.ok()) {
        wire::PutU32(&ok_payload, static_cast<uint32_t>(entries.size()));
        for (const auto& kv : entries) {
          wire::PutLp(&ok_payload, kv.first);
          wire::PutLp(&ok_payload, kv.second);
        }
      }
      break;
    }
    case wire::Opcode::kProperty: {
      Slice name;
      if (!wire::GetLp(payload, &pos, &name) || pos != payload.size()) {
        return bad_request("malformed property payload");
      }
      std::string text;
      if (db_->GetProperty(name.ToString(), &text)) {
        wire::PutLp(&ok_payload, text);
      } else {
        s = Status::NotFound("unknown property", name);
      }
      break;
    }
    case wire::Opcode::kWrite: {
      uint32_t count;
      if (!wire::GetU32(payload, &pos, &count)) {
        return bad_request("malformed write payload");
      }
      WriteBatch wb;
      bool ok = true;
      for (uint32_t k = 0; k < count && ok; k++) {
        if (payload.size() <= pos) {
          ok = false;
          break;
        }
        const uint8_t type = static_cast<uint8_t>(payload[pos++]);
        Slice key, value;
        ok = wire::GetLp(payload, &pos, &key) && !key.empty();
        if (ok && type == wire::kWriteOpPut) {
          ok = wire::GetLp(payload, &pos, &value);
          if (ok) wb.Put(key, value);
        } else if (ok && type == wire::kWriteOpDelete) {
          wb.Delete(key);
        } else {
          ok = false;
        }
      }
      if (!ok || pos != payload.size()) {
        return bad_request("malformed write payload");
      }
      s = db_->Write(wb);
      break;
    }
    case wire::Opcode::kPut:
    case wire::Opcode::kDelete:
      // Handled by the coalescing path in ExecuteBatch.
      return bad_request("write op outside coalescing path");
    default:
      stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
      AppendErrorFrame(responses, wire::StatusCode::kNotSupported,
                       f.request_id, "unknown opcode");
      return;
  }
  if (!s.ok()) stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
  AppendStatusFrame(responses, s, f.request_id, ok_payload);
}

void Server::ExecuteHttp(const Request& req, std::string* responses) {
  stats_.http_requests.fetch_add(1, std::memory_order_relaxed);
  std::string body;
  const char* status_line = "HTTP/1.0 200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (req.http_path == "/metrics") {
    body = MetricsText();
  } else if (req.http_path == "/healthz") {
    body = "ok\n";
    content_type = "text/plain; charset=utf-8";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found\n";
    content_type = "text/plain; charset=utf-8";
  }
  char header[256];
  std::snprintf(header, sizeof(header),
                "%s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status_line, content_type, body.size());
  responses->append(header);
  responses->append(body);
}

bool Server::FlushOutput(Connection* c) {
  if (c->io_error) return true;  // Already dead; nothing to flush.
  std::string pending;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    pending.swap(c->outbuf);
  }
  if (pending.empty()) return true;
  size_t written = 0;
  bool alive = true;
  while (written < pending.size()) {
    const ssize_t n =
        ::write(c->fd, pending.data() + written, pending.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) alive = false;
    break;
  }
  if (written < pending.size() && alive) {
    // Re-queue the tail BEFORE anything a worker may append (workers only
    // append while busy, and the loop is the only writer of the front).
    std::lock_guard<std::mutex> lock(c->mu);
    c->outbuf.insert(0, pending, written, pending.size() - written);
  }
  return alive;
}

void Server::UpdateInterest(Connection* c) {
  const size_t effective_max =
      std::max(options_.max_frame_bytes, wire::kMinMaxFrameBytes);
  const size_t input_limit = effective_max + (64 << 10);
  bool want_out;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    want_out = !c->outbuf.empty();
  }
  const bool want_in = !c->read_closed && !c->io_error &&
                       !c->close_after_flush.load(std::memory_order_acquire) &&
                       !stopping_.load(std::memory_order_acquire) &&
                       c->inbuf.size() - c->inpos < input_limit;
  const uint32_t mask =
      (want_in ? EPOLLIN : 0u) | (want_out ? EPOLLOUT : 0u);
  if (mask == c->events) return;
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = mask;
  ev.data.fd = c->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) == 0) {
    c->events = mask;
  }
}

void Server::CloseConnection(Connection* c) {
  const int fd = c->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(fd);  // Destroys c.
}

}  // namespace server
}  // namespace talus
