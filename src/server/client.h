// Minimal C++ client for the talus wire protocol (server/wire.h,
// docs/PROTOCOL.md). One Client is ONE TCP connection and is NOT
// thread-safe — use one Client per thread (the server multiplexes).
//
// Two call styles over the same connection:
//
//   * Sync: Put/Get/Delete/Write/Scan/GetProperty/Ping — send one request,
//     wait for its response.
//   * Pipelined: Send* buffers a frame and returns its request id without
//     touching the socket; Flush() (or any Wait) writes the backlog in one
//     syscall, and Wait(id, &result) collects responses. The server
//     answers in request order, so waiting in issue order is O(1); waiting
//     out of order buffers the skipped responses internally.
//
// Pipelining is what makes the server fast: N buffered PUTs arrive in one
// TCP segment, decode into one batch, and commit as one write group
// (DESIGN.md §8).
#ifndef TALUS_SERVER_CLIENT_H_
#define TALUS_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lsm/write_batch.h"
#include "server/wire.h"
#include "util/slice.h"
#include "util/status.h"

namespace talus {
namespace server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `host:port` (host in IPv4 numeric form). Any previous
  /// connection is closed first.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One decoded response: the engine/protocol status plus the payload of
  /// the operation kind that was issued.
  struct Result {
    Status status;
    std::string value;  // GET value / PROPERTY text.
    std::vector<std::pair<std::string, std::string>> entries;  // SCAN.
  };

  // ---- Sync calls ----
  Status Ping();
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status Write(const WriteBatch& batch);
  Status Scan(const Slice& start, uint32_t count,
              std::vector<std::pair<std::string, std::string>>* out);
  Status GetProperty(const std::string& name, std::string* value);

  // ---- Pipelined calls ----
  uint64_t SendPing();
  uint64_t SendPut(const Slice& key, const Slice& value);
  uint64_t SendGet(const Slice& key);
  uint64_t SendDelete(const Slice& key);
  uint64_t SendWrite(const WriteBatch& batch);
  uint64_t SendScan(const Slice& start, uint32_t count);
  uint64_t SendProperty(const std::string& name);
  /// Writes every buffered request to the socket.
  Status Flush();
  /// Flushes, then reads responses until `id` answers. Responses for other
  /// ids seen on the way are retained for their own Wait.
  Status Wait(uint64_t id, Result* result);

  /// Request ids this client has issued but not yet collected.
  size_t pending() const { return pending_.size() + stashed_.size(); }

 private:
  uint64_t Enqueue(wire::Opcode op, const Slice& payload);
  Status ReadFrame(wire::Frame* frame);
  /// Decodes a response frame into a Result according to its status code.
  static Result DecodeResult(const wire::Frame& frame);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::string sendbuf_;
  std::string recvbuf_;
  size_t recvpos_ = 0;
  std::vector<uint64_t> pending_;         // Ids issued, in order.
  std::map<uint64_t, Result> stashed_;    // Collected out-of-order results.
};

}  // namespace server
}  // namespace talus

#endif  // TALUS_SERVER_CLIENT_H_
