#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace talus {
namespace server {

namespace {
// Client-side cap on one response frame; matches the server's floor.
constexpr size_t kClientMaxFrameBytes = 64 << 20;
}  // namespace

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket", strerror(errno));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address", host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    Close();
    return Status::IOError("connect " + host, err);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  sendbuf_.clear();
  recvbuf_.clear();
  recvpos_ = 0;
  pending_.clear();
  stashed_.clear();
}

uint64_t Client::Enqueue(wire::Opcode op, const Slice& payload) {
  const uint64_t id = next_id_++;
  wire::AppendFrame(&sendbuf_, static_cast<uint8_t>(op), id, payload);
  pending_.push_back(id);
  return id;
}

uint64_t Client::SendPing() { return Enqueue(wire::Opcode::kPing, Slice()); }

uint64_t Client::SendPut(const Slice& key, const Slice& value) {
  std::string payload;
  wire::PutLp(&payload, key);
  wire::PutLp(&payload, value);
  return Enqueue(wire::Opcode::kPut, payload);
}

uint64_t Client::SendGet(const Slice& key) {
  std::string payload;
  wire::PutLp(&payload, key);
  return Enqueue(wire::Opcode::kGet, payload);
}

uint64_t Client::SendDelete(const Slice& key) {
  std::string payload;
  wire::PutLp(&payload, key);
  return Enqueue(wire::Opcode::kDelete, payload);
}

uint64_t Client::SendWrite(const WriteBatch& batch) {
  std::string payload;
  wire::PutU32(&payload, batch.Count());
  struct Encoder : public WriteBatch::Handler {
    std::string* out;
    void Put(const Slice& key, const Slice& value) override {
      out->push_back(static_cast<char>(wire::kWriteOpPut));
      wire::PutLp(out, key);
      wire::PutLp(out, value);
    }
    void Delete(const Slice& key) override {
      out->push_back(static_cast<char>(wire::kWriteOpDelete));
      wire::PutLp(out, key);
    }
  };
  Encoder enc;
  enc.out = &payload;
  batch.Iterate(&enc);
  return Enqueue(wire::Opcode::kWrite, payload);
}

uint64_t Client::SendScan(const Slice& start, uint32_t count) {
  std::string payload;
  wire::PutLp(&payload, start);
  wire::PutU32(&payload, count);
  return Enqueue(wire::Opcode::kScan, payload);
}

uint64_t Client::SendProperty(const std::string& name) {
  std::string payload;
  wire::PutLp(&payload, name);
  return Enqueue(wire::Opcode::kProperty, payload);
}

Status Client::Flush() {
  if (fd_ < 0) return Status::IOError("not connected");
  size_t written = 0;
  while (written < sendbuf_.size()) {
    const ssize_t n = ::write(fd_, sendbuf_.data() + written,
                              sendbuf_.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError("write", strerror(errno));
  }
  sendbuf_.clear();
  return Status::OK();
}

Status Client::ReadFrame(wire::Frame* frame) {
  for (;;) {
    size_t consumed = 0;
    const wire::DecodeResult r = wire::DecodeFrame(
        recvbuf_.data() + recvpos_, recvbuf_.size() - recvpos_,
        kClientMaxFrameBytes, frame, &consumed);
    if (r == wire::DecodeResult::kFrame) {
      recvpos_ += consumed;
      if (recvpos_ == recvbuf_.size()) {
        recvbuf_.clear();
        recvpos_ = 0;
      }
      return Status::OK();
    }
    if (r != wire::DecodeResult::kNeedMore) {
      return Status::Corruption("malformed response frame");
    }
    char chunk[64 << 10];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      recvbuf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IOError("read", strerror(errno));
  }
}

Client::Result Client::DecodeResult(const wire::Frame& frame) {
  Result out;
  const auto code = static_cast<wire::StatusCode>(frame.op);
  const Slice payload(frame.payload);
  size_t pos = 0;
  if (code != wire::StatusCode::kOk) {
    Slice message;
    wire::GetLp(payload, &pos, &message);
    out.status = wire::StatusForCode(code, message.ToString());
    return out;
  }
  // An OK payload is either empty (PUT/DELETE/WRITE/PING), one lp string
  // (GET/PROPERTY), or a counted entry list (SCAN). The three shapes are
  // self-describing enough to decode without remembering the opcode: a
  // counted list's first u32 is followed by lp pairs, a single string's
  // first u32 is its own length. Try the string shape first.
  if (payload.empty()) return out;
  Slice value;
  if (wire::GetLp(payload, &pos, &value) && pos == payload.size()) {
    out.value = value.ToString();
    return out;
  }
  pos = 0;
  uint32_t count = 0;
  if (wire::GetU32(payload, &pos, &count)) {
    for (uint32_t i = 0; i < count; i++) {
      Slice key, val;
      if (!wire::GetLp(payload, &pos, &key) ||
          !wire::GetLp(payload, &pos, &val)) {
        out.status = Status::Corruption("malformed scan response");
        return out;
      }
      out.entries.emplace_back(key.ToString(), val.ToString());
    }
  }
  return out;
}

Status Client::Wait(uint64_t id, Result* result) {
  const auto stashed = stashed_.find(id);
  if (stashed != stashed_.end()) {
    const Status op_status = stashed->second.status;
    if (result != nullptr) *result = std::move(stashed->second);
    stashed_.erase(stashed);
    return op_status;
  }
  if (std::find(pending_.begin(), pending_.end(), id) == pending_.end()) {
    return Status::InvalidArgument("unknown request id");
  }
  Status s = Flush();
  if (!s.ok()) return s;
  for (;;) {
    wire::Frame frame;
    s = ReadFrame(&frame);
    if (!s.ok()) return s;
    // Drop the id from the issue-order list (responses arrive in order, so
    // this is the front except after out-of-order Waits).
    const auto it = std::find(pending_.begin(), pending_.end(),
                              frame.request_id);
    if (it != pending_.end()) pending_.erase(it);
    Result r = DecodeResult(frame);
    if (frame.request_id == id) {
      const Status op_status = r.status;
      if (result != nullptr) *result = std::move(r);
      return op_status;
    }
    stashed_.emplace(frame.request_id, std::move(r));
  }
}

Status Client::Ping() {
  return Wait(SendPing(), nullptr);
}

Status Client::Put(const Slice& key, const Slice& value) {
  return Wait(SendPut(key, value), nullptr);
}

Status Client::Get(const Slice& key, std::string* value) {
  Result r;
  Status s = Wait(SendGet(key), &r);
  if (s.ok() && value != nullptr) *value = std::move(r.value);
  return s;
}

Status Client::Delete(const Slice& key) {
  return Wait(SendDelete(key), nullptr);
}

Status Client::Write(const WriteBatch& batch) {
  return Wait(SendWrite(batch), nullptr);
}

Status Client::Scan(const Slice& start, uint32_t count,
                    std::vector<std::pair<std::string, std::string>>* out) {
  Result r;
  Status s = Wait(SendScan(start, count), &r);
  if (s.ok() && out != nullptr) *out = std::move(r.entries);
  return s;
}

Status Client::GetProperty(const std::string& name, std::string* value) {
  Result r;
  Status s = Wait(SendProperty(name), &r);
  if (s.ok() && value != nullptr) *value = std::move(r.value);
  return s;
}

}  // namespace server
}  // namespace talus
