// CompactionPlan: the immutable contract between the three stages of the
// compaction pipeline (DESIGN.md §2.8):
//
//   plan    — built under the DB mutex by PlanCompaction() against a pinned
//             base Version: input file refs, target overlaps, tombstone-GC
//             admissibility, output spec, subcompaction boundaries.
//   merge   — executed with the mutex released by CompactionExecutor: the
//             plan's FileMetaPtr references pin every input file (deferred
//             GC never deletes a referenced file), so the merge reads a
//             frozen snapshot no matter what installs concurrently.
//   install — back under the mutex: PlanStillValid() checks that no
//             concurrent flush reshaped the plan's inputs, then
//             ApplyCompactionPlan() splices the outputs into a successor
//             Version. A failed check is a retriable conflict, not an error.
#ifndef TALUS_COMPACTION_COMPACTION_PLAN_H_
#define TALUS_COMPACTION_COMPACTION_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/version.h"
#include "policy/growth_policy.h"

namespace talus {
namespace compaction {

struct CompactionPlan {
  /// One resolved input: a whole run or a subset of its files. The files
  /// vector holds real references, pinning the SSTs for the merge stage.
  struct Input {
    int level = 0;
    uint64_t run_id = 0;
    std::vector<FileMetaPtr> files;
    bool whole_run = false;
  };

  std::vector<Input> inputs;
  int output_level = 0;
  CompactionRequest::Placement placement =
      CompactionRequest::Placement::kFront;

  /// Leveling-style merge target: outputs replace `target_overlaps` inside
  /// this run. nullopt → outputs form a new run placed per `placement`.
  std::optional<uint64_t> target_run_id;
  std::vector<FileMetaPtr> target_overlaps;

  /// Output spec, captured under the mutex so the merge needs no DB state.
  bool drop_tombstones = false;
  double bits_per_key = 0;
  SequenceNumber smallest_snapshot = 0;

  /// User-key range covered by the inputs. have_range == false means the
  /// plan is empty (nothing to merge).
  std::string min_user, max_user;
  bool have_range = false;

  /// Ascending user keys splitting the merge into key-range subcompactions:
  /// N boundaries → N+1 ranges [-inf,b0), [b0,b1), ..., [bN-1,+inf). Picked
  /// at input-file boundaries so every version of a user key lands in
  /// exactly one range (tombstone/shadow dropping stays local).
  std::vector<std::string> boundaries;

  /// Ordered run-id snapshot of the output level at plan time. Install
  /// guard for front placement into level 0, the one level a concurrent
  /// flush can prepend runs to: if the ordering changed, inserting the
  /// output at the front would misorder it relative to freshly flushed
  /// data, so the install must conflict instead.
  std::vector<uint64_t> output_level_run_ids;

  std::string reason;

  bool empty() const { return !have_range; }
};

}  // namespace compaction
}  // namespace talus

#endif  // TALUS_COMPACTION_COMPACTION_PLAN_H_
